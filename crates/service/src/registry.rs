//! Shared route-provider registry.
//!
//! Building a [`RouteProvider`] is the expensive, reusable part of a
//! mapping job — a dense tier precomputes every route table of the mesh.
//! The registry shares one provider per `(mesh, routing, faults)` triple
//! across every concurrent job of the service: providers are `Sync`, so
//! one `Arc` serves any number of workers at once.
//!
//! The fault set is part of the identity. Two jobs differing *only* in
//! their dead links route differently and must never share a provider —
//! that is the correctness half of the sharing story, and it is what
//! makes `FaultSet: Hash + Eq` load-bearing.

use noc_model::{FaultSet, Mesh, RouteProvider, RoutingKind};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Identity of a shared provider: the mesh, the routing algorithm and
/// the dead links baked into it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProviderKey {
    /// The target mesh.
    pub mesh: Mesh,
    /// The routing algorithm.
    pub routing: RoutingKind,
    /// Dead links the routes must avoid.
    pub faults: FaultSet,
}

/// Hit/miss counters of a registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegistryStats {
    /// Lookups that reused an existing provider.
    pub hits: u64,
    /// Lookups that had to build a new provider.
    pub misses: u64,
    /// Distinct providers currently cached.
    pub entries: usize,
}

/// Provider cache keyed by [`ProviderKey`], shared by every worker.
#[derive(Debug, Default)]
pub struct ProviderRegistry {
    // Lookups and inserts only — the map is never iterated, so its
    // nondeterministic order can't leak into any result.
    providers: Mutex<HashMap<ProviderKey, Arc<RouteProvider>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ProviderRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared provider for `(mesh, routing, faults)`, building it on
    /// first use. A fault-free key gets the size-aware auto tier (dense
    /// on small meshes, on-demand beyond); a faulty key gets the
    /// fault-aware tier. The build happens under the lock so a key is
    /// built exactly once even when many jobs request it concurrently.
    pub fn provider(&self, mesh: &Mesh, routing: RoutingKind, faults: &FaultSet) -> ProviderLease {
        let key = ProviderKey {
            mesh: *mesh,
            routing,
            faults: faults.clone(),
        };
        let mut providers = self.providers.lock().expect("registry lock poisoned");
        if let Some(existing) = providers.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return ProviderLease {
                provider: Arc::clone(existing),
                hit: true,
            };
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let provider = Arc::new(if key.faults.is_empty() {
            RouteProvider::auto(mesh, routing)
        } else {
            RouteProvider::fault_aware(mesh, routing, key.faults.clone())
        });
        providers.insert(key, Arc::clone(&provider));
        ProviderLease {
            provider,
            hit: false,
        }
    }

    /// Hit/miss counters and cache size.
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.providers.lock().expect("registry lock poisoned").len(),
        }
    }
}

/// A registry lookup result: the shared provider plus whether the call
/// reused an existing entry.
#[derive(Debug, Clone)]
pub struct ProviderLease {
    /// The shared provider.
    pub provider: Arc<RouteProvider>,
    /// True if the provider already existed in the registry.
    pub hit: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::TileId;

    #[test]
    fn same_key_reuses_the_provider() {
        let registry = ProviderRegistry::new();
        let mesh = Mesh::new(3, 3).unwrap();
        let empty = FaultSet::new();
        let a = registry.provider(&mesh, RoutingKind::Xy, &empty);
        let b = registry.provider(&mesh, RoutingKind::Xy, &empty);
        assert!(!a.hit);
        assert!(b.hit);
        assert!(Arc::ptr_eq(&a.provider, &b.provider));
        let stats = registry.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn fault_sets_are_part_of_the_provider_identity() {
        // Satellite regression: two jobs differing ONLY in their fault
        // sets must get distinct providers — a shared one would route
        // the faulty job through dead links.
        let registry = ProviderRegistry::new();
        let mesh = Mesh::new(3, 3).unwrap();
        let healthy = FaultSet::new();
        let mut faulty = FaultSet::new();
        faulty.kill_between(TileId::new(0), TileId::new(1));

        let a = registry.provider(&mesh, RoutingKind::Xy, &healthy);
        let b = registry.provider(&mesh, RoutingKind::Xy, &faulty);
        assert!(!b.hit, "distinct fault set must not hit the cache");
        assert!(!Arc::ptr_eq(&a.provider, &b.provider));

        // Each identity keeps its own entry; re-requests hit.
        assert!(registry.provider(&mesh, RoutingKind::Xy, &faulty).hit);
        assert_eq!(registry.stats().entries, 2);

        // And the faulty provider actually routes around the dead link:
        // the adjacent pair needs a detour (more than 2 routers).
        use noc_model::RouteSource;
        assert_eq!(a.provider.router_count(TileId::new(0), TileId::new(1)), 2);
        assert!(
            b.provider.router_count(TileId::new(0), TileId::new(1)) > 2,
            "direct hop is dead; must detour"
        );
    }

    #[test]
    fn routing_and_mesh_also_separate_providers() {
        let registry = ProviderRegistry::new();
        let empty = FaultSet::new();
        let mesh_a = Mesh::new(3, 3).unwrap();
        let mesh_b = Mesh::new(4, 4).unwrap();
        registry.provider(&mesh_a, RoutingKind::Xy, &empty);
        registry.provider(&mesh_a, RoutingKind::Yx, &empty);
        registry.provider(&mesh_b, RoutingKind::Xy, &empty);
        let stats = registry.stats();
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 0);
    }
}
