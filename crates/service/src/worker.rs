//! Job execution: what one worker thread does with one dequeued job.
//!
//! Execution is a pure function of the request (plus the shared
//! provider registry): workers hold no job state of their own beyond a
//! pooled [`ScheduleScratch`] arena that the final full-model
//! verification of every job reuses. That pooling is why a service
//! processing thousands of small jobs does not allocate per-link tables
//! thousands of times — the arena's [`RunStats`](noc_sim::RunStats)
//! counters are the observable evidence of reuse.

use crate::job::{
    CacheTier, EvaluateRequest, EvaluateResult, JobRequest, JobResult, SolveRequest, SolveResult,
};
use crate::registry::ProviderRegistry;
use noc_energy::total::evaluate_cdcm_with;
use noc_energy::{
    cdcg_dynamic_energy_cached, cwg_dynamic_energy_cached, noc_static_energy, EnergyBreakdown,
};
use noc_mapping::{
    anneal_constrained, CancelToken, CdcmObjective, CwmObjective, Explorer, Strategy,
};
use noc_model::{RouteProvider, RouteSource};
use noc_sim::gantt::GanttChart;
use noc_sim::{schedule_cost_with, ScheduleScratch};
use std::sync::Arc;

/// Executes one job to completion (or to its cancellation checkpoint).
/// Returns a human-readable error string for failed jobs; the service
/// loop wraps it in [`JobState::Failed`](crate::job::JobState::Failed).
pub(crate) fn execute(
    request: &JobRequest,
    registry: &ProviderRegistry,
    scratch: &mut ScheduleScratch,
    cancel: &CancelToken,
) -> Result<JobResult, String> {
    match request {
        JobRequest::Solve(req) => {
            execute_solve(req, registry, scratch, cancel).map(|r| JobResult::Solve(Box::new(r)))
        }
        JobRequest::Evaluate(req) => {
            execute_evaluate(req).map(|r| JobResult::Evaluate(Box::new(r)))
        }
    }
}

/// Resolves a solve request's route provider: the shared registry for
/// the auto tier, a private per-job provider for the explicit tiers
/// (exactly what the CLI always built).
fn resolve_provider(
    req: &SolveRequest,
    registry: &ProviderRegistry,
) -> Result<(Arc<RouteProvider>, bool), String> {
    match req.route_cache {
        CacheTier::Auto => {
            let lease = registry.provider(&req.mesh, req.routing, &req.faults);
            Ok((lease.provider, lease.hit))
        }
        _ if !req.faults.is_empty() => Err(
            "fault sets need the auto route-cache tier (the registry builds fault-aware routes)"
                .to_owned(),
        ),
        CacheTier::Dense => RouteProvider::dense(&req.mesh, req.routing)
            .map(|p| (Arc::new(p), false))
            .map_err(|e| e.to_string()),
        CacheTier::OnDemand => Ok((
            Arc::new(RouteProvider::on_demand(&req.mesh, req.routing)),
            false,
        )),
        CacheTier::Implicit => Ok((
            Arc::new(RouteProvider::implicit(&req.mesh, req.routing)),
            false,
        )),
    }
}

fn execute_solve(
    req: &SolveRequest,
    registry: &ProviderRegistry,
    scratch: &mut ScheduleScratch,
    cancel: &CancelToken,
) -> Result<SolveResult, String> {
    if req.app.core_count() > req.mesh.tile_count() {
        return Err(format!(
            "{} cores cannot map onto {} tiles",
            req.app.core_count(),
            req.mesh.tile_count()
        ));
    }
    req.app.validate().map_err(|e| e.to_string())?;
    let (provider, registry_hit) = resolve_provider(req, registry)?;
    let route_tier = provider.tier().name().to_owned();
    let explorer = Explorer::with_provider(
        &req.app,
        req.mesh,
        req.tech.clone(),
        req.params,
        Arc::clone(&provider),
    );

    let (outcome, telemetry) = match &req.pins {
        Some(pins) => {
            // Constrained search: pinned cores stay on their tiles. The
            // constrained annealer has no mid-run checkpoints; a cancel
            // that lands before dispatch still stops the job here.
            pins.validate(&req.mesh, req.app.core_count())
                .map_err(|e| e.to_string())?;
            let outcome = match req.strategy {
                Strategy::Cwm => {
                    let objective = CwmObjective::with_provider(
                        explorer.cwg(),
                        &req.mesh,
                        &req.tech,
                        Arc::clone(&provider),
                    );
                    anneal_constrained(
                        &objective,
                        &req.mesh,
                        req.app.core_count(),
                        pins,
                        &req.sa_config,
                    )
                }
                Strategy::Cdcm => {
                    let objective = CdcmObjective::with_provider(
                        &req.app,
                        &req.tech,
                        req.params,
                        Arc::clone(&provider),
                    );
                    anneal_constrained(
                        &objective,
                        &req.mesh,
                        req.app.core_count(),
                        pins,
                        &req.sa_config,
                    )
                }
            };
            (outcome, None)
        }
        None => {
            let run = explorer.explore_with_telemetry_cancellable(req.strategy, req.method, cancel);
            (run.outcome, Some(run.telemetry))
        }
    };

    // Full-model verification of the winner, over the job's provider and
    // this worker's pooled scratch arena (no per-job allocation).
    let texec_cycles = schedule_cost_with(
        &req.app,
        &req.mesh,
        &outcome.mapping,
        &req.params,
        provider.as_ref(),
        scratch,
    )
    .map_err(|e| e.to_string())?;
    let texec_ns = req.params.cycles_to_ns(texec_cycles);
    let dynamic =
        cdcg_dynamic_energy_cached(&req.app, provider.as_ref(), &outcome.mapping, &req.tech);
    let static_energy = noc_static_energy(&req.mesh, &req.tech, texec_ns);
    let cwm_dynamic = cwg_dynamic_energy_cached(
        explorer.cwg(),
        provider.as_ref(),
        &outcome.mapping,
        &req.tech,
    );

    let criticality = req
        .criticality
        .then(|| explorer.link_criticality(&outcome.mapping));
    let remap = req.fault_scenario.map(|scenario| {
        explorer.remap_after_faults(&outcome.mapping, scenario, req.fault_evals, req.seed)
    });

    Ok(SolveResult {
        telemetry,
        breakdown: EnergyBreakdown {
            dynamic,
            static_energy,
        },
        texec_ns,
        texec_cycles,
        cwm_dynamic,
        routing: provider.routing_name().to_owned(),
        route_tier,
        registry_hit,
        criticality,
        remap,
        outcome,
    })
}

fn execute_evaluate(req: &EvaluateRequest) -> Result<EvaluateResult, String> {
    if req.mapping.core_count() != req.app.core_count() {
        return Err(format!(
            "mapping covers {} cores but the application has {}",
            req.mapping.core_count(),
            req.app.core_count()
        ));
    }
    req.app.validate().map_err(|e| e.to_string())?;
    let routing = req.routing.algorithm();
    let eval = evaluate_cdcm_with(
        &req.app,
        &req.mesh,
        &req.mapping,
        &req.tech,
        &req.params,
        routing,
    )
    .map_err(|e| e.to_string())?;
    let gantt = if req.gantt {
        let sched = noc_sim::schedule_with(&req.app, &req.mesh, &req.mapping, &req.params, routing)
            .map_err(|e| e.to_string())?;
        Some(GanttChart::from_schedule(&sched, &req.app).render(100))
    } else {
        None
    };
    Ok(EvaluateResult {
        mapping: req.mapping.clone(),
        routing: routing.name().to_owned(),
        texec_ns: eval.texec_ns,
        breakdown: eval.breakdown,
        contention_events: eval.schedule.contention_events().len(),
        contention_cycles: eval.schedule.total_contention_cycles(),
        gantt,
    })
}
