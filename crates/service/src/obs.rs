//! The service's metric catalogue: every counter, gauge and histogram a
//! [`MappingService`](crate::MappingService) maintains, with its handle
//! cached so hot paths never re-look-up by name.
//!
//! | Metric | Type | Meaning |
//! |---|---|---|
//! | `noc_jobs_submitted_total{class}` | counter | Jobs submitted per priority class |
//! | `noc_jobs_completed_total` | counter | Jobs finished successfully |
//! | `noc_jobs_failed_total` | counter | Jobs failed |
//! | `noc_jobs_cancelled_total` | counter | Jobs cancelled (pending or running) |
//! | `noc_queue_depth{class}` | gauge | Jobs waiting per priority class |
//! | `noc_workers_busy` | gauge | Workers currently executing a job |
//! | `noc_job_sojourn_us{class}` | histogram | Submit→terminal latency per class |
//! | `noc_registry_hits_total` / `noc_registry_misses_total` | counter | Shared route-provider registry outcomes |
//! | `noc_subscriber_dropped_events_total` | counter | Events lost to subscriber backpressure |
//! | `noc_trace_events_total` | counter | Trace events recorded by the flight recorder |
//! | `noc_search_evaluations_total` | counter | Evaluations billed by completed jobs |
//! | `noc_schedule_runs_total` / `noc_schedule_events_total` | counter | Pooled scratch-arena engine work |
//! | `noc_delta_*_total` | counter | Incremental delta-evaluator counters |
//! | `noc_batch_batches_total` / `noc_batch_candidates_total` | counter | Batch-engine flushes and candidates evaluated |
//! | `noc_batch_size` | histogram | Candidates per batch |
//! | `noc_walk_memo_{hits,misses,evictions}_total` | counter | Walk-memo route-dedup outcomes |
//! | `noc_batch_dedup_ratio_permille` | gauge | Route-dedup ratio of the last published batch work |

use crate::job::Priority;
use noc_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use std::sync::Arc;

/// Cached handles onto every service metric (see module docs for the
/// catalogue). One per service instance — separate services never
/// cross-count.
pub(crate) struct ServiceMetrics {
    pub registry: Arc<MetricsRegistry>,
    pub submitted: [Arc<Counter>; Priority::COUNT],
    pub queue_depth: [Arc<Gauge>; Priority::COUNT],
    pub sojourn: [Arc<Histogram>; Priority::COUNT],
    pub completed: Arc<Counter>,
    pub failed: Arc<Counter>,
    pub cancelled: Arc<Counter>,
    pub workers_busy: Arc<Gauge>,
    pub registry_hits: Arc<Counter>,
    pub registry_misses: Arc<Counter>,
    pub dropped_events: Arc<Counter>,
    pub trace_events: Arc<Counter>,
    pub search_evaluations: Arc<Counter>,
}

const CLASSES: [Priority; Priority::COUNT] = [Priority::High, Priority::Normal, Priority::Low];

impl ServiceMetrics {
    pub(crate) fn new() -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        registry.describe("noc_jobs_submitted_total", "Jobs submitted, by class.");
        registry.describe("noc_jobs_completed_total", "Jobs finished successfully.");
        registry.describe("noc_jobs_failed_total", "Jobs failed.");
        registry.describe("noc_jobs_cancelled_total", "Jobs cancelled.");
        registry.describe("noc_queue_depth", "Jobs waiting, by class.");
        registry.describe("noc_workers_busy", "Workers currently executing a job.");
        registry.describe(
            "noc_job_sojourn_us",
            "Submit-to-terminal latency in microseconds, by class.",
        );
        registry.describe("noc_registry_hits_total", "Route-provider registry hits.");
        registry.describe(
            "noc_registry_misses_total",
            "Route-provider registry misses (providers built).",
        );
        registry.describe(
            "noc_subscriber_dropped_events_total",
            "Service events discarded because a subscriber lagged.",
        );
        registry.describe(
            "noc_trace_events_total",
            "Trace events captured by the flight recorder.",
        );
        registry.describe(
            "noc_search_evaluations_total",
            "Search evaluations billed by completed jobs.",
        );
        noc_sim::obs::describe_engine_metrics(&registry);

        let labelled = |base: &str, p: Priority| format!("{base}{{class=\"{}\"}}", p.name());
        Self {
            submitted: CLASSES.map(|p| registry.counter(&labelled("noc_jobs_submitted_total", p))),
            queue_depth: CLASSES.map(|p| registry.gauge(&labelled("noc_queue_depth", p))),
            sojourn: CLASSES.map(|p| registry.histogram(&labelled("noc_job_sojourn_us", p))),
            completed: registry.counter("noc_jobs_completed_total"),
            failed: registry.counter("noc_jobs_failed_total"),
            cancelled: registry.counter("noc_jobs_cancelled_total"),
            workers_busy: registry.gauge("noc_workers_busy"),
            registry_hits: registry.counter("noc_registry_hits_total"),
            registry_misses: registry.counter("noc_registry_misses_total"),
            dropped_events: registry.counter("noc_subscriber_dropped_events_total"),
            trace_events: registry.counter("noc_trace_events_total"),
            search_evaluations: registry.counter("noc_search_evaluations_total"),
            registry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_creates_every_metric_up_front() {
        let metrics = ServiceMetrics::new();
        metrics.submitted[Priority::High.class()].inc(1);
        metrics.queue_depth[Priority::Low.class()].set(4);
        metrics.sojourn[Priority::Normal.class()].observe(100);
        let text = metrics.registry.exposition();
        for name in [
            "noc_jobs_submitted_total{class=\"high\"} 1",
            "noc_queue_depth{class=\"low\"} 4",
            "noc_job_sojourn_us_count{class=\"normal\"} 1",
            "noc_jobs_completed_total 0",
            "noc_workers_busy 0",
            "noc_subscriber_dropped_events_total 0",
        ] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }
}
