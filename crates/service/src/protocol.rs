//! Line-oriented JSON protocol of the service.
//!
//! One request per line, one response per line. The same dispatch
//! function backs both the Unix-socket server (`noc-cli serve`) and
//! in-process tests, so the wire behaviour is testable without a
//! socket.
//!
//! # Requests
//!
//! ```json
//! {"op": "submit", "priority": "normal", "job": {"kind": "solve", ...}}
//! {"op": "status", "job": 0}
//! {"op": "wait", "job": 0}
//! {"op": "cancel", "job": 0}
//! {"op": "stats"}
//! {"op": "metrics"}
//! {"op": "trace", "job": 0}
//! {"op": "watch"}
//! {"op": "shutdown"}
//! ```
//!
//! `metrics` returns the service's metric registry (`"exposition"` as
//! Prometheus-style text, `"metrics"` as a parsed JSON snapshot).
//! `trace` returns the flight recorder's tape for a job: the bounded
//! window of its structured trace events (rounds, best-so-far
//! improvements, SA accept/reject epochs) plus how many older events
//! the ring dropped. `watch` upgrades the connection to a stream: after
//! the `{"ok":true}` ack, every [`ServiceEvent`](crate::ServiceEvent)
//! is forwarded as one JSON line until the client disconnects or the
//! service shuts down — live telemetry with no polling.
//!
//! A solve job carries the application either as parsed CDCG JSON
//! (`"app"`) or as the text format (`"app_text"`), plus `"mesh"`,
//! `"method"` (a serialized [`SearchMethod`]) and optional `"strategy"`,
//! `"tech"`, `"params"`, `"routing"` (name), `"faults"` (array of
//! `[from, to]` directed-channel tile pairs), `"route_cache"`, `"pins"`, `"sa_config"`,
//! `"criticality"`, `"seed"`. An evaluate job carries `"app"`/
//! `"app_text"`, `"mesh"`, `"mapping"` (array of tile indices) and
//! optional `"tech"`, `"params"`, `"routing"`, `"gantt"`. The
//! fault-injection experiment (`fault_scenario`) is a programmatic-API
//! feature and is not exposed on the wire.
//!
//! # Responses
//!
//! Every response is an object with `"ok"`. Terminal job states carry
//! the result payload under `"result"` (the [`SolveResult`] /
//! [`EvaluateResult`] serialization) and a `"kind"` discriminator.
//!
//! [`SolveResult`]: crate::job::SolveResult
//! [`EvaluateResult`]: crate::job::EvaluateResult

use crate::job::{
    CacheTier, EvaluateRequest, JobId, JobRequest, JobResult, JobState, Priority, SolveRequest,
};
use crate::service::ServiceHandle;
use noc_energy::Technology;
use noc_model::{Cdcg, FaultSet, Link, Mapping, Mesh, RoutingKind, TileId};
use noc_sim::SimParams;
use serde::{Deserialize, Serialize, Value};

// ---------------------------------------------------------------------------
// Encoding (client side)
// ---------------------------------------------------------------------------

/// Encodes a submit request as one protocol line.
pub fn encode_submit(request: &JobRequest, priority: Priority) -> String {
    let job = match request {
        JobRequest::Solve(req) => solve_to_value(req),
        JobRequest::Evaluate(req) => evaluate_to_value(req),
    };
    let envelope = Value::Map(vec![
        ("op".to_owned(), Value::Str("submit".to_owned())),
        (
            "priority".to_owned(),
            Value::Str(priority.name().to_owned()),
        ),
        ("job".to_owned(), job),
    ]);
    serde_json::to_string(&envelope).expect("value serializes")
}

/// Encodes a job-less or job-addressed op (`status`, `wait`, `cancel`,
/// `stats`, `shutdown`) as one protocol line.
pub fn encode_op(op: &str, job: Option<JobId>) -> String {
    let mut fields = vec![("op".to_owned(), Value::Str(op.to_owned()))];
    if let Some(job) = job {
        fields.push(("job".to_owned(), Value::UInt(job.0)));
    }
    serde_json::to_string(&Value::Map(fields)).expect("value serializes")
}

fn fault_pairs(faults: &FaultSet) -> Value {
    // Every dead channel is an inter-router link (FaultSet::kill asserts
    // it), and dead_links() iterates in sorted order — the wire form is
    // canonical by construction.
    let pairs: Vec<Value> = faults
        .dead_links()
        .map(|link| match link {
            Link::Internal { from, to } => Value::Seq(vec![
                Value::UInt(from.index() as u64),
                Value::UInt(to.index() as u64),
            ]),
            other => unreachable!("fault sets hold inter-router links only, got {other}"),
        })
        .collect();
    Value::Seq(pairs)
}

fn solve_to_value(req: &SolveRequest) -> Value {
    Value::Map(vec![
        ("kind".to_owned(), Value::Str("solve".to_owned())),
        ("app".to_owned(), req.app.to_value()),
        ("mesh".to_owned(), req.mesh.to_value()),
        (
            "strategy".to_owned(),
            Value::Str(strategy_name(req.strategy).to_owned()),
        ),
        ("method".to_owned(), req.method.to_value()),
        ("tech".to_owned(), req.tech.to_value()),
        ("params".to_owned(), req.params.to_value()),
        (
            "routing".to_owned(),
            Value::Str(req.routing.name().to_ascii_lowercase()),
        ),
        ("faults".to_owned(), fault_pairs(&req.faults)),
        (
            "route_cache".to_owned(),
            Value::Str(cache_tier_name(req.route_cache).to_owned()),
        ),
        ("pins".to_owned(), req.pins.to_value()),
        ("sa_config".to_owned(), req.sa_config.to_value()),
        ("criticality".to_owned(), Value::Bool(req.criticality)),
        ("fault_evals".to_owned(), Value::UInt(req.fault_evals)),
        ("seed".to_owned(), Value::UInt(req.seed)),
    ])
}

fn evaluate_to_value(req: &EvaluateRequest) -> Value {
    let tiles: Vec<Value> = req
        .mapping
        .assignments()
        .map(|(_, tile)| Value::UInt(tile.index() as u64))
        .collect();
    Value::Map(vec![
        ("kind".to_owned(), Value::Str("evaluate".to_owned())),
        ("app".to_owned(), req.app.to_value()),
        ("mesh".to_owned(), req.mesh.to_value()),
        ("mapping".to_owned(), Value::Seq(tiles)),
        ("tech".to_owned(), req.tech.to_value()),
        ("params".to_owned(), req.params.to_value()),
        (
            "routing".to_owned(),
            Value::Str(req.routing.name().to_ascii_lowercase()),
        ),
        ("gantt".to_owned(), Value::Bool(req.gantt)),
    ])
}

fn strategy_name(strategy: noc_mapping::Strategy) -> &'static str {
    match strategy {
        noc_mapping::Strategy::Cwm => "cwm",
        noc_mapping::Strategy::Cdcm => "cdcm",
    }
}

fn cache_tier_name(tier: CacheTier) -> &'static str {
    match tier {
        CacheTier::Auto => "auto",
        CacheTier::Dense => "dense",
        CacheTier::OnDemand => "on-demand",
        CacheTier::Implicit => "implicit",
    }
}

// ---------------------------------------------------------------------------
// Decoding (server side)
// ---------------------------------------------------------------------------

fn de<T: for<'de> Deserialize<'de>>(value: &Value, what: &str) -> Result<T, String> {
    T::from_value(value).map_err(|e| format!("bad `{what}`: {e}"))
}

fn opt_field<T: for<'de> Deserialize<'de>>(
    value: &Value,
    name: &str,
    default: T,
) -> Result<T, String> {
    match value.get_field(name) {
        None | Some(Value::Null) => Ok(default),
        Some(v) => de(v, name),
    }
}

fn parse_app(value: &Value) -> Result<Cdcg, String> {
    if let Some(app) = value.get_field("app") {
        if !matches!(app, Value::Null) {
            return de(app, "app");
        }
    }
    match value.get_field("app_text") {
        Some(Value::Str(text)) => noc_apps::parse_cdcg(text).map_err(|e| e.to_string()),
        _ => Err("a job needs `app` (CDCG JSON) or `app_text` (CDCG text)".to_owned()),
    }
}

fn parse_strategy(value: &Value) -> Result<noc_mapping::Strategy, String> {
    match value.get_field("strategy") {
        None | Some(Value::Null) => Ok(noc_mapping::Strategy::Cdcm),
        Some(Value::Str(s)) => match s.to_ascii_lowercase().as_str() {
            "cwm" => Ok(noc_mapping::Strategy::Cwm),
            "cdcm" => Ok(noc_mapping::Strategy::Cdcm),
            other => Err(format!("unknown strategy `{other}` (cwm|cdcm)")),
        },
        Some(v) => de(v, "strategy"),
    }
}

fn parse_tech(value: &Value) -> Result<Technology, String> {
    match value.get_field("tech") {
        None | Some(Value::Null) => Ok(Technology::t007()),
        Some(Value::Str(s)) => match s.trim_end_matches("um") {
            "paper" => Ok(Technology::paper_example()),
            "0.35" => Ok(Technology::t035()),
            "0.07" => Ok(Technology::t007()),
            other => Err(format!("unknown technology `{other}` (paper|0.35|0.07)")),
        },
        Some(v) => de(v, "tech"),
    }
}

fn parse_routing(value: &Value) -> Result<RoutingKind, String> {
    match value.get_field("routing") {
        None | Some(Value::Null) => Ok(RoutingKind::Xy),
        Some(Value::Str(s)) => RoutingKind::from_name(s)
            .ok_or_else(|| format!("unknown routing `{s}` (xy|yx|torus-xy|xyz|torus-xyz)")),
        Some(v) => Err(format!("bad `routing`: expected string, got {v:?}")),
    }
}

fn parse_faults(value: &Value) -> Result<FaultSet, String> {
    let mut faults = FaultSet::new();
    let Some(raw) = value.get_field("faults") else {
        return Ok(faults);
    };
    if matches!(raw, Value::Null) {
        return Ok(faults);
    }
    let pairs: Vec<(u64, u64)> = de(raw, "faults")?;
    for (a, b) in pairs {
        // Each entry kills one directed channel; a client wanting a full
        // physical link failure lists both directions (which is exactly
        // what encode_submit emits).
        faults.kill(Link::between(
            TileId::new(a as usize),
            TileId::new(b as usize),
        ));
    }
    Ok(faults)
}

fn parse_cache_tier(value: &Value) -> Result<CacheTier, String> {
    match value.get_field("route_cache") {
        None | Some(Value::Null) => Ok(CacheTier::Auto),
        Some(Value::Str(s)) => match s.as_str() {
            "auto" => Ok(CacheTier::Auto),
            "dense" => Ok(CacheTier::Dense),
            "on-demand" | "ondemand" | "lazy" => Ok(CacheTier::OnDemand),
            "implicit" => Ok(CacheTier::Implicit),
            other => Err(format!(
                "unknown route cache `{other}` (auto|dense|on-demand|implicit)"
            )),
        },
        Some(v) => de(v, "route_cache"),
    }
}

fn parse_solve(value: &Value) -> Result<SolveRequest, String> {
    let app = parse_app(value)?;
    let mesh: Mesh = de(
        value.get_field("mesh").ok_or("a solve job needs `mesh`")?,
        "mesh",
    )?;
    let method = de(
        value
            .get_field("method")
            .ok_or("a solve job needs `method`")?,
        "method",
    )?;
    let mut req = SolveRequest::new(app, mesh, method);
    req.strategy = parse_strategy(value)?;
    req.tech = parse_tech(value)?;
    req.routing = parse_routing(value)?;
    req.faults = parse_faults(value)?;
    req.route_cache = parse_cache_tier(value)?;
    req.params = opt_field(value, "params", req.params)?;
    req.pins = opt_field(value, "pins", None)?;
    req.sa_config = opt_field(value, "sa_config", req.sa_config)?;
    req.criticality = opt_field(value, "criticality", false)?;
    req.fault_evals = opt_field(value, "fault_evals", req.fault_evals)?;
    req.seed = opt_field(value, "seed", req.seed)?;
    Ok(req)
}

fn parse_evaluate(value: &Value) -> Result<EvaluateRequest, String> {
    let app = parse_app(value)?;
    let mesh: Mesh = de(
        value
            .get_field("mesh")
            .ok_or("an evaluate job needs `mesh`")?,
        "mesh",
    )?;
    let tiles: Vec<u64> = de(
        value
            .get_field("mapping")
            .ok_or("an evaluate job needs `mapping` (tile indices)")?,
        "mapping",
    )?;
    let mapping = Mapping::from_tiles(&mesh, tiles.iter().map(|&t| TileId::new(t as usize)))
        .map_err(|e| e.to_string())?;
    Ok(EvaluateRequest {
        app,
        mesh,
        mapping,
        tech: parse_tech(value)?,
        params: opt_field(value, "params", SimParams::new())?,
        routing: parse_routing(value)?,
        gantt: opt_field(value, "gantt", false)?,
    })
}

/// Decodes a submit payload (the `"job"` object) into a [`JobRequest`].
pub fn parse_job(value: &Value) -> Result<JobRequest, String> {
    match value.get_field("kind") {
        Some(Value::Str(kind)) => match kind.as_str() {
            "solve" => Ok(JobRequest::Solve(Box::new(parse_solve(value)?))),
            "evaluate" => Ok(JobRequest::Evaluate(Box::new(parse_evaluate(value)?))),
            other => Err(format!("unknown job kind `{other}` (solve|evaluate)")),
        },
        _ => Err("a job needs `kind` (solve|evaluate)".to_owned()),
    }
}

fn parse_priority(value: &Value) -> Result<Priority, String> {
    match value.get_field("priority") {
        None | Some(Value::Null) => Ok(Priority::Normal),
        Some(Value::Str(s)) => match s.as_str() {
            "high" => Ok(Priority::High),
            "normal" => Ok(Priority::Normal),
            "low" => Ok(Priority::Low),
            other => Err(format!("unknown priority `{other}` (high|normal|low)")),
        },
        Some(v) => Err(format!("bad `priority`: expected string, got {v:?}")),
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

fn error_line(msg: &str) -> String {
    let v = Value::Map(vec![
        ("ok".to_owned(), Value::Bool(false)),
        ("error".to_owned(), Value::Str(msg.to_owned())),
    ]);
    serde_json::to_string(&v).expect("value serializes")
}

fn ok_line(mut fields: Vec<(String, Value)>) -> String {
    fields.insert(0, ("ok".to_owned(), Value::Bool(true)));
    serde_json::to_string(&Value::Map(fields)).expect("value serializes")
}

fn result_fields(result: &JobResult, fields: &mut Vec<(String, Value)>) {
    let (kind, payload) = match result {
        JobResult::Solve(r) => ("solve", r.to_value()),
        JobResult::Evaluate(r) => ("evaluate", r.to_value()),
    };
    fields.push(("kind".to_owned(), Value::Str(kind.to_owned())));
    fields.push(("result".to_owned(), payload));
}

fn state_fields(job: JobId, state: &JobState) -> Vec<(String, Value)> {
    let mut fields = vec![
        ("job".to_owned(), Value::UInt(job.0)),
        ("state".to_owned(), Value::Str(state.name().to_owned())),
    ];
    match state {
        JobState::Done(result) | JobState::Cancelled(Some(result)) => {
            result_fields(result, &mut fields);
        }
        JobState::Failed(error) => {
            fields.push(("error".to_owned(), Value::Str(error.clone())));
        }
        _ => {}
    }
    fields
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// Outcome of one protocol line: the response to write back, and whether
/// the server should stop accepting connections afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// One JSON line (no trailing newline).
    pub line: String,
    /// True after a `shutdown` op.
    pub shutdown: bool,
    /// True after a `watch` op: the server should follow the reply with
    /// a live event stream on the same connection.
    pub stream: bool,
}

impl Reply {
    fn respond(line: String) -> Self {
        Self {
            line,
            shutdown: false,
            stream: false,
        }
    }
}

/// Parses and executes one request line against the service. Never
/// panics on malformed input — bad requests produce `{"ok": false}`
/// replies.
pub fn handle_line(handle: &ServiceHandle, line: &str) -> Reply {
    let value = match serde_json::parse(line) {
        Ok(v) => v,
        Err(e) => return Reply::respond(error_line(&format!("bad request: {e}"))),
    };
    let op = match value.get_field("op") {
        Some(Value::Str(op)) => op.clone(),
        _ => return Reply::respond(error_line("request needs `op`")),
    };
    let job_id = || -> Result<JobId, String> {
        match value.get_field("job") {
            Some(v) => de::<u64>(v, "job").map(JobId),
            None => Err(format!("`{op}` needs `job`")),
        }
    };
    match op.as_str() {
        "submit" => {
            let priority = match parse_priority(&value) {
                Ok(p) => p,
                Err(e) => return Reply::respond(error_line(&e)),
            };
            let request = match value.get_field("job") {
                Some(spec) => match parse_job(spec) {
                    Ok(r) => r,
                    Err(e) => return Reply::respond(error_line(&e)),
                },
                None => return Reply::respond(error_line("`submit` needs `job`")),
            };
            let id = handle.submit(request, priority);
            Reply::respond(ok_line(vec![
                ("job".to_owned(), Value::UInt(id.0)),
                ("state".to_owned(), Value::Str("pending".to_owned())),
            ]))
        }
        "status" | "wait" => {
            let id = match job_id() {
                Ok(id) => id,
                Err(e) => return Reply::respond(error_line(&e)),
            };
            let state = if op == "wait" {
                handle.wait(id)
            } else {
                handle.status(id)
            };
            match state {
                Some(state) => Reply::respond(ok_line(state_fields(id, &state))),
                None => Reply::respond(error_line(&format!("unknown job {}", id.0))),
            }
        }
        "cancel" => {
            let id = match job_id() {
                Ok(id) => id,
                Err(e) => return Reply::respond(error_line(&e)),
            };
            let cancelled = handle.cancel(id);
            Reply::respond(ok_line(vec![
                ("job".to_owned(), Value::UInt(id.0)),
                ("cancelled".to_owned(), Value::Bool(cancelled)),
            ]))
        }
        "stats" => Reply::respond(ok_line(vec![(
            "stats".to_owned(),
            handle.stats().to_value(),
        )])),
        "metrics" => {
            // The snapshot is noc-obs's own JSON; re-parse it into a
            // Value so it embeds as structure, not as an escaped string.
            let snapshot = serde_json::parse(&handle.metrics_json())
                .unwrap_or_else(|_| Value::Map(Vec::new()));
            Reply::respond(ok_line(vec![
                (
                    "exposition".to_owned(),
                    Value::Str(handle.metrics_exposition()),
                ),
                ("metrics".to_owned(), snapshot),
            ]))
        }
        "trace" => {
            let id = match job_id() {
                Ok(id) => id,
                Err(e) => return Reply::respond(error_line(&e)),
            };
            if handle.status(id).is_none() {
                return Reply::respond(error_line(&format!("unknown job {}", id.0)));
            }
            // A known job with no tape (observability off, or evicted)
            // answers with an empty window rather than an error.
            let tape = handle.flight_snapshot(id).unwrap_or_default();
            let events: Vec<Value> = tape
                .events
                .iter()
                .filter_map(|e| serde_json::parse(&e.to_json_line(id.0)).ok())
                .collect();
            Reply::respond(ok_line(vec![
                ("job".to_owned(), Value::UInt(id.0)),
                ("dropped".to_owned(), Value::UInt(tape.dropped)),
                ("events".to_owned(), Value::Seq(events)),
            ]))
        }
        "watch" => Reply {
            line: ok_line(vec![("watch".to_owned(), Value::Bool(true))]),
            shutdown: false,
            stream: true,
        },
        "shutdown" => Reply {
            line: ok_line(vec![]),
            shutdown: true,
            stream: false,
        },
        other => Reply::respond(error_line(&format!("unknown op `{other}`"))),
    }
}

// ---------------------------------------------------------------------------
// Unix-socket server and client
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod unix {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    /// Serves the protocol on a Unix socket until a client sends
    /// `shutdown`. Binds fresh (removing a stale socket file first),
    /// accepts any number of concurrent clients, removes the socket file
    /// on exit.
    pub fn serve_unix(handle: ServiceHandle, path: &Path) -> std::io::Result<()> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        let stop = Arc::new(AtomicBool::new(false));
        let mut connections = Vec::new();
        for stream in listener.incoming() {
            if stop.load(Ordering::Acquire) {
                break;
            }
            let stream = stream?;
            let handle = handle.clone();
            let stop = Arc::clone(&stop);
            let path: PathBuf = path.to_owned();
            connections.push(std::thread::spawn(move || {
                serve_connection(&handle, stream, &stop, &path);
            }));
        }
        for connection in connections {
            let _ = connection.join();
        }
        let _ = std::fs::remove_file(path);
        Ok(())
    }

    fn serve_connection(
        handle: &ServiceHandle,
        stream: UnixStream,
        stop: &AtomicBool,
        path: &Path,
    ) {
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        };
        for line in BufReader::new(stream).lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            let reply = handle_line(handle, &line);
            if writer
                .write_all(format!("{}\n", reply.line).as_bytes())
                .is_err()
            {
                break;
            }
            let _ = writer.flush();
            if reply.stream {
                stream_events(handle, &mut writer, stop);
                return;
            }
            if reply.shutdown {
                stop.store(true, Ordering::Release);
                // Wake the accept loop with a throwaway connection.
                let _ = UnixStream::connect(path);
                return;
            }
        }
    }

    /// The `watch` tail: forwards every service event as one JSON line
    /// until the client hangs up or the service closes the stream. The
    /// subscription is bounded (drop-oldest), so a slow client throttles
    /// only its own view, never the service.
    /// When the service is idle the loop must still notice a vanished
    /// client (and a server shutdown), so it waits in short slices and
    /// probes the socket with a blank heartbeat line between events —
    /// clients skip empty lines.
    fn stream_events(handle: &ServiceHandle, writer: &mut UnixStream, stop: &AtomicBool) {
        use std::sync::mpsc::RecvTimeoutError;
        let events = handle.subscribe();
        loop {
            match events.recv_timeout(std::time::Duration::from_millis(200)) {
                Ok(event) => {
                    let Ok(line) = serde_json::to_string(&event) else {
                        continue;
                    };
                    if writer.write_all(format!("{line}\n").as_bytes()).is_err() {
                        return; // client gone
                    }
                    let _ = writer.flush();
                }
                Err(RecvTimeoutError::Timeout) => {
                    if stop.load(Ordering::Acquire) {
                        return; // server shutting down
                    }
                    if writer.write_all(b"\n").is_err() || writer.flush().is_err() {
                        return; // client gone between events
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    }

    /// Sends one request line to a serving socket and returns the
    /// response line.
    pub fn request_unix(path: &Path, line: &str) -> std::io::Result<String> {
        let mut stream = UnixStream::connect(path)?;
        stream.write_all(format!("{line}\n").as_bytes())?;
        stream.flush()?;
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        reader.read_line(&mut response)?;
        Ok(response.trim_end().to_owned())
    }
}

#[cfg(unix)]
pub use unix::{request_unix, serve_unix};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{MappingService, ServiceConfig};
    use noc_mapping::SearchMethod;

    fn service() -> MappingService {
        MappingService::start(ServiceConfig::new(2))
    }

    fn solve_request() -> JobRequest {
        let req = SolveRequest::new(
            noc_apps::paper_example::figure1_cdcg(),
            noc_apps::paper_example::mesh_2x2(),
            SearchMethod::Exhaustive,
        );
        JobRequest::Solve(Box::new(req))
    }

    #[test]
    fn submit_wait_round_trip_over_the_wire() {
        let service = service();
        let handle = service.handle();
        let line = encode_submit(&solve_request(), Priority::Normal);
        let reply = handle_line(&handle, &line);
        assert!(reply.line.contains("\"ok\":true"), "{}", reply.line);
        assert!(reply.line.contains("\"job\":0"), "{}", reply.line);

        let reply = handle_line(&handle, &encode_op("wait", Some(JobId(0))));
        assert!(reply.line.contains("\"state\":\"done\""), "{}", reply.line);
        assert!(reply.line.contains("\"kind\":\"solve\""), "{}", reply.line);
        assert!(reply.line.contains("\"outcome\""), "{}", reply.line);

        let reply = handle_line(&handle, &encode_op("stats", None));
        assert!(reply.line.contains("\"done\":1"), "{}", reply.line);
    }

    #[test]
    fn evaluate_jobs_cross_the_wire_too() {
        let service = service();
        let handle = service.handle();
        let req = EvaluateRequest {
            app: noc_apps::paper_example::figure1_cdcg(),
            mesh: noc_apps::paper_example::mesh_2x2(),
            mapping: noc_apps::paper_example::mapping_c(),
            tech: Technology::paper_example(),
            params: SimParams::new(),
            routing: RoutingKind::Xy,
            gantt: false,
        };
        let line = encode_submit(&JobRequest::Evaluate(Box::new(req)), Priority::High);
        let reply = handle_line(&handle, &line);
        assert!(reply.line.contains("\"ok\":true"), "{}", reply.line);
        let reply = handle_line(&handle, &encode_op("wait", Some(JobId(0))));
        assert!(reply.line.contains("\"state\":\"done\""), "{}", reply.line);
        assert!(
            reply.line.contains("\"kind\":\"evaluate\""),
            "{}",
            reply.line
        );
    }

    #[test]
    fn metrics_trace_and_watch_ops_answer() {
        let service = service();
        let handle = service.handle();
        handle_line(&handle, &encode_submit(&solve_request(), Priority::Normal));
        handle_line(&handle, &encode_op("wait", Some(JobId(0))));

        let reply = handle_line(&handle, &encode_op("metrics", None));
        assert!(reply.line.contains("\"ok\":true"), "{}", reply.line);
        assert!(
            reply.line.contains("noc_jobs_completed_total"),
            "{}",
            reply.line
        );
        assert!(reply.line.contains("\"metrics\""), "{}", reply.line);

        let reply = handle_line(&handle, &encode_op("trace", Some(JobId(0))));
        assert!(reply.line.contains("\"ok\":true"), "{}", reply.line);
        assert!(reply.line.contains("\"events\""), "{}", reply.line);
        assert!(reply.line.contains("job_start"), "{}", reply.line);

        let reply = handle_line(&handle, &encode_op("trace", Some(JobId(99))));
        assert!(reply.line.contains("\"ok\":false"), "{}", reply.line);

        let reply = handle_line(&handle, &encode_op("watch", None));
        assert!(reply.stream && !reply.shutdown, "{reply:?}");
        assert!(reply.line.contains("\"watch\":true"), "{}", reply.line);
    }

    #[test]
    fn malformed_lines_never_panic() {
        let service = service();
        let handle = service.handle();
        for bad in [
            "not json",
            "{}",
            "{\"op\": \"submit\"}",
            "{\"op\": \"nope\"}",
            "{\"op\": \"status\"}",
            "{\"op\": \"status\", \"job\": 99}",
            "{\"op\": \"submit\", \"job\": {\"kind\": \"solve\"}}",
        ] {
            let reply = handle_line(&handle, bad);
            assert!(
                reply.line.contains("\"ok\":false"),
                "{bad} -> {}",
                reply.line
            );
            assert!(!reply.shutdown);
        }
    }

    #[test]
    fn shutdown_is_signalled_to_the_server_loop() {
        let service = service();
        let reply = handle_line(&service.handle(), &encode_op("shutdown", None));
        assert!(reply.shutdown);
        assert!(reply.line.contains("\"ok\":true"));
    }

    #[test]
    fn wire_solve_spec_accepts_text_workloads_and_defaults() {
        let service = service();
        let handle = service.handle();
        // A hand-written request a human could type: text CDCG, default
        // everything, just a mesh and a method.
        let line = concat!(
            "{\"op\": \"submit\", \"job\": {\"kind\": \"solve\", ",
            "\"app_text\": \"core A\\ncore B\\npacket p0 A B comp=6 bits=15\\n\", ",
            "\"mesh\": {\"width\": 2, \"height\": 2, \"depth\": 1}, ",
            "\"method\": \"Exhaustive\"}}"
        );
        let reply = handle_line(&handle, line);
        assert!(reply.line.contains("\"ok\":true"), "{}", reply.line);
        let reply = handle_line(&handle, &encode_op("wait", Some(JobId(0))));
        assert!(reply.line.contains("\"state\":\"done\""), "{}", reply.line);
    }
}
