//! The bounded, drop-oldest event channel behind
//! [`ServiceHandle::subscribe`](crate::ServiceHandle::subscribe).
//!
//! The service's event emitter must never block on a subscriber: a
//! stalled `watch` client (or a subscriber that simply stopped reading)
//! previously let `std::sync::mpsc`'s unbounded queue grow without
//! limit. This channel caps the queue; when a subscriber falls more
//! than `capacity` events behind, the *oldest* undelivered event is
//! discarded (newest-first telemetry is what live observers want) and
//! the drop is counted — per stream, and into the service's
//! `noc_subscriber_dropped_events_total` metric.

use crate::service::ServiceEvent;
use noc_obs::Counter;
use std::collections::VecDeque;
use std::sync::mpsc::{RecvError, RecvTimeoutError, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

struct Channel {
    queue: VecDeque<ServiceEvent>,
    /// Events discarded on this stream because the subscriber lagged.
    dropped: u64,
    sender_closed: bool,
    receiver_gone: bool,
}

struct ChannelShared {
    inner: Mutex<Channel>,
    available: Condvar,
    capacity: usize,
}

/// Producer half, held by the service state. `send` never blocks.
pub(crate) struct EventSender {
    shared: Arc<ChannelShared>,
    dropped_total: Arc<Counter>,
}

impl EventSender {
    /// Enqueues `event`, discarding the oldest queued event if the
    /// subscriber is `capacity` behind. Returns false once the receiver
    /// is gone (the service prunes such senders).
    pub(crate) fn send(&self, event: ServiceEvent) -> bool {
        let mut inner = self.shared.inner.lock().expect("event channel poisoned");
        if inner.receiver_gone {
            return false;
        }
        if inner.queue.len() >= self.shared.capacity {
            inner.queue.pop_front();
            inner.dropped += 1;
            self.dropped_total.inc(1);
        }
        inner.queue.push_back(event);
        drop(inner);
        self.shared.available.notify_one();
        true
    }
}

impl Drop for EventSender {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("event channel poisoned");
        inner.sender_closed = true;
        drop(inner);
        self.shared.available.notify_all();
    }
}

/// Consumer half: what [`subscribe`](crate::ServiceHandle::subscribe)
/// returns. API mirrors `std::sync::mpsc::Receiver` (`recv`,
/// `try_recv`, `try_iter`, blocking `Iterator`), plus
/// [`EventStream::dropped`] exposing how many events this stream lost
/// to backpressure.
pub struct EventStream {
    shared: Arc<ChannelShared>,
}

impl std::fmt::Debug for EventStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventStream").finish_non_exhaustive()
    }
}

impl EventStream {
    /// Blocks for the next event; errs once the service is gone and the
    /// queue is drained.
    pub fn recv(&self) -> Result<ServiceEvent, RecvError> {
        let mut inner = self.shared.inner.lock().expect("event channel poisoned");
        loop {
            if let Some(event) = inner.queue.pop_front() {
                return Ok(event);
            }
            if inner.sender_closed {
                return Err(RecvError);
            }
            inner = self
                .shared
                .available
                .wait(inner)
                .expect("event channel poisoned");
        }
    }

    /// Blocks for the next event at most `timeout`; the protocol's
    /// `watch` loop uses this to interleave client-liveness checks with
    /// event delivery instead of parking forever on an idle service.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<ServiceEvent, RecvTimeoutError> {
        let mut inner = self.shared.inner.lock().expect("event channel poisoned");
        loop {
            if let Some(event) = inner.queue.pop_front() {
                return Ok(event);
            }
            if inner.sender_closed {
                return Err(RecvTimeoutError::Disconnected);
            }
            let (guard, wait) = self
                .shared
                .available
                .wait_timeout(inner, timeout)
                .expect("event channel poisoned");
            inner = guard;
            if wait.timed_out() && inner.queue.is_empty() {
                return Err(if inner.sender_closed {
                    RecvTimeoutError::Disconnected
                } else {
                    RecvTimeoutError::Timeout
                });
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<ServiceEvent, TryRecvError> {
        let mut inner = self.shared.inner.lock().expect("event channel poisoned");
        match inner.queue.pop_front() {
            Some(event) => Ok(event),
            None if inner.sender_closed => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Drains currently queued events without blocking.
    pub fn try_iter(&self) -> impl Iterator<Item = ServiceEvent> + '_ {
        std::iter::from_fn(|| self.try_recv().ok())
    }

    /// Blocking iterator until the service closes the stream.
    pub fn iter(&self) -> impl Iterator<Item = ServiceEvent> + '_ {
        std::iter::from_fn(|| self.recv().ok())
    }

    /// Events this stream has lost to the drop-oldest policy so far.
    pub fn dropped(&self) -> u64 {
        self.shared
            .inner
            .lock()
            .expect("event channel poisoned")
            .dropped
    }
}

impl Drop for EventStream {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("event channel poisoned");
        inner.receiver_gone = true;
        inner.queue.clear();
    }
}

impl IntoIterator for EventStream {
    type Item = ServiceEvent;
    type IntoIter = IntoIter;
    fn into_iter(self) -> IntoIter {
        IntoIter { stream: self }
    }
}

/// Owning blocking iterator over an [`EventStream`].
pub struct IntoIter {
    stream: EventStream,
}

impl Iterator for IntoIter {
    type Item = ServiceEvent;
    fn next(&mut self) -> Option<ServiceEvent> {
        self.stream.recv().ok()
    }
}

/// Creates a bounded channel; `dropped_total` is bumped on every
/// backpressure drop (shared across all subscribers of a service).
pub(crate) fn bounded(capacity: usize, dropped_total: Arc<Counter>) -> (EventSender, EventStream) {
    let shared = Arc::new(ChannelShared {
        inner: Mutex::new(Channel {
            queue: VecDeque::new(),
            dropped: 0,
            sender_closed: false,
            receiver_gone: false,
        }),
        available: Condvar::new(),
        capacity: capacity.max(1),
    });
    (
        EventSender {
            shared: Arc::clone(&shared),
            dropped_total,
        },
        EventStream { shared },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;

    fn event(id: u64) -> ServiceEvent {
        ServiceEvent::Started { job: JobId(id) }
    }

    #[test]
    fn drop_oldest_when_capacity_exceeded() {
        let counter = Arc::new(Counter::default());
        let (tx, rx) = bounded(2, Arc::clone(&counter));
        assert!(tx.send(event(0)));
        assert!(tx.send(event(1)));
        assert!(tx.send(event(2))); // evicts event 0
        assert_eq!(rx.dropped(), 1);
        assert_eq!(counter.get(), 1);
        let got: Vec<u64> = rx.try_iter().map(|e| e.job().0).collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn recv_ends_when_sender_drops() {
        let (tx, rx) = bounded(4, Arc::new(Counter::default()));
        tx.send(event(7));
        drop(tx);
        assert_eq!(rx.recv().unwrap().job().0, 7);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded(4, Arc::new(Counter::default()));
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        ));
        tx.send(event(3));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)).unwrap().job().0,
            3
        );
        drop(tx);
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        ));
    }

    #[test]
    fn send_reports_a_gone_receiver() {
        let (tx, rx) = bounded(4, Arc::new(Counter::default()));
        drop(rx);
        assert!(!tx.send(event(0)));
    }
}
