//! The exploration service: a job queue, a fixed worker pool and the
//! shared provider registry, behind a cloneable [`ServiceHandle`].
//!
//! # Determinism
//!
//! Every job's result is a pure function of its request: searches are
//! seeded, the shared registry only ever hands out providers that route
//! identically to freshly built ones, and workers never exchange state
//! mid-job. Consequently the *results* (and their telemetry) are
//! bit-identical whether the service runs one worker or sixteen, and
//! regardless of which worker picks which job — the same reduction
//! guarantee the search crate gives for its own parallel engines.
//!
//! What is **not** deterministic across worker counts is wall-clock
//! interleaving: the order in which [`ServiceEvent`]s of *different*
//! jobs arrive may vary. Per-job event order (`Submitted` → `Started` →
//! terminal) is always preserved.
//!
//! # Scheduling
//!
//! Three priority classes, each a FIFO. A worker always dequeues from
//! the highest non-empty class; within a class, submission order wins.

use crate::events::{bounded, EventSender, EventStream};
use crate::job::{JobId, JobRequest, JobResult, JobState, Priority};
use crate::obs::ServiceMetrics;
use crate::registry::{ProviderRegistry, RegistryStats};
use crate::worker;
use noc_obs::{FlightRecorder, MetricsRegistry, Stamp, Tape, TraceEvent, TraceSink};
use noc_search::{CancelToken, SearchTelemetry};
use noc_sim::ScheduleScratch;
use serde::Serialize;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Events each flight-recorder tape retains per job (oldest dropped
/// first, with a visible drop count).
const FLIGHT_EVENTS_PER_JOB: usize = 256;
/// Jobs the flight recorder retains tapes for (oldest job evicted).
const FLIGHT_MAX_JOBS: usize = 64;

/// Configuration of a service instance.
///
/// The worker count is explicit by design: the service never consults
/// the machine (`available_parallelism` and friends) so that a config is
/// reproducible wherever it runs.
#[derive(Clone)]
pub struct ServiceConfig {
    /// Number of worker threads (clamped to at least 1).
    pub workers: usize,
    /// Install a per-job trace context around execution (flight
    /// recorder, `Progress` events, delta metrics). Metrics counting is
    /// always on; this only controls tracing. Defaults to true — the
    /// determinism suite proves on ≡ off bit-identically, so there is
    /// no correctness reason to disable it.
    pub observe: bool,
    /// Per-subscriber event-queue bound; a subscriber that falls
    /// further behind loses the oldest events (counted in
    /// `noc_subscriber_dropped_events_total`).
    pub event_capacity: usize,
    /// Additional sink receiving every trace event (e.g. a
    /// [`JsonLinesSink`](noc_obs::JsonLinesSink) writing a trace file).
    /// The flight recorder records regardless.
    pub trace_sink: Option<Arc<dyn TraceSink>>,
}

impl std::fmt::Debug for ServiceConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceConfig")
            .field("workers", &self.workers)
            .field("observe", &self.observe)
            .field("event_capacity", &self.event_capacity)
            .field("trace_sink", &self.trace_sink.as_ref().map(|_| ".."))
            .finish()
    }
}

impl ServiceConfig {
    /// A config with the given worker count (observability on, event
    /// queues bounded at 1024, no extra trace sink).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            observe: true,
            event_capacity: 1024,
            trace_sink: None,
        }
    }

    /// Disables the per-job trace context (flight recorder and
    /// `Progress` events stay empty; results are identical either way).
    pub fn without_observability(mut self) -> Self {
        self.observe = false;
        self
    }

    /// Adds a sink that receives every trace event.
    pub fn with_trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace_sink = Some(sink);
        self
    }

    /// Overrides the per-subscriber event-queue bound.
    pub fn with_event_capacity(mut self, capacity: usize) -> Self {
        self.event_capacity = capacity.max(1);
        self
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self::new(2)
    }
}

/// What subscribers see as jobs move through the service. Cross-job
/// interleaving depends on worker timing; per-job order does not.
#[derive(Debug, Clone, Serialize)]
pub enum ServiceEvent {
    /// A job entered the queue.
    Submitted {
        /// The job.
        job: JobId,
        /// Work kind ("solve" / "evaluate").
        kind: &'static str,
        /// Scheduling class name.
        priority: &'static str,
    },
    /// A worker started executing the job.
    Started {
        /// The job.
        job: JobId,
    },
    /// The job finished successfully.
    Completed {
        /// The job.
        job: JobId,
        /// Objective value of the result (solve: search cost in pJ;
        /// evaluate: total energy in pJ).
        cost_pj: f64,
        /// Evaluations billed (0 for evaluate jobs).
        evaluations: u64,
        /// Best-so-far telemetry snapshot, when the job produced one.
        telemetry: Option<SearchTelemetry>,
    },
    /// The job was cancelled. `partial` is true when a running job
    /// stopped at a checkpoint and still returned its verified best.
    Cancelled {
        /// The job.
        job: JobId,
        /// True if a partial result is available.
        partial: bool,
    },
    /// The job failed.
    Failed {
        /// The job.
        job: JobId,
        /// Human-readable error.
        error: String,
    },
    /// A running job reported search progress (a scheduling round or a
    /// best-so-far improvement). Emitted only while the service observes
    /// (see [`ServiceConfig::observe`]); purely informational.
    Progress {
        /// The job.
        job: JobId,
        /// Search round index, when the checkpoint was round-scoped.
        round: Option<u64>,
        /// Evaluations spent so far.
        evaluations: u64,
        /// Best cost known so far.
        best_cost: f64,
    },
}

impl ServiceEvent {
    /// The job this event concerns.
    pub fn job(&self) -> JobId {
        match self {
            Self::Submitted { job, .. }
            | Self::Started { job }
            | Self::Completed { job, .. }
            | Self::Cancelled { job, .. }
            | Self::Failed { job, .. }
            | Self::Progress { job, .. } => *job,
        }
    }
}

/// Aggregate counters of a service instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ServiceStats {
    /// Jobs ever submitted.
    pub submitted: u64,
    /// Jobs waiting in a queue.
    pub pending: u64,
    /// Jobs currently on a worker.
    pub running: u64,
    /// Jobs finished successfully.
    pub done: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Jobs cancelled (with or without a partial result).
    pub cancelled: u64,
    /// Registry hits across all lookups.
    pub registry_hits: u64,
    /// Registry misses (providers built).
    pub registry_misses: u64,
    /// Distinct providers cached.
    pub registry_entries: u64,
    /// Full cost evaluations served by the pooled worker scratches.
    pub scratch_runs: u64,
    /// Scheduler events processed by the pooled worker scratches.
    pub scratch_events: u64,
}

struct JobSlot {
    /// Taken by the worker at dispatch (or dropped on pending-cancel).
    request: Option<JobRequest>,
    state: JobState,
    cancel: CancelToken,
    priority: Priority,
    /// When the job was submitted; feeds the sojourn histogram at the
    /// terminal transition (report-only, like every obs timestamp).
    submitted: Stamp,
}

struct State {
    jobs: Vec<JobSlot>,
    /// One FIFO per priority class, holding job indices.
    queues: [VecDeque<u64>; Priority::COUNT],
    shutdown: bool,
    subscribers: Vec<EventSender>,
}

impl State {
    fn emit(&mut self, event: ServiceEvent) {
        self.subscribers.retain(|tx| tx.send(event.clone()));
    }

    /// Dequeues the next runnable job: highest class first, FIFO within
    /// a class, skipping entries cancelled while still pending.
    fn pop_next(&mut self, metrics: &ServiceMetrics) -> Option<(JobId, JobRequest, CancelToken)> {
        for queue in &mut self.queues {
            while let Some(index) = queue.pop_front() {
                let slot = &mut self.jobs[index as usize];
                let Some(request) = slot.request.take() else {
                    continue; // cancelled while pending (gauge already decremented)
                };
                slot.state = JobState::Running;
                metrics.queue_depth[slot.priority.class()].add(-1);
                return Some((JobId(index), request, slot.cancel.clone()));
            }
        }
        None
    }

    /// Records a job's terminal transition into the metric counters.
    fn observe_terminal(&self, metrics: &ServiceMetrics, job: JobId) {
        let slot = &self.jobs[job.index()];
        metrics.sojourn[slot.priority.class()].observe(slot.submitted.elapsed_us());
        match slot.state {
            JobState::Done(_) => metrics.completed.inc(1),
            JobState::Failed(_) => metrics.failed.inc(1),
            JobState::Cancelled(_) => metrics.cancelled.inc(1),
            JobState::Pending | JobState::Running => {}
        }
    }
}

struct Shared {
    state: Mutex<State>,
    work_ready: Condvar,
    job_done: Condvar,
    registry: ProviderRegistry,
    scratch_runs: AtomicU64,
    scratch_events: AtomicU64,
    metrics: ServiceMetrics,
    flight: Arc<FlightRecorder>,
    observe: bool,
    event_capacity: usize,
    trace_sink: Option<Arc<dyn TraceSink>>,
}

/// The per-job trace sink the worker installs: feeds the flight
/// recorder, maps engine counters into metrics, forwards progress to
/// event subscribers, and relays to the configured extra sink.
struct WorkerSink {
    shared: Arc<Shared>,
}

impl TraceSink for WorkerSink {
    fn record(&self, job: u64, event: &TraceEvent) {
        let shared = &*self.shared;
        shared.flight.push(job, event);
        shared.metrics.trace_events.inc(1);
        if event.kind == "delta_stats" {
            let mut stats = noc_sim::DeltaStats::default();
            for (name, value) in &event.counters {
                match *name {
                    "incremental_moves" => stats.incremental_moves = *value,
                    "route_unchanged_moves" => stats.route_unchanged_moves = *value,
                    "full_restores" => stats.full_restores = *value,
                    "tail_converged_moves" => stats.tail_converged_moves = *value,
                    "full_rebaselines" => stats.full_rebaselines = *value,
                    "full_path_moves" => stats.full_path_moves = *value,
                    "tape_refreshes" => stats.tape_refreshes = *value,
                    "cache_hits" => stats.cache_hits = *value,
                    "events_replayed" => stats.events_replayed = *value,
                    "events_total" => stats.events_total = *value,
                    _ => {}
                }
            }
            noc_sim::obs::publish_delta_stats(&shared.metrics.registry, &stats);
        }
        if event.kind == "batch_stats" {
            let mut batch = noc_sim::BatchStats::default();
            let mut memo = noc_model::WalkMemoStats::default();
            let mut has_memo = false;
            for (name, value) in &event.counters {
                match *name {
                    "batches" => batch.batches = *value,
                    "candidates" => batch.candidates = *value,
                    "max_batch" => batch.max_batch = *value,
                    "memo_hits" => {
                        memo.hits = *value;
                        has_memo = true;
                    }
                    "memo_misses" => {
                        memo.misses = *value;
                        has_memo = true;
                    }
                    "memo_evictions" => {
                        memo.evictions = *value;
                        has_memo = true;
                    }
                    other => {
                        if let Some(i) = noc_sim::obs::BATCH_SIZE_BUCKET_NAMES
                            .iter()
                            .position(|n| *n == other)
                        {
                            batch.size_log2[i] = *value;
                        }
                    }
                }
            }
            noc_sim::obs::publish_batch_stats(&shared.metrics.registry, &batch);
            if has_memo {
                noc_sim::obs::publish_walk_memo_stats(&shared.metrics.registry, &memo);
            }
        }
        if matches!(event.kind, "round" | "best" | "epoch") {
            // The worker holds no locks while executing, so taking the
            // state lock here (to fan the progress out) cannot deadlock.
            let progress = ServiceEvent::Progress {
                job: JobId(job),
                round: event.round,
                evaluations: event.evaluations,
                best_cost: event.cost.unwrap_or(f64::NAN),
            };
            let mut state = shared.state.lock().expect("service lock poisoned");
            state.emit(progress);
        }
        if let Some(sink) = &shared.trace_sink {
            sink.record(job, event);
        }
    }
}

/// A cloneable reference to a running service: submit, query, cancel,
/// subscribe. Handles stay valid for the life of the [`MappingService`]
/// that spawned them.
#[derive(Clone)]
pub struct ServiceHandle {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for ServiceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceHandle").finish_non_exhaustive()
    }
}

impl ServiceHandle {
    /// Submits a job and returns its id. Ids are dense and assigned in
    /// submission order.
    pub fn submit(&self, request: JobRequest, priority: Priority) -> JobId {
        let mut state = self.lock();
        let id = JobId(state.jobs.len() as u64);
        let kind = request.kind();
        state.jobs.push(JobSlot {
            request: Some(request),
            state: JobState::Pending,
            cancel: CancelToken::new(),
            priority,
            submitted: noc_obs::stamp(),
        });
        state.queues[priority.class()].push_back(id.0);
        self.shared.metrics.submitted[priority.class()].inc(1);
        self.shared.metrics.queue_depth[priority.class()].add(1);
        state.emit(ServiceEvent::Submitted {
            job: id,
            kind,
            priority: priority.name(),
        });
        drop(state);
        self.shared.work_ready.notify_one();
        id
    }

    /// Requests cancellation. A pending job goes straight to
    /// `Cancelled(None)`; a running job's token trips and the job stops
    /// at its next search checkpoint, recording `Cancelled(Some(best))`.
    /// Returns false if the job is unknown or already terminal.
    pub fn cancel(&self, job: JobId) -> bool {
        let mut state = self.lock();
        let Some(slot) = state.jobs.get_mut(job.index()) else {
            return false;
        };
        match slot.state {
            JobState::Pending => {
                slot.request = None;
                slot.cancel.cancel();
                slot.state = JobState::Cancelled(None);
                self.shared.metrics.queue_depth[slot.priority.class()].add(-1);
                state.observe_terminal(&self.shared.metrics, job);
                state.emit(ServiceEvent::Cancelled {
                    job,
                    partial: false,
                });
                drop(state);
                self.shared.job_done.notify_all();
                true
            }
            JobState::Running => {
                slot.cancel.cancel();
                true
            }
            _ => false,
        }
    }

    /// Current state of a job (a snapshot; clone of the slot state).
    pub fn status(&self, job: JobId) -> Option<JobState> {
        self.lock().jobs.get(job.index()).map(|s| s.state.clone())
    }

    /// Blocks until the job reaches a terminal state and returns it.
    pub fn wait(&self, job: JobId) -> Option<JobState> {
        let mut state = self.lock();
        loop {
            let slot = state.jobs.get(job.index())?;
            if slot.state.is_terminal() {
                return Some(slot.state.clone());
            }
            state = self
                .shared
                .job_done
                .wait(state)
                .expect("service lock poisoned");
        }
    }

    /// Blocks until every submitted job is terminal; returns their
    /// states in id order.
    pub fn wait_all(&self) -> Vec<JobState> {
        let mut state = self.lock();
        loop {
            if state.jobs.iter().all(|s| s.state.is_terminal()) {
                return state.jobs.iter().map(|s| s.state.clone()).collect();
            }
            state = self
                .shared
                .job_done
                .wait(state)
                .expect("service lock poisoned");
        }
    }

    /// Registers an event subscriber. Events submitted before the call
    /// are not replayed. The stream is bounded
    /// ([`ServiceConfig::event_capacity`]): a subscriber that stops
    /// reading loses the *oldest* undelivered events rather than
    /// stalling the service or growing its memory without limit.
    pub fn subscribe(&self) -> EventStream {
        let (tx, rx) = bounded(
            self.shared.event_capacity,
            Arc::clone(&self.shared.metrics.dropped_events),
        );
        self.lock().subscribers.push(tx);
        rx
    }

    /// The service's metrics registry (shared; live).
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.shared.metrics.registry)
    }

    /// Prometheus-style text exposition of every service metric.
    pub fn metrics_exposition(&self) -> String {
        self.shared.metrics.registry.exposition()
    }

    /// JSON snapshot of every service metric.
    pub fn metrics_json(&self) -> String {
        self.shared.metrics.registry.snapshot_json()
    }

    /// The flight recorder's tape for a job, if the recorder has seen
    /// it (requires [`ServiceConfig::observe`], the default).
    pub fn flight_snapshot(&self, job: JobId) -> Option<Tape> {
        self.shared.flight.snapshot(job.0)
    }

    /// Job ids the flight recorder currently holds tapes for.
    pub fn flight_jobs(&self) -> Vec<JobId> {
        self.shared.flight.jobs().into_iter().map(JobId).collect()
    }

    /// Aggregate counters: job states, registry hit rate, pooled
    /// scratch-arena reuse.
    pub fn stats(&self) -> ServiceStats {
        let registry = self.shared.registry.stats();
        let state = self.lock();
        let mut stats = ServiceStats {
            submitted: state.jobs.len() as u64,
            pending: 0,
            running: 0,
            done: 0,
            failed: 0,
            cancelled: 0,
            registry_hits: registry.hits,
            registry_misses: registry.misses,
            registry_entries: registry.entries as u64,
            scratch_runs: self.shared.scratch_runs.load(Ordering::Relaxed),
            scratch_events: self.shared.scratch_events.load(Ordering::Relaxed),
        };
        for slot in &state.jobs {
            match slot.state {
                JobState::Pending => stats.pending += 1,
                JobState::Running => stats.running += 1,
                JobState::Done(_) => stats.done += 1,
                JobState::Failed(_) => stats.failed += 1,
                JobState::Cancelled(_) => stats.cancelled += 1,
            }
        }
        stats
    }

    /// Registry counters alone (hit/miss/entries).
    pub fn registry_stats(&self) -> RegistryStats {
        self.shared.registry.stats()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.shared.state.lock().expect("service lock poisoned")
    }
}

/// The service itself: owns the worker threads. Dropping it drains the
/// queue (every submitted job still runs) and joins the pool.
pub struct MappingService {
    handle: ServiceHandle,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for MappingService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappingService")
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl MappingService {
    /// Starts the service with `config.workers` threads.
    pub fn start(config: ServiceConfig) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                jobs: Vec::new(),
                queues: std::array::from_fn(|_| VecDeque::new()),
                shutdown: false,
                subscribers: Vec::new(),
            }),
            work_ready: Condvar::new(),
            job_done: Condvar::new(),
            registry: ProviderRegistry::new(),
            scratch_runs: AtomicU64::new(0),
            scratch_events: AtomicU64::new(0),
            metrics: ServiceMetrics::new(),
            flight: Arc::new(FlightRecorder::new(FLIGHT_EVENTS_PER_JOB, FLIGHT_MAX_JOBS)),
            observe: config.observe,
            event_capacity: config.event_capacity,
            trace_sink: config.trace_sink,
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("noc-service-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn service worker")
            })
            .collect();
        Self {
            handle: ServiceHandle { shared },
            workers,
        }
    }

    /// A cloneable handle onto this service.
    pub fn handle(&self) -> ServiceHandle {
        self.handle.clone()
    }

    /// Convenience: submit directly on the service.
    pub fn submit(&self, request: JobRequest, priority: Priority) -> JobId {
        self.handle.submit(request, priority)
    }

    /// Convenience: cancel directly on the service.
    pub fn cancel(&self, job: JobId) -> bool {
        self.handle.cancel(job)
    }

    /// Convenience: status directly on the service.
    pub fn status(&self, job: JobId) -> Option<JobState> {
        self.handle.status(job)
    }

    /// Convenience: wait directly on the service.
    pub fn wait(&self, job: JobId) -> Option<JobState> {
        self.handle.wait(job)
    }

    /// Convenience: wait for every job directly on the service.
    pub fn wait_all(&self) -> Vec<JobState> {
        self.handle.wait_all()
    }

    /// Convenience: subscribe directly on the service.
    pub fn subscribe(&self) -> EventStream {
        self.handle.subscribe()
    }

    /// Convenience: stats directly on the service.
    pub fn stats(&self) -> ServiceStats {
        self.handle.stats()
    }

    /// Drains the queue and joins the workers. Called by `Drop`; calling
    /// it explicitly lets the caller observe completion.
    pub fn shutdown(&mut self) {
        {
            let mut state = self.handle.lock();
            state.shutdown = true;
        }
        self.handle.shared.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for MappingService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One worker: dequeue → execute → record, with a pooled scratch arena
/// that outlives every job the worker runs.
fn worker_loop(shared: &Arc<Shared>) {
    let mut scratch = ScheduleScratch::new();
    let mut reported = scratch.run_stats();
    loop {
        let (id, request, cancel) = {
            let mut state = shared.state.lock().expect("service lock poisoned");
            loop {
                if let Some(next) = state.pop_next(&shared.metrics) {
                    state.emit(ServiceEvent::Started { job: next.0 });
                    break next;
                }
                if state.shutdown {
                    return;
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .expect("service lock poisoned");
            }
        };

        shared.metrics.workers_busy.add(1);
        let result = if shared.observe {
            // Install the per-job trace context: every emission inside
            // the search/mapping stack lands on this worker's sink.
            // Execution itself is untouched — the context only carries
            // events *out*.
            let sink: Arc<dyn TraceSink> = Arc::new(WorkerSink {
                shared: Arc::clone(shared),
            });
            noc_obs::trace::with_job(id.0, sink, || {
                noc_obs::emit_with(|| {
                    let mut event = TraceEvent::new("job_start");
                    event.label = request.kind().to_owned();
                    event
                });
                let result = worker::execute(&request, &shared.registry, &mut scratch, &cancel);
                noc_obs::emit_with(|| {
                    let mut event = TraceEvent::new("job_end");
                    event.label = match &result {
                        Ok(_) if cancel.is_cancelled() => "cancelled".to_owned(),
                        Ok(_) => "done".to_owned(),
                        Err(e) => format!("failed: {e}"),
                    };
                    event
                });
                result
            })
        } else {
            worker::execute(&request, &shared.registry, &mut scratch, &cancel)
        };
        shared.metrics.workers_busy.add(-1);

        // Publish the pooled arena's reuse counters (monotone deltas).
        let now = scratch.run_stats();
        let delta = noc_sim::RunStats {
            runs: now.runs - reported.runs,
            events: now.events - reported.events,
        };
        shared.scratch_runs.fetch_add(delta.runs, Ordering::Relaxed);
        shared
            .scratch_events
            .fetch_add(delta.events, Ordering::Relaxed);
        noc_sim::obs::publish_run_stats(&shared.metrics.registry, delta);
        reported = now;

        // Registry and evaluation metrics from the finished result.
        // Hit/miss only counts auto-tier jobs — explicit tiers build
        // providers privately without consulting the registry, matching
        // what `registry.stats()` reports.
        if let Ok(JobResult::Solve(r)) = &result {
            if matches!(&request, JobRequest::Solve(req)
                if req.route_cache == crate::job::CacheTier::Auto)
            {
                if r.registry_hit {
                    shared.metrics.registry_hits.inc(1);
                } else {
                    shared.metrics.registry_misses.inc(1);
                }
            }
            shared.metrics.search_evaluations.inc(r.outcome.evaluations);
        }

        let mut state = shared.state.lock().expect("service lock poisoned");
        let (next_state, event) = match result {
            Ok(result) if cancel.is_cancelled() => {
                let event = ServiceEvent::Cancelled {
                    job: id,
                    partial: true,
                };
                (JobState::Cancelled(Some(result)), event)
            }
            Ok(result) => {
                let (cost_pj, evaluations, telemetry) = match &result {
                    JobResult::Solve(r) => {
                        (r.outcome.cost, r.outcome.evaluations, r.telemetry.clone())
                    }
                    JobResult::Evaluate(r) => (r.breakdown.total().picojoules(), 0, None),
                };
                let event = ServiceEvent::Completed {
                    job: id,
                    cost_pj,
                    evaluations,
                    telemetry,
                };
                (JobState::Done(result), event)
            }
            Err(error) if cancel.is_cancelled() => {
                let event = ServiceEvent::Cancelled {
                    job: id,
                    partial: false,
                };
                let _ = error;
                (JobState::Cancelled(None), event)
            }
            Err(error) => {
                let event = ServiceEvent::Failed {
                    job: id,
                    error: error.clone(),
                };
                (JobState::Failed(error), event)
            }
        };
        state.jobs[id.index()].state = next_state;
        state.observe_terminal(&shared.metrics, id);
        state.emit(event);
        drop(state);
        shared.job_done.notify_all();
    }
}
