//! Job model of the exploration service: requests, priorities, states
//! and results.
//!
//! A job is a self-contained work order — the application graph, the
//! target mesh, the objective strategy and the search method travel
//! *inside* the request, so a job depends on nothing but the shared
//! route-provider registry. Results are keyed by [`JobId`] and carry
//! everything a front end needs to render them; the service never
//! prints.

use noc_energy::{Energy, EnergyBreakdown, Technology};
use noc_mapping::{
    Constraints, CriticalityReport, RemapReport, SaConfig, SearchMethod, SearchOutcome,
    SearchTelemetry, Strategy,
};
use noc_model::{Cdcg, FaultScenario, FaultSet, Mapping, Mesh, RoutingKind};
use noc_sim::SimParams;
use serde::{Deserialize, Serialize};

/// Identifies a submitted job. Ids are dense (0, 1, 2, …) in submission
/// order, so the service can keep job slots in a plain `Vec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl JobId {
    /// The dense slot index of this job.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// Scheduling class of a job. Within a class, jobs run in submission
/// (FIFO) order; a higher class always dispatches before a lower one.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum Priority {
    /// Dispatched before everything else.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Dispatched only when no higher class has work.
    Low,
}

impl Priority {
    /// Queue index of the class (0 = highest).
    pub fn class(self) -> usize {
        match self {
            Self::High => 0,
            Self::Normal => 1,
            Self::Low => 2,
        }
    }

    /// Number of priority classes.
    pub const COUNT: usize = 3;

    /// Display name of the class.
    pub fn name(self) -> &'static str {
        match self {
            Self::High => "high",
            Self::Normal => "normal",
            Self::Low => "low",
        }
    }
}

/// Which route-provisioning tier a solve job asks for. Only [`Auto`]
/// requests are eligible for the shared provider registry — the explicit
/// tiers are built per job, exactly as the CLI always did.
///
/// [`Auto`]: CacheTier::Auto
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CacheTier {
    /// Size-based automatic choice; shared through the registry.
    #[default]
    Auto,
    /// Dense precomputed tables (fails on meshes too large to cache).
    Dense,
    /// Bounded-memory on-demand cache.
    OnDemand,
    /// No stored routes at all.
    Implicit,
}

/// A mapping-search work order: everything `noc-cli map` used to
/// orchestrate inline, as one self-contained request.
#[derive(Debug, Clone)]
pub struct SolveRequest {
    /// The application graph.
    pub app: Cdcg,
    /// The target mesh.
    pub mesh: Mesh,
    /// Cost model driving the search.
    pub strategy: Strategy,
    /// Search engine and its configuration.
    pub method: SearchMethod,
    /// Technology point for the energy terms.
    pub tech: Technology,
    /// Wormhole simulation parameters.
    pub params: SimParams,
    /// Routing algorithm of the target NoC.
    pub routing: RoutingKind,
    /// Dead links baked into the routing function. Part of the provider
    /// identity: jobs differing only in faults never share a provider.
    pub faults: FaultSet,
    /// Route-provisioning tier (only `Auto` uses the shared registry).
    pub route_cache: CacheTier,
    /// Optional core→tile pins; pinned jobs run the constrained SA.
    pub pins: Option<Constraints>,
    /// SA configuration of the constrained search (ignored without pins).
    pub sa_config: SaConfig,
    /// Attach the traffic-weighted link-criticality report.
    pub criticality: bool,
    /// Optional post-search fault injection and re-mapping experiment.
    pub fault_scenario: Option<FaultScenario>,
    /// Re-mapping evaluation budget of the fault experiment.
    pub fault_evals: u64,
    /// Seed of the fault experiment's recovery search.
    pub seed: u64,
}

impl SolveRequest {
    /// A request with the CLI's defaults: CDCM strategy, XY routing, no
    /// faults, auto tier, quick SA.
    pub fn new(app: Cdcg, mesh: Mesh, method: SearchMethod) -> Self {
        Self {
            app,
            mesh,
            strategy: Strategy::Cdcm,
            method,
            tech: Technology::t007(),
            params: SimParams::new(),
            routing: RoutingKind::Xy,
            faults: FaultSet::new(),
            route_cache: CacheTier::Auto,
            pins: None,
            sa_config: SaConfig::quick(0),
            criticality: false,
            fault_scenario: None,
            fault_evals: 20_000,
            seed: 0,
        }
    }
}

/// A single-mapping evaluation work order (`noc-cli evaluate`).
#[derive(Debug, Clone)]
pub struct EvaluateRequest {
    /// The application graph.
    pub app: Cdcg,
    /// The target mesh.
    pub mesh: Mesh,
    /// Core→tile placement to score, as tile indices per core.
    pub mapping: Mapping,
    /// Technology point for the energy terms.
    pub tech: Technology,
    /// Wormhole simulation parameters.
    pub params: SimParams,
    /// Routing algorithm to evaluate under.
    pub routing: RoutingKind,
    /// Also render the wormhole Gantt chart.
    pub gantt: bool,
}

/// The work orders the service accepts.
#[derive(Debug, Clone)]
pub enum JobRequest {
    /// Search the best mapping for an application.
    Solve(Box<SolveRequest>),
    /// Score one explicit mapping.
    Evaluate(Box<EvaluateRequest>),
}

impl JobRequest {
    /// Short display label of the work kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Solve(_) => "solve",
            Self::Evaluate(_) => "evaluate",
        }
    }
}

/// Result of a solve job: the search outcome plus the full-model
/// evaluation of the winner — everything `noc-cli map` renders.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolveResult {
    /// Best mapping, cost, evaluation count, method and elapsed time.
    pub outcome: SearchOutcome,
    /// Search telemetry (absent for the constrained/pinned path).
    pub telemetry: Option<SearchTelemetry>,
    /// Equation 10 energy split of the winner.
    pub breakdown: EnergyBreakdown,
    /// Execution time of the winner in nanoseconds.
    pub texec_ns: f64,
    /// Execution time of the winner in cycles.
    pub texec_cycles: u64,
    /// The CWM view of the winner: dynamic energy only.
    pub cwm_dynamic: Energy,
    /// Routing algorithm name the job evaluated under.
    pub routing: String,
    /// Route-provider tier name the job ran on.
    pub route_tier: String,
    /// True if the job's provider came out of the shared registry.
    pub registry_hit: bool,
    /// Link-criticality report, when requested.
    pub criticality: Option<CriticalityReport>,
    /// Fault-injection / re-mapping report, when requested.
    pub remap: Option<RemapReport>,
}

/// Result of an evaluate job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvaluateResult {
    /// The scored placement.
    pub mapping: Mapping,
    /// Routing algorithm name.
    pub routing: String,
    /// Execution time in nanoseconds.
    pub texec_ns: f64,
    /// Equation 10 energy split.
    pub breakdown: EnergyBreakdown,
    /// Contention events of the schedule.
    pub contention_events: usize,
    /// Total contention cycles of the schedule.
    pub contention_cycles: u64,
    /// Rendered Gantt chart, when requested.
    pub gantt: Option<String>,
}

/// A completed job's payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum JobResult {
    /// Payload of a [`JobRequest::Solve`].
    Solve(Box<SolveResult>),
    /// Payload of a [`JobRequest::Evaluate`].
    Evaluate(Box<EvaluateResult>),
}

impl JobResult {
    /// The solve payload, if this is one.
    pub fn as_solve(&self) -> Option<&SolveResult> {
        match self {
            Self::Solve(r) => Some(r),
            Self::Evaluate(_) => None,
        }
    }

    /// The evaluate payload, if this is one.
    pub fn as_evaluate(&self) -> Option<&EvaluateResult> {
        match self {
            Self::Evaluate(r) => Some(r),
            Self::Solve(_) => None,
        }
    }
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum JobState {
    /// Queued, not yet dispatched.
    Pending,
    /// Executing on a worker.
    Running,
    /// Finished successfully.
    Done(JobResult),
    /// Finished with an error (bad request, infeasible instance, …).
    Failed(String),
    /// Cancelled. Carries the partial result when the job was already
    /// running (the search returns its verified best-so-far); `None`
    /// when cancellation caught the job still in the queue.
    Cancelled(Option<JobResult>),
}

impl JobState {
    /// True once the job can no longer change state.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, Self::Pending | Self::Running)
    }

    /// Display name of the state.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Pending => "pending",
            Self::Running => "running",
            Self::Done(_) => "done",
            Self::Failed(_) => "failed",
            Self::Cancelled(_) => "cancelled",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_classes_are_ordered_high_first() {
        assert_eq!(Priority::High.class(), 0);
        assert_eq!(Priority::Normal.class(), 1);
        assert_eq!(Priority::Low.class(), 2);
        assert_eq!(Priority::default(), Priority::Normal);
        assert!(Priority::High < Priority::Normal);
    }

    #[test]
    fn job_states_classify_terminality() {
        assert!(!JobState::Pending.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Failed("x".into()).is_terminal());
        assert!(JobState::Cancelled(None).is_terminal());
        assert_eq!(JobState::Pending.name(), "pending");
    }
}
