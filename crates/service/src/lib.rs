//! Mapping-as-a-service: a concurrent exploration engine over the
//! mapping/search stack.
//!
//! The CLI used to orchestrate everything inline — build an explorer,
//! run a search, evaluate the winner, print. This crate lifts that
//! orchestration into a long-running, in-process service:
//!
//! ```text
//!   front ends (CLI subcommands, Unix-socket clients, tests)
//!        │ JobRequest (solve / evaluate)
//!        ▼
//!   ┌──────────────────────────────────────────────┐
//!   │ MappingService                               │
//!   │   job queue: High ▸ Normal ▸ Low (FIFO each) │
//!   │   worker 0 ─┐                                │
//!   │   worker 1 ─┼─▸ ProviderRegistry             │
//!   │   worker N ─┘   (mesh, routing, faults) →    │
//!   │                 shared Arc<RouteProvider>    │
//!   └──────────────────────────────────────────────┘
//!        │ JobState / JobResult / ServiceEvent
//!        ▼
//!   subscribers, waiters, the wire protocol
//! ```
//!
//! * [`job`] — work orders, priorities, results, job lifecycle.
//! * [`registry`] — one shared [`RouteProvider`](noc_model::RouteProvider)
//!   per `(mesh, routing, faults)` across all concurrent jobs.
//! * [`service`] — the queue, the fixed worker pool, cancellation,
//!   telemetry streaming, stats.
//! * [`events`] — the bounded, drop-oldest event streams behind
//!   [`ServiceHandle::subscribe`] (a stalled subscriber can never stall
//!   the service).
//! * [`protocol`] — the line-oriented JSON wire format and the Unix
//!   socket server behind `noc-cli serve`.
//!
//! Observability: each service owns a `noc-obs`
//! [`MetricsRegistry`] (job/queue/worker/registry/engine metrics, see
//! `noc-cli metrics`) and a flight recorder capturing per-job trace
//! events — rounds, best-so-far improvements, SA accept/reject streams —
//! queryable via [`ServiceHandle::flight_snapshot`] and the `trace`
//! socket op, and streamed live to subscribers as
//! [`ServiceEvent::Progress`].
//!
//! # Determinism
//!
//! Job results are bit-identical regardless of the worker count and of
//! submission interleaving: every search is seeded, providers answer
//! route queries identically whether freshly built or shared, and
//! workers share nothing mid-job. The integration tests pin this by
//! running the same job set on 1, 2 and 4 workers and comparing results
//! and telemetry exactly. Cross-job *event* interleaving is the one
//! timing-dependent surface, and per-job event order is still fixed.
//!
//! # Cancellation
//!
//! Each job carries a [`CancelToken`]. Cancelling a pending job removes
//! it from the queue (`Cancelled(None)`); cancelling a running job trips
//! the token, the search stops at its next checkpoint (one SA epoch, one
//! adaptive round, one GA generation, one tabu iteration), and the job
//! lands in `Cancelled(Some(best-so-far))` with its verified partial
//! result.

pub mod events;
pub mod job;
mod obs;
pub mod protocol;
pub mod registry;
pub mod service;
mod worker;

pub use events::EventStream;
pub use job::{
    CacheTier, EvaluateRequest, EvaluateResult, JobId, JobRequest, JobResult, JobState, Priority,
    SolveRequest, SolveResult,
};
pub use registry::{ProviderKey, ProviderLease, ProviderRegistry, RegistryStats};
pub use service::{MappingService, ServiceConfig, ServiceEvent, ServiceHandle, ServiceStats};

// Observability types front ends interact with (sinks to configure,
// tapes and registries to render), re-exported like the search types
// below so thin clients depend on this crate alone.
pub use noc_obs::{JsonLinesSink, MemorySink, MetricsRegistry, Tape, TraceEvent, TraceSink};

// The types a front end needs to build requests and render results,
// re-exported so thin clients (the CLI) can depend on this crate alone.
pub use noc_mapping::{
    AdaptiveConfig, CancelToken, Constraints, CriticalityReport, Crossover, Explorer, GaConfig,
    LinkLoad, PortfolioConfig, RemapReport, RestartBudget, SaConfig, SearchMethod, SearchOutcome,
    SearchTelemetry, Strategy, TabuConfig, Tenure,
};

#[cfg(test)]
mod tests {
    use super::*;
    use noc_apps::paper_example::{figure1_cdcg, mesh_2x2};
    use noc_model::{Mesh, TileId};

    fn sa_job(seed: u64) -> JobRequest {
        let app = noc_apps::large_mesh_workload(4, 4, 1);
        let mesh = Mesh::new(4, 4).unwrap();
        let mut config = SaConfig::quick(seed);
        config.max_evaluations = 400;
        let mut req = SolveRequest::new(app, mesh, SearchMethod::SimulatedAnnealing(config));
        req.seed = seed;
        JobRequest::Solve(Box::new(req))
    }

    fn run_batch(workers: usize, seeds: &[u64]) -> Vec<SolveResult> {
        let service = MappingService::start(ServiceConfig::new(workers));
        let ids: Vec<JobId> = seeds
            .iter()
            .map(|&s| service.submit(sa_job(s), Priority::Normal))
            .collect();
        ids.iter()
            .map(|&id| match service.wait(id).unwrap() {
                JobState::Done(JobResult::Solve(r)) => *r,
                other => panic!("expected done solve job, got {}", other.name()),
            })
            .collect()
    }

    #[test]
    fn results_are_bit_identical_across_worker_counts() {
        let seeds = [1, 2, 3, 4, 5, 6];
        let one = run_batch(1, &seeds);
        let two = run_batch(2, &seeds);
        let four = run_batch(4, &seeds);
        for ((a, b), c) in one.iter().zip(&two).zip(&four) {
            assert_eq!(a.outcome.mapping, b.outcome.mapping);
            assert_eq!(a.outcome.mapping, c.outcome.mapping);
            assert_eq!(a.outcome.cost.to_bits(), b.outcome.cost.to_bits());
            assert_eq!(a.outcome.cost.to_bits(), c.outcome.cost.to_bits());
            assert_eq!(a.outcome.evaluations, b.outcome.evaluations);
            assert_eq!(a.telemetry, b.telemetry);
            assert_eq!(a.telemetry, c.telemetry);
            assert_eq!(a.texec_cycles, b.texec_cycles);
            assert_eq!(
                a.breakdown.total().picojoules().to_bits(),
                c.breakdown.total().picojoules().to_bits()
            );
        }
    }

    #[test]
    fn concurrent_jobs_share_one_provider_through_the_registry() {
        let service = MappingService::start(ServiceConfig::new(4));
        let seeds = [10, 11, 12, 13, 14, 15, 16, 17];
        for &s in &seeds {
            service.submit(sa_job(s), Priority::Normal);
        }
        service.wait_all();
        let stats = service.stats();
        assert_eq!(stats.done, seeds.len() as u64);
        // All jobs share the same (mesh, routing, faults) identity: one
        // build, everything else hits.
        assert_eq!(stats.registry_entries, 1);
        assert_eq!(stats.registry_misses, 1);
        assert_eq!(stats.registry_hits, seeds.len() as u64 - 1);
        // The pooled worker scratches served every final verification.
        assert!(stats.scratch_runs >= seeds.len() as u64);
    }

    #[test]
    fn pending_cancellation_skips_the_job_entirely() {
        // One worker, so the second job is still queued while the first
        // runs; cancelling it must yield Cancelled(None).
        let service = MappingService::start(ServiceConfig::new(1));
        let first = service.submit(sa_job(1), Priority::Normal);
        let second = service.submit(sa_job(2), Priority::Normal);
        let third = service.submit(sa_job(3), Priority::Normal);
        assert!(service.cancel(second));
        let states = service.wait_all();
        assert!(matches!(states[first.index()], JobState::Done(_)));
        assert!(matches!(states[second.index()], JobState::Cancelled(None)));
        assert!(matches!(states[third.index()], JobState::Done(_)));
        // A terminal job cannot be cancelled again.
        assert!(!service.cancel(second));
        assert_eq!(service.stats().cancelled, 1);
    }

    #[test]
    fn priorities_dispatch_high_before_low_fifo_within_class() {
        // Single worker. A long-running blocker occupies it; while it
        // runs, low jobs are submitted before high ones. The event
        // stream must show the highs starting before the lows, each
        // class in submission order.
        let service = MappingService::start(ServiceConfig::new(1));
        let rx = service.subscribe();
        let blocker = {
            let app = noc_apps::large_mesh_workload(4, 4, 1);
            let mesh = Mesh::new(4, 4).unwrap();
            let mut config = SaConfig::quick(0);
            config.max_evaluations = 200_000;
            let req = SolveRequest::new(app, mesh, SearchMethod::SimulatedAnnealing(config));
            service.submit(JobRequest::Solve(Box::new(req)), Priority::Normal)
        };
        // Gate: the worker has dequeued the blocker before anything else
        // enters the queue.
        loop {
            if let ServiceEvent::Started { job } = rx.recv().unwrap() {
                assert_eq!(job, blocker);
                break;
            }
        }
        let low_a = service.submit(sa_job(1), Priority::Low);
        let low_b = service.submit(sa_job(2), Priority::Low);
        let high_a = service.submit(sa_job(3), Priority::High);
        let high_b = service.submit(sa_job(4), Priority::High);
        service.wait_all();
        drop(service);
        let started: Vec<JobId> = rx
            .try_iter()
            .filter_map(|e| match e {
                ServiceEvent::Started { job } => Some(job),
                _ => None,
            })
            .collect();
        let pos = |id: JobId| started.iter().position(|&j| j == id).unwrap();
        assert!(pos(high_a) < pos(high_b), "FIFO within the high class");
        assert!(pos(low_a) < pos(low_b), "FIFO within the low class");
        assert!(pos(high_b) < pos(low_a), "high dispatches before low");
    }

    #[test]
    fn evaluate_jobs_and_failures_round_trip() {
        let service = MappingService::start(ServiceConfig::new(2));
        let eval = EvaluateRequest {
            app: figure1_cdcg(),
            mesh: mesh_2x2(),
            mapping: noc_apps::paper_example::mapping_c(),
            tech: noc_energy::Technology::paper_example(),
            params: noc_sim::SimParams::new(),
            routing: noc_model::RoutingKind::Xy,
            gantt: true,
        };
        let good = service.submit(JobRequest::Evaluate(Box::new(eval)), Priority::Normal);

        // Oversubscribed solve: 5 cores on 4 tiles must fail, not panic.
        let bad = SolveRequest::new(
            noc_apps::large_mesh_workload(5, 1, 1),
            mesh_2x2(),
            SearchMethod::Exhaustive,
        );
        let bad = service.submit(JobRequest::Solve(Box::new(bad)), Priority::Normal);

        match service.wait(good).unwrap() {
            JobState::Done(JobResult::Evaluate(r)) => {
                assert_eq!(r.texec_ns, 100.0);
                assert!(r.gantt.is_some());
            }
            other => panic!("expected evaluate result, got {}", other.name()),
        }
        match service.wait(bad).unwrap() {
            JobState::Failed(msg) => assert!(msg.contains("cannot map"), "{msg}"),
            other => panic!("expected failure, got {}", other.name()),
        }
    }

    #[test]
    fn stalled_subscriber_loses_oldest_events_but_never_stalls_the_service() {
        // Tiny per-subscriber bound; the subscriber never reads while
        // the jobs run. The service must complete everything, and the
        // stream must hold only the *newest* events with the loss
        // counted (stream-local and in the metrics).
        let service = MappingService::start(ServiceConfig::new(2).with_event_capacity(4));
        let stalled = service.subscribe();
        for seed in 0..6 {
            service.submit(sa_job(seed), Priority::Normal);
        }
        service.wait_all();
        assert_eq!(service.stats().done, 6);

        assert!(stalled.dropped() > 0, "4-deep queue must have overflowed");
        let exposition = service.handle().metrics_exposition();
        let line = exposition
            .lines()
            .find(|l| l.starts_with("noc_subscriber_dropped_events_total"))
            .expect("dropped-events metric exposed");
        let count: u64 = line.split_whitespace().last().unwrap().parse().unwrap();
        assert_eq!(count, stalled.dropped());

        let remaining: Vec<ServiceEvent> = stalled.try_iter().collect();
        assert_eq!(remaining.len(), 4, "queue capped at capacity");
        // A live subscriber on a fresh service sees everything.
        let service = MappingService::start(ServiceConfig::new(1).with_event_capacity(1024));
        let live = service.subscribe();
        let job = service.submit(sa_job(1), Priority::High);
        service.wait(job);
        drop(service);
        let kinds: Vec<ServiceEvent> = live.try_iter().collect();
        assert!(matches!(
            kinds.first(),
            Some(ServiceEvent::Submitted { .. })
        ));
        assert!(kinds
            .iter()
            .any(|e| matches!(e, ServiceEvent::Completed { .. })));
    }

    #[test]
    fn observability_captures_metrics_progress_and_a_flight_tape() {
        let service = MappingService::start(ServiceConfig::new(1));
        let events = service.subscribe();
        let job = service.submit(sa_job(42), Priority::Normal);
        service.wait(job);

        // Flight recorder: the tape brackets the run and carries search
        // checkpoints.
        let tape = service.handle().flight_snapshot(job).expect("tape");
        let kinds: Vec<&str> = tape.events.iter().map(|e| e.kind).collect();
        assert_eq!(kinds.first(), Some(&"job_start"));
        assert!(kinds.contains(&"best"), "{kinds:?}");
        assert!(kinds.contains(&"epoch"), "{kinds:?}");
        assert!(
            kinds.last() == Some(&"job_end") || tape.dropped > 0,
            "{kinds:?}"
        );
        assert_eq!(service.handle().flight_jobs(), vec![job]);

        // Progress events reached the subscriber while the job ran.
        drop(service);
        let progressed = events
            .try_iter()
            .filter(|e| matches!(e, ServiceEvent::Progress { .. }))
            .count();
        assert!(progressed > 0, "expected live Progress events");

        let mut tape_progress = 0;
        for event in &tape.events {
            if matches!(event.kind, "best" | "round") {
                tape_progress += 1;
            }
        }
        assert!(tape_progress > 0);
    }

    #[test]
    fn disabling_observability_changes_nothing_but_the_tape() {
        let observed = run_batch(2, &[9, 10]);
        let service = MappingService::start(ServiceConfig::new(2).without_observability());
        let ids: Vec<JobId> = [9u64, 10]
            .iter()
            .map(|&s| service.submit(sa_job(s), Priority::Normal))
            .collect();
        let blind: Vec<SolveResult> = ids
            .iter()
            .map(|&id| match service.wait(id).unwrap() {
                JobState::Done(JobResult::Solve(r)) => *r,
                other => panic!("expected done solve job, got {}", other.name()),
            })
            .collect();
        for (a, b) in observed.iter().zip(&blind) {
            assert_eq!(a.outcome.mapping, b.outcome.mapping);
            assert_eq!(a.outcome.cost.to_bits(), b.outcome.cost.to_bits());
            assert_eq!(a.telemetry, b.telemetry);
        }
        assert!(service.handle().flight_snapshot(ids[0]).is_none());
    }

    #[test]
    fn faulty_jobs_get_fault_aware_providers() {
        let service = MappingService::start(ServiceConfig::new(2));
        let mut healthy = sa_job(5);
        let mut faulty = sa_job(5);
        if let JobRequest::Solve(req) = &mut faulty {
            req.faults.kill_between(TileId::new(0), TileId::new(1));
        }
        let JobRequest::Solve(h) = &mut healthy else {
            unreachable!()
        };
        h.criticality = true;
        let healthy = service.submit(healthy, Priority::Normal);
        let faulty = service.submit(faulty, Priority::Normal);

        let healthy = match service.wait(healthy).unwrap() {
            JobState::Done(JobResult::Solve(r)) => *r,
            other => panic!("healthy job failed: {}", other.name()),
        };
        let faulty = match service.wait(faulty).unwrap() {
            JobState::Done(JobResult::Solve(r)) => *r,
            other => panic!("faulty job failed: {}", other.name()),
        };
        assert!(healthy.criticality.is_some());
        assert_eq!(faulty.route_tier, "fault-aware");
        assert_ne!(healthy.route_tier, faulty.route_tier);
        // Distinct provider identities: two entries, no cross-hits.
        assert_eq!(service.stats().registry_entries, 2);
    }
}
