//! Common search telemetry: per-round budgets, basin survivals, and the
//! best-so-far curve.
//!
//! Every [`SearchStrategy`](crate::SearchStrategy) emits one
//! [`SearchTelemetry`] per run. Telemetry is part of the determinism
//! contract: for a fixed configuration (including the seed) the whole
//! structure must be bit-identical between runs, regardless of how many
//! threads executed the rounds.

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The one sanctioned wall-clock read in the deterministic crates.
///
/// Search and mapping code reports elapsed wall time in its telemetry,
/// but a clock value must never *feed a decision* — trajectories are a
/// function of (configuration, seed) alone. Funnelling every read
/// through this helper keeps the audit surface a single line: the
/// `noc-verify` DET02 rule flags any other `Instant::now()` in
/// `search`/`mapping`/`model`/`sim`, so a new timing site is a
/// reviewable event rather than a silent drift risk.
pub fn wall_clock() -> Instant {
    Instant::now() // noc-verify: allow(DET02) — the designated telemetry scope; callers may only report elapsed time, never branch on it
}

/// One point of the best-so-far curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Cumulative billed evaluations when the point was recorded.
    pub evaluations: u64,
    /// Best cost known at that point.
    pub cost: f64,
}

/// Evaluation budget granted to one population member in one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemberBudget {
    /// Member (restart / basin) index.
    pub member: usize,
    /// Evaluations granted this round.
    pub evals: u64,
}

/// Telemetry of one scheduling round of a population-based strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundTelemetry {
    /// Round index (0-based).
    pub round: usize,
    /// Budget granted to each *active* member this round.
    pub budgets: Vec<MemberBudget>,
    /// Members surviving into the next round (empty after the last
    /// round, or for strategies without selection).
    pub survivors: Vec<usize>,
    /// Best cost known across the population after the round.
    pub best_cost: f64,
}

/// Telemetry of one search run: what the strategy spent and where.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SearchTelemetry {
    /// Strategy label (matches `SearchOutcome::method`).
    pub strategy: String,
    /// Total billed evaluations (must equal `SearchOutcome::evaluations`).
    pub evaluations: u64,
    /// Per-round budget allocation and survivals (population strategies).
    pub rounds: Vec<RoundTelemetry>,
    /// Monotonically improving best-so-far curve.
    pub best_curve: Vec<CurvePoint>,
    /// Sub-strategy telemetries (portfolio runs).
    pub children: Vec<SearchTelemetry>,
}

impl SearchTelemetry {
    /// Empty telemetry for a strategy label.
    pub fn new(strategy: impl Into<String>) -> Self {
        Self {
            strategy: strategy.into(),
            ..Self::default()
        }
    }

    /// Minimal telemetry for engines without rounds: evaluation total and
    /// a single final curve point. Mirrored as a `"best"` trace event
    /// when a `noc-obs` context is installed, like
    /// [`SearchTelemetry::record_best`].
    pub fn single_point(strategy: impl Into<String>, evaluations: u64, cost: f64) -> Self {
        let strategy = strategy.into();
        noc_obs::emit_with(|| {
            let mut event = noc_obs::TraceEvent::new("best");
            event.label = strategy.clone();
            event.evaluations = evaluations;
            event.cost = Some(cost);
            event
        });
        Self {
            strategy,
            evaluations,
            best_curve: vec![CurvePoint { evaluations, cost }],
            ..Self::default()
        }
    }

    /// Appends a best-so-far point if it improves on the last one (or is
    /// the first). Improvements are also mirrored as a `"best"` trace
    /// event when the calling thread has a `noc-obs` context installed
    /// (the mirror only *reads* the new point, so trajectories are
    /// unaffected).
    pub fn record_best(&mut self, evaluations: u64, cost: f64) {
        if self.best_curve.last().is_none_or(|last| cost < last.cost) {
            self.best_curve.push(CurvePoint { evaluations, cost });
            noc_obs::emit_with(|| {
                let mut event = noc_obs::TraceEvent::new("best");
                event.label = self.strategy.clone();
                event.evaluations = evaluations;
                event.cost = Some(cost);
                event
            });
        }
    }

    /// Appends one round of telemetry, mirroring it as a `"round"` trace
    /// event (budgets as `members`, survivors, best cost) when a
    /// `noc-obs` context is installed. Call sites that previously pushed
    /// onto [`SearchTelemetry::rounds`] directly go through here so the
    /// flight recorder sees every round live.
    pub fn push_round(&mut self, round: RoundTelemetry) {
        noc_obs::emit_with(|| {
            let mut event = noc_obs::TraceEvent::new("round");
            event.label = self.strategy.clone();
            event.round = Some(round.round as u64);
            event.cost = Some(round.best_cost);
            event.members = round
                .budgets
                .iter()
                .map(|b| (b.member as u64, b.evals))
                .collect();
            event.survivors = round.survivors.iter().map(|&s| s as u64).collect();
            event
        });
        self.rounds.push(round);
    }

    /// Total evaluations granted to each member across all rounds, in
    /// ascending member order. Members that never received budget are
    /// absent. The adaptive scheduler's reallocation shows up here as a
    /// *nonuniform* distribution (the CI smoke test asserts this).
    pub fn member_budget_totals(&self) -> Vec<MemberBudget> {
        let mut totals: Vec<MemberBudget> = Vec::new();
        for round in &self.rounds {
            for b in &round.budgets {
                match totals.iter_mut().find(|t| t.member == b.member) {
                    Some(t) => t.evals += b.evals,
                    None => totals.push(*b),
                }
            }
        }
        totals.sort_by_key(|t| t.member);
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_best_keeps_the_curve_monotone() {
        let mut t = SearchTelemetry::new("test");
        t.record_best(1, 10.0);
        t.record_best(2, 12.0); // worse: ignored
        t.record_best(3, 8.0);
        let costs: Vec<f64> = t.best_curve.iter().map(|p| p.cost).collect();
        assert_eq!(costs, vec![10.0, 8.0]);
    }

    #[test]
    fn member_totals_aggregate_across_rounds() {
        let mut t = SearchTelemetry::new("test");
        t.rounds.push(RoundTelemetry {
            round: 0,
            budgets: vec![
                MemberBudget {
                    member: 0,
                    evals: 5,
                },
                MemberBudget {
                    member: 1,
                    evals: 5,
                },
            ],
            survivors: vec![0],
            best_cost: 1.0,
        });
        t.rounds.push(RoundTelemetry {
            round: 1,
            budgets: vec![MemberBudget {
                member: 0,
                evals: 10,
            }],
            survivors: vec![],
            best_cost: 0.5,
        });
        let totals = t.member_budget_totals();
        assert_eq!(
            totals,
            vec![
                MemberBudget {
                    member: 0,
                    evals: 15
                },
                MemberBudget {
                    member: 1,
                    evals: 5
                },
            ]
        );
    }

    #[test]
    fn serde_roundtrip() {
        let mut t = SearchTelemetry::single_point("adaptive", 42, 3.5);
        t.children.push(SearchTelemetry::new("child"));
        let json = serde_json::to_string(&t).unwrap();
        let back: SearchTelemetry = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
