//! Tabu search with a swap-attribute tabu list and aspiration.
//!
//! A steepest-descent walk over sampled tile-swap neighborhoods that is
//! allowed to move uphill: after each applied swap the *tile pair* is
//! made tabu for `tenure` iterations, so the walk cannot immediately
//! undo itself and is forced across cost ridges. The aspiration
//! criterion overrides the list whenever a tabu move would produce a
//! new global best (Glover's standard rule — a move that improves on
//! everything seen cannot be cycling).
//!
//! Every sampled neighbor is costed through the objective's incremental
//! [`SwapDeltaCost`] path and billed as one evaluation. Since PR 10 the
//! whole neighborhood is proposed up front and costed through one
//! [`SwapDeltaCost::batch_swap_delta`] call, which lets objectives whose
//! delta engine re-evaluates a shared baseline pay it once per
//! neighborhood; selection replays in sample order, so the walk is
//! sequential, deterministic per seed, and bit-identical to per-move
//! costing.

use crate::cancel::CancelToken;
use crate::objective::SwapDeltaCost;
use crate::outcome::SearchOutcome;
use crate::sa::{propose_swap, random_mapping};
use crate::strategy::{SearchRun, SearchStrategy};
use crate::telemetry::SearchTelemetry;
use noc_model::{Mesh, TileId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How long a just-applied swap's tile pair stays forbidden.
///
/// The fixed default of 15 was hand-tuned on the paper's 3×3-class rows;
/// a tenure that fits 9 tiles is far too short for the 4096-pair
/// attribute space of a 64×64 mesh, where the walk re-applies recent
/// swaps long before it has crossed a ridge. [`Tenure::Auto`] therefore
/// scales with the instance: `max(7, round(2·√tile_count))` — the
/// standard √n rule of the reactive-tabu literature, floored so tiny
/// meshes keep a working list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Tenure {
    /// A fixed iteration count.
    Fixed(usize),
    /// `max(7, round(2·√tile_count))`, resolved per instance.
    Auto,
}

impl Tenure {
    /// The iteration count this policy yields on a mesh of `tile_count`
    /// tiles.
    pub fn resolve(self, tile_count: usize) -> usize {
        match self {
            Self::Fixed(t) => t,
            Self::Auto => ((2.0 * (tile_count as f64).sqrt()).round() as usize).max(7),
        }
    }
}

/// Tabu-search configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TabuConfig {
    /// Iterations a just-applied swap's tile pair stays forbidden
    /// (fixed, or auto-scaled with √tile_count).
    pub tenure: Tenure,
    /// Candidate swaps sampled (and costed) per iteration.
    pub neighborhood: usize,
    /// Total evaluation budget.
    pub budget: u64,
    /// RNG seed.
    pub seed: u64,
}

impl TabuConfig {
    /// Balanced defaults: fixed tenure 15, 24-candidate neighborhoods,
    /// 2 M evaluations.
    pub fn new(seed: u64) -> Self {
        Self {
            tenure: Tenure::Fixed(15),
            neighborhood: 24,
            budget: 2_000_000,
            seed,
        }
    }

    /// A fast profile for tests and CI.
    pub fn quick(seed: u64) -> Self {
        Self {
            budget: 20_000,
            ..Self::new(seed)
        }
    }
}

impl Default for TabuConfig {
    fn default() -> Self {
        Self::new(0)
    }
}

/// Tabu search as a [`SearchStrategy`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TabuSearch {
    /// Search configuration.
    pub config: TabuConfig,
}

impl TabuSearch {
    /// Strategy with the given configuration.
    pub fn new(config: TabuConfig) -> Self {
        Self { config }
    }
}

fn pair_key(a: TileId, b: TileId) -> (usize, usize) {
    let (a, b) = (a.index(), b.index());
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl<C: SwapDeltaCost + ?Sized> SearchStrategy<C> for TabuSearch {
    fn name(&self) -> String {
        "tabu".to_owned()
    }

    fn search_cancellable(
        &self,
        objective: &C,
        mesh: &Mesh,
        core_count: usize,
        cancel: &CancelToken,
    ) -> SearchRun {
        let start = crate::telemetry::wall_clock();
        let config = &self.config;
        let budget = config.budget.max(1);
        let neighborhood = config.neighborhood.max(1);
        let tenure = config.tenure.resolve(mesh.tile_count()) as u64;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let method = "tabu".to_owned();
        let mut telemetry = SearchTelemetry::new(method.clone());

        let mut current = random_mapping(mesh, core_count, &mut rng);
        let mut current_cost = objective.cost(&current);
        let mut evaluations = 1u64;
        let mut best = current.clone();
        let mut best_cost = current_cost;
        telemetry.record_best(evaluations, best_cost);

        // Expiry iteration per tabu tile pair. Lookups only — iteration
        // order of the map never influences the walk.
        let mut tabu: HashMap<(usize, usize), u64> = HashMap::new();
        let mut iteration = 0u64;

        // A 1-tile mesh has no distinct swap; the single mapping is the
        // answer.
        if mesh.tile_count() > 1 {
            // Neighborhood buffers, reused across iterations.
            let mut moves: Vec<(TileId, TileId)> = Vec::new();
            let mut deltas: Vec<f64> = Vec::new();
            // Cancellation checkpoint: once per iteration.
            while evaluations < budget && !cancel.is_cancelled() {
                iteration += 1;
                // Sample the whole neighborhood first (every RNG draw
                // happens at proposal time), cost it in one batched
                // delta call, then replay selection in sample order.
                // Batched deltas are bit-equal to per-move deltas (the
                // `batch_swap_delta` contract), so the walk is unchanged
                // move-for-move.
                moves.clear();
                for _ in 0..neighborhood {
                    if evaluations >= budget {
                        break;
                    }
                    moves.push(propose_swap(mesh, &mut rng));
                    evaluations += 1;
                }
                deltas.clear();
                objective.batch_swap_delta(&current, &moves, &mut deltas);
                // Best admissible candidate (non-tabu, or tabu but
                // aspirating) and best overall fallback; ties keep the
                // first-sampled candidate, so the walk is deterministic.
                let mut chosen: Option<(TileId, TileId, f64)> = None;
                let mut fallback: Option<(TileId, TileId, f64)> = None;
                for (&(a, b), &delta) in moves.iter().zip(&deltas) {
                    if fallback.is_none_or(|f| delta < f.2) {
                        fallback = Some((a, b, delta));
                    }
                    // A pair applied at iteration `t` carries expiry
                    // `t + tenure` and is forbidden for the *next*
                    // `tenure` iterations, `t+1 ..= t+tenure` inclusive.
                    let is_tabu = tabu
                        .get(&pair_key(a, b))
                        .is_some_and(|&expiry| expiry >= iteration);
                    let aspirates = current_cost + delta < best_cost - 1e-9;
                    if (!is_tabu || aspirates) && chosen.is_none_or(|c| delta < c.2) {
                        chosen = Some((a, b, delta));
                    }
                }
                // All sampled moves tabu without aspiration: take the
                // least-bad move anyway rather than stalling.
                let Some((a, b, delta)) = chosen.or(fallback) else {
                    break; // budget exhausted before any candidate
                };
                current.swap_tiles(a, b);
                current_cost += delta;
                tabu.insert(pair_key(a, b), iteration + tenure);
                if current_cost < best_cost - 1e-9 {
                    best_cost = current_cost;
                    best = current.clone();
                    telemetry.record_best(evaluations, best_cost);
                }
                // Periodic resync against incremental drift, within the
                // budget (same discipline as `anneal_delta`).
                if iteration.is_multiple_of(32) && evaluations < budget {
                    current_cost = objective.cost(&current);
                    evaluations += 1;
                }
            }
        }

        // Final verification evaluation (unbilled): the reported cost is
        // a from-scratch evaluation of the winner.
        let cost = objective.cost(&best);
        telemetry.evaluations = evaluations;
        let outcome = SearchOutcome {
            mapping: best,
            cost,
            evaluations,
            elapsed: start.elapsed(),
            method,
            objective: objective.name(),
        };
        SearchRun { outcome, telemetry }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the tenures `--tenure auto` resolves on the two calibration
    /// meshes the ROADMAP names: the 3×3 rows the fixed default was
    /// hand-picked on, and the 64×64 mesh where it is known to be wrong.
    #[test]
    fn auto_tenure_is_pinned_on_the_calibration_meshes() {
        assert_eq!(Tenure::Auto.resolve(3 * 3), 7, "3x3: floored at 7");
        assert_eq!(Tenure::Auto.resolve(64 * 64), 128, "64x64: 2*sqrt(4096)");
        // Sanity on nearby sizes: monotone in the tile count.
        assert_eq!(Tenure::Auto.resolve(4 * 4), 8);
        assert_eq!(Tenure::Auto.resolve(8 * 8), 16);
        assert_eq!(Tenure::Auto.resolve(4 * 4 * 4), 16, "3D cube");
        // Fixed stays literal.
        assert_eq!(Tenure::Fixed(15).resolve(64 * 64), 15);
    }

    /// The default configuration keeps the historical fixed tenure, so
    /// existing tabu trajectories are untouched.
    #[test]
    fn default_config_keeps_fixed_tenure_15() {
        assert_eq!(TabuConfig::new(0).tenure, Tenure::Fixed(15));
        assert_eq!(TabuConfig::quick(0).tenure, Tenure::Fixed(15));
    }
}
