//! Cooperative cancellation of in-flight searches.
//!
//! A [`CancelToken`] is a cloneable handle to one shared abort flag.
//! The submitting side keeps a clone and calls [`CancelToken::cancel`];
//! the strategy checks [`CancelToken::is_cancelled`] at its natural
//! checkpoint boundary — epoch (SA), round (adaptive), generation (GA),
//! iteration (tabu), member (portfolio) — and returns its best-so-far
//! result early instead of running to budget exhaustion.
//!
//! Cancellation never perturbs an *uncancelled* run: the checkpoint is a
//! pure flag read that consumes no randomness, so for a token that is
//! never cancelled, [`SearchStrategy::search_cancellable`] is
//! bit-identical to [`SearchStrategy::search`] (which is defined as
//! exactly that). A cancelled run still upholds the rest of the strategy
//! contract — the reported cost is a verified from-scratch evaluation of
//! the returned mapping and the billed evaluation count never exceeds
//! (and, once the flag is observed, stays strictly below) the budget.
//!
//! [`SearchStrategy::search_cancellable`]: crate::SearchStrategy::search_cancellable
//! [`SearchStrategy::search`]: crate::SearchStrategy::search

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Shared abort flag for cooperative search cancellation.
///
/// Clones share the flag; `Default` is a fresh, never-cancelled token.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh token in the not-cancelled state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the abort flag. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called on this token or
    /// any clone of it.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        assert!(!clone.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
        assert!(clone.is_cancelled());
        // Idempotent.
        token.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn fresh_tokens_are_independent() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }
}
