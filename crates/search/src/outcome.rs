//! Shared search-outcome type.

use noc_model::Mapping;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Outcome of one mapping search, whatever the engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// Best mapping found.
    pub mapping: Mapping,
    /// Objective value of `mapping`.
    pub cost: f64,
    /// Number of cost evaluations performed.
    pub evaluations: u64,
    /// Wall-clock time of the search.
    #[serde(with = "duration_secs")]
    pub elapsed: Duration,
    /// Engine label ("SA", "ES", "random", "greedy", "adaptive", …).
    pub method: String,
    /// Objective label ("CWM", "CDCM", …).
    pub objective: String,
}

mod duration_secs {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::time::Duration;

    pub fn serialize<S: Serializer>(d: &Duration, ser: S) -> Result<S::Ok, S::Error> {
        d.as_secs_f64().serialize(ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(de: D) -> Result<Duration, D::Error> {
        let secs = f64::deserialize(de)?;
        Ok(Duration::from_secs_f64(secs))
    }
}

impl SearchOutcome {
    /// Evaluations per second (0 if the search was instantaneous).
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.evaluations as f64 / secs
        }
    }
}
