//! The strategy contract: step/budget/telemetry.
//!
//! A [`SearchStrategy`] owns its *policy* (how to spend an evaluation
//! budget) and is generic over the *objective* (a
//! [`CostFunction`]/[`SwapDeltaCost`] implementation). The contract:
//!
//! * **Determinism** — for a fixed configuration (including the seed) a
//!   strategy returns bit-identical [`SearchRun`]s, regardless of thread
//!   count. Parallel strategies must follow the deterministic-reduction
//!   rule: every unit of work carries a stable index, results are
//!   collected by index, and ties are broken by the lowest index — never
//!   by completion order.
//! * **Budget accounting** — every objective evaluation (full or
//!   incremental swap delta, each billed as 1) counts against the
//!   configured budget; `SearchRun::outcome.evaluations` reports the
//!   billed total and never exceeds the budget. The one exception,
//!   inherited from `anneal_delta`, is the final *verification*
//!   re-evaluation of the returned best mapping, which exists so the
//!   reported cost is exactly a from-scratch evaluation (no accumulated
//!   delta drift) and is not billed.
//! * **Telemetry** — strategies emit a [`SearchTelemetry`] whose
//!   `evaluations` equals the outcome's and whose best-so-far curve is
//!   monotone.

use crate::cancel::CancelToken;
use crate::objective::CostFunction;
use crate::outcome::SearchOutcome;
use crate::telemetry::SearchTelemetry;
use noc_model::Mesh;
use serde::{Deserialize, Serialize};

/// Outcome plus telemetry of one strategy run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchRun {
    /// Best mapping, cost, and accounting.
    pub outcome: SearchOutcome,
    /// Where the budget went.
    pub telemetry: SearchTelemetry,
}

impl SearchRun {
    /// Wraps an engine without native telemetry (exhaustive, random,
    /// greedy, plain SA) in a single-point telemetry record.
    pub fn from_outcome(outcome: SearchOutcome) -> Self {
        let telemetry = SearchTelemetry::single_point(
            outcome.method.clone(),
            outcome.evaluations,
            outcome.cost,
        );
        Self { outcome, telemetry }
    }
}

/// A budgeted, seeded, telemetry-emitting search policy over an
/// objective type `C`.
pub trait SearchStrategy<C: CostFunction + ?Sized> {
    /// Strategy label (also used as `SearchOutcome::method` prefix).
    fn name(&self) -> String;

    /// Runs the search for an application with `core_count` cores on
    /// `mesh`, minimizing `objective`. See the module docs for the
    /// determinism/budget/telemetry contract.
    ///
    /// Defined as [`SearchStrategy::search_cancellable`] under a fresh,
    /// never-cancelled token — the two are bit-identical for runs that
    /// are not cancelled.
    ///
    /// # Panics
    ///
    /// Panics if `core_count` exceeds the number of tiles of `mesh`.
    fn search(&self, objective: &C, mesh: &Mesh, core_count: usize) -> SearchRun {
        self.search_cancellable(objective, mesh, core_count, &CancelToken::new())
    }

    /// [`SearchStrategy::search`] under cooperative cancellation: the
    /// strategy polls `cancel` at its checkpoint boundary (epoch, round,
    /// generation, iteration, or member — see [`crate::cancel`]) and
    /// returns its verified best-so-far early once the flag is raised,
    /// billing strictly fewer evaluations than the configured budget.
    /// The poll consumes no randomness, so an uncancelled run is
    /// bit-identical to [`SearchStrategy::search`].
    ///
    /// # Panics
    ///
    /// Panics if `core_count` exceeds the number of tiles of `mesh`.
    fn search_cancellable(
        &self,
        objective: &C,
        mesh: &Mesh,
        core_count: usize,
        cancel: &CancelToken,
    ) -> SearchRun;
}
