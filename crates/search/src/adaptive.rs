//! Adaptive restart scheduling: successive-halving budget reallocation
//! over a population of pausable SA runs.
//!
//! Static multi-start ([`crate::MultiStartSa`]) splits the evaluation
//! budget evenly and lets every restart run to its share, wasting most of
//! the budget on basins that were visibly hopeless after a fraction of
//! it. The adaptive scheduler instead executes the population in
//! *rounds*: each round grants every still-active member an equal slice,
//! ranks the population, halves it (successive halving — the bandit-style
//! budget rule of Hyperband/ASHA), and *reheats* the survivors'
//! temperatures so the extra budget explores around the good basins
//! instead of freezing in them.
//!
//! `rounds = 1` degenerates to the static `RestartBudget::Total` split
//! (no selection, no reheat); `population = 1` degenerates to a single
//! SA run with periodic reheats. Both budget modes of the legacy
//! multi-start are therefore corner cases of this scheduler.
//!
//! Determinism: members own their RNG streams and objective clones, so a
//! member's trajectory depends only on its seed and cumulative quota.
//! Rounds may execute members on any number of threads; results are
//! collected by member index and every ranking tie breaks toward the
//! lower index (the same deterministic-reduction rule as
//! `anneal_multistart`).
//!
//! The objective clones are also what keeps the walk-memoization story
//! lock-free under round advancement: a simulator-backed objective's
//! clone duplicates its private `noc_model::WalkMemo` table wholesale
//! (or starts a fresh one), so each member thread memoizes into memory
//! it exclusively owns — no shards, no guards, no cross-thread sharing,
//! and a member's hit pattern depends only on its own trajectory.

use crate::cancel::CancelToken;
use crate::objective::SwapDeltaCost;
use crate::outcome::SearchOutcome;
use crate::runner::SaMember;
use crate::strategy::{SearchRun, SearchStrategy};
use crate::telemetry::{MemberBudget, RoundTelemetry, SearchTelemetry};
use noc_model::Mesh;
use serde::{Deserialize, Serialize};

/// Configuration of the adaptive restart scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Initial population of SA members (member `i` seeds with
    /// `seed + i`, exactly like multi-start restarts).
    pub population: usize,
    /// Scheduling rounds. The budget splits evenly across rounds; the
    /// active population halves after each round (floor, min 1).
    pub rounds: usize,
    /// Total evaluation budget across the whole population.
    pub budget: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Geometric cooling factor per epoch, as in
    /// [`SaConfig`](crate::SaConfig).
    pub cooling: f64,
    /// Moves per temperature epoch; `None` scales with the tile count.
    pub moves_per_epoch: Option<usize>,
    /// Temperature multiplier applied to survivors on revival (> 1
    /// reheats; 1.0 disables reheating).
    pub reheat: f64,
}

impl AdaptiveConfig {
    /// Balanced defaults: population 8, 4 rounds, 2 M evaluations,
    /// 0.95 cooling, 1.6 reheat.
    pub fn new(seed: u64) -> Self {
        Self {
            population: 8,
            rounds: 4,
            budget: 2_000_000,
            seed,
            cooling: 0.95,
            moves_per_epoch: None,
            reheat: 1.6,
        }
    }

    /// A fast profile for tests and CI.
    pub fn quick(seed: u64) -> Self {
        Self {
            budget: 20_000,
            ..Self::new(seed)
        }
    }
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self::new(0)
    }
}

/// The adaptive restart scheduler as a [`SearchStrategy`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveRestarts {
    /// Scheduler configuration.
    pub config: AdaptiveConfig,
}

impl AdaptiveRestarts {
    /// Strategy with the given configuration.
    pub fn new(config: AdaptiveConfig) -> Self {
        Self { config }
    }
}

/// Advances the members named by `jobs` (`(member index, quota)`), in
/// parallel when the machine has cores to spare. Results land back in
/// `slots` by member index — placement never affects the outcome.
fn advance_round<C: SwapDeltaCost + Send>(
    slots: &mut [Option<SaMember<C>>],
    jobs: Vec<(usize, u64)>,
    mesh: &Mesh,
) {
    // noc-verify: allow(DET03) — thread count only batches members across workers; results land back by member index, so placement never affects the outcome
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(jobs.len().max(1));
    if threads <= 1 {
        for (id, quota) in jobs {
            let member = slots[id].as_mut().expect("member parked in its slot");
            member.advance(mesh, quota);
        }
        return;
    }
    let mut batches: Vec<Vec<(usize, SaMember<C>, u64)>> =
        (0..threads).map(|_| Vec::new()).collect();
    for (pos, (id, quota)) in jobs.into_iter().enumerate() {
        let member = slots[id].take().expect("member parked in its slot");
        batches[pos % threads].push((id, member, quota));
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = batches
            .into_iter()
            .map(|batch| {
                scope.spawn(move || {
                    batch
                        .into_iter()
                        .map(|(id, mut member, quota)| {
                            member.advance(mesh, quota);
                            (id, member)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (id, member) in handle.join().expect("search worker panicked") {
                slots[id] = Some(member);
            }
        }
    });
}

impl<C: SwapDeltaCost + Clone + Send> SearchStrategy<C> for AdaptiveRestarts {
    fn name(&self) -> String {
        "adaptive".to_owned()
    }

    fn search_cancellable(
        &self,
        objective: &C,
        mesh: &Mesh,
        core_count: usize,
        cancel: &CancelToken,
    ) -> SearchRun {
        let start = crate::telemetry::wall_clock();
        let config = &self.config;
        let population = config.population.max(1);
        let rounds = config.rounds.max(1);
        let budget = config.budget.max(1);

        // Clones happen on the calling thread (like `run_multistart`), so
        // `C` needs `Clone + Send` but not `Sync`.
        let mut slots: Vec<Option<SaMember<C>>> = (0..population)
            .map(|id| {
                Some(SaMember::new(
                    objective.clone(),
                    mesh,
                    core_count,
                    config.seed,
                    id,
                    config.cooling,
                    config.moves_per_epoch,
                ))
            })
            .collect();
        let mut active: Vec<usize> = (0..population).collect();
        let method = format!("adaptive[{population}x{rounds}]");
        let mut telemetry = SearchTelemetry::new(method.clone());
        let mut spent = 0u64;

        for round in 0..rounds {
            // Cancellation checkpoint: stop at the round boundary. Round
            // 0 always runs, so the winner reduction below has at least
            // one started member to pick from.
            if round > 0 && cancel.is_cancelled() {
                break;
            }
            let round_budget =
                budget / rounds as u64 + u64::from((round as u64) < budget % rounds as u64);
            let n = active.len() as u64;
            // Equal split inside the round; the remainder goes to the
            // lowest-indexed active members (deterministic).
            let jobs: Vec<(usize, u64)> = active
                .iter()
                .enumerate()
                .map(|(pos, &id)| {
                    (
                        id,
                        round_budget / n + u64::from((pos as u64) < round_budget % n),
                    )
                })
                .collect();
            let budgets: Vec<MemberBudget> = jobs
                .iter()
                .map(|&(member, evals)| MemberBudget { member, evals })
                .collect();
            spent += round_budget;
            advance_round(&mut slots, jobs, mesh);

            // Global best after the round: lowest cost, ties to the
            // lowest member index.
            let (mut best_id, mut best_cost) = (usize::MAX, f64::INFINITY);
            for member in slots.iter().flatten() {
                if member.started() && member.best_cost < best_cost {
                    best_cost = member.best_cost;
                    best_id = member.id;
                }
            }
            debug_assert!(best_id != usize::MAX, "some member must have run");
            telemetry.record_best(spent, best_cost);

            // Successive halving: rank the active members, keep the top
            // half (min 1), reheat the survivors for the next round.
            let mut survivors = Vec::new();
            if round + 1 < rounds && active.len() > 1 {
                let mut ranked = active.clone();
                ranked.sort_by(|&a, &b| {
                    let (ca, cb) = (
                        slots[a].as_ref().expect("parked").best_cost,
                        slots[b].as_ref().expect("parked").best_cost,
                    );
                    ca.total_cmp(&cb).then(a.cmp(&b))
                });
                ranked.truncate((active.len() / 2).max(1));
                ranked.sort_unstable();
                for &id in &ranked {
                    slots[id].as_mut().expect("parked").reheat(config.reheat);
                }
                survivors = ranked;
            }
            telemetry.push_round(RoundTelemetry {
                round,
                budgets,
                survivors: survivors.clone(),
                best_cost,
            });
            if !survivors.is_empty() {
                active = survivors;
            }
        }

        // Winner across *all* members (eliminated members keep their
        // bests), re-verified from scratch so the reported cost carries
        // no incremental drift (unbilled, as in `anneal_delta`).
        let mut winner: Option<&SaMember<C>> = None;
        for member in slots.iter().flatten() {
            if member.started() && winner.is_none_or(|w| member.best_cost < w.best_cost) {
                winner = Some(member);
            }
        }
        let winner = winner.expect("budget >= 1 ran at least one member");
        let evaluations: u64 = slots.iter().flatten().map(|m| m.evaluations).sum();
        debug_assert!(
            cancel.is_cancelled() || evaluations == budget,
            "adaptive bills its exact budget"
        );
        let cost = winner.verify_cost(&winner.best);
        telemetry.evaluations = evaluations;
        let outcome = SearchOutcome {
            mapping: winner.best.clone(),
            cost,
            evaluations,
            elapsed: start.elapsed(),
            method,
            objective: objective.name(),
        };
        SearchRun { outcome, telemetry }
    }
}
