//! Simulated annealing — the search method of the paper's FRW framework.
//!
//! The paper's §4 describes the loop: start from a random mapping,
//! evaluate its cost, propose a new mapping, keep it if better (or with
//! Boltzmann probability if worse), until a stop condition. The elementary
//! move is a swap of two tiles (occupied or empty), which preserves
//! injectivity by construction.
//!
//! This module is the promoted home of the engine that started life in
//! `noc-mapping::sa` (which now re-exports it): the plain annealer, the
//! incremental-delta annealer, and the parallel multi-start wrappers with
//! their deterministic reduction.

use crate::cancel::CancelToken;
use crate::objective::{CostFunction, SwapDeltaCost};
use crate::outcome::SearchOutcome;
use crate::strategy::{SearchRun, SearchStrategy};
use crate::telemetry::{MemberBudget, RoundTelemetry, SearchTelemetry};
use noc_model::{Mapping, Mesh, TileId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Mirrors one temperature epoch as an `"epoch"` trace event when a
/// `noc-obs` context is installed (free otherwise — the closure never
/// runs). The accept/reject stream is what the flight recorder shows
/// per live job.
fn emit_epoch(label: &'static str, epoch: u64, evaluations: u64, best: f64, a: u64, r: u64) {
    noc_obs::emit_with(|| {
        let mut event = noc_obs::TraceEvent::new("epoch");
        event.label = label.to_owned();
        event.round = Some(epoch);
        event.evaluations = evaluations;
        event.cost = Some(best);
        event.counters = vec![("accepts", a), ("rejects", r)];
        event
    });
}

/// Annealer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaConfig {
    /// Initial temperature; `None` auto-calibrates from a random-move
    /// sample so that ~80 % of uphill moves are initially accepted.
    pub initial_temperature: Option<f64>,
    /// Geometric cooling factor per epoch, in `(0, 1)`.
    pub cooling: f64,
    /// Proposed moves per temperature epoch; `None` scales with the tile
    /// count (`8 × n`).
    pub moves_per_epoch: Option<usize>,
    /// Stop after this many consecutive epochs without improving the best
    /// cost.
    pub stall_epochs: usize,
    /// Hard cap on cost evaluations.
    pub max_evaluations: u64,
    /// RNG seed (searches are fully reproducible).
    pub seed: u64,
}

impl SaConfig {
    /// A balanced default: auto temperature, 0.95 cooling, 24 stall
    /// epochs.
    pub fn new(seed: u64) -> Self {
        Self {
            initial_temperature: None,
            cooling: 0.95,
            moves_per_epoch: None,
            stall_epochs: 24,
            max_evaluations: 2_000_000,
            seed,
        }
    }

    /// A fast profile for tests and CI (fewer epochs and moves).
    pub fn quick(seed: u64) -> Self {
        Self {
            stall_epochs: 8,
            max_evaluations: 20_000,
            ..Self::new(seed)
        }
    }
}

impl Default for SaConfig {
    fn default() -> Self {
        Self::new(0)
    }
}

/// Uniform random permutation of the mesh's tiles (Fisher–Yates) — the
/// one shuffle every engine in this crate draws its placements from, so
/// the sampling discipline cannot silently diverge between engines.
pub(crate) fn shuffled_tiles(mesh: &Mesh, rng: &mut StdRng) -> Vec<TileId> {
    let mut tiles: Vec<TileId> = mesh.tiles().collect();
    for i in (1..tiles.len()).rev() {
        let j = rng.gen_range(0..=i);
        tiles.swap(i, j);
    }
    tiles
}

/// Uniform random injective mapping of `cores` cores onto `mesh`
/// (Fisher–Yates prefix). Shared by every engine in this crate.
///
/// # Panics
///
/// Panics if `cores` exceeds the tile count of `mesh`.
pub fn random_mapping(mesh: &Mesh, cores: usize, rng: &mut StdRng) -> Mapping {
    let tiles = shuffled_tiles(mesh, rng);
    Mapping::from_tiles(mesh, tiles.into_iter().take(cores)).expect("shuffled prefix is injective")
}

/// Uniformly proposes a swap of two distinct tiles (the paper's
/// elementary move). On a 1-tile mesh the identity move is returned
/// instead of panicking.
pub fn propose_swap(mesh: &Mesh, rng: &mut StdRng) -> (TileId, TileId) {
    let n = mesh.tile_count();
    if n == 1 {
        // A 1-tile mesh has no distinct pair to swap; return the identity
        // move (a degenerate no-op) instead of panicking on an empty
        // `gen_range`. `Mapping::swap_tiles(t, t)` is a no-op, so the
        // annealer simply re-evaluates the only mapping until its stall
        // counter stops it.
        let t = TileId::new(0);
        return (t, t);
    }
    let a = rng.gen_range(0..n);
    let mut b = rng.gen_range(0..n - 1);
    if b >= a {
        b += 1;
    }
    (TileId::new(a), TileId::new(b))
}

/// Runs simulated annealing on `objective` for an application with
/// `core_count` cores on `mesh`.
///
/// Evaluates the full cost for every accepted candidate; see
/// [`anneal_delta`] for the incremental-evaluation variant.
///
/// # Panics
///
/// Panics if `core_count` exceeds the number of tiles of `mesh`.
pub fn anneal<C: CostFunction + ?Sized>(
    objective: &C,
    mesh: &Mesh,
    core_count: usize,
    config: &SaConfig,
) -> SearchOutcome {
    anneal_cancellable(objective, mesh, core_count, config, &CancelToken::new())
}

/// [`anneal`] under cooperative cancellation: the abort flag is polled
/// once per temperature epoch, so a cancelled run returns its best-so-far
/// within one epoch instead of running to budget exhaustion. The poll
/// consumes no randomness — an uncancelled run is bit-identical to
/// [`anneal`].
///
/// # Panics
///
/// Panics if `core_count` exceeds the number of tiles of `mesh`.
pub fn anneal_cancellable<C: CostFunction + ?Sized>(
    objective: &C,
    mesh: &Mesh,
    core_count: usize,
    config: &SaConfig,
    cancel: &CancelToken,
) -> SearchOutcome {
    let start = crate::telemetry::wall_clock();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut current = random_mapping(mesh, core_count, &mut rng);
    let mut current_cost = objective.cost(&current);
    let mut evaluations: u64 = 1;

    let mut best = current.clone();
    let mut best_cost = current_cost;

    let moves = config
        .moves_per_epoch
        .unwrap_or(8 * mesh.tile_count())
        .max(1);

    // Auto-calibrate the starting temperature from a sample of move costs.
    let mut temperature = config.initial_temperature.unwrap_or_else(|| {
        let mut sample = current.clone();
        let mut deltas = Vec::new();
        for _ in 0..16.min(config.max_evaluations.saturating_sub(1)) {
            let (a, b) = propose_swap(mesh, &mut rng);
            sample.swap_tiles(a, b);
            let c = objective.cost(&sample);
            evaluations += 1;
            deltas.push((c - current_cost).abs());
            sample.swap_tiles(a, b);
        }
        let mean = deltas.iter().sum::<f64>() / deltas.len().max(1) as f64;
        // exp(-mean/T0) = 0.8 => T0 = mean / ln(1/0.8).
        (mean / (1.0f64 / 0.8).ln()).max(1e-9)
    });

    let mut stall = 0usize;
    let mut epoch: u64 = 0;
    'outer: while stall < config.stall_epochs {
        if cancel.is_cancelled() {
            break 'outer;
        }
        let mut improved = false;
        // Accept/reject tallies are plain local adds, kept even when
        // tracing is off: they feed nothing back into the walk, and the
        // branch-free bookkeeping keeps traced and untraced runs on the
        // exact same instruction path through the RNG.
        let (mut accepts, mut rejects) = (0u64, 0u64);
        for _ in 0..moves {
            if evaluations >= config.max_evaluations {
                break 'outer;
            }
            let (a, b) = propose_swap(mesh, &mut rng);
            current.swap_tiles(a, b);
            let candidate_cost = objective.cost(&current);
            evaluations += 1;
            let delta = candidate_cost - current_cost;
            let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temperature).exp();
            if accept {
                accepts += 1;
                current_cost = candidate_cost;
                if current_cost < best_cost {
                    best_cost = current_cost;
                    best = current.clone();
                    improved = true;
                }
            } else {
                rejects += 1;
                current.swap_tiles(a, b); // undo
            }
        }
        emit_epoch("SA", epoch, evaluations, best_cost, accepts, rejects);
        epoch += 1;
        temperature *= config.cooling;
        stall = if improved { 0 } else { stall + 1 };
    }

    SearchOutcome {
        mapping: best,
        cost: best_cost,
        evaluations,
        elapsed: start.elapsed(),
        method: "SA".to_owned(),
        objective: objective.name(),
    }
}

/// Simulated annealing using [`SwapDeltaCost`] for O(affected-edges) move
/// evaluation — the optimization that keeps the CWM strategy cheap. The
/// running cost is re-synchronised with a full evaluation once per epoch
/// to stop floating-point drift.
///
/// # Panics
///
/// Panics if `core_count` exceeds the number of tiles of `mesh`.
pub fn anneal_delta<C: SwapDeltaCost + ?Sized>(
    objective: &C,
    mesh: &Mesh,
    core_count: usize,
    config: &SaConfig,
) -> SearchOutcome {
    anneal_delta_cancellable(objective, mesh, core_count, config, &CancelToken::new())
}

/// [`anneal_delta`] under cooperative cancellation — the abort flag is
/// polled once per temperature epoch, exactly like
/// [`anneal_cancellable`]; an uncancelled run is bit-identical to
/// [`anneal_delta`].
///
/// # Panics
///
/// Panics if `core_count` exceeds the number of tiles of `mesh`.
pub fn anneal_delta_cancellable<C: SwapDeltaCost + ?Sized>(
    objective: &C,
    mesh: &Mesh,
    core_count: usize,
    config: &SaConfig,
    cancel: &CancelToken,
) -> SearchOutcome {
    let start = crate::telemetry::wall_clock();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut current = random_mapping(mesh, core_count, &mut rng);
    let mut current_cost = objective.cost(&current);
    let mut evaluations: u64 = 1;

    let mut best = current.clone();
    let mut best_cost = current_cost;

    let moves = config
        .moves_per_epoch
        .unwrap_or(8 * mesh.tile_count())
        .max(1);
    let mut temperature = config.initial_temperature.unwrap_or_else(|| {
        let mut deltas = Vec::new();
        // Same budget-capped sample size as `anneal`, so the two
        // variants consume identical evaluation counts here and tiny
        // total budgets still bind exactly.
        for _ in 0..16.min(config.max_evaluations.saturating_sub(1)) {
            let (a, b) = propose_swap(mesh, &mut rng);
            deltas.push(objective.swap_delta(&current, a, b).abs());
            evaluations += 1;
        }
        let mean = deltas.iter().sum::<f64>() / deltas.len().max(1) as f64;
        (mean / (1.0f64 / 0.8).ln()).max(1e-9)
    });

    let mut stall = 0usize;
    let mut epoch: u64 = 0;
    'outer: while stall < config.stall_epochs {
        if cancel.is_cancelled() {
            break 'outer;
        }
        let mut improved = false;
        // Same unconditional tally discipline as `anneal_cancellable`.
        let (mut accepts, mut rejects) = (0u64, 0u64);
        for _ in 0..moves {
            if evaluations >= config.max_evaluations {
                break 'outer;
            }
            let (a, b) = propose_swap(mesh, &mut rng);
            let delta = objective.swap_delta(&current, a, b);
            evaluations += 1;
            let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temperature).exp();
            if accept {
                accepts += 1;
                current.swap_tiles(a, b);
                current_cost += delta;
                if current_cost < best_cost - 1e-9 {
                    best_cost = current_cost;
                    best = current.clone();
                    improved = true;
                }
            } else {
                rejects += 1;
            }
        }
        emit_epoch("SA-delta", epoch, evaluations, best_cost, accepts, rejects);
        epoch += 1;
        // Re-synchronise against drift (within the budget: the reported
        // evaluation count must never exceed `max_evaluations`).
        if evaluations < config.max_evaluations {
            current_cost = objective.cost(&current);
            evaluations += 1;
        }
        temperature *= config.cooling;
        stall = if improved { 0 } else { stall + 1 };
    }

    let final_best_cost = objective.cost(&best);
    SearchOutcome {
        mapping: best,
        cost: final_best_cost,
        evaluations,
        elapsed: start.elapsed(),
        method: "SA-delta".to_owned(),
        objective: objective.name(),
    }
}

/// How `config.max_evaluations` is interpreted by a multi-start search.
///
/// Historically `anneal_multistart` ran the *per-restart* budget `N`
/// times, so `--restarts N` silently spent `N×` the evaluations of a
/// single-start run with the same configuration. [`RestartBudget::Total`]
/// makes the budget an explicit total, divided across restarts — the mode
/// fair comparisons (and the CLI) use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RestartBudget {
    /// Every restart gets the full `config.max_evaluations` (the
    /// original behavior; total spend is `restarts ×` the budget).
    PerRestart,
    /// `config.max_evaluations` is the total across all restarts:
    /// restart `i` gets `total / restarts`, with the remainder spread
    /// over the first `total % restarts` restarts. The restart count is
    /// clamped to the total budget, so every restart performs at least
    /// one (billed) evaluation and the total is never exceeded.
    Total,
}

impl RestartBudget {
    /// The evaluation budget of restart `i` of `restarts`.
    fn for_restart(self, total: u64, i: usize, restarts: usize) -> u64 {
        match self {
            Self::PerRestart => total,
            Self::Total => {
                let n = restarts as u64;
                total / n + u64::from((i as u64) < total % n)
            }
        }
    }

    /// The effective restart count for a configured `restarts` and
    /// `total` budget. In [`RestartBudget::Total`] mode the count is
    /// clamped to the budget: `restarts > total` would otherwise create
    /// zero-evaluation restarts that report an initial random mapping
    /// with a cost that was never evaluated under the budget — and bill
    /// one evaluation each *past* the configured total.
    pub fn effective_restarts(self, total: u64, restarts: usize) -> usize {
        let restarts = restarts.max(1);
        match self {
            Self::PerRestart => restarts,
            Self::Total => restarts.min(usize::try_from(total.max(1)).unwrap_or(usize::MAX)),
        }
    }
}

/// Deterministic reduction over per-restart outcomes: minimum cost wins,
/// ties go to the lowest restart index, evaluations are summed.
fn reduce_multistart(
    mut outcomes: Vec<SearchOutcome>,
    restarts: usize,
    start: Instant,
) -> SearchOutcome {
    let evaluations: u64 = outcomes.iter().map(|o| o.evaluations).sum();
    let mut best_idx = 0;
    for (i, o) in outcomes.iter().enumerate() {
        // Strict `<` keeps the lowest restart index on ties, so the result
        // does not depend on thread scheduling.
        if o.cost < outcomes[best_idx].cost {
            best_idx = i;
        }
    }
    let mut best = outcomes.swap_remove(best_idx);
    best.evaluations = evaluations;
    best.elapsed = start.elapsed();
    best.method = format!("{}-multistart[{restarts}]", best.method);
    best
}

/// Runs `restarts` independent searches with derived seeds across the
/// available cores and reduces deterministically.
///
/// The objective is cloned once per restart *on the calling thread*
/// (clones of the engine-backed objectives share the route cache but own
/// their scratch), so `C` needs `Clone + Send` but not `Sync`.
fn run_multistart<C, F>(
    objective: &C,
    config: &SaConfig,
    restarts: usize,
    budget: RestartBudget,
    run: F,
) -> SearchOutcome
where
    C: Clone + Send,
    F: Fn(&C, SaConfig) -> SearchOutcome + Sync,
{
    let restarts = budget.effective_restarts(config.max_evaluations, restarts);
    let start = crate::telemetry::wall_clock();
    let jobs: Vec<(usize, C, SaConfig)> = (0..restarts)
        .map(|i| {
            let config = SaConfig {
                seed: config.seed.wrapping_add(i as u64),
                max_evaluations: budget.for_restart(config.max_evaluations, i, restarts),
                ..*config
            };
            (i, objective.clone(), config)
        })
        .collect();
    // noc-verify: allow(DET03) — thread count only shapes work placement; each restart's trajectory is fixed by its seed and the reduction is order-insensitive
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(restarts);

    let mut outcomes: Vec<Option<SearchOutcome>> = (0..restarts).map(|_| None).collect();
    if threads <= 1 {
        for (i, obj, cfg) in jobs {
            outcomes[i] = Some(run(&obj, cfg));
        }
    } else {
        // Round-robin the restarts over `threads` workers; results carry
        // their restart index, so placement does not affect the reduction.
        let mut batches: Vec<Vec<(usize, C, SaConfig)>> =
            (0..threads).map(|_| Vec::new()).collect();
        for job in jobs {
            let slot = job.0 % threads;
            batches[slot].push(job);
        }
        let run = &run;
        std::thread::scope(|scope| {
            let handles: Vec<_> = batches
                .into_iter()
                .map(|batch| {
                    scope.spawn(move || {
                        batch
                            .into_iter()
                            .map(|(i, obj, cfg)| (i, run(&obj, cfg)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                for (i, outcome) in handle.join().expect("search worker panicked") {
                    outcomes[i] = Some(outcome);
                }
            }
        });
    }
    reduce_multistart(
        outcomes
            .into_iter()
            .map(|o| o.expect("all restarts ran"))
            .collect(),
        restarts,
        start,
    )
}

/// Parallel multi-start simulated annealing: `restarts` independent
/// [`anneal`] runs with seeds `config.seed + i`, executed across the
/// available cores, reduced to the best outcome.
///
/// Fully deterministic for a fixed `(config, restarts)`: each restart's
/// seed is derived from its index, and the reduction prefers the lowest
/// cost with ties broken by restart index — thread scheduling never
/// changes the result. `restarts = 1` is exactly [`anneal`] (modulo the
/// method label and wall-clock). The reported `evaluations` is the total
/// across restarts.
///
/// # Panics
///
/// Panics if `core_count` exceeds the number of tiles of `mesh`, or if a
/// search worker panics.
pub fn anneal_multistart<C>(
    objective: &C,
    mesh: &Mesh,
    core_count: usize,
    config: &SaConfig,
    restarts: usize,
) -> SearchOutcome
where
    C: CostFunction + Clone + Send,
{
    anneal_multistart_budgeted(
        objective,
        mesh,
        core_count,
        config,
        restarts,
        RestartBudget::PerRestart,
    )
}

/// [`anneal_multistart`] with an explicit interpretation of
/// `config.max_evaluations` — see [`RestartBudget`]. With
/// [`RestartBudget::Total`], a multi-start run spends (approximately) the
/// same number of evaluations as a single-start run of the same
/// configuration, so `--method sa` and `--method sa-multi` compare
/// fairly.
///
/// # Panics
///
/// Panics if `core_count` exceeds the number of tiles of `mesh`, or if a
/// search worker panics.
pub fn anneal_multistart_budgeted<C>(
    objective: &C,
    mesh: &Mesh,
    core_count: usize,
    config: &SaConfig,
    restarts: usize,
    budget: RestartBudget,
) -> SearchOutcome
where
    C: CostFunction + Clone + Send,
{
    run_multistart(objective, config, restarts, budget, |obj, cfg| {
        anneal(obj, mesh, core_count, &cfg)
    })
}

/// Multi-start variant of [`anneal_delta`] for objectives with
/// incremental move evaluation; same determinism guarantees as
/// [`anneal_multistart`].
///
/// # Panics
///
/// Panics if `core_count` exceeds the number of tiles of `mesh`, or if a
/// search worker panics.
pub fn anneal_multistart_delta<C>(
    objective: &C,
    mesh: &Mesh,
    core_count: usize,
    config: &SaConfig,
    restarts: usize,
) -> SearchOutcome
where
    C: SwapDeltaCost + Clone + Send,
{
    anneal_multistart_delta_budgeted(
        objective,
        mesh,
        core_count,
        config,
        restarts,
        RestartBudget::PerRestart,
    )
}

/// [`anneal_multistart_delta`] with an explicit budget interpretation —
/// see [`RestartBudget`].
///
/// # Panics
///
/// Panics if `core_count` exceeds the number of tiles of `mesh`, or if a
/// search worker panics.
pub fn anneal_multistart_delta_budgeted<C>(
    objective: &C,
    mesh: &Mesh,
    core_count: usize,
    config: &SaConfig,
    restarts: usize,
    budget: RestartBudget,
) -> SearchOutcome
where
    C: SwapDeltaCost + Clone + Send,
{
    anneal_multistart_delta_cancellable(
        objective,
        mesh,
        core_count,
        config,
        restarts,
        budget,
        &CancelToken::new(),
    )
}

/// [`anneal_multistart_delta_budgeted`] under cooperative cancellation:
/// every restart polls the shared token at its epoch boundary (see
/// [`anneal_delta_cancellable`]), so an abort stops the whole population
/// within one epoch per in-flight restart. The deterministic reduction
/// is unchanged; an uncancelled run is bit-identical to the
/// uncancellable variant.
///
/// # Panics
///
/// Panics if `core_count` exceeds the number of tiles of `mesh`, or if a
/// search worker panics.
pub fn anneal_multistart_delta_cancellable<C>(
    objective: &C,
    mesh: &Mesh,
    core_count: usize,
    config: &SaConfig,
    restarts: usize,
    budget: RestartBudget,
    cancel: &CancelToken,
) -> SearchOutcome
where
    C: SwapDeltaCost + Clone + Send,
{
    run_multistart(objective, config, restarts, budget, |obj, cfg| {
        anneal_delta_cancellable(obj, mesh, core_count, &cfg, cancel)
    })
}

/// Multi-start SA as a [`SearchStrategy`]: the statically-split
/// population baseline. The adaptive scheduler
/// ([`crate::AdaptiveRestarts`]) subsumes this as the degenerate
/// single-round, no-selection configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiStartSa {
    /// Per-restart annealer configuration (seed of restart `i` is
    /// `config.seed + i`; `config.max_evaluations` is interpreted per
    /// `budget`).
    pub config: SaConfig,
    /// Number of independent restarts (clamped per
    /// [`RestartBudget::effective_restarts`]).
    pub restarts: usize,
    /// Budget interpretation.
    pub budget: RestartBudget,
}

impl<C: SwapDeltaCost + Clone + Send> SearchStrategy<C> for MultiStartSa {
    fn name(&self) -> String {
        "SA-multistart".to_owned()
    }

    fn search_cancellable(
        &self,
        objective: &C,
        mesh: &Mesh,
        core_count: usize,
        cancel: &CancelToken,
    ) -> SearchRun {
        let outcome = anneal_multistart_delta_cancellable(
            objective,
            mesh,
            core_count,
            &self.config,
            self.restarts,
            self.budget,
            cancel,
        );
        let restarts = self
            .budget
            .effective_restarts(self.config.max_evaluations, self.restarts);
        let mut telemetry = SearchTelemetry::new(outcome.method.clone());
        telemetry.evaluations = outcome.evaluations;
        telemetry.push_round(RoundTelemetry {
            round: 0,
            budgets: (0..restarts)
                .map(|i| MemberBudget {
                    member: i,
                    evals: self
                        .budget
                        .for_restart(self.config.max_evaluations, i, restarts),
                })
                .collect(),
            survivors: Vec::new(),
            best_cost: outcome.cost,
        });
        telemetry.record_best(outcome.evaluations, outcome.cost);
        SearchRun { outcome, telemetry }
    }
}
