//! Genetic search over permutation mappings.
//!
//! Follows the permutation-GA recipe of Jha et al. ("Energy and Latency
//! Aware Application Mapping Algorithm & Optimization for Homogeneous
//! 3D NoC"): tournament selection, order-preserving crossover (PMX or
//! cycle), swap mutation, and elitism. A chromosome is a full permutation
//! of the mesh's tiles; cores `0..k` sit on the first `k` entries, so
//! injectivity is structural and crossover needs no repair beyond the
//! standard PMX/CX mapping resolution.
//!
//! The mutation step is exactly the annealer's elementary move — a tile
//! swap — so mutated offspring are costed through the objective's
//! *incremental* [`SwapDeltaCost`] path (one billed evaluation), not a
//! full re-evaluation; only crossover offspring pay for a from-scratch
//! cost. The search is sequential and therefore trivially deterministic
//! per seed.
//!
//! ## Generation batching
//!
//! Crossover offspring are not costed one by one: each generation packs
//! them into a single [`BatchCost::batch_cost`] call at the generation
//! flush, so simulator-backed objectives amortize route resolution and
//! scratch arenas across the whole brood (see
//! `noc_sim::BatchEvaluator`). The trajectory is bit-identical to
//! per-offspring costing because every RNG draw happens at offspring
//! *creation*, costs are pure per mapping (the [`BatchCost`] contract),
//! and best-tracking/telemetry replay in creation order with the
//! evaluation numbers billed at creation.

use crate::cancel::CancelToken;
use crate::objective::{BatchCost, SwapDeltaCost};
use crate::outcome::SearchOutcome;
use crate::strategy::{SearchRun, SearchStrategy};
use crate::telemetry::SearchTelemetry;
use noc_model::{Mapping, Mesh, TileId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which order-preserving crossover operator recombines parents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Crossover {
    /// Partially-mapped crossover: a random segment from parent A, the
    /// rest from parent B with conflicts resolved through the segment's
    /// position mapping.
    Pmx,
    /// Cycle crossover: alternating parent cycles; fully deterministic
    /// given the parents (uses no randomness).
    Cycle,
}

impl Crossover {
    /// Display label ("pmx" / "cycle").
    pub fn label(self) -> &'static str {
        match self {
            Self::Pmx => "pmx",
            Self::Cycle => "cycle",
        }
    }
}

/// Genetic-algorithm configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaConfig {
    /// Individuals per generation.
    pub population: usize,
    /// Top individuals copied unchanged into the next generation
    /// (no evaluation billed).
    pub elite: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Crossover operator.
    pub crossover: Crossover,
    /// Probability an offspring comes from crossover (full evaluation);
    /// otherwise it is a swap-mutated clone costed incrementally.
    pub crossover_rate: f64,
    /// Total evaluation budget.
    pub budget: u64,
    /// RNG seed.
    pub seed: u64,
}

impl GaConfig {
    /// Balanced defaults: population 24, elite 2, tournament 3, PMX at
    /// rate 0.85, 2 M evaluations.
    pub fn new(seed: u64) -> Self {
        Self {
            population: 24,
            elite: 2,
            tournament: 3,
            crossover: Crossover::Pmx,
            crossover_rate: 0.85,
            budget: 2_000_000,
            seed,
        }
    }

    /// A fast profile for tests and CI.
    pub fn quick(seed: u64) -> Self {
        Self {
            budget: 20_000,
            ..Self::new(seed)
        }
    }
}

impl Default for GaConfig {
    fn default() -> Self {
        Self::new(0)
    }
}

/// One chromosome: a full tile permutation plus its tracked cost.
#[derive(Debug, Clone)]
struct Indiv {
    perm: Vec<u32>,
    cost: f64,
}

fn mapping_of(mesh: &Mesh, perm: &[u32], cores: usize) -> Mapping {
    Mapping::from_tiles(mesh, perm[..cores].iter().map(|&t| TileId::new(t as usize)))
        .expect("permutation prefix is injective")
}

/// Partially-mapped crossover of full permutations over the segment
/// `[lo, hi)`; O(n) via the position table of `pb`.
fn pmx(pa: &[u32], pb: &[u32], lo: usize, hi: usize) -> Vec<u32> {
    let n = pa.len();
    let mut child = vec![u32::MAX; n];
    child[lo..hi].copy_from_slice(&pa[lo..hi]);
    let mut pos_b = vec![0usize; n];
    for (idx, &v) in pb.iter().enumerate() {
        pos_b[v as usize] = idx;
    }
    let mut in_segment = vec![false; n];
    for &v in &pa[lo..hi] {
        in_segment[v as usize] = true;
    }
    for (idx, &v) in pb.iter().enumerate().take(hi).skip(lo) {
        if in_segment[v as usize] {
            continue;
        }
        // Follow the displacement chain until it leaves the segment.
        let mut p = idx;
        while (lo..hi).contains(&p) {
            p = pos_b[pa[p] as usize];
        }
        child[p] = v;
    }
    for idx in 0..n {
        if child[idx] == u32::MAX {
            child[idx] = pb[idx];
        }
    }
    child
}

/// Cycle crossover of full permutations: cycles alternate between the
/// parents, starting with parent A.
fn cycle_crossover(pa: &[u32], pb: &[u32]) -> Vec<u32> {
    let n = pa.len();
    let mut child = vec![u32::MAX; n];
    let mut pos_a = vec![0usize; n];
    for (idx, &v) in pa.iter().enumerate() {
        pos_a[v as usize] = idx;
    }
    let mut from_a = true;
    for start in 0..n {
        if child[start] != u32::MAX {
            continue;
        }
        let mut p = start;
        loop {
            child[p] = if from_a { pa[p] } else { pb[p] };
            p = pos_a[pb[p] as usize];
            if p == start {
                break;
            }
        }
        from_a = !from_a;
    }
    child
}

/// The genetic algorithm as a [`SearchStrategy`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneticSearch {
    /// Algorithm configuration.
    pub config: GaConfig,
}

impl GeneticSearch {
    /// Strategy with the given configuration.
    pub fn new(config: GaConfig) -> Self {
        Self { config }
    }
}

impl GeneticSearch {
    /// Tournament selection: best of `k` uniform draws, ties to the
    /// earliest population index.
    fn tournament(&self, pop: &[Indiv], rng: &mut StdRng) -> usize {
        let k = self.config.tournament.max(1);
        let mut winner = rng.gen_range(0..pop.len());
        for _ in 1..k {
            let challenger = rng.gen_range(0..pop.len());
            if pop[challenger].cost < pop[winner].cost
                || (pop[challenger].cost == pop[winner].cost && challenger < winner)
            {
                winner = challenger;
            }
        }
        winner
    }
}

/// One deferred best-tracking replay entry: which `next` slot, the
/// evaluation number billed at creation, and (for crossover offspring)
/// the slot in the generation's cost batch.
type Pending = (usize, u64, Option<usize>);

impl<C: SwapDeltaCost + BatchCost + ?Sized> SearchStrategy<C> for GeneticSearch {
    fn name(&self) -> String {
        format!("GA[{}]", self.config.crossover.label())
    }

    fn search_cancellable(
        &self,
        objective: &C,
        mesh: &Mesh,
        core_count: usize,
        cancel: &CancelToken,
    ) -> SearchRun {
        let start = crate::telemetry::wall_clock();
        let config = &self.config;
        let n = mesh.tile_count();
        let budget = config.budget.max(1);
        let pop_size = config.population.max(2);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let method = <Self as SearchStrategy<C>>::name(self);
        let mut telemetry = SearchTelemetry::new(method.clone());
        let mut evaluations = 0u64;

        let mut best_perm: Vec<u32> = Vec::new();
        let mut best_cost = f64::INFINITY;

        // Initial population: uniform random permutations, costed in one
        // batch after creation (every RNG draw happens at creation, so
        // batching cannot perturb the stream). At least one individual is
        // always evaluated, so a cancelled run still returns a verified
        // mapping.
        let mut pop: Vec<Indiv> = Vec::new();
        let mut batch: Vec<Mapping> = Vec::new();
        let mut batch_costs: Vec<f64> = Vec::new();
        for _ in 0..pop_size {
            if evaluations >= budget || (evaluations > 0 && cancel.is_cancelled()) {
                break;
            }
            let perm: Vec<u32> = crate::sa::shuffled_tiles(mesh, &mut rng)
                .iter()
                .map(|t| t.index() as u32)
                .collect();
            batch.push(mapping_of(mesh, &perm, core_count));
            evaluations += 1;
            pop.push(Indiv {
                perm,
                cost: f64::NAN,
            });
        }
        objective.batch_cost(&batch, &mut batch_costs);
        for (idx, (indiv, &cost)) in pop.iter_mut().zip(&batch_costs).enumerate() {
            indiv.cost = cost;
            if cost < best_cost {
                best_cost = cost;
                best_perm = indiv.perm.clone();
                telemetry.record_best(idx as u64 + 1, cost);
            }
        }

        // Elites alone must never fill a generation: with
        // `elite >= pop_size` the offspring loop would add nothing, bill
        // nothing, and the budget loop would never terminate.
        let elite = config.elite.min(pop.len()).min(pop_size - 1);
        let mut pending: Vec<Pending> = Vec::new();
        'outer: while evaluations < budget && !cancel.is_cancelled() {
            // Rank: cost ascending, ties to the earlier index.
            let mut ranked: Vec<usize> = (0..pop.len()).collect();
            ranked.sort_by(|&a, &b| pop[a].cost.total_cmp(&pop[b].cost).then(a.cmp(&b)));

            let mut next: Vec<Indiv> = ranked[..elite].iter().map(|&i| pop[i].clone()).collect();
            batch.clear();
            pending.clear();
            let mut exhausted = false;
            while next.len() < pop_size {
                if evaluations >= budget {
                    exhausted = true;
                    break;
                }
                let pa = self.tournament(&pop, &mut rng);
                // On a 1-tile mesh there is no distinct pair to mutate;
                // force the (degenerate) crossover path so every
                // offspring still bills an evaluation and the budget
                // loop terminates.
                let crossed = n < 2 || rng.gen::<f64>() < config.crossover_rate;
                if crossed {
                    let pb = self.tournament(&pop, &mut rng);
                    let child = match config.crossover {
                        Crossover::Pmx => {
                            let mut lo = rng.gen_range(0..n);
                            let mut hi = rng.gen_range(0..n);
                            if lo > hi {
                                std::mem::swap(&mut lo, &mut hi);
                            }
                            pmx(&pop[pa].perm, &pop[pb].perm, lo, hi + 1)
                        }
                        Crossover::Cycle => cycle_crossover(&pop[pa].perm, &pop[pb].perm),
                    };
                    // Deferred: the cost arrives at the generation flush.
                    evaluations += 1;
                    pending.push((next.len(), evaluations, Some(batch.len())));
                    batch.push(mapping_of(mesh, &child, core_count));
                    next.push(Indiv {
                        perm: child,
                        cost: f64::NAN,
                    });
                } else {
                    // Swap mutation on the incremental fast path: the
                    // move is a tile swap touching at least one occupied
                    // tile, costed as parent + swap_delta (one billed
                    // evaluation, no full re-schedule for objectives
                    // with a real delta engine). Parents come from the
                    // previous, fully costed generation.
                    let parent = &pop[pa];
                    let i = rng.gen_range(0..core_count);
                    let mut j = rng.gen_range(0..n - 1);
                    if j >= i {
                        j += 1;
                    }
                    let (ta, tb) = (
                        TileId::new(parent.perm[i] as usize),
                        TileId::new(parent.perm[j] as usize),
                    );
                    let delta =
                        objective.swap_delta(&mapping_of(mesh, &parent.perm, core_count), ta, tb);
                    evaluations += 1;
                    pending.push((next.len(), evaluations, None));
                    let cost = pop[pa].cost + delta;
                    let mut child = pop[pa].perm.clone();
                    child.swap(i, j);
                    next.push(Indiv { perm: child, cost });
                }
            }
            // Generation flush: cost the deferred crossover brood in one
            // batched call, then replay best-tracking in creation order
            // under the evaluation numbers billed at creation. Batch
            // costs are bit-equal to per-offspring costs (the
            // `BatchCost` contract), so the trajectory is unchanged.
            batch_costs.clear();
            objective.batch_cost(&batch, &mut batch_costs);
            for &(slot, eval_no, in_batch) in &pending {
                if let Some(b) = in_batch {
                    next[slot].cost = batch_costs[b];
                }
                let cost = next[slot].cost;
                if cost < best_cost - 1e-9 {
                    best_cost = cost;
                    best_perm = next[slot].perm.clone();
                    telemetry.record_best(eval_no, cost);
                }
            }
            if exhausted {
                // The sequential path discards a generation it could not
                // finish; `pop` keeps the last complete one.
                break 'outer;
            }
            pop = next;
        }

        // Final verification evaluation (unbilled, as in `anneal_delta`):
        // the reported cost is a from-scratch evaluation of the winner,
        // free of accumulated mutation-delta drift.
        let mapping = mapping_of(mesh, &best_perm, core_count);
        let cost = objective.cost(&mapping);
        telemetry.evaluations = evaluations;
        let outcome = SearchOutcome {
            mapping,
            cost,
            evaluations,
            elapsed: start.elapsed(),
            method,
            objective: objective.name(),
        };
        SearchRun { outcome, telemetry }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmx_produces_valid_permutations() {
        let pa: Vec<u32> = vec![0, 1, 2, 3, 4, 5, 6, 7];
        let pb: Vec<u32> = vec![7, 6, 5, 4, 3, 2, 1, 0];
        for (lo, hi) in [(0, 1), (2, 5), (0, 8), (7, 8), (3, 4)] {
            let child = pmx(&pa, &pb, lo, hi);
            let mut seen = [false; 8];
            for &v in &child {
                assert!(!seen[v as usize], "duplicate {v} in {child:?}");
                seen[v as usize] = true;
            }
            // The segment comes from parent A.
            assert_eq!(&child[lo..hi], &pa[lo..hi]);
        }
    }

    #[test]
    fn cycle_crossover_produces_valid_permutations() {
        let pa: Vec<u32> = vec![0, 1, 2, 3, 4, 5, 6, 7];
        let pb: Vec<u32> = vec![1, 0, 3, 2, 5, 4, 7, 6];
        let child = cycle_crossover(&pa, &pb);
        let mut seen = [false; 8];
        for (idx, &v) in child.iter().enumerate() {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
            // Every gene comes from one of the parents at that position.
            assert!(v == pa[idx] || v == pb[idx]);
        }
    }

    #[test]
    fn pmx_handles_identical_parents() {
        let pa: Vec<u32> = vec![3, 1, 0, 2];
        let child = pmx(&pa, &pa, 1, 3);
        assert_eq!(child, pa);
    }
}
