//! A portfolio of heterogeneous strategies under one budget.
//!
//! Benhaoua et al. ("Heuristics for Routing and Spiral Run-time Task
//! Mapping in NoC-based Heterogeneous MPSOCs") argue that heuristic
//! *diversity* matters more than tuning any single method; the portfolio
//! operationalizes that: the budget splits evenly across static
//! multi-start SA, adaptive restarts, the GA and tabu search, each with
//! an independent derived seed, and the best result wins (ties to the
//! earliest member — the deterministic-reduction rule again).

use crate::adaptive::{AdaptiveConfig, AdaptiveRestarts};
use crate::cancel::CancelToken;
use crate::ga::{GaConfig, GeneticSearch};
use crate::objective::{BatchCost, SwapDeltaCost};
use crate::sa::{MultiStartSa, RestartBudget, SaConfig};
use crate::strategy::{SearchRun, SearchStrategy};
use crate::tabu::{TabuConfig, TabuSearch, Tenure};
use crate::telemetry::SearchTelemetry;
use noc_model::Mesh;
use serde::{Deserialize, Serialize};

/// Portfolio configuration: one budget, four members.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PortfolioConfig {
    /// Total evaluation budget, split evenly across the members (the
    /// remainder goes to the earliest members).
    pub budget: u64,
    /// Base seed; member `i` derives `seed + i·0x9E3779B97F4A7C15`.
    pub seed: u64,
    /// Restart count of the static multi-start member.
    pub restarts: usize,
    /// Population of the adaptive member.
    pub population: usize,
    /// Rounds of the adaptive member.
    pub rounds: usize,
    /// Tenure policy of the tabu member (fixed, or `√tile_count`
    /// auto-scaling).
    pub tenure: Tenure,
}

impl PortfolioConfig {
    /// Balanced defaults mirroring each member's own defaults.
    pub fn new(seed: u64) -> Self {
        Self {
            budget: 2_000_000,
            seed,
            restarts: 8,
            population: 8,
            rounds: 4,
            tenure: Tenure::Fixed(15),
        }
    }

    /// A fast profile for tests and CI.
    pub fn quick(seed: u64) -> Self {
        Self {
            budget: 20_000,
            ..Self::new(seed)
        }
    }
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        Self::new(0)
    }
}

/// The four-member strategy portfolio as a [`SearchStrategy`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Portfolio {
    /// Portfolio configuration.
    pub config: PortfolioConfig,
}

impl Portfolio {
    /// Strategy with the given configuration.
    pub fn new(config: PortfolioConfig) -> Self {
        Self { config }
    }
}

const MEMBERS: usize = 4;

impl<C: SwapDeltaCost + BatchCost + Clone + Send> SearchStrategy<C> for Portfolio {
    fn name(&self) -> String {
        format!("portfolio[{MEMBERS}]")
    }

    fn search_cancellable(
        &self,
        objective: &C,
        mesh: &Mesh,
        core_count: usize,
        cancel: &CancelToken,
    ) -> SearchRun {
        let start = crate::telemetry::wall_clock();
        let config = &self.config;
        let budget = config.budget.max(1);
        let share = |i: u64| budget / MEMBERS as u64 + u64::from(i < budget % MEMBERS as u64);
        let seed = |i: u64| {
            config
                .seed
                .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        };
        let method = <Self as SearchStrategy<C>>::name(self);

        // Members run sequentially (each may parallelize internally);
        // the reduction below depends only on member order. Members
        // whose share rounds to zero are skipped outright — every
        // sub-strategy clamps its own budget to at least 1, so running
        // them would bill past the portfolio's configured total.
        let member: [Box<dyn Fn() -> SearchRun>; MEMBERS] = [
            Box::new(|| {
                MultiStartSa {
                    config: SaConfig {
                        max_evaluations: share(0),
                        ..SaConfig::new(seed(0))
                    },
                    restarts: config.restarts,
                    budget: RestartBudget::Total,
                }
                .search_cancellable(objective, mesh, core_count, cancel)
            }),
            Box::new(|| {
                AdaptiveRestarts::new(AdaptiveConfig {
                    population: config.population,
                    rounds: config.rounds,
                    budget: share(1),
                    ..AdaptiveConfig::new(seed(1))
                })
                .search_cancellable(objective, mesh, core_count, cancel)
            }),
            Box::new(|| {
                GeneticSearch::new(GaConfig {
                    budget: share(2),
                    ..GaConfig::new(seed(2))
                })
                .search_cancellable(objective, mesh, core_count, cancel)
            }),
            Box::new(|| {
                TabuSearch::new(TabuConfig {
                    budget: share(3),
                    tenure: config.tenure,
                    ..TabuConfig::new(seed(3))
                })
                .search_cancellable(objective, mesh, core_count, cancel)
            }),
        ];
        // Cancellation checkpoint: between members. The first eligible
        // member always runs (its own checkpoints stop it early), so a
        // cancelled portfolio still returns a verified result.
        let mut runs: Vec<SearchRun> = Vec::new();
        for (i, run) in member.iter().enumerate() {
            if share(i as u64) == 0 {
                continue;
            }
            if !runs.is_empty() && cancel.is_cancelled() {
                break;
            }
            runs.push(run());
        }

        let evaluations: u64 = runs.iter().map(|r| r.outcome.evaluations).sum();
        let mut best_idx = 0;
        for (i, run) in runs.iter().enumerate() {
            // Strict `<`: ties stay with the earliest member.
            if run.outcome.cost < runs[best_idx].outcome.cost {
                best_idx = i;
            }
        }
        let mut telemetry = SearchTelemetry::new(method.clone());
        telemetry.evaluations = evaluations;
        for run in &mut runs {
            telemetry.children.push(std::mem::take(&mut run.telemetry));
        }
        let winner = &runs[best_idx].outcome;
        telemetry.record_best(evaluations, winner.cost);
        let outcome = crate::outcome::SearchOutcome {
            mapping: winner.mapping.clone(),
            cost: winner.cost,
            evaluations,
            elapsed: start.elapsed(),
            method: format!("{method}<-{}", winner.method),
            objective: objective.name(),
        };
        SearchRun { outcome, telemetry }
    }
}
