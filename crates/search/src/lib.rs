//! # noc-search
//!
//! The metaheuristic search subsystem of the NoC-mapping reproduction:
//! simulated annealing (single, multi-start, and adaptively scheduled
//! restarts), a permutation genetic algorithm, tabu search, and a
//! strategy portfolio — all over the same two objective interfaces
//! ([`CostFunction`] / [`SwapDeltaCost`]) that `noc-mapping`'s CWM/CDCM
//! objectives implement.
//!
//! The paper reaches its mappings with one fixed-schedule SA run; this
//! crate is where search *policy* grew past that. The original loops
//! from `noc-mapping::sa` and `noc-mapping::random_search` were promoted
//! here verbatim (those modules now re-export them), and the new
//! strategies share their budget and determinism discipline.
//!
//! ## The strategy contract
//!
//! [`SearchStrategy`] is the subsystem's trait: a strategy owns a
//! configuration (budget, seed, knobs), runs against any objective, and
//! returns a [`SearchRun`] — the best mapping plus a [`SearchTelemetry`]
//! describing where the budget went (per-round allocations, basin
//! survivals, the best-so-far curve).
//!
//! ## Budget accounting
//!
//! Budgets are counted in *objective evaluations*: every
//! [`CostFunction::cost`] call and every [`SwapDeltaCost::swap_delta`]
//! call bills exactly 1, whatever it costs the engine underneath. A
//! strategy never bills past its configured budget. One exception,
//! inherited from [`anneal_delta`]: the final *verification*
//! re-evaluation of the returned best mapping is unbilled, so the
//! reported cost is always a from-scratch evaluation (bitwise equal to
//! re-evaluating the returned mapping) rather than an accumulated sum
//! of increments.
//!
//! ## The deterministic-reduction rule
//!
//! Everything here is bit-reproducible from a seed, *including under
//! `std::thread` parallelism*. The rule (shared with
//! [`anneal_multistart`]): parallel work units own their RNG streams and
//! objective clones, carry a stable index, land their results by that
//! index, and every ranking/reduction tie breaks toward the lowest
//! index — never completion order. Telemetry falls under the same
//! guarantee.
//!
//! ## Strategies
//!
//! | Strategy | Policy | Objective bound |
//! |----------|--------|-----------------|
//! | [`MultiStartSa`] | static budget split across restarts | `SwapDeltaCost + Clone + Send` |
//! | [`AdaptiveRestarts`] | successive-halving rounds + reheating | `SwapDeltaCost + Clone + Send` |
//! | [`GeneticSearch`] | tournament/PMX-or-cycle/elitism GA | `SwapDeltaCost + BatchCost` |
//! | [`TabuSearch`] | swap-attribute tabu list + aspiration | `SwapDeltaCost` |
//! | [`Portfolio`] | even split across the four above | `SwapDeltaCost + BatchCost + Clone + Send` |
//!
//! [`BatchCost`] (defaulted to a sequential loop, so plain objectives
//! implement it with one empty `impl` line) lets the GA cost a whole
//! generation of crossover offspring in one call; tabu's neighborhood
//! rides the defaulted [`SwapDeltaCost::batch_swap_delta`] the same way.
//! Both loops stay bit-identical to per-candidate costing by
//! construction — batching changes *when* an evaluation runs, never what
//! it returns or which RNG draw precedes it.
//!
//! [`AdaptiveRestarts`] subsumes the static multi-start modes:
//! `rounds = 1` *is* `RestartBudget::Total` splitting, and a population
//! of one is a single reheated SA run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod cancel;
pub mod ga;
pub mod objective;
pub mod outcome;
pub mod portfolio;
pub mod random;
mod runner;
pub mod sa;
pub mod strategy;
pub mod tabu;

pub use adaptive::{AdaptiveConfig, AdaptiveRestarts};
pub use cancel::CancelToken;
pub use ga::{Crossover, GaConfig, GeneticSearch};
pub use objective::{BatchCost, CostFunction, SwapDeltaCost};
pub use outcome::SearchOutcome;
pub use portfolio::{Portfolio, PortfolioConfig};
pub use random::{random_search, sample_mapping};
pub use sa::{
    anneal, anneal_cancellable, anneal_delta, anneal_delta_cancellable, anneal_multistart,
    anneal_multistart_budgeted, anneal_multistart_delta, anneal_multistart_delta_budgeted,
    anneal_multistart_delta_cancellable, propose_swap, random_mapping, MultiStartSa, RestartBudget,
    SaConfig,
};
pub use strategy::{SearchRun, SearchStrategy};
pub use tabu::{TabuConfig, TabuSearch, Tenure};
pub use telemetry::{wall_clock, CurvePoint, MemberBudget, RoundTelemetry, SearchTelemetry};

pub mod telemetry;

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::{Mapping, Mesh, TileId};

    /// A synthetic objective with real basin structure: each core `i`
    /// prefers tile `target(i)`, cost is the summed Manhattan distance
    /// to the targets (weighted so cores differ). Cheap, deterministic,
    /// and with an exact incremental swap delta.
    #[derive(Clone)]
    struct Homing {
        mesh: Mesh,
        targets: Vec<TileId>,
    }

    impl Homing {
        fn new(mesh: &Mesh, cores: usize) -> Self {
            let targets = (0..cores)
                .map(|i| TileId::new((i * 7 + 3) % mesh.tile_count()))
                .collect();
            Self {
                mesh: *mesh,
                targets,
            }
        }

        fn dist(&self, a: TileId, b: TileId) -> f64 {
            self.mesh.manhattan(a, b) as f64
        }
    }

    impl CostFunction for Homing {
        fn cost(&self, mapping: &Mapping) -> f64 {
            mapping
                .assignments()
                .map(|(core, tile)| {
                    (core.index() as f64 + 1.0) * self.dist(tile, self.targets[core.index()])
                })
                .sum()
        }

        fn name(&self) -> String {
            "homing".to_owned()
        }
    }

    impl SwapDeltaCost for Homing {
        fn swap_delta(&self, mapping: &Mapping, a: TileId, b: TileId) -> f64 {
            let mut swapped = mapping.clone();
            swapped.swap_tiles(a, b);
            self.cost(&swapped) - self.cost(mapping)
        }
    }

    impl BatchCost for Homing {}

    type StrategyFn = Box<dyn Fn(&Homing, &Mesh, usize) -> SearchRun>;

    fn strategies() -> Vec<(&'static str, StrategyFn)> {
        vec![
            (
                "adaptive",
                Box::new(|o: &Homing, m: &Mesh, k: usize| {
                    let mut c = AdaptiveConfig::quick(9);
                    c.budget = 600;
                    AdaptiveRestarts::new(c).search(o, m, k)
                }),
            ),
            (
                "ga-pmx",
                Box::new(|o: &Homing, m: &Mesh, k: usize| {
                    let mut c = GaConfig::quick(9);
                    c.budget = 600;
                    GeneticSearch::new(c).search(o, m, k)
                }),
            ),
            (
                "ga-cycle",
                Box::new(|o: &Homing, m: &Mesh, k: usize| {
                    let mut c = GaConfig::quick(9);
                    c.budget = 600;
                    c.crossover = Crossover::Cycle;
                    GeneticSearch::new(c).search(o, m, k)
                }),
            ),
            (
                "tabu",
                Box::new(|o: &Homing, m: &Mesh, k: usize| {
                    let mut c = TabuConfig::quick(9);
                    c.budget = 600;
                    TabuSearch::new(c).search(o, m, k)
                }),
            ),
            (
                "portfolio",
                Box::new(|o: &Homing, m: &Mesh, k: usize| {
                    let mut c = PortfolioConfig::quick(9);
                    c.budget = 600;
                    Portfolio::new(c).search(o, m, k)
                }),
            ),
        ]
    }

    #[test]
    fn every_strategy_is_deterministic_budgeted_and_verified() {
        let mesh = Mesh::new(4, 4).unwrap();
        let objective = Homing::new(&mesh, 9);
        for (label, run) in strategies() {
            let first = run(&objective, &mesh, 9);
            let second = run(&objective, &mesh, 9);
            assert_eq!(first.outcome.mapping, second.outcome.mapping, "{label}");
            assert_eq!(first.outcome.cost, second.outcome.cost, "{label}");
            assert_eq!(
                first.outcome.evaluations, second.outcome.evaluations,
                "{label}"
            );
            assert_eq!(first.telemetry, second.telemetry, "{label}");
            assert!(first.outcome.evaluations <= 600, "{label} over budget");
            assert!(first.outcome.evaluations > 0, "{label} never evaluated");
            assert_eq!(
                first.telemetry.evaluations, first.outcome.evaluations,
                "{label} telemetry disagrees with the outcome"
            );
            // Reported cost is a true from-scratch evaluation.
            assert_eq!(first.outcome.cost, objective.cost(&first.outcome.mapping));
            first.outcome.mapping.validate().unwrap();
        }
    }

    #[test]
    fn adaptive_bills_its_exact_budget_and_halves_the_population() {
        let mesh = Mesh::new(4, 4).unwrap();
        let objective = Homing::new(&mesh, 8);
        let mut config = AdaptiveConfig::quick(3);
        config.budget = 800;
        config.population = 8;
        config.rounds = 4;
        let run = AdaptiveRestarts::new(config).search(&objective, &mesh, 8);
        assert_eq!(run.outcome.evaluations, 800);
        assert_eq!(run.telemetry.rounds.len(), 4);
        let survivors: Vec<usize> = run
            .telemetry
            .rounds
            .iter()
            .map(|r| r.survivors.len())
            .collect();
        // 8 active -> keep 4 -> keep 2 -> keep 1 -> last round (no
        // further selection).
        assert_eq!(survivors, vec![4, 2, 1, 0]);
        // Reallocation: totals are nonuniform — survivors got more.
        let totals = run.telemetry.member_budget_totals();
        let max = totals.iter().map(|t| t.evals).max().unwrap();
        let min = totals.iter().map(|t| t.evals).min().unwrap();
        assert!(max > min, "adaptive must reallocate budget: {totals:?}");
    }

    #[test]
    fn adaptive_with_one_round_is_a_static_split() {
        let mesh = Mesh::new(3, 3).unwrap();
        let objective = Homing::new(&mesh, 5);
        let mut config = AdaptiveConfig::quick(5);
        config.budget = 100;
        config.population = 4;
        config.rounds = 1;
        let run = AdaptiveRestarts::new(config).search(&objective, &mesh, 5);
        assert_eq!(run.telemetry.rounds.len(), 1);
        let budgets: Vec<u64> = run.telemetry.rounds[0]
            .budgets
            .iter()
            .map(|b| b.evals)
            .collect();
        assert_eq!(budgets, vec![25, 25, 25, 25]);
        assert!(run.telemetry.rounds[0].survivors.is_empty());
    }

    #[test]
    fn population_larger_than_budget_starves_late_members_not_the_budget() {
        let mesh = Mesh::new(3, 3).unwrap();
        let objective = Homing::new(&mesh, 4);
        let mut config = AdaptiveConfig::quick(1);
        config.budget = 3;
        config.population = 8;
        config.rounds = 1;
        let run = AdaptiveRestarts::new(config).search(&objective, &mesh, 4);
        assert_eq!(run.outcome.evaluations, 3);
        assert_eq!(run.outcome.cost, objective.cost(&run.outcome.mapping));
    }

    #[test]
    fn strategies_actually_optimize() {
        // On the homing objective the optimum is 0 (every core on its
        // target); any competent strategy gets close on a tiny mesh.
        let mesh = Mesh::new(3, 3).unwrap();
        let objective = Homing::new(&mesh, 4);
        let worst: f64 = (0..4).map(|i| (i as f64 + 1.0) * 4.0).sum();
        for (label, run) in strategies() {
            let got = run(&objective, &mesh, 4).outcome.cost;
            assert!(
                got < worst / 2.0,
                "{label} found nothing: {got} vs pessimal {worst}"
            );
        }
    }

    #[test]
    fn ga_with_elite_at_population_size_still_terminates() {
        // Regression: `elite >= pop_size` used to fill every generation
        // with unevaluated elite copies, freezing the budget loop
        // forever. The elite count must leave room for offspring.
        let mesh = Mesh::new(3, 3).unwrap();
        let objective = Homing::new(&mesh, 4);
        let mut config = GaConfig::quick(3);
        config.population = 2;
        config.elite = 5;
        config.budget = 120;
        let run = GeneticSearch::new(config).search(&objective, &mesh, 4);
        assert!(run.outcome.evaluations <= 120);
        assert!(run.outcome.evaluations > 2, "offspring must be produced");
        assert_eq!(run.outcome.cost, objective.cost(&run.outcome.mapping));
    }

    #[test]
    fn portfolio_with_tiny_budget_stays_within_it() {
        // Regression: budgets below the member count used to bill one
        // evaluation per member (each sub-strategy clamps to >= 1),
        // overspending the configured total. Zero-share members are
        // skipped instead.
        let mesh = Mesh::new(3, 3).unwrap();
        let objective = Homing::new(&mesh, 4);
        for budget in [1u64, 2, 3] {
            let mut config = PortfolioConfig::quick(1);
            config.budget = budget;
            let run = Portfolio::new(config).search(&objective, &mesh, 4);
            assert!(
                run.outcome.evaluations <= budget,
                "budget {budget}: billed {}",
                run.outcome.evaluations
            );
            assert!(run.outcome.evaluations > 0);
            assert_eq!(run.telemetry.children.len(), budget.min(4) as usize);
        }
    }

    /// A named strategy invocation that accepts a cancel token.
    type CancellableRunner = Box<dyn Fn(&Homing, &Mesh, usize, &CancelToken) -> SearchRun>;

    /// Cancellable strategy constructors with a fixed 600-eval budget,
    /// mirroring `strategies()` but exposing the token.
    fn cancellable_strategies() -> Vec<(&'static str, CancellableRunner)> {
        vec![
            (
                "multistart-sa",
                Box::new(|o: &Homing, m: &Mesh, k: usize, t: &CancelToken| {
                    let mut c = SaConfig::quick(9);
                    c.max_evaluations = 600;
                    MultiStartSa {
                        config: c,
                        restarts: 4,
                        budget: RestartBudget::Total,
                    }
                    .search_cancellable(o, m, k, t)
                }),
            ),
            (
                "adaptive",
                Box::new(|o: &Homing, m: &Mesh, k: usize, t: &CancelToken| {
                    let mut c = AdaptiveConfig::quick(9);
                    c.budget = 600;
                    AdaptiveRestarts::new(c).search_cancellable(o, m, k, t)
                }),
            ),
            (
                "ga",
                Box::new(|o: &Homing, m: &Mesh, k: usize, t: &CancelToken| {
                    let mut c = GaConfig::quick(9);
                    c.budget = 600;
                    GeneticSearch::new(c).search_cancellable(o, m, k, t)
                }),
            ),
            (
                "tabu",
                Box::new(|o: &Homing, m: &Mesh, k: usize, t: &CancelToken| {
                    let mut c = TabuConfig::quick(9);
                    c.budget = 600;
                    TabuSearch::new(c).search_cancellable(o, m, k, t)
                }),
            ),
            (
                "portfolio",
                Box::new(|o: &Homing, m: &Mesh, k: usize, t: &CancelToken| {
                    let mut c = PortfolioConfig::quick(9);
                    c.budget = 600;
                    Portfolio::new(c).search_cancellable(o, m, k, t)
                }),
            ),
        ]
    }

    /// A pre-cancelled token stops every strategy within its first
    /// checkpoint: strictly fewer evaluations than the budget, yet the
    /// result is still a verified, valid mapping.
    #[test]
    fn cancelled_runs_bill_fewer_evals_than_their_budget() {
        let mesh = Mesh::new(4, 4).unwrap();
        let objective = Homing::new(&mesh, 9);
        for (label, run) in cancellable_strategies() {
            let token = CancelToken::new();
            token.cancel();
            let cancelled = run(&objective, &mesh, 9, &token);
            assert!(
                cancelled.outcome.evaluations < 600,
                "{label}: cancelled run billed its whole budget ({})",
                cancelled.outcome.evaluations
            );
            assert!(
                cancelled.outcome.evaluations > 0,
                "{label}: cancelled run must still evaluate something"
            );
            assert_eq!(
                cancelled.outcome.cost,
                objective.cost(&cancelled.outcome.mapping),
                "{label}: cancelled result must stay verified"
            );
            cancelled.outcome.mapping.validate().unwrap();
        }
    }

    /// An untripped token changes nothing: `search_cancellable` with a
    /// live-but-quiet token is bit-identical to plain `search`. The
    /// checkpoints only read a flag — they consume no randomness.
    #[test]
    fn untripped_token_leaves_trajectories_bit_identical() {
        let mesh = Mesh::new(4, 4).unwrap();
        let objective = Homing::new(&mesh, 9);
        let mut adaptive = AdaptiveConfig::quick(9);
        adaptive.budget = 600;
        let mut ga = GaConfig::quick(9);
        ga.budget = 600;
        let mut tabu = TabuConfig::quick(9);
        tabu.budget = 600;
        let mut portfolio = PortfolioConfig::quick(9);
        portfolio.budget = 600;
        let strategies: Vec<(&str, Box<dyn SearchStrategy<Homing>>)> = vec![
            ("adaptive", Box::new(AdaptiveRestarts::new(adaptive))),
            ("ga", Box::new(GeneticSearch::new(ga))),
            ("tabu", Box::new(TabuSearch::new(tabu))),
            ("portfolio", Box::new(Portfolio::new(portfolio))),
        ];
        for (label, strategy) in strategies {
            let token = CancelToken::new();
            let with_token = strategy.search_cancellable(&objective, &mesh, 9, &token);
            let without = strategy.search(&objective, &mesh, 9);
            assert_eq!(
                with_token.outcome.mapping, without.outcome.mapping,
                "{label}"
            );
            assert_eq!(with_token.outcome.cost, without.outcome.cost, "{label}");
            assert_eq!(
                with_token.outcome.evaluations, without.outcome.evaluations,
                "{label}"
            );
            assert_eq!(with_token.telemetry, without.telemetry, "{label}");
        }
    }

    #[test]
    fn multistart_total_budget_clamps_excess_restarts() {
        // Regression (satellite of the subsystem PR): restarts > budget
        // used to create zero-evaluation restarts reporting never-
        // evaluated initial costs and billing past the total.
        let mesh = Mesh::new(3, 3).unwrap();
        let objective = Homing::new(&mesh, 4);
        let mut config = SaConfig::quick(2);
        config.max_evaluations = 4;
        let outcome =
            anneal_multistart_budgeted(&objective, &mesh, 4, &config, 9, RestartBudget::Total);
        // Clamped to 4 restarts of 1 evaluation each: exactly the budget.
        assert_eq!(outcome.evaluations, 4);
        assert!(
            outcome.method.contains("multistart[4]"),
            "{}",
            outcome.method
        );
        assert_eq!(outcome.cost, objective.cost(&outcome.mapping));
    }
}
