//! The objective contract every search strategy minimizes.
//!
//! These traits used to live in `noc-mapping`; they moved here when the
//! search loops were promoted into their own subsystem, so that engines
//! (this crate) and objectives (`noc-mapping`) can evolve independently.
//! `noc-mapping` re-exports both names, so downstream code is unaffected.

use noc_model::{Mapping, TileId};

/// A mapping objective: smaller is better.
///
/// Objects of this trait are what every engine in this crate (and the
/// exhaustive/greedy/random baselines in `noc-mapping`) minimizes.
pub trait CostFunction {
    /// Cost of a mapping (picojoules for the energy objectives,
    /// nanoseconds for the time objective).
    fn cost(&self, mapping: &Mapping) -> f64;

    /// Short name for reports ("CWM", "CDCM", …).
    fn name(&self) -> String;
}

/// Objectives that can evaluate a tile swap incrementally, without a full
/// re-evaluation. Implementations must guarantee
/// `cost(swap(m)) == cost(m) + swap_delta(m, a, b)` up to rounding; the
/// tests in `noc-mapping` and `tests/proptest_invariants.rs` enforce
/// this.
pub trait SwapDeltaCost: CostFunction {
    /// Cost change if tiles `a` and `b` of `mapping` were swapped.
    fn swap_delta(&self, mapping: &Mapping, a: TileId, b: TileId) -> f64;

    /// Cost changes for many candidate swaps against the same base
    /// mapping, appended to `out` in move order.
    ///
    /// Must push exactly `swap_delta(mapping, a, b)` for every move —
    /// bit-identical, not approximately. The default loops; objectives
    /// whose delta engine re-evaluates a shared baseline override it to
    /// pay that baseline once per neighborhood instead of once per move.
    fn batch_swap_delta(&self, mapping: &Mapping, moves: &[(TileId, TileId)], out: &mut Vec<f64>) {
        out.extend(moves.iter().map(|&(a, b)| self.swap_delta(mapping, a, b)));
    }
}

/// Objectives that can evaluate many candidate mappings in one call,
/// sharing route resolution and scratch state across the batch.
///
/// The contract is bit-exactness: `batch_cost` must push exactly
/// `cost(m)` for every mapping, in batch order, so engines may batch
/// freely without perturbing a search trajectory. The default loops
/// over [`CostFunction::cost`]; simulator-backed objectives override it
/// with [`noc_sim::BatchEvaluator`](../../noc_sim/batch/index.html),
/// which packs candidate injections into struct-of-arrays buffers and
/// deduplicates route resolution across sibling candidates.
pub trait BatchCost: CostFunction {
    /// Costs of every mapping in `batch`, appended to `out` in order.
    fn batch_cost(&self, batch: &[Mapping], out: &mut Vec<f64>) {
        out.extend(batch.iter().map(|m| self.cost(m)));
    }
}
