//! The objective contract every search strategy minimizes.
//!
//! These traits used to live in `noc-mapping`; they moved here when the
//! search loops were promoted into their own subsystem, so that engines
//! (this crate) and objectives (`noc-mapping`) can evolve independently.
//! `noc-mapping` re-exports both names, so downstream code is unaffected.

use noc_model::{Mapping, TileId};

/// A mapping objective: smaller is better.
///
/// Objects of this trait are what every engine in this crate (and the
/// exhaustive/greedy/random baselines in `noc-mapping`) minimizes.
pub trait CostFunction {
    /// Cost of a mapping (picojoules for the energy objectives,
    /// nanoseconds for the time objective).
    fn cost(&self, mapping: &Mapping) -> f64;

    /// Short name for reports ("CWM", "CDCM", …).
    fn name(&self) -> String;
}

/// Objectives that can evaluate a tile swap incrementally, without a full
/// re-evaluation. Implementations must guarantee
/// `cost(swap(m)) == cost(m) + swap_delta(m, a, b)` up to rounding; the
/// tests in `noc-mapping` and `tests/proptest_invariants.rs` enforce
/// this.
pub trait SwapDeltaCost: CostFunction {
    /// Cost change if tiles `a` and `b` of `mapping` were swapped.
    fn swap_delta(&self, mapping: &Mapping, a: TileId, b: TileId) -> f64;
}
