//! A pausable simulated-annealing run — the population member of the
//! adaptive restart scheduler.
//!
//! [`SaMember`] carries the complete state of one annealing trajectory
//! (current/best mapping, temperature, private RNG, its own objective
//! clone) so the scheduler can advance it in budget slices, park it, and
//! revive it later with a temperature reheat. Each member's RNG stream is
//! self-contained, which is what makes round-parallel execution
//! deterministic: a member's trajectory depends only on its seed and the
//! cumulative quota it received, never on which thread ran it.

use crate::objective::SwapDeltaCost;
use crate::sa::{propose_swap, random_mapping};
use noc_model::{Mapping, Mesh};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One pausable SA trajectory with a private objective clone and RNG.
#[derive(Debug, Clone)]
pub(crate) struct SaMember<C> {
    /// Stable member index (ties in selection break on it).
    pub id: usize,
    objective: C,
    rng: StdRng,
    current: Mapping,
    current_cost: f64,
    /// Best mapping this member has visited.
    pub best: Mapping,
    /// Cost of [`Self::best`] as tracked incrementally (resynced on
    /// revival; the scheduler re-verifies the final winner from scratch).
    pub best_cost: f64,
    /// `None` until enough budget arrived to auto-calibrate.
    temperature: Option<f64>,
    cooling: f64,
    moves_per_epoch: usize,
    move_in_epoch: usize,
    /// Set on revival: the next advance re-evaluates `current` fully
    /// (billed) before proposing moves, bounding delta drift per round.
    needs_resync: bool,
    /// Evaluations billed to this member so far.
    pub evaluations: u64,
}

impl<C: SwapDeltaCost> SaMember<C> {
    /// Creates a parked member with seed `base_seed + id`. No evaluations
    /// are performed until [`Self::advance`] grants budget.
    pub fn new(
        objective: C,
        mesh: &Mesh,
        core_count: usize,
        base_seed: u64,
        id: usize,
        cooling: f64,
        moves_per_epoch: Option<usize>,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(base_seed.wrapping_add(id as u64));
        let current = random_mapping(mesh, core_count, &mut rng);
        Self {
            id,
            objective,
            rng,
            best: current.clone(),
            current,
            current_cost: f64::INFINITY,
            best_cost: f64::INFINITY,
            temperature: None,
            cooling,
            moves_per_epoch: moves_per_epoch.unwrap_or(8 * mesh.tile_count()).max(1),
            move_in_epoch: 0,
            needs_resync: false,
            evaluations: 0,
        }
    }

    /// True once the member has evaluated its starting mapping.
    pub fn started(&self) -> bool {
        self.best_cost.is_finite()
    }

    /// Revives a surviving member: multiplies the temperature by
    /// `factor` (escaping the cooled-down local basin) and schedules a
    /// full re-synchronisation of the incremental cost.
    pub fn reheat(&mut self, factor: f64) {
        if let Some(t) = self.temperature.as_mut() {
            *t *= factor;
        }
        self.needs_resync = true;
    }

    /// Runs annealing moves until exactly `quota` evaluations are billed
    /// (initial evaluation and temperature calibration included), then
    /// parks. Returns the evaluations consumed (always `quota`).
    pub fn advance(&mut self, mesh: &Mesh, quota: u64) -> u64 {
        let mut used = 0u64;
        if quota == 0 {
            return 0;
        }
        if !self.started() {
            self.current_cost = self.objective.cost(&self.current);
            self.best_cost = self.current_cost;
            self.best = self.current.clone();
            used += 1;
        } else if self.needs_resync && used < quota {
            self.current_cost = self.objective.cost(&self.current);
            used += 1;
        }
        self.needs_resync = false;
        if self.temperature.is_none() && used < quota {
            // Same 16-sample, budget-capped calibration as `anneal_delta`.
            let samples = 16.min(quota - used);
            let mut sum = 0.0;
            for _ in 0..samples {
                let (a, b) = propose_swap(mesh, &mut self.rng);
                sum += self.objective.swap_delta(&self.current, a, b).abs();
                used += 1;
            }
            if samples > 0 {
                let mean = sum / samples as f64;
                self.temperature = Some((mean / (1.0f64 / 0.8).ln()).max(1e-9));
            }
        }
        while used < quota {
            let temperature = self.temperature.unwrap_or(1e-9);
            let (a, b) = propose_swap(mesh, &mut self.rng);
            let delta = self.objective.swap_delta(&self.current, a, b);
            used += 1;
            let accept = delta <= 0.0 || self.rng.gen::<f64>() < (-delta / temperature).exp();
            if accept {
                self.current.swap_tiles(a, b);
                self.current_cost += delta;
                if self.current_cost < self.best_cost - 1e-9 {
                    self.best_cost = self.current_cost;
                    self.best = self.current.clone();
                }
            }
            self.move_in_epoch += 1;
            if self.move_in_epoch >= self.moves_per_epoch {
                self.move_in_epoch = 0;
                if let Some(t) = self.temperature.as_mut() {
                    *t *= self.cooling;
                }
            }
        }
        self.evaluations += used;
        used
    }

    /// From-scratch cost of a mapping under this member's objective
    /// (used by the scheduler for the final verification evaluation).
    pub fn verify_cost(&self, mapping: &Mapping) -> f64 {
        self.objective.cost(mapping)
    }
}
