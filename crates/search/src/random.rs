//! Random-sampling baseline.
//!
//! Hu & Marculescu's observation (cited in the paper's related work) is
//! that informed mapping beats *random* placements by large margins; this
//! engine provides that reference point, and doubles as a sanity check
//! for the annealer (SA must never lose to random sampling at equal
//! evaluation budgets on average).

use crate::objective::CostFunction;
use crate::outcome::SearchOutcome;
use noc_model::{Mapping, Mesh};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Draws `samples` uniform random mappings and keeps the best.
///
/// # Panics
///
/// Panics if `core_count` exceeds the tile count of `mesh` or if
/// `samples` is zero.
pub fn random_search<C: CostFunction + ?Sized>(
    objective: &C,
    mesh: &Mesh,
    core_count: usize,
    samples: u64,
    seed: u64,
) -> SearchOutcome {
    assert!(samples > 0, "at least one sample is required");
    let start = crate::telemetry::wall_clock();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best: Option<(Mapping, f64)> = None;
    for _ in 0..samples {
        let mapping = sample_mapping(mesh, core_count, &mut rng);
        let cost = objective.cost(&mapping);
        if best.as_ref().is_none_or(|(_, c)| cost < *c) {
            best = Some((mapping, cost));
        }
    }
    let (mapping, cost) = best.expect("samples > 0");
    SearchOutcome {
        mapping,
        cost,
        evaluations: samples,
        elapsed: start.elapsed(),
        method: "random".to_owned(),
        objective: objective.name(),
    }
}

/// One uniform random injective mapping — the same sampler every engine
/// uses (see [`crate::sa::random_mapping`]).
pub fn sample_mapping(mesh: &Mesh, core_count: usize, rng: &mut StdRng) -> Mapping {
    crate::sa::random_mapping(mesh, core_count, rng)
}
