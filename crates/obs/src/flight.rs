//! The search flight recorder: a bounded, per-job ring buffer of trace
//! events.
//!
//! The service installs one [`FlightRecorder`] as (part of) its trace
//! sink; the `trace <job>` socket op snapshots a job's [`Tape`]. Both
//! bounds are hard: each tape keeps at most `per_job` events (oldest
//! dropped first, with a drop count so truncation is visible), and the
//! recorder keeps at most `max_jobs` tapes (smallest job id — the
//! oldest submission — evicted first). Memory use is therefore fixed no
//! matter how long the service runs.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

use crate::trace::{TraceEvent, TraceSink};

/// One job's recorded event window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Tape {
    /// The most recent events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events discarded because the ring was full.
    pub dropped: u64,
}

#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// Bounded per-job event recorder; see module docs.
#[derive(Debug)]
pub struct FlightRecorder {
    per_job: usize,
    max_jobs: usize,
    tapes: Mutex<BTreeMap<u64, Ring>>,
}

impl FlightRecorder {
    /// A recorder keeping at most `per_job` events for each of at most
    /// `max_jobs` jobs. Both bounds are clamped to at least 1.
    pub fn new(per_job: usize, max_jobs: usize) -> Self {
        Self {
            per_job: per_job.max(1),
            max_jobs: max_jobs.max(1),
            tapes: Mutex::new(BTreeMap::new()),
        }
    }

    /// Records one event for `job`.
    pub fn push(&self, job: u64, event: &TraceEvent) {
        let mut tapes = self.tapes.lock().expect("flight recorder lock poisoned");
        if !tapes.contains_key(&job) && tapes.len() >= self.max_jobs {
            // Evict the oldest job (smallest id — ids are allocated in
            // submission order) to stay within the tape budget.
            if let Some((&oldest, _)) = tapes.iter().next() {
                tapes.remove(&oldest);
            }
        }
        let ring = tapes.entry(job).or_default();
        if ring.events.len() >= self.per_job {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event.clone());
    }

    /// A copy of `job`'s tape, or `None` if the recorder has never seen
    /// the job (or has evicted it).
    pub fn snapshot(&self, job: u64) -> Option<Tape> {
        let tapes = self.tapes.lock().expect("flight recorder lock poisoned");
        tapes.get(&job).map(|ring| Tape {
            events: ring.events.iter().cloned().collect(),
            dropped: ring.dropped,
        })
    }

    /// Job ids currently held, ascending.
    pub fn jobs(&self) -> Vec<u64> {
        let tapes = self.tapes.lock().expect("flight recorder lock poisoned");
        tapes.keys().copied().collect()
    }
}

impl TraceSink for FlightRecorder {
    fn record(&self, job: u64, event: &TraceEvent) {
        self.push(job, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(label: &str) -> TraceEvent {
        let mut e = TraceEvent::new("best");
        e.label = label.to_owned();
        e
    }

    #[test]
    fn per_job_ring_drops_oldest_and_counts() {
        let recorder = FlightRecorder::new(3, 8);
        for i in 0..5 {
            recorder.push(1, &event(&format!("e{i}")));
        }
        let tape = recorder.snapshot(1).unwrap();
        assert_eq!(tape.dropped, 2);
        assert_eq!(
            tape.events
                .iter()
                .map(|e| e.label.as_str())
                .collect::<Vec<_>>(),
            vec!["e2", "e3", "e4"]
        );
    }

    #[test]
    fn oldest_job_is_evicted_when_full() {
        let recorder = FlightRecorder::new(4, 2);
        recorder.push(10, &event("a"));
        recorder.push(11, &event("b"));
        recorder.push(12, &event("c"));
        assert_eq!(recorder.jobs(), vec![11, 12]);
        assert!(recorder.snapshot(10).is_none());
        assert!(recorder.snapshot(12).is_some());
    }

    #[test]
    fn unknown_jobs_have_no_tape() {
        let recorder = FlightRecorder::new(4, 4);
        assert!(recorder.snapshot(99).is_none());
        assert!(recorder.jobs().is_empty());
    }
}
