//! # noc-obs
//!
//! The observability substrate of the workspace: metrics, structured
//! trace events, and the search flight recorder. Dependency-free by
//! design (not even the serde shim) so it can sit below every other
//! crate — `noc-sim`, `noc-search`, `noc-mapping`, `noc-service` and
//! the CLI all thread through it without a cycle.
//!
//! Three pillars:
//!
//! * [`metrics`] — process-lifetime named counters, gauges and fixed
//!   log-bucket histograms behind a [`MetricsRegistry`], with a
//!   Prometheus-style text exposition and a JSON snapshot. Counters are
//!   sharded atomics so hot paths never contend on a single cache line.
//! * [`trace`] — line-oriented JSON trace events emitted through a
//!   thread-local per-job context. Installing no context makes every
//!   emission a branch-on-a-thread-local no-op, and emission only ever
//!   *reads* search state, so results are seed-for-seed bit-identical
//!   whether tracing is on or off (pinned by `tests/obs_determinism.rs`).
//! * [`flight`] — a bounded per-job ring buffer of trace events, the
//!   flight recorder the service exposes over the `trace` socket op.
//!
//! # Determinism
//!
//! This crate joins the `noc-verify` DET01–03 scope. Its one wall-clock
//! surface is [`clock`] (enforced by the DET04 rule): every timestamp
//! any observability consumer reads comes from [`clock::stamp`], and
//! clock values only ever *report* elapsed time — they never feed a
//! decision.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod flight;
mod json;
pub mod metrics;
pub mod trace;

pub use clock::{stamp, Stamp};
pub use flight::{FlightRecorder, Tape};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use trace::{
    active, emit_with, with_job, JsonLinesSink, MemorySink, NullSink, TraceEvent, TraceSink,
};
