//! The observability crate's one wall-clock scope.
//!
//! Everything in `noc-obs` (and everything that reports time *through*
//! `noc-obs` — trace event timestamps, service sojourn histograms)
//! reads the clock here and nowhere else. The `noc-verify` DET04 rule
//! flags any other `std::time` use inside `crates/obs`, so a second
//! wall-clock surface cannot grow quietly; DET02 keeps the single
//! `Instant::now()` below annotated. Clock values only ever *report*
//! elapsed time — nothing downstream may branch on them.

/// An opaque monotonic timestamp. The inner `Instant` is deliberately
/// private: consumers can measure elapsed time from a stamp but cannot
/// smuggle raw clock values into decisions.
#[derive(Debug, Clone, Copy)]
pub struct Stamp(std::time::Instant);

/// Reads the monotonic clock — the one sanctioned wall-clock read in
/// this crate.
pub fn stamp() -> Stamp {
    Stamp(std::time::Instant::now()) // noc-verify: allow(DET02) — the observability clock scope; stamps only report elapsed time, never feed decisions
}

impl Stamp {
    /// Microseconds elapsed since the stamp was taken.
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Seconds elapsed since the stamp was taken.
    pub fn elapsed_s(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_are_monotone() {
        let s = stamp();
        let a = s.elapsed_us();
        let b = s.elapsed_us();
        assert!(b >= a);
        assert!(s.elapsed_s() >= 0.0);
    }
}
