//! Minimal JSON string escaping, shared by the trace-event serializer
//! and the metrics snapshot. `noc-obs` is dependency-free (it sits
//! below the serde shim in the crate graph), so it writes its own JSON;
//! consumers that want a parsed form re-read it with `serde_json`.

/// Escapes `s` for embedding inside a JSON string literal.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (finite values only; non-finite
/// values fall back to `null`, which keeps the line parseable).
pub(crate) fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_and_control_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }
}
