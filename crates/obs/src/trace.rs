//! Structured span tracing: line-oriented JSON trace events emitted
//! through a thread-local per-job context.
//!
//! The design point is *zero-cost-when-off*: instrumentation sites call
//! [`emit_with`] with a closure, and when no context is installed the
//! call is a single thread-local boolean read — the closure never runs,
//! no event is built, no allocation happens. When a context *is*
//! installed (the service wraps each job's execution in [`with_job`]),
//! the closure builds a [`TraceEvent`] and the context's [`TraceSink`]
//! receives it.
//!
//! Emission only ever *reads* search state; sinks receive events but
//! cannot influence the search. That is what keeps results seed-for-seed
//! bit-identical whether tracing is on or off.

use std::cell::{Cell, RefCell};
use std::io::Write;
use std::sync::{Arc, Mutex};

use crate::clock::Stamp;

/// One structured trace event. `kind` is a small closed vocabulary
/// ("job_start", "round", "best", "epoch", "delta_stats",
/// "batch_stats", "job_end");
/// the other fields are optional payload — unset fields are omitted
/// from the JSON line.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceEvent {
    /// Event kind (see module docs for the vocabulary).
    pub kind: &'static str,
    /// Free-form label (strategy name, member id, error text).
    pub label: String,
    /// Search round index, when the event is round-scoped.
    pub round: Option<u64>,
    /// Evaluations spent at emission time.
    pub evaluations: u64,
    /// Best-so-far (or event-relevant) cost.
    pub cost: Option<f64>,
    /// Per-member `(member, evaluations)` budgets for "round" events.
    pub members: Vec<(u64, u64)>,
    /// Surviving member indices for "round" events.
    pub survivors: Vec<u64>,
    /// Named integer counters ("epoch" accept/reject streams,
    /// "delta_stats" and "batch_stats" evaluator counters).
    pub counters: Vec<(&'static str, u64)>,
    /// Microseconds since the enclosing job context was installed.
    /// Stamped by [`emit_with`]; purely informational.
    pub elapsed_us: u64,
}

impl TraceEvent {
    /// A blank event of the given kind.
    pub fn new(kind: &'static str) -> Self {
        Self {
            kind,
            ..Self::default()
        }
    }

    /// Serializes the event as one JSON line for job `job` (no trailing
    /// newline). Field order is fixed, so identical events always
    /// produce identical lines.
    pub fn to_json_line(&self, job: u64) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"job\":{job},\"kind\":\"{}\"",
            crate::json::escape(self.kind)
        );
        if !self.label.is_empty() {
            let _ = write!(out, ",\"label\":\"{}\"", crate::json::escape(&self.label));
        }
        if let Some(round) = self.round {
            let _ = write!(out, ",\"round\":{round}");
        }
        if self.evaluations > 0 {
            let _ = write!(out, ",\"evaluations\":{}", self.evaluations);
        }
        if let Some(cost) = self.cost {
            let _ = write!(out, ",\"cost\":{}", crate::json::number(cost));
        }
        if !self.members.is_empty() {
            out.push_str(",\"members\":[");
            for (i, (member, evals)) in self.members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{member},{evals}]");
            }
            out.push(']');
        }
        if !self.survivors.is_empty() {
            out.push_str(",\"survivors\":[");
            for (i, s) in self.survivors.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{s}");
            }
            out.push(']');
        }
        if !self.counters.is_empty() {
            out.push_str(",\"counters\":{");
            for (i, (name, value)) in self.counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{value}", crate::json::escape(name));
            }
            out.push('}');
        }
        let _ = write!(out, ",\"elapsed_us\":{}}}", self.elapsed_us);
        out
    }
}

/// Receives trace events. Implementations must tolerate concurrent
/// calls from multiple worker threads (distinct jobs trace in
/// parallel) and must never feed anything back into the search.
pub trait TraceSink: Send + Sync {
    /// Records one event for job `job`.
    fn record(&self, job: u64, event: &TraceEvent);
}

/// Discards every event. Exists so "tracing disabled" and "tracing
/// enabled with a null sink" are both testably zero-effect.
#[derive(Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _job: u64, _event: &TraceEvent) {}
}

/// Buffers events in memory; the determinism tests and unit tests use
/// it to assert on emission without I/O.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<(u64, TraceEvent)>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains and returns everything recorded so far.
    pub fn take(&self) -> Vec<(u64, TraceEvent)> {
        std::mem::take(&mut *self.events.lock().expect("trace sink lock poisoned"))
    }

    /// Number of events recorded (without draining).
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace sink lock poisoned").len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for MemorySink {
    fn record(&self, job: u64, event: &TraceEvent) {
        self.events
            .lock()
            .expect("trace sink lock poisoned")
            .push((job, event.clone()));
    }
}

/// Writes each event as one JSON line to the wrapped writer (a file,
/// usually). Write errors are swallowed: observability must never fail
/// the workload it observes.
pub struct JsonLinesSink {
    writer: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for JsonLinesSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonLinesSink").finish_non_exhaustive()
    }
}

impl JsonLinesSink {
    /// Wraps `writer`; each recorded event becomes one line.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        Self {
            writer: Mutex::new(writer),
        }
    }
}

impl TraceSink for JsonLinesSink {
    fn record(&self, job: u64, event: &TraceEvent) {
        let line = event.to_json_line(job);
        let mut writer = self.writer.lock().expect("trace sink lock poisoned");
        let _ = writeln!(writer, "{line}");
        let _ = writer.flush();
    }
}

struct Context {
    job: u64,
    sink: Arc<dyn TraceSink>,
    start: Stamp,
}

thread_local! {
    /// Fast-path flag mirroring `CONTEXT.is_some()`; `emit_with` reads
    /// only this when tracing is off.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static CONTEXT: RefCell<Option<Context>> = const { RefCell::new(None) };
}

/// True when the calling thread has a trace context installed.
/// Instrumentation sites with non-trivial event-building work can gate
/// on this before even gathering payload.
pub fn active() -> bool {
    ACTIVE.with(Cell::get)
}

/// Runs `f` with a per-job trace context installed on this thread;
/// every [`emit_with`] inside attributes its events to `job` and
/// delivers them to `sink`. Contexts nest: the previous one (if any) is
/// restored when `f` returns, including on panic.
pub fn with_job<T>(job: u64, sink: Arc<dyn TraceSink>, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<Context>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let previous = self.0.take();
            ACTIVE.with(|a| a.set(previous.is_some()));
            CONTEXT.with(|c| *c.borrow_mut() = previous);
        }
    }

    let previous = CONTEXT.with(|c| {
        c.borrow_mut().replace(Context {
            job,
            sink,
            start: crate::clock::stamp(),
        })
    });
    ACTIVE.with(|a| a.set(true));
    let _restore = Restore(previous);
    f()
}

/// Emits a trace event if (and only if) the calling thread has a
/// context installed. `build` runs only in that case, so gathering
/// payload costs nothing when tracing is off.
pub fn emit_with(build: impl FnOnce() -> TraceEvent) {
    if !active() {
        return;
    }
    // Clone the delivery handle out of the thread-local borrow before
    // calling the sink, so a sink that itself traces cannot hit a
    // re-entrant borrow.
    let delivery = CONTEXT.with(|c| {
        c.borrow()
            .as_ref()
            .map(|ctx| (ctx.job, Arc::clone(&ctx.sink), ctx.start))
    });
    let Some((job, sink, start)) = delivery else {
        return;
    };
    let mut event = build();
    event.elapsed_us = start.elapsed_us();
    sink.record(job, &event);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_outside_a_context_is_a_no_op() {
        assert!(!active());
        emit_with(|| panic!("builder must not run without a context"));
    }

    #[test]
    fn with_job_attributes_events_and_restores() {
        let sink = Arc::new(MemorySink::new());
        let value = with_job(7, sink.clone() as Arc<dyn TraceSink>, || {
            assert!(active());
            emit_with(|| {
                let mut e = TraceEvent::new("best");
                e.evaluations = 10;
                e.cost = Some(1.5);
                e
            });
            42
        });
        assert_eq!(value, 42);
        assert!(!active());
        let events = sink.take();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].0, 7);
        assert_eq!(events[0].1.kind, "best");
        assert_eq!(events[0].1.cost, Some(1.5));
    }

    #[test]
    fn contexts_nest_and_restore_the_outer_job() {
        let sink = Arc::new(MemorySink::new());
        with_job(1, sink.clone() as Arc<dyn TraceSink>, || {
            with_job(2, sink.clone() as Arc<dyn TraceSink>, || {
                emit_with(|| TraceEvent::new("inner"));
            });
            emit_with(|| TraceEvent::new("outer"));
        });
        let events = sink.take();
        assert_eq!(
            events
                .iter()
                .map(|(job, e)| (*job, e.kind))
                .collect::<Vec<_>>(),
            vec![(2, "inner"), (1, "outer")]
        );
    }

    #[test]
    fn json_line_is_stable_and_omits_unset_fields() {
        let mut event = TraceEvent::new("round");
        event.round = Some(3);
        event.evaluations = 120;
        event.cost = Some(2.25);
        event.members = vec![(0, 60), (1, 60)];
        event.survivors = vec![1];
        event.elapsed_us = 9;
        assert_eq!(
            event.to_json_line(5),
            "{\"job\":5,\"kind\":\"round\",\"round\":3,\"evaluations\":120,\
             \"cost\":2.25,\"members\":[[0,60],[1,60]],\"survivors\":[1],\
             \"elapsed_us\":9}"
        );
        let bare = TraceEvent::new("job_end");
        assert_eq!(
            bare.to_json_line(0),
            "{\"job\":0,\"kind\":\"job_end\",\"elapsed_us\":0}"
        );
    }

    #[test]
    fn json_lines_sink_writes_one_line_per_event() {
        let buffer = Arc::new(Mutex::new(Vec::<u8>::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonLinesSink::new(Box::new(Shared(buffer.clone())));
        sink.record(1, &TraceEvent::new("a"));
        sink.record(2, &TraceEvent::new("b"));
        let text = String::from_utf8(buffer.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }
}
