//! The metrics registry: named counters, gauges and fixed log-bucket
//! histograms, with a Prometheus-style text exposition and a JSON
//! snapshot.
//!
//! Metric *names* may carry Prometheus-style labels inline —
//! `noc_job_sojourn_us{class="high"}` — and the exposition groups the
//! `# HELP`/`# TYPE` headers by base name, so one logical metric with
//! three label values renders as one family. Name maps are `BTreeMap`s
//! (DET01: deterministic iteration), so two snapshots of the same state
//! are byte-identical.
//!
//! Hot-path cost: [`Counter::inc`] is one relaxed `fetch_add` on a
//! thread-striped shard (no shared cache line between worker threads);
//! [`Gauge`] is a single atomic; [`Histogram::observe`] is two atomics
//! plus a bucket add. Registry lookups (`counter(..)` etc.) take a
//! mutex — callers on hot paths hold the returned `Arc` instead of
//! re-looking-up.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Shards per counter. Power of two; eight covers the worker-pool sizes
/// the service runs while keeping a counter at half a kilobyte.
const COUNTER_SHARDS: usize = 8;

/// Finite histogram buckets: powers of two `2^0 ..= 2^39`, then +Inf.
/// In microseconds that spans 1 µs to ~6 days — every latency this
/// workspace measures fits with ~2x resolution.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// Monotone counter: relaxed sharded atomics, summed on read.
#[derive(Debug, Default)]
pub struct Counter {
    shards: [PaddedU64; COUNTER_SHARDS],
}

#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedU64(AtomicU64);

/// The calling thread's shard slot: assigned once per thread from a
/// global ticket counter (no thread-id or environment reads — DET03
/// stays clean), then reduced mod [`COUNTER_SHARDS`] at use.
fn shard_slot() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    SLOT.with(|slot| {
        let v = slot.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT.fetch_add(1, Ordering::Relaxed);
        slot.set(v);
        v
    })
}

impl Counter {
    /// Adds `n`.
    pub fn inc(&self, n: u64) {
        let shard = shard_slot() & (COUNTER_SHARDS - 1);
        self.shards[shard].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total across shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// Signed gauge (queue depths, busy-worker counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fixed log-bucket histogram over `u64` observations (microseconds,
/// evaluation counts): powers-of-two bounds, a running sum and a count.
#[derive(Debug)]
pub struct Histogram {
    /// Per-bucket (non-cumulative) counts; index [`HISTOGRAM_BUCKETS`]
    /// is the +Inf overflow bucket.
    buckets: [AtomicU64; HISTOGRAM_BUCKETS + 1],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// Index of the first bucket whose bound (`2^i`) is `>= v`.
fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        ((64 - (v - 1).leading_zeros()) as usize).min(HISTOGRAM_BUCKETS)
    }
}

/// Upper bound of finite bucket `i`.
fn bucket_bound(i: usize) -> u64 {
    1u64 << i
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket (non-cumulative) counts, +Inf bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Approximate quantile (`0.0 ..= 1.0`): the upper bound of the
    /// first bucket at which the cumulative count reaches `q * count`.
    /// Resolution is the bucket width (~2x), which is plenty for p50/p99
    /// dashboards; exact percentiles stay with the benches.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cumulative += b.load(Ordering::Relaxed);
            if cumulative >= target {
                return if i < HISTOGRAM_BUCKETS {
                    bucket_bound(i) as f64
                } else {
                    f64::INFINITY
                };
            }
        }
        f64::INFINITY
    }
}

/// A named-metric registry. Each service instance owns one, so
/// concurrent services (the test suite runs many) never cross-count;
/// nothing here is process-global.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    help: Mutex<BTreeMap<String, String>>,
}

/// Splits `noc_x{class="high"}` into (`noc_x`, `class="high"`).
fn split_name(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(p) => (&name[..p], name[p + 1..].trim_end_matches('}')),
        None => (name, ""),
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use. Hold the `Arc`
    /// on hot paths.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("metrics lock poisoned");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("metrics lock poisoned");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("metrics lock poisoned");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// Registers `# HELP` text for a *base* metric name (the part
    /// before any `{labels}`).
    pub fn describe(&self, base: &str, help: &str) {
        let mut map = self.help.lock().expect("metrics lock poisoned");
        map.insert(base.to_owned(), help.to_owned());
    }

    fn counter_values(&self) -> Vec<(String, u64)> {
        let map = self.counters.lock().expect("metrics lock poisoned");
        map.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    fn gauge_values(&self) -> Vec<(String, i64)> {
        let map = self.gauges.lock().expect("metrics lock poisoned");
        map.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    fn histogram_values(&self) -> Vec<(String, Vec<u64>, u64, u64)> {
        let map = self.histograms.lock().expect("metrics lock poisoned");
        map.iter()
            .map(|(k, v)| (k.clone(), v.bucket_counts(), v.sum(), v.count()))
            .collect()
    }

    fn help_texts(&self) -> BTreeMap<String, String> {
        let map = self.help.lock().expect("metrics lock poisoned");
        map.clone()
    }

    /// Prometheus-style text exposition: `# HELP`/`# TYPE` headers per
    /// base name, one sample line per labelled series, histograms as
    /// cumulative `_bucket{le=...}` series plus `_sum`/`_count`.
    /// Deterministic: byte-identical for identical metric state.
    pub fn exposition(&self) -> String {
        use std::fmt::Write as _;
        let help = self.help_texts();
        let mut out = String::new();
        let header = |out: &mut String, base: &str, kind: &str, seen: &mut Option<String>| {
            if seen.as_deref() == Some(base) {
                return;
            }
            *seen = Some(base.to_owned());
            if let Some(text) = help.get(base) {
                let _ = writeln!(out, "# HELP {base} {text}");
            }
            let _ = writeln!(out, "# TYPE {base} {kind}");
        };

        let mut seen = None;
        for (name, value) in self.counter_values() {
            let (base, _) = split_name(&name);
            header(&mut out, base, "counter", &mut seen);
            let _ = writeln!(out, "{name} {value}");
        }
        let mut seen = None;
        for (name, value) in self.gauge_values() {
            let (base, _) = split_name(&name);
            header(&mut out, base, "gauge", &mut seen);
            let _ = writeln!(out, "{name} {value}");
        }
        let mut seen = None;
        for (name, buckets, sum, count) in self.histogram_values() {
            let (base, labels) = split_name(&name);
            header(&mut out, base, "histogram", &mut seen);
            let prefix = if labels.is_empty() {
                String::new()
            } else {
                format!("{labels},")
            };
            let mut cumulative = 0u64;
            for (i, b) in buckets.iter().enumerate() {
                cumulative += b;
                if i < HISTOGRAM_BUCKETS {
                    // Only print buckets up to the last non-empty finite
                    // bound (plus +Inf) — 40 zero lines per histogram
                    // would drown the exposition.
                    if cumulative > 0 {
                        let _ = writeln!(
                            out,
                            "{base}_bucket{{{prefix}le=\"{}\"}} {cumulative}",
                            bucket_bound(i)
                        );
                    }
                } else {
                    let _ = writeln!(out, "{base}_bucket{{{prefix}le=\"+Inf\"}} {cumulative}");
                }
            }
            let suffix = if labels.is_empty() {
                String::new()
            } else {
                format!("{{{labels}}}")
            };
            let _ = writeln!(out, "{base}_sum{suffix} {sum}");
            let _ = writeln!(out, "{base}_count{suffix} {count}");
        }
        out
    }

    /// The whole registry as one JSON object:
    /// `{"counters": {..}, "gauges": {..}, "histograms": {..}}`.
    /// Deterministic for identical metric state (sorted maps).
    pub fn snapshot_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counter_values().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{value}", crate::json::escape(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauge_values().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{value}", crate::json::escape(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, buckets, sum, count)) in self.histogram_values().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{count},\"sum\":{sum},\"buckets\":[",
                crate::json::escape(name)
            );
            let mut first = true;
            let mut cumulative = 0u64;
            for (b, n) in buckets.iter().enumerate() {
                cumulative += n;
                let last = b == HISTOGRAM_BUCKETS;
                if *n == 0 && !last {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                if last {
                    let _ = write!(out, "[\"+Inf\",{cumulative}]");
                } else {
                    let _ = write!(out, "[{},{cumulative}]", bucket_bound(b));
                }
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_across_threads() {
        let registry = MetricsRegistry::new();
        let counter = registry.counter("noc_test_total");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let counter = Arc::clone(&counter);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        counter.inc(1);
                    }
                });
            }
        });
        assert_eq!(counter.get(), 4000);
        // Re-looking-up the same name yields the same counter.
        assert_eq!(registry.counter("noc_test_total").get(), 4000);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS);

        let h = Histogram::default();
        for v in [1, 2, 3, 100, 1_000_000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1_000_106);
        assert!(h.quantile(0.5) >= 2.0);
        assert!(h.quantile(1.0) >= 1_000_000.0);
    }

    #[test]
    fn exposition_groups_labelled_series_under_one_header() {
        let registry = MetricsRegistry::new();
        registry.describe("noc_jobs_total", "Jobs by class.");
        registry.counter("noc_jobs_total{class=\"high\"}").inc(2);
        registry.counter("noc_jobs_total{class=\"low\"}").inc(1);
        registry.gauge("noc_depth").set(-3);
        let text = registry.exposition();
        assert_eq!(
            text.matches("# TYPE noc_jobs_total counter").count(),
            1,
            "{text}"
        );
        assert!(text.contains("# HELP noc_jobs_total Jobs by class."));
        assert!(text.contains("noc_jobs_total{class=\"high\"} 2"));
        assert!(text.contains("noc_depth -3"));
        // Deterministic: two reads of the same state are identical.
        assert_eq!(text, registry.exposition());
    }

    #[test]
    fn snapshot_is_json_shaped() {
        let registry = MetricsRegistry::new();
        registry.counter("noc_a_total").inc(7);
        registry.histogram("noc_lat_us").observe(5);
        let json = registry.snapshot_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"noc_a_total\":7"), "{json}");
        assert!(json.contains("\"count\":1"), "{json}");
        assert!(json.contains("[\"+Inf\",1]"), "{json}");
    }
}
