//! Classic synthetic NoC traffic patterns as CDCGs.
//!
//! The NoC literature evaluates interconnects with standard spatial
//! patterns — uniform random, transpose, bit-complement, hotspot. They
//! are not in the paper (its workloads are application task graphs), but
//! a mapping library is routinely exercised with them, and they make
//! sharp test cases: transpose and bit-complement have known good
//! placements, and hotspot stresses exactly the contention machinery the
//! CDCM model exists to expose.
//!
//! Each generator emits `rounds` waves of packets; within a wave every
//! source sends one packet to its pattern destination, and a core's
//! packet in wave `r+1` depends on its wave-`r` packet (steady-state
//! streaming, like the paper's `pEA1 → pEA2` ordering).

use noc_model::{Cdcg, CoreId, PacketId};
use serde::{Deserialize, Serialize};

/// The spatial traffic patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Every core sends to every other core in turn (round-robin over
    /// destinations across waves).
    UniformRoundRobin,
    /// Core `i` of `n` sends to core `(n − 1) − i` (bit-complement-like
    /// for any `n`; exact bit complement when `n` is a power of two).
    Complement,
    /// With cores viewed as a `side × side` matrix, core `(r, c)` sends
    /// to core `(c, r)`.
    Transpose {
        /// Matrix side; the pattern needs `side²` cores.
        side: usize,
    },
    /// Every core sends to one hotspot core.
    Hotspot {
        /// Index of the hotspot core.
        hotspot: usize,
    },
    /// Core `i` sends to core `(i + stride) mod n` — the classic
    /// shift/tornado family. With `stride = 1` traffic is
    /// nearest-neighbour on a row-major mesh; with `stride = width` it is
    /// vertical-neighbour; with `stride ≈ n/2` it crosses the whole mesh.
    Shift {
        /// Destination offset; `stride % cores` must be non-zero.
        stride: usize,
    },
    /// 3D layer mirror: with cores viewed as `L` layers of `layer_size`
    /// cores (the identity placement on a `W×H×L` mesh), the core at
    /// layer `l`, offset `o` sends to layer `L − 1 − l`, same offset —
    /// every packet crosses the full TSV stack, the vertical-link
    /// stress analogue of [`Self::Complement`]. Cores on the middle
    /// layer of an odd stack stay silent.
    LayerComplement {
        /// Cores per layer; must divide the core count.
        layer_size: usize,
    },
    /// 3D coordinate rotation: with cores viewed as a `side³` cube,
    /// core `(x, y, z)` sends to core `(y, z, x)` — the 3D analogue of
    /// [`Self::Transpose`], exercising all three axes at once. Cores on
    /// the diagonal (`x = y = z`) stay silent.
    Transpose3d {
        /// Cube side; the pattern needs `side³` cores.
        side: usize,
    },
}

impl TrafficPattern {
    /// Destination of core `src` in wave `round` under this pattern, or
    /// `None` when the core stays silent (e.g. the hotspot itself).
    pub fn destination(&self, src: usize, round: usize, cores: usize) -> Option<usize> {
        match *self {
            Self::UniformRoundRobin => {
                let dst = (src + 1 + (round % (cores - 1))) % cores;
                Some(dst)
            }
            Self::Complement => {
                let dst = cores - 1 - src;
                (dst != src).then_some(dst)
            }
            Self::Transpose { side } => {
                let (r, c) = (src / side, src % side);
                let dst = c * side + r;
                (dst != src).then_some(dst)
            }
            Self::Hotspot { hotspot } => (src != hotspot).then_some(hotspot),
            Self::Shift { stride } => {
                let dst = (src + stride) % cores;
                (dst != src).then_some(dst)
            }
            Self::LayerComplement { layer_size } => {
                let layers = cores / layer_size;
                let (l, o) = (src / layer_size, src % layer_size);
                let dst = (layers - 1 - l) * layer_size + o;
                (dst != src).then_some(dst)
            }
            Self::Transpose3d { side } => {
                let (z, rest) = (src / (side * side), src % (side * side));
                let (y, x) = (rest / side, rest % side);
                // (x, y, z) → (y, z, x): dst coordinates x'=y, y'=z, z'=x.
                let dst = x * side * side + z * side + y;
                (dst != src).then_some(dst)
            }
        }
    }
}

/// Generator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Number of cores.
    pub cores: usize,
    /// The spatial pattern.
    pub pattern: TrafficPattern,
    /// Number of waves.
    pub rounds: usize,
    /// Bits per packet.
    pub packet_bits: u64,
    /// Computation cycles between a core's consecutive sends.
    pub comp_cycles: u64,
}

impl SyntheticConfig {
    /// `cores` under `pattern`, 4 rounds of 256-bit packets.
    pub fn new(cores: usize, pattern: TrafficPattern) -> Self {
        Self {
            cores,
            pattern,
            rounds: 4,
            packet_bits: 256,
            comp_cycles: 8,
        }
    }
}

/// Builds the synthetic CDCG.
///
/// # Panics
///
/// Panics if `cores < 2`, `rounds == 0`, or the pattern is inconsistent
/// with the core count (`Transpose` needs `side² == cores`, `Hotspot`
/// needs `hotspot < cores`).
pub fn synthetic(config: &SyntheticConfig) -> Cdcg {
    assert!(config.cores >= 2, "need at least two cores");
    assert!(config.rounds > 0, "need at least one round");
    match config.pattern {
        TrafficPattern::Transpose { side } => {
            assert_eq!(side * side, config.cores, "transpose needs side^2 cores");
        }
        TrafficPattern::Hotspot { hotspot } => {
            assert!(hotspot < config.cores, "hotspot core out of range");
        }
        TrafficPattern::Shift { stride } => {
            assert!(
                !stride.is_multiple_of(config.cores),
                "shift stride must not be a multiple of the core count"
            );
        }
        TrafficPattern::LayerComplement { layer_size } => {
            assert!(
                layer_size > 0 && config.cores.is_multiple_of(layer_size),
                "layer size must divide the core count"
            );
            assert!(
                config.cores / layer_size >= 2,
                "layer complement needs at least two layers"
            );
        }
        TrafficPattern::Transpose3d { side } => {
            assert_eq!(
                side * side * side,
                config.cores,
                "3D transpose needs side^3 cores"
            );
        }
        _ => {}
    }

    let mut g = Cdcg::new();
    let cores: Vec<CoreId> = (0..config.cores)
        .map(|i| g.add_core(format!("n{i}")))
        .collect();
    let mut prev_of_core: Vec<Option<PacketId>> = vec![None; config.cores];
    for round in 0..config.rounds {
        for src in 0..config.cores {
            let Some(dst) = config.pattern.destination(src, round, config.cores) else {
                continue;
            };
            let id = g
                .add_packet(
                    cores[src],
                    cores[dst],
                    config.comp_cycles,
                    config.packet_bits,
                )
                .expect("pattern packets are valid");
            if let Some(prev) = prev_of_core[src] {
                g.add_dependence(prev, id)
                    .expect("wave ordering is acyclic");
            }
            prev_of_core[src] = Some(id);
        }
    }
    g
}

/// A mesh-filling workload for large-mesh scaling runs: one core per
/// tile of a `width × height` mesh, each round sending along a
/// different shift stride — nearest-neighbour (`1`), vertical
/// (`width`), diagonal (`width + 1`) and cross-mesh (`n/2 + 1`) — so
/// the traffic exercises short hops, long hops and wrap candidates at
/// once. A core's packet in round `r + 1` depends on its round-`r`
/// packet, like [`synthetic`]'s waves.
///
/// The point of this generator is route-provisioning scale: on a 64×64
/// or 128×128 mesh the resulting instance cannot be evaluated over the
/// dense `RouteCache` at all and must run on the on-demand or implicit
/// provider tiers.
///
/// # Panics
///
/// Panics if the mesh has fewer than two tiles or `rounds == 0`.
pub fn large_mesh_workload(width: usize, height: usize, rounds: usize) -> Cdcg {
    // Degenerate shapes (one row, two tiles) collapse some candidates
    // onto a full cycle (stride ≡ 0 mod n, every core would target
    // itself); keep only the strides that make every core send, so the
    // per-round and per-core-chain contracts hold on every mesh. Stride
    // 1 always survives (`cores ≥ 2`).
    let cores = width * height;
    shift_rounds_workload(cores, rounds, &[1, width, width + 1, cores / 2 + 1])
}

/// The 3D mesh-filling analogue of [`large_mesh_workload`]: one core
/// per tile of a `width × height × depth` mesh (identity placement),
/// each round a **layered shift** along a different stride —
/// nearest-neighbour (`1`), row-crossing (`width`), *layer-crossing*
/// (`width·height`, the vertical-neighbour stride that puts every
/// packet on a TSV under the identity mapping) and cross-stack
/// (`n/2 + 1`). A core's packet in round `r + 1` depends on its
/// round-`r` packet.
///
/// # Panics
///
/// Panics if the mesh has fewer than two tiles or `rounds == 0`.
pub fn layered_shift_workload(width: usize, height: usize, depth: usize, rounds: usize) -> Cdcg {
    let cores = width * height * depth;
    shift_rounds_workload(cores, rounds, &[1, width, width * height, cores / 2 + 1])
}

/// Shared body of the mesh-filling shift generators: `rounds` waves of
/// one packet per core, cycling through the stride candidates that make
/// every core send (`stride ≢ 0 mod cores`).
fn shift_rounds_workload(cores: usize, rounds: usize, stride_candidates: &[usize]) -> Cdcg {
    assert!(cores >= 2, "need at least two tiles");
    assert!(rounds > 0, "need at least one round");
    let strides: Vec<usize> = stride_candidates
        .iter()
        .copied()
        .filter(|s| !s.is_multiple_of(cores))
        .collect();
    let mut g = Cdcg::new();
    let ids: Vec<CoreId> = (0..cores).map(|i| g.add_core(format!("t{i}"))).collect();
    let mut prev_of_core: Vec<Option<PacketId>> = vec![None; cores];
    for round in 0..rounds {
        let stride = strides[round % strides.len()];
        for src in 0..cores {
            let dst = (src + stride) % cores;
            let id = g
                .add_packet(ids[src], ids[dst], 8, 256)
                .expect("shift packets are valid");
            if let Some(prev) = prev_of_core[src] {
                g.add_dependence(prev, id)
                    .expect("round ordering is acyclic");
            }
            prev_of_core[src] = Some(id);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complement_pairs_up() {
        let g = synthetic(&SyntheticConfig::new(8, TrafficPattern::Complement));
        assert_eq!(g.core_count(), 8);
        assert_eq!(g.packet_count(), 8 * 4);
        for id in g.packet_ids() {
            let p = g.packet(id);
            assert_eq!(p.dst.index(), 7 - p.src.index());
        }
        g.validate().unwrap();
    }

    #[test]
    fn transpose_matches_matrix_transpose() {
        let g = synthetic(&SyntheticConfig::new(
            9,
            TrafficPattern::Transpose { side: 3 },
        ));
        // Diagonal cores (0,0),(1,1),(2,2) stay silent.
        assert_eq!(g.packet_count(), (9 - 3) * 4);
        for id in g.packet_ids() {
            let p = g.packet(id);
            let (r, c) = (p.src.index() / 3, p.src.index() % 3);
            assert_eq!(p.dst.index(), c * 3 + r);
        }
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let g = synthetic(&SyntheticConfig::new(
            6,
            TrafficPattern::Hotspot { hotspot: 2 },
        ));
        assert_eq!(g.packet_count(), 5 * 4);
        for id in g.packet_ids() {
            assert_eq!(g.packet(id).dst.index(), 2);
        }
    }

    #[test]
    fn uniform_round_robin_covers_destinations() {
        let cores = 5;
        let mut config = SyntheticConfig::new(cores, TrafficPattern::UniformRoundRobin);
        config.rounds = cores - 1;
        let g = synthetic(&config);
        // Over cores-1 rounds each source hits every other core once.
        for src in 0..cores {
            let mut dsts: Vec<usize> = g
                .packet_ids()
                .filter(|&id| g.packet(id).src.index() == src)
                .map(|id| g.packet(id).dst.index())
                .collect();
            dsts.sort_unstable();
            let expected: Vec<usize> = (0..cores).filter(|&d| d != src).collect();
            assert_eq!(dsts, expected, "source {src}");
        }
    }

    #[test]
    fn waves_are_serialized_per_core() {
        let g = synthetic(&SyntheticConfig::new(4, TrafficPattern::Complement));
        for src in 0..4 {
            let sends: Vec<PacketId> = g
                .packet_ids()
                .filter(|&id| g.packet(id).src.index() == src)
                .collect();
            for w in sends.windows(2) {
                assert!(g.predecessors(w[1]).contains(&w[0]));
            }
        }
    }

    #[test]
    fn pattern_destinations_never_self() {
        for (pattern, cores) in [
            (TrafficPattern::UniformRoundRobin, 7),
            (TrafficPattern::Complement, 8),
            (TrafficPattern::Transpose { side: 3 }, 9),
            (TrafficPattern::Hotspot { hotspot: 0 }, 5),
        ] {
            for round in 0..6 {
                for src in 0..cores {
                    if let Some(dst) = pattern.destination(src, round, cores) {
                        assert_ne!(dst, src, "{pattern:?} src {src} round {round}");
                        assert!(dst < cores);
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "side^2")]
    fn transpose_size_mismatch_panics() {
        let _ = synthetic(&SyntheticConfig::new(
            8,
            TrafficPattern::Transpose { side: 3 },
        ));
    }

    #[test]
    fn shift_pattern_offsets_destinations() {
        let g = synthetic(&SyntheticConfig::new(
            10,
            TrafficPattern::Shift { stride: 3 },
        ));
        assert_eq!(g.packet_count(), 10 * 4);
        for id in g.packet_ids() {
            let p = g.packet(id);
            assert_eq!(p.dst.index(), (p.src.index() + 3) % 10);
        }
        g.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn shift_full_cycle_panics() {
        let _ = synthetic(&SyntheticConfig::new(
            5,
            TrafficPattern::Shift { stride: 10 },
        ));
    }

    #[test]
    fn large_mesh_workload_fills_the_mesh() {
        let g = large_mesh_workload(8, 4, 4);
        assert_eq!(g.core_count(), 32);
        // Every round every core sends (no stride is a multiple of n).
        assert_eq!(g.packet_count(), 32 * 4);
        g.validate().unwrap();
        // Rounds are chained per core.
        for src in 0..32 {
            let sends: Vec<PacketId> = g
                .packet_ids()
                .filter(|&id| g.packet(id).src.index() == src)
                .collect();
            assert_eq!(sends.len(), 4);
            for w in sends.windows(2) {
                assert!(g.predecessors(w[1]).contains(&w[0]));
            }
        }
        // Strides vary across rounds: round 0 is nearest-neighbour,
        // round 3 crosses half the mesh.
        let first = g.packet_ids().next().unwrap();
        assert_eq!(g.packet(first).dst.index(), 1);
    }

    #[test]
    fn layer_complement_mirrors_the_stack() {
        // 3 layers of 4 cores: layer 0 <-> layer 2, layer 1 silent.
        let g = synthetic(&SyntheticConfig::new(
            12,
            TrafficPattern::LayerComplement { layer_size: 4 },
        ));
        assert_eq!(g.packet_count(), 8 * 4, "middle layer stays silent");
        for id in g.packet_ids() {
            let p = g.packet(id);
            let (l, o) = (p.src.index() / 4, p.src.index() % 4);
            assert_eq!(p.dst.index(), (2 - l) * 4 + o);
        }
        g.validate().unwrap();
    }

    #[test]
    fn transpose3d_rotates_coordinates() {
        let side = 3;
        let g = synthetic(&SyntheticConfig::new(
            27,
            TrafficPattern::Transpose3d { side },
        ));
        // The 3 diagonal cores (x=y=z) stay silent.
        assert_eq!(g.packet_count(), (27 - 3) * 4);
        for id in g.packet_ids() {
            let p = g.packet(id);
            let s = p.src.index();
            let (z, y, x) = (s / 9, (s % 9) / 3, s % 3);
            assert_eq!(p.dst.index(), x * 9 + z * 3 + y, "src {s}");
        }
        g.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "side^3")]
    fn transpose3d_size_mismatch_panics() {
        let _ = synthetic(&SyntheticConfig::new(
            8,
            TrafficPattern::Transpose3d { side: 3 },
        ));
    }

    #[test]
    fn layered_shift_fills_the_cube() {
        let g = layered_shift_workload(4, 4, 4, 4);
        assert_eq!(g.core_count(), 64);
        assert_eq!(g.packet_count(), 64 * 4);
        g.validate().unwrap();
        // Round 2 uses the layer-crossing stride: under the identity
        // mapping every packet of that round crosses exactly one TSV.
        let round2: Vec<_> = g.packet_ids().filter(|id| id.index() / 64 == 2).collect();
        assert_eq!(round2.len(), 64);
        for id in round2 {
            let p = g.packet(id);
            assert_eq!(p.dst.index(), (p.src.index() + 16) % 64);
        }
        // Degenerate: a 2-tile stack still makes every core send.
        let tiny = layered_shift_workload(1, 1, 2, 3);
        assert_eq!(tiny.packet_count(), 2 * 3);
        tiny.validate().unwrap();
    }

    #[test]
    fn large_mesh_workload_handles_degenerate_shapes() {
        // One-row meshes and 2-tile meshes collapse some stride
        // candidates onto full cycles; every round must still make
        // every core send exactly once (regression test).
        for (w, h) in [(6, 1), (2, 1), (1, 2), (2, 2)] {
            let g = large_mesh_workload(w, h, 4);
            let cores = w * h;
            assert_eq!(g.packet_count(), cores * 4, "{w}x{h}");
            for id in g.packet_ids() {
                let p = g.packet(id);
                assert_ne!(p.src, p.dst, "{w}x{h}");
            }
            g.validate().unwrap();
        }
    }
}
