//! Classic synthetic NoC traffic patterns as CDCGs.
//!
//! The NoC literature evaluates interconnects with standard spatial
//! patterns — uniform random, transpose, bit-complement, hotspot. They
//! are not in the paper (its workloads are application task graphs), but
//! a mapping library is routinely exercised with them, and they make
//! sharp test cases: transpose and bit-complement have known good
//! placements, and hotspot stresses exactly the contention machinery the
//! CDCM model exists to expose.
//!
//! Each generator emits `rounds` waves of packets; within a wave every
//! source sends one packet to its pattern destination, and a core's
//! packet in wave `r+1` depends on its wave-`r` packet (steady-state
//! streaming, like the paper's `pEA1 → pEA2` ordering).

use noc_model::{Cdcg, CoreId, PacketId};
use serde::{Deserialize, Serialize};

/// The spatial traffic patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Every core sends to every other core in turn (round-robin over
    /// destinations across waves).
    UniformRoundRobin,
    /// Core `i` of `n` sends to core `(n − 1) − i` (bit-complement-like
    /// for any `n`; exact bit complement when `n` is a power of two).
    Complement,
    /// With cores viewed as a `side × side` matrix, core `(r, c)` sends
    /// to core `(c, r)`.
    Transpose {
        /// Matrix side; the pattern needs `side²` cores.
        side: usize,
    },
    /// Every core sends to one hotspot core.
    Hotspot {
        /// Index of the hotspot core.
        hotspot: usize,
    },
}

impl TrafficPattern {
    /// Destination of core `src` in wave `round` under this pattern, or
    /// `None` when the core stays silent (e.g. the hotspot itself).
    pub fn destination(&self, src: usize, round: usize, cores: usize) -> Option<usize> {
        match *self {
            Self::UniformRoundRobin => {
                let dst = (src + 1 + (round % (cores - 1))) % cores;
                Some(dst)
            }
            Self::Complement => {
                let dst = cores - 1 - src;
                (dst != src).then_some(dst)
            }
            Self::Transpose { side } => {
                let (r, c) = (src / side, src % side);
                let dst = c * side + r;
                (dst != src).then_some(dst)
            }
            Self::Hotspot { hotspot } => (src != hotspot).then_some(hotspot),
        }
    }
}

/// Generator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Number of cores.
    pub cores: usize,
    /// The spatial pattern.
    pub pattern: TrafficPattern,
    /// Number of waves.
    pub rounds: usize,
    /// Bits per packet.
    pub packet_bits: u64,
    /// Computation cycles between a core's consecutive sends.
    pub comp_cycles: u64,
}

impl SyntheticConfig {
    /// `cores` under `pattern`, 4 rounds of 256-bit packets.
    pub fn new(cores: usize, pattern: TrafficPattern) -> Self {
        Self {
            cores,
            pattern,
            rounds: 4,
            packet_bits: 256,
            comp_cycles: 8,
        }
    }
}

/// Builds the synthetic CDCG.
///
/// # Panics
///
/// Panics if `cores < 2`, `rounds == 0`, or the pattern is inconsistent
/// with the core count (`Transpose` needs `side² == cores`, `Hotspot`
/// needs `hotspot < cores`).
pub fn synthetic(config: &SyntheticConfig) -> Cdcg {
    assert!(config.cores >= 2, "need at least two cores");
    assert!(config.rounds > 0, "need at least one round");
    match config.pattern {
        TrafficPattern::Transpose { side } => {
            assert_eq!(side * side, config.cores, "transpose needs side^2 cores");
        }
        TrafficPattern::Hotspot { hotspot } => {
            assert!(hotspot < config.cores, "hotspot core out of range");
        }
        _ => {}
    }

    let mut g = Cdcg::new();
    let cores: Vec<CoreId> = (0..config.cores)
        .map(|i| g.add_core(format!("n{i}")))
        .collect();
    let mut prev_of_core: Vec<Option<PacketId>> = vec![None; config.cores];
    for round in 0..config.rounds {
        for src in 0..config.cores {
            let Some(dst) = config.pattern.destination(src, round, config.cores) else {
                continue;
            };
            let id = g
                .add_packet(
                    cores[src],
                    cores[dst],
                    config.comp_cycles,
                    config.packet_bits,
                )
                .expect("pattern packets are valid");
            if let Some(prev) = prev_of_core[src] {
                g.add_dependence(prev, id)
                    .expect("wave ordering is acyclic");
            }
            prev_of_core[src] = Some(id);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complement_pairs_up() {
        let g = synthetic(&SyntheticConfig::new(8, TrafficPattern::Complement));
        assert_eq!(g.core_count(), 8);
        assert_eq!(g.packet_count(), 8 * 4);
        for id in g.packet_ids() {
            let p = g.packet(id);
            assert_eq!(p.dst.index(), 7 - p.src.index());
        }
        g.validate().unwrap();
    }

    #[test]
    fn transpose_matches_matrix_transpose() {
        let g = synthetic(&SyntheticConfig::new(
            9,
            TrafficPattern::Transpose { side: 3 },
        ));
        // Diagonal cores (0,0),(1,1),(2,2) stay silent.
        assert_eq!(g.packet_count(), (9 - 3) * 4);
        for id in g.packet_ids() {
            let p = g.packet(id);
            let (r, c) = (p.src.index() / 3, p.src.index() % 3);
            assert_eq!(p.dst.index(), c * 3 + r);
        }
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let g = synthetic(&SyntheticConfig::new(
            6,
            TrafficPattern::Hotspot { hotspot: 2 },
        ));
        assert_eq!(g.packet_count(), 5 * 4);
        for id in g.packet_ids() {
            assert_eq!(g.packet(id).dst.index(), 2);
        }
    }

    #[test]
    fn uniform_round_robin_covers_destinations() {
        let cores = 5;
        let mut config = SyntheticConfig::new(cores, TrafficPattern::UniformRoundRobin);
        config.rounds = cores - 1;
        let g = synthetic(&config);
        // Over cores-1 rounds each source hits every other core once.
        for src in 0..cores {
            let mut dsts: Vec<usize> = g
                .packet_ids()
                .filter(|&id| g.packet(id).src.index() == src)
                .map(|id| g.packet(id).dst.index())
                .collect();
            dsts.sort_unstable();
            let expected: Vec<usize> = (0..cores).filter(|&d| d != src).collect();
            assert_eq!(dsts, expected, "source {src}");
        }
    }

    #[test]
    fn waves_are_serialized_per_core() {
        let g = synthetic(&SyntheticConfig::new(4, TrafficPattern::Complement));
        for src in 0..4 {
            let sends: Vec<PacketId> = g
                .packet_ids()
                .filter(|&id| g.packet(id).src.index() == src)
                .collect();
            for w in sends.windows(2) {
                assert!(g.predecessors(w[1]).contains(&w[0]));
            }
        }
    }

    #[test]
    fn pattern_destinations_never_self() {
        for (pattern, cores) in [
            (TrafficPattern::UniformRoundRobin, 7),
            (TrafficPattern::Complement, 8),
            (TrafficPattern::Transpose { side: 3 }, 9),
            (TrafficPattern::Hotspot { hotspot: 0 }, 5),
        ] {
            for round in 0..6 {
                for src in 0..cores {
                    if let Some(dst) = pattern.destination(src, round, cores) {
                        assert_ne!(dst, src, "{pattern:?} src {src} round {round}");
                        assert!(dst < cores);
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "side^2")]
    fn transpose_size_mismatch_panics() {
        let _ = synthetic(&SyntheticConfig::new(
            8,
            TrafficPattern::Transpose { side: 3 },
        ));
    }
}
