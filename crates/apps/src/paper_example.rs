//! The paper's running example (Figure 1): a 4-core application with six
//! packets on a 2×2 NoC, plus the two mappings of Figure 1(c)/(d).
//!
//! Every golden test of the reproduction is anchored here, so the
//! structures are centralized in one place. Core order is A, B, E, F
//! (ids 0–3); packet order matches the construction below:
//!
//! | id | packet | src→dst | comp | bits |
//! |----|--------|---------|------|------|
//! | p0 | pAB1 | A→B | 6  | 15 |
//! | p1 | pBF1 | B→F | 10 | 40 |
//! | p2 | pEA1 | E→A | 10 | 20 |
//! | p3 | pEA2 | E→A | 20 | 15 |
//! | p4 | pAF1 | A→F | 6  | 15 |
//! | p5 | pFB1 | F→B | 6  | 15 |
//!
//! Dependences: `Start→{p0,p1,p2}`, `p2→p3`, `{p0,p2}→p4`, `{p1,p4}→p5`.

use noc_model::{Cdcg, Cwg, Mapping, Mesh, PacketId, TileId};

/// Index of `pAB1` in [`figure1_cdcg`].
pub const P_AB1: PacketId = PacketId::new(0);
/// Index of `pBF1` in [`figure1_cdcg`].
pub const P_BF1: PacketId = PacketId::new(1);
/// Index of `pEA1` in [`figure1_cdcg`].
pub const P_EA1: PacketId = PacketId::new(2);
/// Index of `pEA2` in [`figure1_cdcg`].
pub const P_EA2: PacketId = PacketId::new(3);
/// Index of `pAF1` in [`figure1_cdcg`].
pub const P_AF1: PacketId = PacketId::new(4);
/// Index of `pFB1` in [`figure1_cdcg`].
pub const P_FB1: PacketId = PacketId::new(5);

/// The Figure 1(b) CDCG.
pub fn figure1_cdcg() -> Cdcg {
    let mut g = Cdcg::new();
    let a = g.add_core("A");
    let b = g.add_core("B");
    let e = g.add_core("E");
    let f = g.add_core("F");
    let pab1 = g.add_packet(a, b, 6, 15).expect("valid packet");
    let pbf1 = g.add_packet(b, f, 10, 40).expect("valid packet");
    let pea1 = g.add_packet(e, a, 10, 20).expect("valid packet");
    let pea2 = g.add_packet(e, a, 20, 15).expect("valid packet");
    let paf1 = g.add_packet(a, f, 6, 15).expect("valid packet");
    let pfb1 = g.add_packet(f, b, 6, 15).expect("valid packet");
    g.add_dependence(pea1, pea2).expect("valid dependence");
    g.add_dependence(pab1, paf1).expect("valid dependence");
    g.add_dependence(pea1, paf1).expect("valid dependence");
    g.add_dependence(pbf1, pfb1).expect("valid dependence");
    g.add_dependence(paf1, pfb1).expect("valid dependence");
    g
}

/// The Figure 1(a) CWG (equal to `figure1_cdcg().to_cwg()`).
pub fn figure1_cwg() -> Cwg {
    figure1_cdcg().to_cwg()
}

/// The 2×2 mesh of the example.
pub fn mesh_2x2() -> Mesh {
    Mesh::new(2, 2).expect("2x2 is a valid mesh")
}

/// Figure 1(c): `CRG1 = {(τ1,B), (τ2,A), (τ3,F), (τ4,E)}` — the mapping
/// with contention (texec 100 ns).
pub fn mapping_c() -> Mapping {
    Mapping::from_tiles(&mesh_2x2(), [1, 0, 3, 2].map(TileId::new))
        .expect("paper mapping is injective")
}

/// Figure 1(d): `CRG2 = {(τ1,B), (τ2,E), (τ3,F), (τ4,A)}` — the
/// contention-free mapping (texec 90 ns).
pub fn mapping_d() -> Mapping {
    Mapping::from_tiles(&mesh_2x2(), [3, 0, 1, 2].map(TileId::new))
        .expect("paper mapping is injective")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_matches_figure1() {
        let g = figure1_cdcg();
        assert_eq!(g.core_count(), 4);
        assert_eq!(g.packet_count(), 6);
        assert_eq!(g.total_volume(), 120);
        g.validate().unwrap();
        assert_eq!(g.packet(P_BF1).bits, 40);
        assert_eq!(g.packet(P_EA2).comp_cycles, 20);
        assert_eq!(g.predecessors(P_FB1), &[P_BF1, P_AF1]);
    }

    #[test]
    fn cwg_volumes() {
        let cwg = figure1_cwg();
        assert_eq!(cwg.total_volume(), 120);
        assert_eq!(cwg.communication_count(), 5);
    }

    #[test]
    fn mappings_place_all_cores() {
        let c = mapping_c();
        let d = mapping_d();
        c.validate().unwrap();
        d.validate().unwrap();
        // A (core 0) moves from τ2 to τ4 between the mappings.
        assert_eq!(c.tile_of(noc_model::CoreId::new(0)), TileId::new(1));
        assert_eq!(d.tile_of(noc_model::CoreId::new(0)), TileId::new(3));
    }
}
