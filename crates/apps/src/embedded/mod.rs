//! Structural generators for the paper's four embedded applications.
//!
//! The paper evaluates "a distributed Romberg integration, an 8-point
//! Fast Fourier Transform, and 2 image applications for object
//! recognition and image encoding", each with variations. The published
//! table only gives aggregate sizes; these modules model the
//! applications from their algorithmic structure (wavefront, butterfly
//! exchange, fan-out pipeline, compression pipeline) so that examples
//! and extension experiments can run named workloads with realistic
//! dependence shapes.

pub mod fft;
pub mod image_encoding;
pub mod object_recognition;
pub mod romberg;

pub use fft::{fft, FftConfig};
pub use image_encoding::{image_encoding, ImageEncodingConfig};
pub use object_recognition::{object_recognition, ObjectRecognitionConfig};
pub use romberg::{romberg, RombergConfig};
