//! Block-based image encoder — the paper's second "image application".
//!
//! A JPEG-style encoder pipeline: `source → dct → quantize → entropy →
//! store`. The image is split into `blocks` macroblocks that stream
//! through the stages; the entropy coder compresses, so volumes shrink
//! stage by stage (the configured compression ratio models quality
//! variations — the paper's "image encoding with some variations").

use noc_model::{Cdcg, CoreId, PacketId};
use serde::{Deserialize, Serialize};

/// Generator parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImageEncodingConfig {
    /// Number of macroblocks streamed through the encoder.
    pub blocks: usize,
    /// Bits of one raw macroblock (8×8 pixels × 8 bits = 512 by default).
    pub block_bits: u64,
    /// Entropy-stage compression ratio in `(0, 1]`: output bits =
    /// `block_bits × ratio` (at least 1).
    pub compression_ratio: f64,
    /// Cycles per stage per block.
    pub stage_cycles: u64,
}

impl ImageEncodingConfig {
    /// `blocks` 512-bit macroblocks at a 0.25 compression ratio.
    pub fn new(blocks: usize) -> Self {
        Self {
            blocks,
            block_bits: 512,
            compression_ratio: 0.25,
            stage_cycles: 20,
        }
    }
}

impl Default for ImageEncodingConfig {
    fn default() -> Self {
        Self::new(8)
    }
}

/// Builds the encoder CDCG: 5 cores, `4 × blocks` packets.
///
/// # Panics
///
/// Panics if `blocks == 0` or `compression_ratio` is not in `(0, 1]`.
pub fn image_encoding(config: &ImageEncodingConfig) -> Cdcg {
    assert!(config.blocks > 0, "need at least one block");
    assert!(
        config.compression_ratio > 0.0 && config.compression_ratio <= 1.0,
        "compression ratio must be in (0, 1]"
    );
    let mut g = Cdcg::new();
    let source = g.add_core("source");
    let dct = g.add_core("dct");
    let quant = g.add_core("quantize");
    let entropy = g.add_core("entropy");
    let store = g.add_core("store");

    let stages: [(CoreId, CoreId, u64); 4] = [
        (source, dct, config.block_bits),
        (dct, quant, config.block_bits), // DCT keeps size (coefficients)
        (quant, entropy, config.block_bits / 2), // quantization zeroes half
        (
            entropy,
            store,
            ((config.block_bits as f64 * config.compression_ratio) as u64).max(1),
        ),
    ];

    let mut prev_on_link: Vec<Option<PacketId>> = vec![None; stages.len()];
    for _ in 0..config.blocks {
        let mut upstream: Option<PacketId> = None;
        for (s, &(src, dst, bits)) in stages.iter().enumerate() {
            let id = g
                .add_packet(src, dst, config.stage_cycles, bits)
                .expect("valid packet");
            if let Some(u) = upstream {
                g.add_dependence(u, id).expect("acyclic");
            }
            if let Some(p) = prev_on_link[s] {
                // Per-stage ordering between consecutive blocks.
                let _ = g.add_dependence(p, id);
            }
            prev_on_link[s] = Some(id);
            upstream = Some(id);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_is_five_cores_four_packets_per_block() {
        for blocks in 1..=6 {
            let g = image_encoding(&ImageEncodingConfig::new(blocks));
            assert_eq!(g.core_count(), 5);
            assert_eq!(g.packet_count(), 4 * blocks);
            g.validate().unwrap();
        }
    }

    #[test]
    fn compression_shrinks_the_tail() {
        let g = image_encoding(&ImageEncodingConfig::new(1));
        let entropy = g.core_by_name("entropy").unwrap();
        let store = g.core_by_name("store").unwrap();
        let out = g.packets_between(entropy, store)[0];
        assert_eq!(g.packet(out).bits, 128); // 512 * 0.25
    }

    #[test]
    fn ratio_one_keeps_block_size() {
        let mut config = ImageEncodingConfig::new(1);
        config.compression_ratio = 1.0;
        let g = image_encoding(&config);
        let entropy = g.core_by_name("entropy").unwrap();
        let store = g.core_by_name("store").unwrap();
        let out = g.packets_between(entropy, store)[0];
        assert_eq!(g.packet(out).bits, 512);
    }

    #[test]
    fn blocks_pipeline_with_per_stage_ordering() {
        let g = image_encoding(&ImageEncodingConfig::new(3));
        let source = g.core_by_name("source").unwrap();
        let dct = g.core_by_name("dct").unwrap();
        let raws = g.packets_between(source, dct);
        for w in raws.windows(2) {
            assert!(g.predecessors(w[1]).contains(&w[0]));
        }
        // Depth: 4 stages + (blocks-1) pipeline offset.
        assert_eq!(g.depth(), 4 + 2);
    }

    #[test]
    fn total_volume_formula() {
        let config = ImageEncodingConfig::new(10);
        let g = image_encoding(&config);
        let per_block = 512 + 512 + 256 + 128;
        assert_eq!(g.total_volume(), 10 * per_block);
    }

    #[test]
    #[should_panic(expected = "compression ratio")]
    fn bad_ratio_panics() {
        let mut config = ImageEncodingConfig::new(1);
        config.compression_ratio = 0.0;
        let _ = image_encoding(&config);
    }
}
