//! Distributed Romberg integration — one of the paper's four embedded
//! applications.
//!
//! Romberg integration builds a triangular extrapolation tableau
//! `T(i, j)`: row `i` starts from the composite trapezoid estimate at
//! refinement level `i`, and `T(i, j) = f(T(i, j−1), T(i−1, j−1))`
//! Richardson-extrapolates. Distributing row `i` to worker core `i`
//! yields a classic wavefront: core `i` sends each tableau entry it
//! produces to core `i+1`, which needs it for the next diagonal.
//!
//! The CDCG has one packet per produced-and-forwarded entry `T(i, j)`
//! (`j ≤ i`, `i < levels`), with dependences on the same-core previous
//! entry (local sequencing, like the paper's `pEA1 → pEA2`) and on the
//! cross-core entry it extrapolates from.

use noc_model::{Cdcg, PacketId};
use serde::{Deserialize, Serialize};

/// Generator parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RombergConfig {
    /// Number of refinement levels; the tableau has `levels + 1` rows and
    /// the application `levels + 1` cores.
    pub levels: usize,
    /// Bits per forwarded tableau value (a double is 64).
    pub value_bits: u64,
    /// Computation cycles for a row-0 trapezoid evaluation at level `i`
    /// (doubles per level: finer grids cost more).
    pub base_comp_cycles: u64,
}

impl RombergConfig {
    /// `levels` with 64-bit values and a 16-cycle base computation.
    pub fn new(levels: usize) -> Self {
        Self {
            levels,
            value_bits: 64,
            base_comp_cycles: 16,
        }
    }
}

impl Default for RombergConfig {
    fn default() -> Self {
        Self::new(5)
    }
}

/// Builds the distributed Romberg CDCG.
///
/// The graph has `levels + 1` cores and `levels·(levels+1)/2` packets.
///
/// # Panics
///
/// Panics if `levels == 0` (a single row never communicates).
pub fn romberg(config: &RombergConfig) -> Cdcg {
    assert!(
        config.levels > 0,
        "romberg needs at least one refinement level"
    );
    let mut g = Cdcg::new();
    let cores: Vec<_> = (0..=config.levels)
        .map(|i| g.add_core(format!("row{i}")))
        .collect();

    // packet_at[i][j] = the packet carrying T(i, j) from core i to i+1.
    let mut packet_at: Vec<Vec<PacketId>> = Vec::new();
    for i in 0..config.levels {
        let mut row = Vec::new();
        for j in 0..=i {
            // T(i, 0) costs a trapezoid sweep (doubling per level);
            // extrapolations are cheap.
            let comp = if j == 0 {
                config.base_comp_cycles << i.min(16)
            } else {
                config.base_comp_cycles / 2
            };
            let id = g
                .add_packet(cores[i], cores[i + 1], comp, config.value_bits)
                .expect("valid packet");
            // Local sequencing: T(i, j) is produced after T(i, j-1).
            if j > 0 {
                g.add_dependence(row[j - 1], id).expect("acyclic");
            }
            // Cross-core data: T(i, j) extrapolates T(i-1, j-1), which
            // arrived as a packet from core i-1.
            if i > 0 && j > 0 {
                g.add_dependence(packet_at[i - 1][j - 1], id)
                    .expect("acyclic");
            }
            row.push(id);
        }
        packet_at.push(row);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_tableau() {
        for levels in 1..=8 {
            let g = romberg(&RombergConfig::new(levels));
            assert_eq!(g.core_count(), levels + 1);
            assert_eq!(g.packet_count(), levels * (levels + 1) / 2);
            g.validate().unwrap();
        }
    }

    #[test]
    fn five_levels_is_six_cores_fifteen_packets() {
        let g = romberg(&RombergConfig::default());
        assert_eq!(g.core_count(), 6);
        assert_eq!(g.packet_count(), 15);
        assert_eq!(g.total_volume(), 15 * 64);
    }

    #[test]
    fn wavefront_depth() {
        // The critical chain is the last row: levels packets deep plus
        // the diagonal dependences; depth is exactly `levels`.
        let g = romberg(&RombergConfig::new(5));
        assert_eq!(g.depth(), 5);
    }

    #[test]
    fn only_neighbor_cores_communicate() {
        let g = romberg(&RombergConfig::new(6));
        for id in g.packet_ids() {
            let p = g.packet(id);
            assert_eq!(p.dst.index(), p.src.index() + 1);
        }
    }

    #[test]
    fn trapezoid_cost_doubles_per_level() {
        let g = romberg(&RombergConfig::new(4));
        // First packet of each row i is T(i, 0).
        let row_starts: Vec<u64> = g
            .packet_ids()
            .filter(|&id| {
                g.predecessors(id)
                    .iter()
                    .all(|&p| g.packet(p).src != g.packet(id).src)
            })
            .map(|id| g.packet(id).comp_cycles)
            .collect();
        assert!(row_starts.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    #[should_panic(expected = "at least one refinement level")]
    fn zero_levels_panics() {
        let _ = romberg(&RombergConfig::new(0));
    }
}
