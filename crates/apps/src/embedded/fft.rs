//! Distributed radix-2 FFT — the paper's "8-point Fast Fourier
//! Transform" embedded application (with size variations).
//!
//! `2^stages` points are scattered from a source core onto
//! `2^(stages−1)` butterfly cores (two points each). Every stage whose
//! butterfly span crosses cores triggers a pairwise exchange: each core
//! of a partner pair sends both of its values to the other, computes its
//! half of the butterflies, and proceeds. The final intra-core stage is
//! local, after which all cores forward results to a sink core.
//!
//! For the paper's 8-point instance: 6 cores (source, 4 workers, sink)
//! and `4 + 4 + 4 + 4 = 16` packets (scatter, two exchange stages, and a
//! gather of one two-sample packet per worker each).

use noc_model::{Cdcg, PacketId};
use serde::{Deserialize, Serialize};

/// Generator parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FftConfig {
    /// log2 of the transform size (3 → 8-point).
    pub stages: usize,
    /// Bits per complex sample (two 32-bit words by default).
    pub sample_bits: u64,
    /// Cycles per butterfly computation.
    pub butterfly_cycles: u64,
}

impl FftConfig {
    /// A `2^stages`-point transform with 64-bit complex samples.
    pub fn new(stages: usize) -> Self {
        Self {
            stages,
            sample_bits: 64,
            butterfly_cycles: 8,
        }
    }
}

impl Default for FftConfig {
    fn default() -> Self {
        Self::new(3) // the paper's 8-point FFT
    }
}

/// Builds the distributed FFT CDCG.
///
/// # Panics
///
/// Panics if `stages < 2` (a 2-point transform fits one core and never
/// communicates).
pub fn fft(config: &FftConfig) -> Cdcg {
    assert!(config.stages >= 2, "need at least a 4-point transform");
    let workers = 1usize << (config.stages - 1);
    let mut g = Cdcg::new();
    let source = g.add_core("source");
    let worker: Vec<_> = (0..workers)
        .map(|i| g.add_core(format!("bfly{i}")))
        .collect();
    let sink = g.add_core("sink");

    // Scatter: each worker receives its two samples as one packet.
    let scatter: Vec<PacketId> = (0..workers)
        .map(|w| {
            g.add_packet(
                source,
                worker[w],
                config.butterfly_cycles,
                2 * config.sample_bits,
            )
            .expect("valid packet")
        })
        .collect();

    // Cross-core exchange stages: worker-bit b from high to low.
    // `last_packet_into[w]` tracks the packets a worker's next send
    // depends on.
    let mut last_into: Vec<Vec<PacketId>> = scatter.iter().map(|&p| vec![p]).collect();
    for bit in (0..config.stages - 1).rev() {
        let mut new_last: Vec<Vec<PacketId>> = vec![Vec::new(); workers];
        for w in 0..workers {
            let partner = w ^ (1 << bit);
            // w sends both of its current values to its partner.
            let p = g
                .add_packet(
                    worker[w],
                    worker[partner],
                    config.butterfly_cycles,
                    2 * config.sample_bits,
                )
                .expect("valid packet");
            for &dep in &last_into[w] {
                g.add_dependence(dep, p).expect("acyclic");
            }
            new_last[partner].push(p);
        }
        // Each worker's next send depends on what it just received *and*
        // its own previous state (it still holds its local values).
        for w in 0..workers {
            let keep: Vec<PacketId> = last_into[w].clone();
            new_last[w].extend(keep);
        }
        last_into = new_last;
    }

    // Gather: each worker forwards its two results to the sink.
    for w in 0..workers {
        let p = g
            .add_packet(
                worker[w],
                sink,
                config.butterfly_cycles,
                2 * config.sample_bits,
            )
            .expect("valid packet");
        for &dep in &last_into[w] {
            let _ = g.add_dependence(dep, p);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_point_shape() {
        let g = fft(&FftConfig::default());
        // source + 4 workers + sink.
        assert_eq!(g.core_count(), 6);
        // 4 scatter + 2 exchange stages * 4 + 4 gather.
        assert_eq!(g.packet_count(), 16);
        g.validate().unwrap();
    }

    #[test]
    fn packet_count_scales_with_stages() {
        // workers*(stages-1) exchange + 2*workers scatter/gather.
        for stages in 2..=6 {
            let g = fft(&FftConfig::new(stages));
            let workers = 1 << (stages - 1);
            assert_eq!(g.packet_count(), workers * (stages - 1) + 2 * workers);
            assert_eq!(g.core_count(), workers + 2);
        }
    }

    #[test]
    fn depth_is_stage_count_plus_transfers() {
        let g = fft(&FftConfig::new(3));
        // scatter -> exchange -> exchange -> gather = 4 packet levels.
        assert_eq!(g.depth(), 4);
    }

    #[test]
    fn exchanges_are_symmetric() {
        let g = fft(&FftConfig::new(3));
        // For every cross-worker packet w->p there is one p->w.
        let mut pairs = std::collections::HashMap::new();
        for id in g.packet_ids() {
            let p = g.packet(id);
            let srcn = g.core_name(p.src).unwrap();
            let dstn = g.core_name(p.dst).unwrap();
            if srcn.starts_with("bfly") && dstn.starts_with("bfly") {
                *pairs.entry((p.src, p.dst)).or_insert(0u32) += 1;
            }
        }
        for (&(a, b), &count) in &pairs {
            assert_eq!(pairs.get(&(b, a)), Some(&count), "{a}->{b} unbalanced");
        }
    }

    #[test]
    fn all_volume_is_uniform() {
        let g = fft(&FftConfig::new(4));
        let bits: Vec<u64> = g.packet_ids().map(|id| g.packet(id).bits).collect();
        assert!(bits.iter().all(|&b| b == 128));
    }

    #[test]
    #[should_panic(expected = "4-point")]
    fn tiny_transform_panics() {
        let _ = fft(&FftConfig::new(1));
    }
}
