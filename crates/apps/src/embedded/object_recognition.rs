//! Object-recognition pipeline — one of the paper's two "image
//! applications" (with variations).
//!
//! A camera streams frames through a classic detection pipeline:
//! `camera → preprocess → segment → {feature extractors} → classify`.
//! The feature-extraction stage fans out to `F` parallel workers (edges,
//! corners, texture, …) whose descriptors the classifier joins. Volumes
//! shrink along the pipeline: raw frames are big, segmented regions
//! smaller, descriptors and labels tiny.
//!
//! Per frame the CDCG gains `3 + 2F` packets; per-core packet ordering is
//! enforced with same-source dependences, so the pipeline overlaps frames
//! exactly as real streaming hardware would.

use noc_model::{Cdcg, CoreId, PacketId};
use serde::{Deserialize, Serialize};

/// Generator parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectRecognitionConfig {
    /// Number of frames streamed through the pipeline.
    pub frames: usize,
    /// Number of parallel feature-extraction cores.
    pub feature_workers: usize,
    /// Bits of one raw camera frame.
    pub frame_bits: u64,
    /// Cycles each stage computes per frame.
    pub stage_cycles: u64,
}

impl ObjectRecognitionConfig {
    /// `frames` through a pipeline with 2 feature workers and 4 KiB
    /// frames.
    pub fn new(frames: usize) -> Self {
        Self {
            frames,
            feature_workers: 2,
            frame_bits: 4096,
            stage_cycles: 24,
        }
    }
}

impl Default for ObjectRecognitionConfig {
    fn default() -> Self {
        Self::new(4)
    }
}

/// Builds the object-recognition CDCG.
///
/// Cores: camera, preprocess, segment, `feature_workers` extractors and a
/// classifier — `4 + feature_workers` in total.
///
/// # Panics
///
/// Panics if `frames == 0` or `feature_workers == 0`.
pub fn object_recognition(config: &ObjectRecognitionConfig) -> Cdcg {
    assert!(config.frames > 0, "need at least one frame");
    assert!(
        config.feature_workers > 0,
        "need at least one feature worker"
    );
    let mut g = Cdcg::new();
    let camera = g.add_core("camera");
    let pre = g.add_core("preprocess");
    let seg = g.add_core("segment");
    let features: Vec<CoreId> = (0..config.feature_workers)
        .map(|i| g.add_core(format!("feature{i}")))
        .collect();
    let class = g.add_core("classify");

    let comp = config.stage_cycles;
    // Previous frame's packet per (src, dst) pair, to serialize per-core
    // traffic like pEA1 -> pEA2 in the paper.
    let mut prev: std::collections::HashMap<(CoreId, CoreId), PacketId> =
        std::collections::HashMap::new();
    let chain = |g: &mut Cdcg,
                 prevs: &mut std::collections::HashMap<(CoreId, CoreId), PacketId>,
                 src: CoreId,
                 dst: CoreId,
                 bits: u64,
                 deps: &[PacketId]|
     -> PacketId {
        let id = g.add_packet(src, dst, comp, bits).expect("valid packet");
        for &d in deps {
            let _ = g.add_dependence(d, id);
        }
        if let Some(&p) = prevs.get(&(src, dst)) {
            let _ = g.add_dependence(p, id);
        }
        prevs.insert((src, dst), id);
        id
    };

    for _ in 0..config.frames {
        let raw = chain(&mut g, &mut prev, camera, pre, config.frame_bits, &[]);
        let cleaned = chain(&mut g, &mut prev, pre, seg, config.frame_bits / 2, &[raw]);
        let mut descriptors = Vec::new();
        for &f in &features {
            let region = chain(&mut g, &mut prev, seg, f, config.frame_bits / 4, &[cleaned]);
            let descriptor = chain(
                &mut g,
                &mut prev,
                f,
                class,
                config.frame_bits / 32,
                &[region],
            );
            descriptors.push(descriptor);
        }
        // The classifier emits a label back to the camera core (display
        // overlay), joining all descriptors.
        let _label = chain(&mut g, &mut prev, class, camera, 64, &descriptors);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_frame_packet_count() {
        for frames in 1..=5 {
            for workers in 1..=3 {
                let mut config = ObjectRecognitionConfig::new(frames);
                config.feature_workers = workers;
                let g = object_recognition(&config);
                assert_eq!(g.packet_count(), frames * (3 + 2 * workers));
                assert_eq!(g.core_count(), 4 + workers);
                g.validate().unwrap();
            }
        }
    }

    #[test]
    fn volumes_shrink_along_pipeline() {
        let g = object_recognition(&ObjectRecognitionConfig::new(1));
        let camera = g.core_by_name("camera").unwrap();
        let pre = g.core_by_name("preprocess").unwrap();
        let class = g.core_by_name("classify").unwrap();
        let raw = g.packets_between(camera, pre)[0];
        let label = g.packets_between(class, camera)[0];
        assert!(g.packet(raw).bits > 10 * g.packet(label).bits);
    }

    #[test]
    fn frames_are_serialized_per_link() {
        let mut config = ObjectRecognitionConfig::new(3);
        config.feature_workers = 2;
        let g = object_recognition(&config);
        let camera = g.core_by_name("camera").unwrap();
        let pre = g.core_by_name("preprocess").unwrap();
        let raws = g.packets_between(camera, pre);
        assert_eq!(raws.len(), 3);
        // Frame f+1's camera packet depends on frame f's.
        for w in raws.windows(2) {
            assert!(g.predecessors(w[1]).contains(&w[0]));
        }
    }

    #[test]
    fn classifier_joins_all_descriptors() {
        let mut config = ObjectRecognitionConfig::new(1);
        config.feature_workers = 3;
        let g = object_recognition(&config);
        let class = g.core_by_name("classify").unwrap();
        let camera = g.core_by_name("camera").unwrap();
        let label = g.packets_between(class, camera)[0];
        assert_eq!(g.predecessors(label).len(), 3);
    }

    #[test]
    fn depth_grows_with_frames() {
        let one = object_recognition(&ObjectRecognitionConfig::new(1));
        let four = object_recognition(&ObjectRecognitionConfig::new(4));
        assert!(four.depth() > one.depth());
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_panics() {
        let _ = object_recognition(&ObjectRecognitionConfig::new(0));
    }
}
