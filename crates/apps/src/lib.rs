//! # noc-apps
//!
//! Workloads for the DATE 2005 CDCM reproduction:
//!
//! * [`paper_example`] — the Figure 1 running example (application,
//!   mesh and both mappings), the anchor of every golden test;
//! * [`tgff`] — a TGFF-like random CDCG generator calibrated to exact
//!   core/packet/bit-volume characteristics;
//! * [`suite`] — the 18-benchmark Table 1 suite built on top of it;
//! * [`embedded`] — structural generators for the paper's four embedded
//!   applications (Romberg, FFT, object recognition, image encoding);
//! * [`synthetic`] — classic NoC traffic patterns (uniform, transpose,
//!   complement, hotspot) as CDCGs, for stress tests and ablations.
//!
//! # Examples
//!
//! ```
//! use noc_apps::suite::table1_suite;
//!
//! let suite = table1_suite();
//! assert_eq!(suite.len(), 18);
//! for bench in &suite {
//!     assert!(bench.matches_spec());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod embedded;
pub mod paper_example;
pub mod parse;
pub mod suite;
pub mod synthetic;
pub mod tgff;

pub use parse::{parse_cdcg, ParseError};
pub use suite::{table1_suite, Benchmark, RowSpec, TABLE1_ROWS};
pub use synthetic::{
    large_mesh_workload, layered_shift_workload, synthetic, SyntheticConfig, TrafficPattern,
};
pub use tgff::{generate, try_generate, ConfigError, TgffConfig};
