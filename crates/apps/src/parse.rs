//! Line-oriented text ingestion for application CDCGs.
//!
//! The JSON application format (the CLI's `--app`) is serde-derived and
//! rejects malformed input structurally, but hand-written workloads are
//! easier to author in a line format. This parser accepts one, and —
//! unlike the generators, which `assert!` on bad configurations —
//! returns a typed [`ParseError`] carrying the offending line number
//! for every malformed input, so library callers and the CLI can report
//! `app.cdcg:12: unknown core "Z"` instead of panicking.
//!
//! # Format
//!
//! ```text
//! # comments and blank lines are ignored
//! core A
//! core B
//! packet p0 A B comp=6 bits=15
//! packet p1 B A comp=10 bits=40
//! dep p0 p1
//! ```
//!
//! * `core NAME` — declares a core (names must be unique);
//! * `packet NAME SRC DST comp=N bits=N` — a packet of `bits` bits sent
//!   from `SRC` to `DST` after `comp` cycles of computation;
//! * `dep FROM TO` — a dependence edge between two declared packets.
//!
//! # Examples
//!
//! ```
//! let cdcg = noc_apps::parse_cdcg(
//!     "core A\ncore B\npacket p0 A B comp=6 bits=15\n",
//! ).unwrap();
//! assert_eq!(cdcg.core_count(), 2);
//!
//! let err = noc_apps::parse_cdcg("core A\npacket p0 A Z comp=1 bits=1\n")
//!     .unwrap_err();
//! assert_eq!(err.line(), 2);
//! ```

use noc_model::{Cdcg, ModelError, PacketId};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A malformed application description, with the 1-based line that
/// caused it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The line did not match the format.
    Syntax {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The line parsed but described an invalid model (unknown core,
    /// zero-bit packet, dependence cycle, …).
    Model {
        /// 1-based line number of the offending line.
        line: usize,
        /// The model-layer rejection.
        source: ModelError,
    },
}

impl ParseError {
    /// The 1-based line number the error points at.
    pub fn line(&self) -> usize {
        match self {
            Self::Syntax { line, .. } | Self::Model { line, .. } => *line,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Syntax { line, message } => write!(f, "line {line}: {message}"),
            Self::Model { line, source } => write!(f, "line {line}: {source}"),
        }
    }
}

impl Error for ParseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Syntax { .. } => None,
            Self::Model { source, .. } => Some(source),
        }
    }
}

fn syntax(line: usize, message: impl Into<String>) -> ParseError {
    ParseError::Syntax {
        line,
        message: message.into(),
    }
}

/// Parses a `key=N` field, e.g. `comp=6`.
fn keyed_u64(token: &str, key: &str, line: usize) -> Result<u64, ParseError> {
    let value = token
        .strip_prefix(key)
        .and_then(|r| r.strip_prefix('='))
        .ok_or_else(|| syntax(line, format!("expected `{key}=N`, found `{token}`")))?;
    value
        .parse()
        .map_err(|_| syntax(line, format!("`{key}` value `{value}` is not a number")))
}

/// Parses the line-oriented CDCG format (see the module docs).
///
/// # Errors
///
/// Returns a [`ParseError`] naming the first offending line for any
/// malformed input: unknown directives, wrong arity, non-numeric
/// fields, duplicate names, references to undeclared cores or packets,
/// and model-layer rejections (zero-bit packets, dependence cycles, …).
/// Never panics.
pub fn parse_cdcg(text: &str) -> Result<Cdcg, ParseError> {
    let mut cdcg = Cdcg::new();
    let mut packets: HashMap<String, PacketId> = HashMap::new();

    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let body = raw.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut tokens = body.split_whitespace();
        let directive = tokens.next().expect("non-empty line has a first token");
        let rest: Vec<&str> = tokens.collect();
        match directive {
            "core" => {
                let [name] = rest.as_slice() else {
                    return Err(syntax(line, "expected `core NAME`"));
                };
                if cdcg.core_by_name(name).is_some() {
                    return Err(syntax(line, format!("core `{name}` declared twice")));
                }
                cdcg.add_core(*name);
            }
            "packet" => {
                let [name, src, dst, comp, bits] = rest.as_slice() else {
                    return Err(syntax(line, "expected `packet NAME SRC DST comp=N bits=N`"));
                };
                if packets.contains_key(*name) {
                    return Err(syntax(line, format!("packet `{name}` declared twice")));
                }
                let src = cdcg
                    .core_by_name(src)
                    .ok_or_else(|| syntax(line, format!("unknown core `{src}`")))?;
                let dst = cdcg
                    .core_by_name(dst)
                    .ok_or_else(|| syntax(line, format!("unknown core `{dst}`")))?;
                let comp = keyed_u64(comp, "comp", line)?;
                let bits = keyed_u64(bits, "bits", line)?;
                let id = cdcg
                    .add_packet(src, dst, comp, bits)
                    .map_err(|source| ParseError::Model { line, source })?;
                packets.insert((*name).to_owned(), id);
            }
            "dep" => {
                let [from, to] = rest.as_slice() else {
                    return Err(syntax(line, "expected `dep FROM TO`"));
                };
                let resolve = |name: &str| {
                    packets
                        .get(name)
                        .copied()
                        .ok_or_else(|| syntax(line, format!("unknown packet `{name}`")))
                };
                cdcg.add_dependence(resolve(from)?, resolve(to)?)
                    .map_err(|source| ParseError::Model { line, source })?;
            }
            other => {
                return Err(syntax(
                    line,
                    format!("unknown directive `{other}` (core|packet|dep)"),
                ));
            }
        }
    }
    Ok(cdcg)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE1: &str = "\
# Figure 1 running example
core A
core B
core E
core F

packet pab1 A B comp=6 bits=15
packet pbf1 B F comp=10 bits=40
packet pea1 E A comp=10 bits=20
packet pea2 E A comp=20 bits=15   # inline comment
packet paf1 A F comp=6 bits=15
packet pfb1 F B comp=6 bits=15

dep pea1 pea2
dep pab1 paf1
dep pea1 paf1
dep pbf1 pfb1
dep paf1 pfb1
";

    #[test]
    fn parses_the_figure1_example() {
        let cdcg = parse_cdcg(FIGURE1).unwrap();
        assert_eq!(cdcg.core_count(), 4);
        assert_eq!(cdcg.packet_count(), 6);
        assert_eq!(cdcg.dependence_count(), 5);
        assert_eq!(cdcg.total_volume(), 120);
        cdcg.validate().unwrap();
        // Structurally identical to the programmatic builder.
        let reference = crate::paper_example::figure1_cdcg();
        assert_eq!(
            cdcg.to_cwg().communication_count(),
            reference.to_cwg().communication_count()
        );
        assert_eq!(cdcg.ndp(), reference.ndp());
    }

    #[test]
    fn unknown_core_is_a_typed_error_with_line_context() {
        let err = parse_cdcg("core A\npacket p0 A Z comp=1 bits=8\n").unwrap_err();
        assert_eq!(err.line(), 2);
        let msg = err.to_string();
        assert!(msg.contains("line 2") && msg.contains('Z'), "{msg}");
    }

    #[test]
    fn zero_bit_packet_surfaces_the_model_error() {
        let err = parse_cdcg("core A\ncore B\npacket p0 A B comp=1 bits=0\n").unwrap_err();
        assert_eq!(err.line(), 3);
        assert!(matches!(
            err,
            ParseError::Model {
                source: ModelError::EmptyPacket(_),
                ..
            }
        ));
    }

    #[test]
    fn dependence_cycle_surfaces_the_model_error() {
        let text = "core A\ncore B\n\
                    packet p0 A B comp=1 bits=8\n\
                    packet p1 B A comp=1 bits=8\n\
                    dep p0 p1\ndep p1 p0\n";
        let err = parse_cdcg(text).unwrap_err();
        assert_eq!(err.line(), 6);
        assert!(matches!(
            err,
            ParseError::Model {
                source: ModelError::DependenceCycle { .. },
                ..
            }
        ));
    }

    #[test]
    fn malformed_lines_never_panic() {
        for bad in [
            "flux A\n",
            "core\n",
            "core A extra\n",
            "core A\ncore A\n",
            "core A\ncore B\npacket p0 A B comp=x bits=1\n",
            "core A\ncore B\npacket p0 A B bits=1 comp=1\n",
            "core A\ncore B\npacket p0 A B comp=1\n",
            "core A\ncore B\npacket p0 A B comp=1 bits=1\npacket p0 A B comp=1 bits=1\n",
            "dep p0 p1\n",
            "core A\ncore B\npacket p0 A B comp=1 bits=1\ndep p0\n",
        ] {
            let err = parse_cdcg(bad).unwrap_err();
            assert!(err.line() >= 1);
            assert!(!err.to_string().is_empty());
        }
    }
}
