//! The Table 1 benchmark suite: 18 applications on 8 NoC sizes.
//!
//! Table 1 of the paper publishes, per benchmark: the NoC size, the
//! number of cores (CWG vertices), the number of packets (CDCG vertices)
//! and the total bit volume. The concrete graphs were never published
//! (the embedded CDCGs were hand-written; the random ones came from a
//! proprietary TGFF-like tool), so this suite *synthesizes* every
//! benchmark with [`crate::tgff`], calibrated to reproduce the published
//! characteristics exactly — see DESIGN.md §4 for why this preserves the
//! experiment.
//!
//! The first eight rows carry the names of the paper's embedded
//! applications (4 apps × variations); structural generators for those
//! applications live in [`crate::embedded`] and are exercised by the
//! examples and extension experiments.

use crate::tgff::{generate, TgffConfig};
use noc_model::{Cdcg, Mesh};
use serde::Serialize;

/// Published characteristics of one Table 1 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct RowSpec {
    /// Benchmark name (embedded-application rows keep the paper's app
    /// names; random rows are `tgff-*`).
    pub name: &'static str,
    /// The paper's "NoC size" label for the row (used to group Table 2).
    pub group: &'static str,
    /// Actual mesh width. Equals the group label except for `tgff-f`:
    /// the paper lists a 14-core application under the 3×4 NoC size, but
    /// a 3×4 mesh has only 12 tiles, so no injective mapping exists.
    /// That row runs on the smallest larger mesh (3×5); see DESIGN.md.
    pub width: usize,
    /// Actual mesh height.
    pub height: usize,
    /// Number of cores.
    pub cores: usize,
    /// Number of packets of all cores.
    pub packets: usize,
    /// Total volume of bits during application execution.
    pub total_bits: u64,
}

/// The 18 rows of Table 1, in paper order.
pub const TABLE1_ROWS: [RowSpec; 18] = [
    RowSpec {
        name: "objrec-a",
        group: "3x2",
        width: 3,
        height: 2,
        cores: 5,
        packets: 43,
        total_bits: 78_817,
    },
    RowSpec {
        name: "fft8-a",
        group: "3x2",
        width: 3,
        height: 2,
        cores: 6,
        packets: 17,
        total_bits: 174,
    },
    RowSpec {
        name: "imgenc-a",
        group: "3x2",
        width: 3,
        height: 2,
        cores: 6,
        packets: 43,
        total_bits: 49_003,
    },
    RowSpec {
        name: "romberg-a",
        group: "2x4",
        width: 2,
        height: 4,
        cores: 5,
        packets: 16,
        total_bits: 1_600,
    },
    RowSpec {
        name: "imgenc-b",
        group: "2x4",
        width: 2,
        height: 4,
        cores: 7,
        packets: 33,
        total_bits: 23_235,
    },
    RowSpec {
        name: "fft8-b",
        group: "2x4",
        width: 2,
        height: 4,
        cores: 8,
        packets: 18,
        total_bits: 5_930,
    },
    RowSpec {
        name: "romberg-b",
        group: "3x3",
        width: 3,
        height: 3,
        cores: 7,
        packets: 16,
        total_bits: 1_600,
    },
    RowSpec {
        name: "fft8-c",
        group: "3x3",
        width: 3,
        height: 3,
        cores: 9,
        packets: 18,
        total_bits: 1_860,
    },
    RowSpec {
        name: "objrec-b",
        group: "3x3",
        width: 3,
        height: 3,
        cores: 9,
        packets: 32,
        total_bits: 43_120,
    },
    RowSpec {
        name: "tgff-a",
        group: "2x5",
        width: 2,
        height: 5,
        cores: 8,
        packets: 24,
        total_bits: 2_215,
    },
    RowSpec {
        name: "tgff-b",
        group: "2x5",
        width: 2,
        height: 5,
        cores: 9,
        packets: 51,
        total_bits: 23_244,
    },
    RowSpec {
        name: "tgff-c",
        group: "2x5",
        width: 2,
        height: 5,
        cores: 10,
        packets: 22,
        total_bits: 322_221,
    },
    RowSpec {
        name: "tgff-d",
        group: "3x4",
        width: 3,
        height: 4,
        cores: 10,
        packets: 15,
        total_bits: 3_100,
    },
    RowSpec {
        name: "tgff-e",
        group: "3x4",
        width: 3,
        height: 4,
        cores: 12,
        packets: 25,
        total_bits: 2_578_920,
    },
    RowSpec {
        name: "tgff-f",
        group: "3x4",
        width: 3,
        height: 5,
        cores: 14,
        packets: 88,
        total_bits: 115_778,
    },
    RowSpec {
        name: "tgff-g",
        group: "8x8",
        width: 8,
        height: 8,
        cores: 62,
        packets: 344,
        total_bits: 9_799_200,
    },
    RowSpec {
        name: "tgff-h",
        group: "10x10",
        width: 10,
        height: 10,
        cores: 93,
        packets: 415,
        total_bits: 562_565_990,
    },
    RowSpec {
        name: "tgff-i",
        group: "12x10",
        width: 12,
        height: 10,
        cores: 99,
        packets: 446,
        total_bits: 680_006_120,
    },
];

/// A generated benchmark: a named application bound to its target mesh.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Benchmark {
    /// Row characteristics.
    pub spec: RowSpec,
    /// The target mesh of the row.
    pub mesh: Mesh,
    /// The generated application.
    pub cdcg: Cdcg,
}

impl Benchmark {
    /// Generates the benchmark for one row (deterministic per row).
    ///
    /// # Panics
    ///
    /// Panics if the spec is internally impossible (cannot happen for
    /// the published rows, which are validated by tests).
    pub fn from_spec(spec: RowSpec) -> Self {
        let mesh = Mesh::new(spec.width, spec.height).expect("published sizes are valid");
        // Stable per-row seed: hash of the name keeps rows independent.
        let seed = spec.name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
        });
        let cdcg = generate(&TgffConfig::new(
            spec.cores,
            spec.packets,
            spec.total_bits,
            seed,
        ));
        Self { spec, mesh, cdcg }
    }

    /// Verifies the generated graph matches the published row
    /// characteristics (cores, packets, total bits) and the mesh fits.
    pub fn matches_spec(&self) -> bool {
        self.cdcg.core_count() == self.spec.cores
            && self.cdcg.packet_count() == self.spec.packets
            && self.cdcg.total_volume() == self.spec.total_bits
            && self.mesh.width() == self.spec.width
            && self.mesh.height() == self.spec.height
            && self.spec.cores <= self.mesh.tile_count()
    }
}

/// Generates the full 18-benchmark suite in Table 1 order.
pub fn table1_suite() -> Vec<Benchmark> {
    TABLE1_ROWS.into_iter().map(Benchmark::from_spec).collect()
}

/// Groups row indices by the paper's NoC-size label in Table 1 order,
/// for the per-size averages of Table 2.
pub fn rows_by_noc_size() -> Vec<(&'static str, Vec<usize>)> {
    let mut groups: Vec<(&'static str, Vec<usize>)> = Vec::new();
    for (i, row) in TABLE1_ROWS.iter().enumerate() {
        match groups.last_mut() {
            Some((k, v)) if *k == row.group => v.push(i),
            _ => groups.push((row.group, vec![i])),
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rows_generate_and_match() {
        for bench in table1_suite() {
            assert!(
                bench.matches_spec(),
                "row {} drifted from Table 1",
                bench.spec.name
            );
            bench.cdcg.validate().unwrap();
            assert!(bench.spec.cores <= bench.mesh.tile_count());
        }
    }

    #[test]
    fn there_are_18_applications_on_8_sizes() {
        assert_eq!(TABLE1_ROWS.len(), 18);
        let sizes = rows_by_noc_size();
        assert_eq!(sizes.len(), 8);
        // Small sizes carry 3 applications, the large three carry 1 each.
        let counts: Vec<usize> = sizes.iter().map(|(_, v)| v.len()).collect();
        assert_eq!(counts, vec![3, 3, 3, 3, 3, 1, 1, 1]);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Benchmark::from_spec(TABLE1_ROWS[0]);
        let b = Benchmark::from_spec(TABLE1_ROWS[0]);
        assert_eq!(a, b);
    }

    #[test]
    fn rows_are_distinct_benchmarks() {
        let suite = table1_suite();
        for pair in suite.windows(2) {
            assert_ne!(pair[0].cdcg, pair[1].cdcg);
        }
    }

    #[test]
    fn totals_match_the_paper_sums() {
        // Spot-check the three largest volumes against the paper.
        assert_eq!(TABLE1_ROWS[16].total_bits, 562_565_990);
        assert_eq!(TABLE1_ROWS[17].total_bits, 680_006_120);
        assert_eq!(TABLE1_ROWS[15].total_bits, 9_799_200);
    }
}
