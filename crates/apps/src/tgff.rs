//! TGFF-like random CDCG benchmark generator.
//!
//! The paper's random benchmarks come from "a proprietary system, which is
//! similar to TGFF [9]; however, the system describes benchmarks through
//! CDCGs, representing message dependence and bit volume of each message".
//! This module is our reimplementation: a seeded, layered task-DAG
//! generator whose output is *calibrated* to hit an exact core count,
//! packet count and total bit volume — the three characteristics Table 1
//! publishes per benchmark.
//!
//! Generated graphs are physically sensible: a dependence `p → q` always
//! means that `q`'s source core is the destination of `p` (a core computes
//! on received data, then sends), exactly like the hand-written CDCG of
//! the paper's Figure 1.

use noc_model::{Cdcg, CoreId, PacketId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TgffConfig {
    /// Number of cores.
    pub cores: usize,
    /// Number of packets (CDCG vertices).
    pub packets: usize,
    /// Exact total bit volume across all packets.
    pub total_bits: u64,
    /// RNG seed; equal configs generate identical graphs.
    pub seed: u64,
    /// Number of DAG layers; `None` derives `max(2, packets / cores)`,
    /// capped at the packet count.
    pub depth: Option<usize>,
    /// Inclusive range of per-packet computation cycles, used when
    /// `comp_volume_ratio` is `None`.
    pub comp_range: (u64, u64),
    /// When set, a packet's computation time is a uniform draw from this
    /// ratio range multiplied by its bit volume (cores compute longer on
    /// bigger data, as in the paper's Figure 1 where computation times
    /// are commensurate with packet sizes). Overrides `comp_range`.
    pub comp_volume_ratio: Option<(f64, f64)>,
    /// Probability of a second dependence edge per packet, in `[0, 1]`.
    pub extra_dependence_prob: f64,
    /// Spread of the packet-volume distribution in decades: volumes are
    /// drawn log-uniformly over `[1, 10^volume_decades]` before
    /// calibration. Small values give near-uniform packet sizes (high
    /// concurrency between comparable streams); large values give a
    /// heavy-tailed mix dominated by a few huge transfers.
    pub volume_decades: f64,
}

impl TgffConfig {
    /// A benchmark with the three Table 1 characteristics and defaults
    /// for everything else.
    pub fn new(cores: usize, packets: usize, total_bits: u64, seed: u64) -> Self {
        Self {
            cores,
            packets,
            total_bits,
            seed,
            depth: None,
            comp_range: (2, 20),
            comp_volume_ratio: Some((0.05, 0.3)),
            extra_dependence_prob: 0.35,
            volume_decades: 0.7,
        }
    }
}

/// An infeasible [`TgffConfig`], reported by [`try_generate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "infeasible TGFF config: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// [`generate`] with the configuration checks surfaced as a typed error
/// instead of a panic — the entry point for configs built from external
/// input (CLI flags, files).
///
/// # Errors
///
/// Returns [`ConfigError`] when `cores < 2`, `packets == 0`, or
/// `total_bits < packets` (every packet needs at least one bit).
pub fn try_generate(config: &TgffConfig) -> Result<Cdcg, ConfigError> {
    if config.cores < 2 {
        return Err(ConfigError(format!(
            "{} cores cannot communicate (need at least two)",
            config.cores
        )));
    }
    if config.packets == 0 {
        return Err(ConfigError("zero packets".into()));
    }
    if config.total_bits < config.packets as u64 {
        return Err(ConfigError(format!(
            "total bits {} cannot cover {} non-empty packets",
            config.total_bits, config.packets
        )));
    }
    Ok(generate_unchecked(config))
}

/// Generates a random CDCG matching `config` exactly.
///
/// # Panics
///
/// Panics if `cores < 2`, `packets == 0`, or `total_bits < packets`
/// (every packet needs at least one bit); use [`try_generate`] for
/// externally supplied configurations.
pub fn generate(config: &TgffConfig) -> Cdcg {
    match try_generate(config) {
        Ok(g) => g,
        Err(e) => panic!("{e}"),
    }
}

fn generate_unchecked(config: &TgffConfig) -> Cdcg {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut g = Cdcg::new();
    for i in 0..config.cores {
        g.add_core(format!("c{i}"));
    }

    // Default depth keeps several same-size streams in flight per layer:
    // a third as many layers as a one-packet-per-core-per-layer schedule
    // (embedded streaming workloads are wide, not deep).
    let depth = config
        .depth
        .unwrap_or_else(|| (config.packets / (3 * config.cores)).max(2))
        .clamp(1, config.packets);

    // Assign packets to layers: every layer gets at least one packet.
    let mut layer_of: Vec<usize> = (0..config.packets)
        .map(|i| {
            if i < depth {
                i
            } else {
                rng.gen_range(0..depth)
            }
        })
        .collect();
    layer_of.sort_unstable();

    // Draw skewed volumes, then calibrate to the exact total.
    let volumes = calibrated_volumes(
        config.packets,
        config.total_bits,
        config.volume_decades,
        &mut rng,
    );

    // Build packets layer by layer: the source core of a dependent packet
    // is the destination core of one of its predecessors.
    let mut by_layer: Vec<Vec<PacketId>> = vec![Vec::new(); depth];
    let mut ids: Vec<PacketId> = Vec::with_capacity(config.packets);
    for (i, &layer) in layer_of.iter().enumerate() {
        let comp = match config.comp_volume_ratio {
            Some((lo, hi)) => {
                let ratio = rng.gen_range(lo..=hi);
                (ratio * volumes[i] as f64).round() as u64
            }
            None => rng.gen_range(config.comp_range.0..=config.comp_range.1),
        };
        let (src, primary_pred) = if layer == 0 {
            (CoreId::new(rng.gen_range(0..config.cores)), None)
        } else {
            // Prefer a predecessor in the previous layer; fall back to any
            // earlier layer (always non-empty by construction).
            let pool = (0..layer)
                .rev()
                .find(|&l| !by_layer[l].is_empty())
                .expect("earlier layers are non-empty");
            let pred = by_layer[pool][rng.gen_range(0..by_layer[pool].len())];
            (g.packet(pred).dst, Some(pred))
        };
        let dst = loop {
            let d = CoreId::new(rng.gen_range(0..config.cores));
            if d != src {
                break d;
            }
        };
        let id = g
            .add_packet(src, dst, comp, volumes[i])
            .expect("generator produces valid packets");
        if let Some(pred) = primary_pred {
            g.add_dependence(pred, id)
                .expect("layered edges are acyclic");
        }
        // Optionally add a second dependence from any earlier packet that
        // also delivers to `src` (a realistic join).
        if layer > 0 && rng.gen::<f64>() < config.extra_dependence_prob {
            let candidates: Vec<PacketId> = (0..layer)
                .flat_map(|l| by_layer[l].iter().copied())
                .filter(|&p| g.packet(p).dst == src && Some(p) != primary_pred)
                .collect();
            if !candidates.is_empty() {
                let extra = candidates[rng.gen_range(0..candidates.len())];
                let _ = g.add_dependence(extra, id);
            }
        }
        by_layer[layer].push(id);
        ids.push(id);
    }

    debug_assert_eq!(g.packet_count(), config.packets);
    debug_assert_eq!(g.total_volume(), config.total_bits);
    g
}

/// Draws `count` skewed random volumes summing exactly to `total`.
fn calibrated_volumes(count: usize, total: u64, decades: f64, rng: &mut StdRng) -> Vec<u64> {
    // Log-uniform raw draws over the configured spread.
    let raw: Vec<f64> = (0..count)
        .map(|_| 10f64.powf(rng.gen_range(0.0..decades.max(1e-6))))
        .collect();
    let sum: f64 = raw.iter().sum();
    let mut volumes: Vec<u64> = raw
        .iter()
        .map(|r| ((r / sum) * total as f64).floor().max(1.0) as u64)
        .collect();
    // Exact calibration: distribute the residual onto the largest packet
    // (or shave it off the largest packets, never below 1 bit).
    let mut current: u64 = volumes.iter().sum();
    while current != total {
        if current < total {
            let max = volumes
                .iter()
                .enumerate()
                .max_by_key(|(_, &v)| v)
                .map(|(i, _)| i)
                .expect("count > 0");
            volumes[max] += total - current;
            current = total;
        } else {
            let excess = current - total;
            let max_idx = volumes
                .iter()
                .enumerate()
                .max_by_key(|(_, &v)| v)
                .map(|(i, _)| i)
                .expect("count > 0");
            let shave = excess.min(volumes[max_idx] - 1);
            if shave == 0 {
                // Every packet is at 1 bit and we still exceed the total:
                // impossible because total >= count was asserted.
                unreachable!("total >= count guarantees shaveability");
            }
            volumes[max_idx] -= shave;
            current -= shave;
        }
    }
    volumes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_requested_characteristics_exactly() {
        for (cores, packets, bits, seed) in [
            (5, 43, 78_817, 1u64),
            (6, 17, 174, 2),
            (10, 22, 322_221, 3),
            (62, 344, 9_799_200, 4),
        ] {
            let g = generate(&TgffConfig::new(cores, packets, bits, seed));
            assert_eq!(g.core_count(), cores);
            assert_eq!(g.packet_count(), packets);
            assert_eq!(g.total_volume(), bits);
            g.validate().unwrap();
        }
    }

    #[test]
    fn is_deterministic_per_seed() {
        let config = TgffConfig::new(8, 30, 10_000, 99);
        assert_eq!(generate(&config), generate(&config));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&TgffConfig::new(8, 30, 10_000, 1));
        let b = generate(&TgffConfig::new(8, 30, 10_000, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn dependences_are_physically_sensible() {
        // Every dependence p -> q must satisfy p.dst == q.src: the core
        // sends after it received.
        let g = generate(&TgffConfig::new(9, 51, 23_244, 7));
        for id in g.packet_ids() {
            for &succ in g.successors(id) {
                assert_eq!(
                    g.packet(id).dst,
                    g.packet(succ).src,
                    "dependence {id}->{succ} must chain through one core"
                );
            }
        }
    }

    #[test]
    fn graph_is_connected_to_start() {
        let g = generate(&TgffConfig::new(6, 40, 5_000, 5));
        // Kahn order covers all packets (acyclic and rooted).
        assert_eq!(g.topological_order().len(), 40);
        assert!(g.start_packets().count() >= 1);
        assert!(g.end_packets().count() >= 1);
    }

    #[test]
    fn minimum_volume_is_one_bit() {
        let g = generate(&TgffConfig::new(4, 50, 50, 11));
        for id in g.packet_ids() {
            assert_eq!(g.packet(id).bits, 1);
        }
    }

    #[test]
    fn comp_cycles_respect_range() {
        let mut config = TgffConfig::new(5, 25, 9_999, 13);
        config.comp_volume_ratio = None;
        config.comp_range = (7, 9);
        let g = generate(&config);
        for id in g.packet_ids() {
            let c = g.packet(id).comp_cycles;
            assert!((7..=9).contains(&c));
        }
    }

    #[test]
    fn comp_scales_with_volume_by_default() {
        let g = generate(&TgffConfig::new(5, 25, 100_000, 13));
        for id in g.packet_ids() {
            let p = g.packet(id);
            assert!(
                p.comp_cycles as f64 <= 0.5 * p.bits as f64 + 1.0,
                "comp {} too large for {} bits",
                p.comp_cycles,
                p.bits
            );
        }
    }

    #[test]
    #[should_panic(expected = "cannot cover")]
    fn rejects_unreachable_totals() {
        let _ = generate(&TgffConfig::new(4, 100, 50, 0));
    }

    #[test]
    fn infeasible_configs_are_typed_errors() {
        for config in [
            TgffConfig::new(1, 10, 100, 0),
            TgffConfig::new(4, 0, 100, 0),
            TgffConfig::new(4, 10, 9, 0),
        ] {
            let err = try_generate(&config).unwrap_err();
            assert!(err.to_string().contains("infeasible"), "{err}");
        }
        // The checked path generates exactly what `generate` does.
        let config = TgffConfig::new(4, 10, 1_000, 3);
        assert_eq!(
            try_generate(&config).unwrap().total_volume(),
            generate(&config).total_volume()
        );
    }

    #[test]
    fn deep_graphs_have_chains() {
        let mut config = TgffConfig::new(4, 40, 4_000, 17);
        config.depth = Some(10);
        let g = generate(&config);
        assert!(
            g.depth() >= 10,
            "expected at least 10 layers, got {}",
            g.depth()
        );
    }
}
