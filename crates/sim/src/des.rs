//! Flit-level, cycle-driven wormhole simulator.
//!
//! This is a second, *independent* implementation of the paper's timing
//! model, used to cross-validate the interval scheduler in
//! [`crate::schedule`]: routers here have real per-port input buffers,
//! routing decisions are taken per header flit with an XY logic
//! re-implemented from tile coordinates (not reusing
//! [`noc_model::XyRouting`]), output ports arbitrate FCFS with
//! re-arbitration cost `tr`, and flits move one hop per `tl` cycles.
//! With unbounded buffers and `tl = 1` the two implementations agree
//! cycle-exactly on injections, deliveries and `texec` (this is asserted
//! in the cross-validation integration tests).
//!
//! Unlike the interval model, the flit simulator also supports **bounded
//! input buffers** with credit-based backpressure — the knob the paper
//! mentions when motivating contention-aware mapping ("reducing the
//! required buffers in the communication network").
//!
//! Restrictions: dimension-ordered XY/XYZ routing only (X, then Y, then
//! — on 3D meshes — Z down the TSV pillars, matching
//! `noc_model::XyzRouting`), and `injection_serialization` must be
//! enabled (a physical core link cannot interleave two packets).

use crate::error::SimError;
use crate::params::SimParams;
use noc_model::{Cdcg, Coord, Mapping, Mesh, PacketId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Parameters of the flit-level simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesParams {
    /// The shared wormhole timing parameters.
    pub base: SimParams,
    /// Router input-buffer capacity in flits; `None` models unbounded
    /// buffers (the paper's assumption).
    pub buffer_flits: Option<usize>,
    /// Safety bound on simulated cycles.
    pub max_cycles: u64,
}

impl DesParams {
    /// Unbounded-buffer simulation with the given base parameters.
    pub fn new(base: SimParams) -> Self {
        Self {
            base,
            buffer_flits: None,
            max_cycles: 100_000_000,
        }
    }

    /// Bounded-buffer variant.
    pub fn with_buffer(mut self, flits: usize) -> Self {
        self.buffer_flits = Some(flits);
        self
    }
}

impl Default for DesParams {
    fn default() -> Self {
        Self::new(SimParams::default())
    }
}

/// Result of a flit-level simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesReport {
    /// First-flit injection cycle of each packet, indexed by packet id.
    pub injections: Vec<u64>,
    /// Delivery cycle (last flit at the destination core) per packet.
    pub deliveries: Vec<u64>,
    /// Application execution time in cycles.
    pub texec_cycles: u64,
    /// Total cycles the simulator actually iterated (diagnostic).
    pub simulated_cycles: u64,
}

impl DesReport {
    /// Delivery cycle of one packet.
    ///
    /// # Panics
    ///
    /// Panics if `packet` is out of range.
    pub fn delivery(&self, packet: PacketId) -> u64 {
        self.deliveries[packet.index()]
    }
}

const NORTH: usize = 0;
const SOUTH: usize = 1;
const EAST: usize = 2;
const WEST: usize = 3;
const UP: usize = 4; // towards the layer above (z − 1)
const DOWN: usize = 5; // towards the layer below (z + 1)
const LOCAL: usize = 6; // input: from core; output: to core (eject)
const PORTS: usize = 7;

#[derive(Debug, Clone, Copy, PartialEq)]
struct Flit {
    packet: usize,
    idx: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum InState {
    Idle,
    Deciding { packet: usize, remaining: u64 },
    Waiting { packet: usize },
    Streaming { packet: usize, out: usize },
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum OutState {
    Free,
    Reserved { in_port: usize },
    Owned { in_port: usize },
}

#[derive(Debug, Clone)]
struct TileState {
    in_buf: [VecDeque<Flit>; PORTS],
    in_state: [InState; PORTS],
    in_next_send: [u64; PORTS],
    out_state: [OutState; PORTS],
    out_free_time: [u64; PORTS],
    out_wait: [Vec<(u64, usize, usize)>; PORTS], // (request_time, packet, in_port)
    // In-flight flits per output port: (arrival_cycle, flit).
    out_transit: [VecDeque<(u64, Flit)>; PORTS],
    // Injection side (core → router link).
    inj_owner: Option<usize>,
    inj_sent: u64,
    inj_next_send: u64,
    inj_transit: VecDeque<(u64, Flit)>,
    inj_wait: Vec<(u64, usize)>, // (want_time, packet)
}

impl TileState {
    fn new() -> Self {
        Self {
            in_buf: Default::default(),
            in_state: [InState::Idle; PORTS],
            in_next_send: [0; PORTS],
            out_state: [OutState::Free; PORTS],
            out_free_time: [0; PORTS],
            out_wait: Default::default(),
            out_transit: Default::default(),
            inj_owner: None,
            inj_sent: 0,
            inj_next_send: 0,
            inj_transit: VecDeque::new(),
            inj_wait: Vec::new(),
        }
    }
}

/// Dimension-ordered (XY, then Z on 3D meshes) output-port decision,
/// re-derived from coordinates (independent of `noc_model::routing`).
/// On a depth-1 mesh the Z clauses are dead and this is exactly the
/// planar XY decision.
fn xy_port(cur: Coord, dst: Coord) -> usize {
    if dst.x > cur.x {
        EAST
    } else if dst.x < cur.x {
        WEST
    } else if dst.y > cur.y {
        SOUTH
    } else if dst.y < cur.y {
        NORTH
    } else if dst.z > cur.z {
        DOWN
    } else if dst.z < cur.z {
        UP
    } else {
        LOCAL
    }
}

fn port_offset(port: usize) -> (isize, isize, isize) {
    match port {
        NORTH => (0, -1, 0),
        SOUTH => (0, 1, 0),
        EAST => (1, 0, 0),
        WEST => (-1, 0, 0),
        UP => (0, 0, -1),
        DOWN => (0, 0, 1),
        _ => (0, 0, 0),
    }
}

/// The input port of the downstream router an output port feeds.
fn opposite_port(port: usize) -> usize {
    match port {
        NORTH => SOUTH,
        SOUTH => NORTH,
        EAST => WEST,
        WEST => EAST,
        UP => DOWN,
        DOWN => UP,
        other => other,
    }
}

/// Runs the flit-level simulation of `cdcg` mapped on `mesh`.
///
/// # Errors
///
/// Returns [`SimError::CoreCountMismatch`] on a core/mapping mismatch,
/// [`SimError::Model`] for invalid structures or unsupported parameters
/// (`injection_serialization = false`), and
/// [`SimError::CycleLimitExceeded`] if packets are still undelivered at
/// `max_cycles` (possible with pathological bounded buffers).
///
/// # Examples
///
/// ```
/// use noc_model::{Cdcg, Mapping, Mesh};
/// use noc_sim::des::{simulate, DesParams};
/// use noc_sim::SimParams;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut app = Cdcg::new();
/// let a = app.add_core("A");
/// let b = app.add_core("B");
/// app.add_packet(a, b, 6, 15)?;
/// let mesh = Mesh::new(2, 2)?;
/// let mapping = Mapping::identity(&mesh, 2)?;
/// let report = simulate(&app, &mesh, &mapping, &DesParams::new(SimParams::paper_example()))?;
/// assert_eq!(report.texec_cycles, 27); // Eq. 8: 6 + 2*(2+1) + 15
/// # Ok(())
/// # }
/// ```
// Index-based tile loops are kept throughout the cycle phases: several of
// them need split borrows across tiles (`tiles[ti]` plus a downstream
// `tiles[v]`), and mixing iterator and index styles per phase would hide
// that symmetry.
#[allow(clippy::needless_range_loop)]
pub fn simulate(
    cdcg: &Cdcg,
    mesh: &Mesh,
    mapping: &Mapping,
    params: &DesParams,
) -> Result<DesReport, SimError> {
    if mapping.core_count() != cdcg.core_count() {
        return Err(SimError::CoreCountMismatch {
            mapping: mapping.core_count(),
            application: cdcg.core_count(),
        });
    }
    mapping.validate()?;
    if !params.base.injection_serialization {
        // A physical core link cannot interleave flits of two packets.
        return Err(SimError::Model(noc_model::ModelError::EmptyMesh));
    }

    let base = params.base;
    let tl = base.link_cycles;
    let tr = base.routing_cycles;
    let n_tiles = mesh.tile_count();
    let n_packets = cdcg.packet_count();

    let flits: Vec<u64> = cdcg
        .packet_ids()
        .map(|id| base.flits(cdcg.packet(id).bits).max(1))
        .collect();
    let dst_coord: Vec<Coord> = cdcg
        .packet_ids()
        .map(|id| mesh.coord(mapping.tile_of(cdcg.packet(id).dst)))
        .collect();
    let src_tile: Vec<usize> = cdcg
        .packet_ids()
        .map(|id| mapping.tile_of(cdcg.packet(id).src).index())
        .collect();

    let mut tiles: Vec<TileState> = (0..n_tiles).map(|_| TileState::new()).collect();
    let mut pending: Vec<usize> = cdcg
        .packet_ids()
        .map(|id| cdcg.predecessors(id).len())
        .collect();
    let mut ready: Vec<u64> = vec![0; n_packets];
    let mut injections: Vec<u64> = vec![0; n_packets];
    let mut deliveries: Vec<u64> = vec![0; n_packets];
    let mut delivered_flag: Vec<bool> = vec![false; n_packets];
    let mut delivered = 0usize;

    for id in cdcg.start_packets() {
        let p = id.index();
        let want = cdcg.packet(id).comp_cycles;
        tiles[src_tile[p]].inj_wait.push((want, p));
    }
    for tile in &mut tiles {
        tile.inj_wait.sort_unstable();
    }

    let buffer_cap = params.buffer_flits;

    let mut t: u64 = 0;
    let mut iterated: u64 = 0;
    while delivered < n_packets {
        if t > params.max_cycles {
            return Err(SimError::CycleLimitExceeded {
                limit: params.max_cycles,
                delivered,
                total: n_packets,
            });
        }
        iterated += 1;

        // ---- Phase A: arrivals and deliveries -------------------------
        let mut wakeups: Vec<(usize, u64)> = Vec::new(); // (packet, delivery)
        for ti in 0..n_tiles {
            // Injection-link arrivals into the Local input port.
            while tiles[ti]
                .inj_transit
                .front()
                .is_some_and(|&(at, _)| at == t)
            {
                let (_, flit) = tiles[ti].inj_transit.pop_front().expect("checked");
                tiles[ti].in_buf[LOCAL].push_back(flit);
            }
            // Inter-router and ejection arrivals.
            for port in 0..PORTS {
                while tiles[ti].out_transit[port]
                    .front()
                    .is_some_and(|&(at, _)| at == t)
                {
                    let (_, flit) = tiles[ti].out_transit[port].pop_front().expect("checked");
                    if port == LOCAL {
                        // Ejection: flit reached the destination core.
                        if flit.idx + 1 == flits[flit.packet] {
                            deliveries[flit.packet] = t;
                            delivered_flag[flit.packet] = true;
                            delivered += 1;
                            wakeups.push((flit.packet, t));
                        }
                    } else {
                        let (dx, dy, dz) = port_offset(port);
                        let c = mesh.coord(noc_model::TileId::new(ti));
                        let v = mesh
                            .tile_at(Coord::new3(
                                (c.x as isize + dx) as usize,
                                (c.y as isize + dy) as usize,
                                (c.z as isize + dz) as usize,
                            ))
                            .expect("transit only on existing links")
                            .index();
                        // Arrive at the neighbour's opposite input port.
                        tiles[v].in_buf[opposite_port(port)].push_back(flit);
                    }
                }
            }
        }
        for (p, d) in wakeups {
            for &succ in cdcg.successors(PacketId::new(p)) {
                let s = succ.index();
                ready[s] = ready[s].max(d);
                pending[s] -= 1;
                if pending[s] == 0 {
                    let want = ready[s] + cdcg.packet(succ).comp_cycles;
                    let tile = &mut tiles[src_tile[s]];
                    tile.inj_wait.push((want, s));
                    tile.inj_wait.sort_unstable();
                }
            }
        }

        // ---- Phase B: injection grants --------------------------------
        for tile in &mut tiles {
            if tile.inj_owner.is_none() {
                if let Some(pos) = tile.inj_wait.iter().position(|&(want, _)| want <= t) {
                    let (_, p) = tile.inj_wait.remove(pos);
                    tile.inj_owner = Some(p);
                    tile.inj_sent = 0;
                }
            }
        }

        // ---- Phase C1: output-port re-arbitration ----------------------
        for ti in 0..n_tiles {
            for port in 0..PORTS {
                if matches!(tiles[ti].out_state[port], OutState::Free)
                    && t >= tiles[ti].out_free_time[port]
                    && !tiles[ti].out_wait[port].is_empty()
                {
                    tiles[ti].out_wait[port].sort_unstable();
                    let (_, packet, in_port) = tiles[ti].out_wait[port].remove(0);
                    tiles[ti].out_state[port] = OutState::Reserved { in_port };
                    tiles[ti].in_state[in_port] = InState::Deciding {
                        packet,
                        remaining: tr,
                    };
                }
            }
        }

        // ---- Phase C2: routing decisions and port requests -------------
        for ti in 0..n_tiles {
            let cur = mesh.coord(noc_model::TileId::new(ti));
            // Decrement all decision timers first, collecting the requests
            // that mature this cycle; then grant them in packet-id order so
            // that simultaneous requests to one output port resolve exactly
            // like the interval scheduler's event heap (time, then packet).
            let mut matured: Vec<(usize, usize)> = Vec::new(); // (packet, in_port)
            for ip in 0..PORTS {
                if let InState::Idle = tiles[ti].in_state[ip] {
                    if let Some(&head) = tiles[ti].in_buf[ip].front() {
                        if head.idx == 0 {
                            tiles[ti].in_state[ip] = InState::Deciding {
                                packet: head.packet,
                                remaining: tr,
                            };
                        }
                    }
                }
                if let InState::Deciding { packet, remaining } = tiles[ti].in_state[ip] {
                    if remaining > 0 {
                        tiles[ti].in_state[ip] = InState::Deciding {
                            packet,
                            remaining: remaining - 1,
                        };
                    } else {
                        matured.push((packet, ip));
                    }
                }
            }
            matured.sort_unstable();
            for (packet, ip) in matured {
                // Request the XY output port.
                let out = xy_port(cur, dst_coord[packet]);
                let eject_unarbitrated = out == LOCAL && !base.ejection_contention;
                if eject_unarbitrated {
                    tiles[ti].in_state[ip] = InState::Streaming { packet, out };
                } else {
                    match tiles[ti].out_state[out] {
                        OutState::Free if t >= tiles[ti].out_free_time[out] => {
                            tiles[ti].out_state[out] = OutState::Owned { in_port: ip };
                            tiles[ti].in_state[ip] = InState::Streaming { packet, out };
                        }
                        OutState::Reserved { in_port } if in_port == ip => {
                            tiles[ti].out_state[out] = OutState::Owned { in_port: ip };
                            tiles[ti].in_state[ip] = InState::Streaming { packet, out };
                        }
                        _ => {
                            tiles[ti].out_wait[out].push((t, packet, ip));
                            tiles[ti].in_state[ip] = InState::Waiting { packet };
                        }
                    }
                }
            }
        }

        // ---- Phase D: flit streaming -----------------------------------
        // Injection links.
        for ti in 0..n_tiles {
            if let Some(p) = tiles[ti].inj_owner {
                let credit_ok = match buffer_cap {
                    None => true,
                    Some(cap) => tiles[ti].in_buf[LOCAL].len() + tiles[ti].inj_transit.len() < cap,
                };
                if t >= tiles[ti].inj_next_send && credit_ok {
                    let idx = tiles[ti].inj_sent;
                    if idx == 0 {
                        injections[p] = t;
                    }
                    tiles[ti]
                        .inj_transit
                        .push_back((t + tl, Flit { packet: p, idx }));
                    tiles[ti].inj_sent += 1;
                    tiles[ti].inj_next_send = t + tl;
                    if tiles[ti].inj_sent == flits[p] {
                        tiles[ti].inj_owner = None;
                    }
                }
            }
        }
        // Router ports.
        for ti in 0..n_tiles {
            for ip in 0..PORTS {
                if let InState::Streaming { packet, out } = tiles[ti].in_state[ip] {
                    if t < tiles[ti].in_next_send[ip] {
                        continue;
                    }
                    let Some(&front) = tiles[ti].in_buf[ip].front() else {
                        continue;
                    };
                    if front.packet != packet {
                        continue;
                    }
                    // Credit check towards the downstream buffer.
                    if out != LOCAL {
                        let (dx, dy, dz) = port_offset(out);
                        let c = mesh.coord(noc_model::TileId::new(ti));
                        let v = mesh
                            .tile_at(Coord::new3(
                                (c.x as isize + dx) as usize,
                                (c.y as isize + dy) as usize,
                                (c.z as isize + dz) as usize,
                            ))
                            .expect("XY routes stay inside the mesh")
                            .index();
                        let ip_down = opposite_port(out);
                        let in_flight = tiles[ti].out_transit[out].len();
                        let ok = match buffer_cap {
                            None => true,
                            Some(cap) => tiles[v].in_buf[ip_down].len() + in_flight < cap,
                        };
                        if !ok {
                            continue;
                        }
                    }
                    let flit = tiles[ti].in_buf[ip].pop_front().expect("front checked");
                    tiles[ti].out_transit[out].push_back((t + tl, flit));
                    tiles[ti].in_next_send[ip] = t + tl;
                    if flit.idx + 1 == flits[packet] {
                        // Tail forwarded: release the ports.
                        tiles[ti].in_state[ip] = InState::Idle;
                        if out != LOCAL || base.ejection_contention {
                            tiles[ti].out_state[out] = OutState::Free;
                            tiles[ti].out_free_time[out] = t + tl;
                        }
                    }
                }
            }
        }

        // ---- Advance time ----------------------------------------------
        let network_active = tiles.iter().any(|tile| {
            tile.inj_owner.is_some()
                || !tile.inj_transit.is_empty()
                || tile.out_transit.iter().any(|q| !q.is_empty())
                || tile.in_buf.iter().any(|b| !b.is_empty())
        });
        if network_active {
            t += 1;
        } else {
            // Idle: jump to the next injection want-time.
            let next = tiles
                .iter()
                .flat_map(|tile| tile.inj_wait.iter().map(|&(w, _)| w))
                .min();
            match next {
                Some(w) => t = w.max(t + 1),
                None if delivered < n_packets => t += 1,
                None => break,
            }
        }
    }

    let texec = deliveries.iter().copied().max().unwrap_or(0);
    Ok(DesReport {
        injections,
        deliveries,
        texec_cycles: texec,
        simulated_cycles: iterated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::schedule;
    use noc_model::{Mapping, Mesh, TileId};

    fn figure1_cdcg() -> Cdcg {
        let mut g = Cdcg::new();
        let a = g.add_core("A");
        let b = g.add_core("B");
        let e = g.add_core("E");
        let f = g.add_core("F");
        let pab1 = g.add_packet(a, b, 6, 15).unwrap();
        let pbf1 = g.add_packet(b, f, 10, 40).unwrap();
        let pea1 = g.add_packet(e, a, 10, 20).unwrap();
        let pea2 = g.add_packet(e, a, 20, 15).unwrap();
        let paf1 = g.add_packet(a, f, 6, 15).unwrap();
        let pfb1 = g.add_packet(f, b, 6, 15).unwrap();
        g.add_dependence(pea1, pea2).unwrap();
        g.add_dependence(pab1, paf1).unwrap();
        g.add_dependence(pea1, paf1).unwrap();
        g.add_dependence(pbf1, pfb1).unwrap();
        g.add_dependence(paf1, pfb1).unwrap();
        g
    }

    fn des_params() -> DesParams {
        DesParams::new(SimParams::paper_example())
    }

    #[test]
    fn figure3a_deliveries_match_paper() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let mapping = Mapping::from_tiles(&mesh, [1, 0, 3, 2].map(TileId::new)).unwrap();
        let report = simulate(&cdcg, &mesh, &mapping, &des_params()).unwrap();
        assert_eq!(report.deliveries, vec![27, 56, 36, 77, 73, 100]);
        assert_eq!(report.texec_cycles, 100);
    }

    #[test]
    fn figure3b_deliveries_match_paper() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let mapping = Mapping::from_tiles(&mesh, [3, 0, 1, 2].map(TileId::new)).unwrap();
        let report = simulate(&cdcg, &mesh, &mapping, &des_params()).unwrap();
        assert_eq!(report.deliveries, vec![30, 56, 36, 77, 63, 90]);
        assert_eq!(report.texec_cycles, 90);
    }

    #[test]
    fn matches_interval_scheduler_on_paper_example() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        for tiles in [[1, 0, 3, 2], [3, 0, 1, 2], [0, 1, 2, 3], [2, 3, 0, 1]] {
            let mapping = Mapping::from_tiles(&mesh, tiles.map(TileId::new)).unwrap();
            let sched = schedule(&cdcg, &mesh, &mapping, &SimParams::paper_example()).unwrap();
            let report = simulate(&cdcg, &mesh, &mapping, &des_params()).unwrap();
            assert_eq!(report.texec_cycles, sched.texec_cycles(), "tiles {tiles:?}");
            for id in cdcg.packet_ids() {
                assert_eq!(
                    report.delivery(id),
                    sched.packet(id).delivery,
                    "delivery of {id} under {tiles:?}"
                );
                assert_eq!(
                    report.injections[id.index()],
                    sched.packet(id).inject(),
                    "injection of {id} under {tiles:?}"
                );
            }
        }
    }

    #[test]
    fn matches_interval_scheduler_on_a_3d_mesh() {
        // The same independent-implementation agreement the planar
        // cross-validation pins, on a 2x2x2 cube: the DES's coordinate
        // port logic (X, then Y, then Z) against the interval scheduler
        // running XyzRouting routes.
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new3(2, 2, 2).unwrap();
        for tiles in [[1, 0, 3, 2], [4, 0, 7, 2], [0, 5, 2, 7], [6, 1, 4, 3]] {
            let mapping = Mapping::from_tiles(&mesh, tiles.map(TileId::new)).unwrap();
            let sched = crate::schedule::schedule_with(
                &cdcg,
                &mesh,
                &mapping,
                &SimParams::paper_example(),
                &noc_model::XyzRouting,
            )
            .unwrap();
            let report = simulate(&cdcg, &mesh, &mapping, &des_params()).unwrap();
            assert_eq!(report.texec_cycles, sched.texec_cycles(), "tiles {tiles:?}");
            for id in cdcg.packet_ids() {
                assert_eq!(
                    report.delivery(id),
                    sched.packet(id).delivery,
                    "delivery of {id} under {tiles:?}"
                );
            }
        }
    }

    #[test]
    fn bounded_buffers_never_speed_things_up() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let mapping = Mapping::from_tiles(&mesh, [1, 0, 3, 2].map(TileId::new)).unwrap();
        let unbounded = simulate(&cdcg, &mesh, &mapping, &des_params()).unwrap();
        for cap in [1usize, 2, 4, 8, 64] {
            let bounded = simulate(&cdcg, &mesh, &mapping, &des_params().with_buffer(cap)).unwrap();
            assert!(
                bounded.texec_cycles >= unbounded.texec_cycles,
                "cap {cap}: {} < {}",
                bounded.texec_cycles,
                unbounded.texec_cycles
            );
        }
        // A generous buffer behaves like an unbounded one.
        let big = simulate(&cdcg, &mesh, &mapping, &des_params().with_buffer(64)).unwrap();
        assert_eq!(big.texec_cycles, unbounded.texec_cycles);
    }

    #[test]
    fn tiny_buffers_create_backpressure() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let mapping = Mapping::from_tiles(&mesh, [1, 0, 3, 2].map(TileId::new)).unwrap();
        let unbounded = simulate(&cdcg, &mesh, &mapping, &des_params()).unwrap();
        let tight = simulate(&cdcg, &mesh, &mapping, &des_params().with_buffer(1)).unwrap();
        assert!(
            tight.texec_cycles > unbounded.texec_cycles,
            "1-flit buffers must slow the contended mapping: {} vs {}",
            tight.texec_cycles,
            unbounded.texec_cycles
        );
    }

    #[test]
    fn rejects_unserialized_injection() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let mapping = Mapping::from_tiles(&mesh, [1, 0, 3, 2].map(TileId::new)).unwrap();
        let mut params = des_params();
        params.base.injection_serialization = false;
        assert!(simulate(&cdcg, &mesh, &mapping, &params).is_err());
    }

    #[test]
    fn idle_time_skipping_handles_long_computations() {
        let mut g = Cdcg::new();
        let a = g.add_core("A");
        let b = g.add_core("B");
        g.add_packet(a, b, 1_000_000, 4).unwrap();
        let mesh = Mesh::new(2, 1).unwrap();
        let mapping = Mapping::identity(&mesh, 2).unwrap();
        let report = simulate(&g, &mesh, &mapping, &des_params()).unwrap();
        // Eq. 8: K=2, n=4 -> 10 cycles after the 1e6-cycle computation.
        assert_eq!(report.texec_cycles, 1_000_010);
        assert!(
            report.simulated_cycles < 1_000,
            "idle skipping should avoid iterating a million cycles, took {}",
            report.simulated_cycles
        );
    }

    #[test]
    fn cycle_limit_is_enforced() {
        let mut g = Cdcg::new();
        let a = g.add_core("A");
        let b = g.add_core("B");
        g.add_packet(a, b, 0, 1000).unwrap();
        let mesh = Mesh::new(2, 1).unwrap();
        let mapping = Mapping::identity(&mesh, 2).unwrap();
        let mut params = des_params();
        params.max_cycles = 10;
        let err = simulate(&g, &mesh, &mapping, &params).unwrap_err();
        assert!(matches!(err, SimError::CycleLimitExceeded { .. }));
    }
}
