//! Data-oriented batch evaluation of candidate mappings.
//!
//! Search loops rarely need one cost — a GA generation, a tabu
//! neighborhood sample or an adaptive-round cohort asks for dozens of
//! sibling mappings at once, all over the *same* workload. The
//! per-candidate path ([`crate::schedule_cost_with`]) re-derives the
//! mapping-independent half of `init_run` every call: flit counts,
//! dependence fan-in, start-event seeds. [`BatchEvaluator`] hoists that
//! half into struct-of-arrays buffers filled in **one pass over the
//! workload per batch**, then runs the event loop per candidate out of
//! the shared buffers with a pooled [`ScheduleScratch`] arena.
//!
//! The mapping-*dependent* half — route resolution — goes through the
//! evaluator's private, lock-free [`WalkMemo`]: sibling candidates in a
//! batch typically differ by one swap, so almost every `(src, dst)`
//! pair repeats across the batch and resolves to a single table probe.
//! The memo's arena doubles as the engine's flat link array (the
//! zero-copy path), and its eviction checkpoint runs only at batch
//! boundaries, so spans stay valid across all candidates of a batch.
//! Unlike the single-mapping engines (whose
//! [`RouteProvider::local_memo_default`] enables memoization only where
//! resolution takes locks or runs a search), the batch engine defaults
//! the memo on for **every** buffering tier including the implicit
//! walker: sibling cohorts repeat ~90%+ of their pairs by construction,
//! so one table probe beats even a lock-free arithmetic walk (measured
//! in `batch_smoke`). Under a dense provider the memo is unnecessary
//! (spans index the cache's shared flat array) and is bypassed.
//!
//! Results are **bit-identical to sequential evaluation by
//! construction**: per candidate, the primed scratch holds exactly the
//! state `init_run` would have produced, and the event loop is the
//! same [`run_loop`]. The property tests in `tests/batch_eval.rs` pin
//! this across provider tiers, mesh shapes and fault scenarios.

use crate::cost::{pack, run_loop, NoopObserver, ScheduleScratch, INJECT, PACKET_LIMIT};
use crate::error::SimError;
use crate::params::SimParams;
use noc_model::{Cdcg, Mapping, Mesh, RouteProvider, RouteSource, RoutingKind, WalkMemo};
use std::sync::Arc;

/// Log₂ buckets of the batch-size histogram in [`BatchStats`]: bucket
/// `i` counts batches of `2^(i-1) < len <= 2^i` candidates (bucket 0:
/// single-candidate batches). Sixteen buckets cover batches up to
/// 32 768 candidates — beyond any population or neighborhood this
/// workspace runs; larger batches clamp into the last bucket.
pub const BATCH_SIZE_BUCKETS: usize = 16;

/// Cumulative telemetry of a [`BatchEvaluator`] (monotone across
/// batches). Route-dedup counters live in the walk memo
/// ([`BatchEvaluator::walk_memo_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Batches evaluated (calls to [`BatchEvaluator::evaluate`]).
    pub batches: u64,
    /// Candidate mappings evaluated across all batches.
    pub candidates: u64,
    /// Largest batch seen.
    pub max_batch: u64,
    /// Batch-size histogram in log₂ buckets (see
    /// [`BATCH_SIZE_BUCKETS`]); mirrors the registry histogram's
    /// power-of-two bounds so publishing replays counts exactly.
    pub size_log2: [u64; BATCH_SIZE_BUCKETS],
}

impl BatchStats {
    /// Mean candidates per batch (`0.0` when idle).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.candidates as f64 / self.batches as f64
        }
    }
}

/// A reusable batch cost engine: one application, a shared route
/// provider, pooled scratch, SoA workload buffers and a private walk
/// memo. See the module docs.
///
/// Cloning shares the (immutable) provider but duplicates all private
/// state, so clones batch-evaluate concurrently on different threads —
/// the service worker pool's shape.
#[derive(Debug, Clone)]
pub struct BatchEvaluator<'a> {
    cdcg: &'a Cdcg,
    params: SimParams,
    routes: Arc<RouteProvider>,
    scratch: ScheduleScratch,
    /// Pair→span dedup table, on by default for every buffering tier
    /// (sibling cohorts repeat pairs heavily; see the module docs),
    /// never under dense.
    memo: Option<WalkMemo>,
    /// SoA per-packet buffers, filled once per batch: flit counts,
    /// dependence fan-in, packed start events.
    flits: Vec<u64>,
    pending: Vec<u32>,
    seeds: Vec<u128>,
    /// Per-candidate span buffer (reused; indexes the memo arena when
    /// the memo is on, `walks` otherwise).
    cand_spans: Vec<(u32, u32)>,
    /// Memo-less walk buffer, cleared per candidate: buffering tiers
    /// append each resolved walk here; the dense tier never appends
    /// (its spans index the cache's own flat array, which `flat`
    /// returns while ignoring this buffer).
    walks: Vec<u32>,
    stats: BatchStats,
}

impl<'a> BatchEvaluator<'a> {
    /// Builds a batch evaluator for `cdcg` on `mesh` under XY routing
    /// with an automatically sized route provider.
    pub fn new(cdcg: &'a Cdcg, mesh: &Mesh, params: &SimParams) -> Self {
        Self::with_provider(
            cdcg,
            params,
            Arc::new(RouteProvider::auto(mesh, RoutingKind::Xy)),
        )
    }

    /// Builds a batch evaluator sharing an existing route provider (any
    /// tier; results are bit-identical across tiers).
    pub fn with_provider(cdcg: &'a Cdcg, params: &SimParams, routes: Arc<RouteProvider>) -> Self {
        let memo = routes.memo_compatible().then(WalkMemo::new);
        Self {
            cdcg,
            params: *params,
            routes,
            scratch: ScheduleScratch::new(),
            memo,
            flits: Vec::new(),
            pending: Vec::new(),
            seeds: Vec::new(),
            cand_spans: Vec::new(),
            walks: Vec::new(),
            stats: BatchStats::default(),
        }
    }

    /// The application being evaluated.
    pub fn cdcg(&self) -> &'a Cdcg {
        self.cdcg
    }

    /// The shared route provider.
    pub fn provider(&self) -> &Arc<RouteProvider> {
        &self.routes
    }

    /// The simulation parameter set evaluations run under.
    pub fn params(&self) -> &SimParams {
        &self.params
    }

    /// Cumulative batch telemetry.
    pub fn stats(&self) -> BatchStats {
        self.stats
    }

    /// Enables or disables the route-dedup walk memo. Enabling is a
    /// no-op under a dense provider (its spans index a shared flat
    /// array the memo cannot replay —
    /// [`RouteProvider::memo_compatible`]); disabling drops the table.
    /// Evaluation results are bit-identical either way.
    pub fn set_walk_memo(&mut self, enabled: bool) {
        self.memo = (enabled && self.routes.memo_compatible())
            .then(|| self.memo.take().unwrap_or_default());
    }

    /// Whether the walk memo is currently active.
    pub fn walk_memo_enabled(&self) -> bool {
        self.memo.is_some()
    }

    /// Cumulative hit/miss/eviction counters of the dedup memo (`None`
    /// under a dense provider, which needs no dedup). The hit ratio is
    /// the batch route-dedup ratio observability reports.
    pub fn walk_memo_stats(&self) -> Option<noc_model::WalkMemoStats> {
        self.memo.as_ref().map(|m| m.stats())
    }

    /// Engine run telemetry of the pooled scratch (runs == candidates
    /// evaluated; events processed across them).
    pub fn run_stats(&self) -> crate::RunStats {
        self.scratch.run_stats()
    }

    /// `texec` (cycles) of every mapping in `batch`, in order —
    /// bit-identical to calling
    /// [`schedule_cost_with`](crate::schedule_cost_with) once per
    /// mapping with a fresh scratch. Accepts anything that borrows a
    /// [`Mapping`] (`&[Mapping]`, `&[&Mapping]`, …).
    ///
    /// # Errors
    ///
    /// Same as [`schedule_cost`](crate::schedule_cost()), checked per
    /// candidate; the first failing candidate aborts the batch.
    pub fn evaluate<M: std::borrow::Borrow<Mapping>>(
        &mut self,
        batch: &[M],
    ) -> Result<Vec<u64>, SimError> {
        let mut out = Vec::with_capacity(batch.len());
        self.evaluate_into(batch, &mut out)?;
        Ok(out)
    }

    /// [`Self::evaluate`] into a caller-owned buffer (cleared first) —
    /// the allocation-free inner-loop form.
    ///
    /// # Errors
    ///
    /// Same as [`Self::evaluate`].
    pub fn evaluate_into<M: std::borrow::Borrow<Mapping>>(
        &mut self,
        batch: &[M],
        out: &mut Vec<u64>,
    ) -> Result<(), SimError> {
        out.clear();
        if batch.is_empty() {
            return Ok(());
        }
        let n_packets = self.cdcg.packet_count();
        assert!(
            n_packets < PACKET_LIMIT,
            "cost evaluation supports up to 2^30 packets"
        );
        let mesh = self.routes.mesh();

        // Validate every candidate up front: a mid-batch error must not
        // leave half the results computed.
        for mapping in batch {
            let mapping = mapping.borrow();
            if mapping.core_count() != self.cdcg.core_count() {
                return Err(SimError::CoreCountMismatch {
                    mapping: mapping.core_count(),
                    application: self.cdcg.core_count(),
                });
            }
            mapping.validate()?;
            for (_, tile) in mapping.assignments() {
                if !mesh.contains(tile) {
                    return Err(SimError::Model(noc_model::ModelError::UnknownTile(tile)));
                }
            }
        }

        // One pass over the workload: the mapping-independent SoA half.
        self.flits.clear();
        self.pending.clear();
        self.seeds.clear();
        for id in self.cdcg.packet_ids() {
            let p = self.cdcg.packet(id);
            self.flits.push(self.params.flits(p.bits).max(1));
            self.pending.push(self.cdcg.predecessors(id).len() as u32);
        }
        for id in self.cdcg.start_packets() {
            self.seeds.push(pack(
                self.cdcg.packet(id).comp_cycles,
                id.index(),
                INJECT,
                0,
            ));
        }

        // Batch-boundary eviction checkpoint: spans handed out below
        // stay valid for every candidate of this batch.
        if let Some(m) = self.memo.as_mut() {
            m.begin_eval();
        }

        let n_links = self.routes.dense_link_count();
        for mapping in batch {
            let mapping = mapping.borrow();
            self.cand_spans.clear();
            self.walks.clear();
            // Route resolution — the mapping-dependent half. Sibling
            // candidates repeat almost every pair; the memo turns the
            // repeats into single probes.
            for id in self.cdcg.packet_ids() {
                let p = self.cdcg.packet(id);
                let (src, dst) = (mapping.tile_of(p.src), mapping.tile_of(p.dst));
                self.routes.validate_pair(src, dst)?;
                let span = match self.memo.as_mut() {
                    Some(m) => m.resolve(self.routes.as_ref(), src, dst),
                    None => self.routes.walk_span(src, dst, &mut self.walks),
                };
                self.cand_spans.push(span);
            }
            self.scratch.prime_run(
                n_links,
                n_packets,
                &self.flits,
                &self.pending,
                &self.cand_spans,
                &self.seeds,
            );
            let flat = match self.memo.as_ref() {
                Some(m) => m.arena(),
                None => self.routes.flat(&self.walks),
            };
            let (texec, delivered, events) = run_loop(
                self.cdcg,
                &self.params,
                flat,
                &mut self.scratch,
                0,
                0,
                0,
                &mut { NoopObserver },
            );
            debug_assert_eq!(
                delivered, n_packets,
                "DAG execution must deliver all packets"
            );
            self.scratch.note_run(events);
            out.push(texec);
        }
        self.stats.batches += 1;
        self.stats.candidates += batch.len() as u64;
        self.stats.max_batch = self.stats.max_batch.max(batch.len() as u64);
        let bucket = if batch.len() <= 1 {
            0
        } else {
            (usize::BITS - (batch.len() - 1).leading_zeros()) as usize
        };
        // noc-verify: allow(PANIC01) — the index is clamped to the final bucket and the array is BATCH_SIZE_BUCKETS long
        self.stats.size_log2[bucket.min(BATCH_SIZE_BUCKETS - 1)] += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::schedule_cost_with;
    use noc_model::TileId;

    fn small_cdcg() -> Cdcg {
        let mut g = Cdcg::new();
        let a = g.add_core("A");
        let b = g.add_core("B");
        let c = g.add_core("C");
        let d = g.add_core("D");
        let p1 = g.add_packet(a, b, 6, 64).unwrap();
        let p2 = g.add_packet(b, c, 8, 32).unwrap();
        let p3 = g.add_packet(c, d, 4, 128).unwrap();
        let p4 = g.add_packet(a, d, 6, 16).unwrap();
        g.add_dependence(p1, p2).unwrap();
        g.add_dependence(p2, p3).unwrap();
        g.add_dependence(p1, p4).unwrap();
        g
    }

    fn all_mappings_of_4_on_2x2(mesh: &Mesh) -> Vec<Mapping> {
        // All 24 permutations of 4 cores on 4 tiles.
        let mut out = Vec::new();
        let mut tiles = [0usize, 1, 2, 3];
        permute(&mut tiles, 0, &mut |perm| {
            out.push(Mapping::from_tiles(mesh, perm.map(TileId::new)).unwrap());
        });
        out
    }

    fn permute(v: &mut [usize; 4], k: usize, f: &mut impl FnMut([usize; 4])) {
        if k == 4 {
            f(*v);
            return;
        }
        for i in k..4 {
            v.swap(k, i);
            permute(v, k + 1, f);
            v.swap(k, i);
        }
    }

    #[test]
    fn batch_matches_sequential_across_tiers() {
        let cdcg = small_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let params = SimParams::paper_example();
        let batch = all_mappings_of_4_on_2x2(&mesh);
        for provider in [
            RouteProvider::dense(&mesh, RoutingKind::Xy).unwrap(),
            RouteProvider::on_demand(&mesh, RoutingKind::Xy),
            RouteProvider::implicit(&mesh, RoutingKind::Xy),
        ] {
            let provider = Arc::new(provider);
            let mut evaluator =
                BatchEvaluator::with_provider(&cdcg, &params, Arc::clone(&provider));
            let got = evaluator.evaluate(&batch).unwrap();
            let mut scratch = ScheduleScratch::new();
            for (mapping, &texec) in batch.iter().zip(&got) {
                let want = schedule_cost_with(
                    &cdcg,
                    &mesh,
                    mapping,
                    &params,
                    provider.as_ref(),
                    &mut scratch,
                )
                .unwrap();
                assert_eq!(texec, want, "tier {:?}", provider.tier());
            }
        }
    }

    #[test]
    fn sibling_batches_dedup_route_work() {
        let cdcg = small_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let params = SimParams::paper_example();
        let provider = Arc::new(RouteProvider::on_demand(&mesh, RoutingKind::Xy));
        let mut evaluator = BatchEvaluator::with_provider(&cdcg, &params, provider);
        let batch = all_mappings_of_4_on_2x2(&mesh);
        evaluator.evaluate(&batch).unwrap();
        let stats = evaluator.walk_memo_stats().unwrap();
        // 24 candidates × 4 packets = 96 lookups over at most 16 pairs.
        assert_eq!(stats.hits + stats.misses, 96);
        assert!(
            stats.misses <= 16,
            "at most one miss per distinct pair, got {}",
            stats.misses
        );
        assert!(stats.hit_ratio() > 0.8, "ratio {}", stats.hit_ratio());
    }

    #[test]
    fn empty_and_error_batches() {
        let cdcg = small_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let params = SimParams::paper_example();
        let mut evaluator = BatchEvaluator::new(&cdcg, &mesh, &params);
        assert!(evaluator.evaluate::<Mapping>(&[]).unwrap().is_empty());
        // A core-count mismatch anywhere aborts before any evaluation.
        let bad = Mapping::identity(&mesh, 3).unwrap();
        let good = Mapping::identity(&mesh, 4).unwrap();
        assert!(matches!(
            evaluator.evaluate(&[good, bad]),
            Err(SimError::CoreCountMismatch { .. })
        ));
        assert_eq!(
            evaluator.stats().batches,
            0,
            "neither empty nor failed batches are counted"
        );
    }

    #[test]
    fn scratch_pooling_is_stateless_across_batches() {
        let cdcg = small_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let params = SimParams::paper_example();
        let mut evaluator = BatchEvaluator::new(&cdcg, &mesh, &params);
        let batch = all_mappings_of_4_on_2x2(&mesh);
        let first = evaluator.evaluate(&batch).unwrap();
        let second = evaluator.evaluate(&batch).unwrap();
        assert_eq!(first, second);
        assert_eq!(evaluator.stats().candidates, 48);
        assert_eq!(evaluator.stats().mean_batch(), 24.0);
    }
}
