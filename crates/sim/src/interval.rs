//! Half-open cycle intervals used for resource occupancy bookkeeping.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open interval of clock cycles `[start, end)`: the resource is
/// busy from `start` inclusive and free again at `end`.
///
/// The paper's Figure 3 prints occupancy as closed-looking pairs such as
/// `[6,21]`; those correspond to half-open `[6, 21)` here (a 15-flit packet
/// occupying a link for 15 cycles), and [`fmt::Display`] renders the same
/// `[start,end]` notation for side-by-side comparison with the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CycleInterval {
    /// First busy cycle.
    pub start: u64,
    /// First cycle after the resource is released.
    pub end: u64,
}

impl CycleInterval {
    /// Creates an interval.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(end >= start, "interval end {end} precedes start {start}");
        Self { start, end }
    }

    /// Interval length in cycles.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True for zero-length intervals.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// True if the two intervals share at least one cycle.
    pub fn overlaps(&self, other: &CycleInterval) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// True if `cycle` lies inside the interval.
    pub fn contains(&self, cycle: u64) -> bool {
        self.start <= cycle && cycle < self.end
    }
}

impl fmt::Display for CycleInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{}]", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_and_emptiness() {
        let i = CycleInterval::new(6, 21);
        assert_eq!(i.len(), 15);
        assert!(!i.is_empty());
        assert!(CycleInterval::new(5, 5).is_empty());
    }

    #[test]
    #[should_panic(expected = "precedes")]
    fn rejects_reversed_bounds() {
        let _ = CycleInterval::new(10, 9);
    }

    #[test]
    fn overlap_semantics_are_half_open() {
        let a = CycleInterval::new(10, 20);
        let b = CycleInterval::new(20, 30); // adjacent, not overlapping
        let c = CycleInterval::new(19, 21);
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(b.overlaps(&c));
        assert!(a.overlaps(&a));
    }

    #[test]
    fn contains_is_half_open() {
        let i = CycleInterval::new(3, 6);
        assert!(i.contains(3));
        assert!(i.contains(5));
        assert!(!i.contains(6));
        assert!(!i.contains(2));
    }

    #[test]
    fn displays_like_the_paper() {
        assert_eq!(CycleInterval::new(6, 21).to_string(), "[6,21]");
    }
}
