//! Bridge from the timing engine's native statistics to the `noc-obs`
//! metrics registry.
//!
//! The engine itself never touches a registry on its hot paths — it
//! keeps counting into [`RunStats`](crate::RunStats) and
//! [`DeltaStats`](crate::DeltaStats) as before. Consumers that hold
//! both a stats snapshot (or delta) and a registry call these helpers
//! to publish, so the metric names stay defined in exactly one place.

use crate::batch::{BatchStats, BATCH_SIZE_BUCKETS};
use crate::cost::RunStats;
use crate::delta::DeltaStats;
use noc_model::WalkMemoStats;
use noc_obs::MetricsRegistry;

/// Trace-counter names of the [`BatchStats::size_log2`] buckets, in
/// bucket order. Emitters (`noc-mapping`'s explorer) and decoders (the
/// service's worker sink) both index this table, so the wire names live
/// in exactly one place.
pub const BATCH_SIZE_BUCKET_NAMES: [&str; BATCH_SIZE_BUCKETS] = [
    "size_le_1",
    "size_le_2",
    "size_le_4",
    "size_le_8",
    "size_le_16",
    "size_le_32",
    "size_le_64",
    "size_le_128",
    "size_le_256",
    "size_le_512",
    "size_le_1024",
    "size_le_2048",
    "size_le_4096",
    "size_le_8192",
    "size_le_16384",
    "size_le_32768",
];

/// Adds a [`RunStats`] *delta* (not an absolute snapshot) to the
/// scheduler counters. Callers that sample a monotone total are
/// responsible for differencing before publishing.
pub fn publish_run_stats(registry: &MetricsRegistry, delta: RunStats) {
    if delta.runs > 0 {
        registry.counter("noc_schedule_runs_total").inc(delta.runs);
    }
    if delta.events > 0 {
        registry
            .counter("noc_schedule_events_total")
            .inc(delta.events);
    }
}

/// Adds a [`DeltaStats`] *delta* to the incremental-evaluator counters.
pub fn publish_delta_stats(registry: &MetricsRegistry, delta: &DeltaStats) {
    let pairs = [
        ("noc_delta_incremental_moves_total", delta.incremental_moves),
        (
            "noc_delta_route_unchanged_moves_total",
            delta.route_unchanged_moves,
        ),
        ("noc_delta_full_restores_total", delta.full_restores),
        (
            "noc_delta_tail_converged_moves_total",
            delta.tail_converged_moves,
        ),
        ("noc_delta_full_rebaselines_total", delta.full_rebaselines),
        ("noc_delta_full_path_moves_total", delta.full_path_moves),
        ("noc_delta_tape_refreshes_total", delta.tape_refreshes),
        ("noc_delta_cache_hits_total", delta.cache_hits),
        ("noc_delta_events_replayed_total", delta.events_replayed),
        ("noc_delta_events_total", delta.events_total),
    ];
    for (name, value) in pairs {
        if value > 0 {
            registry.counter(name).inc(value);
        }
    }
}

/// Adds a [`BatchStats`] *delta* to the batch-evaluation counters and
/// replays its size buckets into the `noc_batch_size` histogram (each
/// bucket observes its power-of-two upper bound, so registry bucket
/// counts are exact; `_sum` is a bucket-bound upper estimate).
pub fn publish_batch_stats(registry: &MetricsRegistry, delta: &BatchStats) {
    if delta.batches > 0 {
        registry
            .counter("noc_batch_batches_total")
            .inc(delta.batches);
    }
    if delta.candidates > 0 {
        registry
            .counter("noc_batch_candidates_total")
            .inc(delta.candidates);
    }
    if delta.size_log2.iter().any(|&n| n > 0) {
        let histogram = registry.histogram("noc_batch_size");
        for (i, &n) in delta.size_log2.iter().enumerate() {
            for _ in 0..n {
                histogram.observe(1u64 << i);
            }
        }
    }
}

/// Adds a [`WalkMemoStats`] *delta* to the walk-memo counters and sets
/// the dedup-ratio gauge (`noc_batch_dedup_ratio_permille`) to the
/// delta's hit ratio in per-mille — i.e. the route-dedup ratio of the
/// most recently published batch of work.
pub fn publish_walk_memo_stats(registry: &MetricsRegistry, delta: &WalkMemoStats) {
    let pairs = [
        ("noc_walk_memo_hits_total", delta.hits),
        ("noc_walk_memo_misses_total", delta.misses),
        ("noc_walk_memo_evictions_total", delta.evictions),
    ];
    for (name, value) in pairs {
        if value > 0 {
            registry.counter(name).inc(value);
        }
    }
    let total = delta.hits + delta.misses;
    if let Some(permille) = delta.hits.saturating_mul(1000).checked_div(total) {
        registry
            .gauge("noc_batch_dedup_ratio_permille")
            .set(permille as i64);
    }
}

/// Registers `# HELP` text for the engine metrics on `registry`.
pub fn describe_engine_metrics(registry: &MetricsRegistry) {
    registry.describe(
        "noc_schedule_runs_total",
        "Contention-aware schedule computations.",
    );
    registry.describe(
        "noc_schedule_events_total",
        "Packet events processed by the scheduler.",
    );
    registry.describe(
        "noc_delta_incremental_moves_total",
        "Swap evaluations served incrementally by the delta evaluator.",
    );
    registry.describe(
        "noc_delta_cache_hits_total",
        "Delta-evaluator cost cache hits.",
    );
    registry.describe(
        "noc_delta_full_path_moves_total",
        "Swaps served by the delta evaluator's auto-fallback full path.",
    );
    registry.describe(
        "noc_batch_batches_total",
        "Batched cost evaluations (one per generation or cohort flush).",
    );
    registry.describe(
        "noc_batch_candidates_total",
        "Candidate mappings evaluated through the batch engine.",
    );
    registry.describe("noc_batch_size", "Candidates per batch.");
    registry.describe(
        "noc_walk_memo_hits_total",
        "Route resolutions served from a walk-memo pair table.",
    );
    registry.describe(
        "noc_walk_memo_misses_total",
        "Walk-memo misses (routes walked and cached).",
    );
    registry.describe(
        "noc_walk_memo_evictions_total",
        "Walk-memo arena evictions at batch boundaries.",
    );
    registry.describe(
        "noc_batch_dedup_ratio_permille",
        "Route-dedup ratio of the last published batch work, in per-mille.",
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publishes_only_nonzero_counters() {
        let registry = MetricsRegistry::new();
        publish_run_stats(
            &registry,
            RunStats {
                runs: 3,
                events: 40,
            },
        );
        publish_run_stats(&registry, RunStats { runs: 0, events: 0 });
        assert_eq!(registry.counter("noc_schedule_runs_total").get(), 3);
        assert_eq!(registry.counter("noc_schedule_events_total").get(), 40);

        let delta = DeltaStats {
            incremental_moves: 5,
            cache_hits: 2,
            ..DeltaStats::default()
        };
        publish_delta_stats(&registry, &delta);
        assert_eq!(
            registry.counter("noc_delta_incremental_moves_total").get(),
            5
        );
        assert_eq!(registry.counter("noc_delta_cache_hits_total").get(), 2);
    }

    #[test]
    fn batch_publish_replays_size_buckets_exactly() {
        let registry = MetricsRegistry::new();
        let mut stats = BatchStats {
            batches: 7,
            candidates: 100,
            max_batch: 24,
            ..BatchStats::default()
        };
        stats.size_log2[0] = 2; // two single-candidate batches
        stats.size_log2[5] = 5; // five batches of 17..=32
        publish_batch_stats(&registry, &stats);
        assert_eq!(registry.counter("noc_batch_batches_total").get(), 7);
        assert_eq!(registry.counter("noc_batch_candidates_total").get(), 100);
        let histogram = registry.histogram("noc_batch_size");
        assert_eq!(histogram.count(), 7);
        let buckets = histogram.bucket_counts();
        assert_eq!(buckets[0], 2);
        assert_eq!(buckets[5], 5);
    }

    #[test]
    fn walk_memo_publish_sets_the_dedup_gauge() {
        let registry = MetricsRegistry::new();
        publish_walk_memo_stats(
            &registry,
            &WalkMemoStats {
                hits: 96,
                misses: 4,
                evictions: 1,
            },
        );
        assert_eq!(registry.counter("noc_walk_memo_hits_total").get(), 96);
        assert_eq!(registry.counter("noc_walk_memo_misses_total").get(), 4);
        assert_eq!(registry.counter("noc_walk_memo_evictions_total").get(), 1);
        assert_eq!(registry.gauge("noc_batch_dedup_ratio_permille").get(), 960);
        // An idle delta leaves the gauge untouched.
        publish_walk_memo_stats(&registry, &WalkMemoStats::default());
        assert_eq!(registry.gauge("noc_batch_dedup_ratio_permille").get(), 960);
    }
}
