//! Bridge from the timing engine's native statistics to the `noc-obs`
//! metrics registry.
//!
//! The engine itself never touches a registry on its hot paths — it
//! keeps counting into [`RunStats`](crate::RunStats) and
//! [`DeltaStats`](crate::DeltaStats) as before. Consumers that hold
//! both a stats snapshot (or delta) and a registry call these helpers
//! to publish, so the metric names stay defined in exactly one place.

use crate::cost::RunStats;
use crate::delta::DeltaStats;
use noc_obs::MetricsRegistry;

/// Adds a [`RunStats`] *delta* (not an absolute snapshot) to the
/// scheduler counters. Callers that sample a monotone total are
/// responsible for differencing before publishing.
pub fn publish_run_stats(registry: &MetricsRegistry, delta: RunStats) {
    if delta.runs > 0 {
        registry.counter("noc_schedule_runs_total").inc(delta.runs);
    }
    if delta.events > 0 {
        registry
            .counter("noc_schedule_events_total")
            .inc(delta.events);
    }
}

/// Adds a [`DeltaStats`] *delta* to the incremental-evaluator counters.
pub fn publish_delta_stats(registry: &MetricsRegistry, delta: &DeltaStats) {
    let pairs = [
        ("noc_delta_incremental_moves_total", delta.incremental_moves),
        (
            "noc_delta_route_unchanged_moves_total",
            delta.route_unchanged_moves,
        ),
        ("noc_delta_full_restores_total", delta.full_restores),
        (
            "noc_delta_tail_converged_moves_total",
            delta.tail_converged_moves,
        ),
        ("noc_delta_full_rebaselines_total", delta.full_rebaselines),
        ("noc_delta_tape_refreshes_total", delta.tape_refreshes),
        ("noc_delta_cache_hits_total", delta.cache_hits),
        ("noc_delta_events_replayed_total", delta.events_replayed),
        ("noc_delta_events_total", delta.events_total),
    ];
    for (name, value) in pairs {
        if value > 0 {
            registry.counter(name).inc(value);
        }
    }
}

/// Registers `# HELP` text for the engine metrics on `registry`.
pub fn describe_engine_metrics(registry: &MetricsRegistry) {
    registry.describe(
        "noc_schedule_runs_total",
        "Contention-aware schedule computations.",
    );
    registry.describe(
        "noc_schedule_events_total",
        "Packet events processed by the scheduler.",
    );
    registry.describe(
        "noc_delta_incremental_moves_total",
        "Swap evaluations served incrementally by the delta evaluator.",
    );
    registry.describe(
        "noc_delta_cache_hits_total",
        "Delta-evaluator cost cache hits.",
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publishes_only_nonzero_counters() {
        let registry = MetricsRegistry::new();
        publish_run_stats(
            &registry,
            RunStats {
                runs: 3,
                events: 40,
            },
        );
        publish_run_stats(&registry, RunStats { runs: 0, events: 0 });
        assert_eq!(registry.counter("noc_schedule_runs_total").get(), 3);
        assert_eq!(registry.counter("noc_schedule_events_total").get(), 40);

        let delta = DeltaStats {
            incremental_moves: 5,
            cache_hits: 2,
            ..DeltaStats::default()
        };
        publish_delta_stats(&registry, &delta);
        assert_eq!(
            registry.counter("noc_delta_incremental_moves_total").get(),
            5
        );
        assert_eq!(registry.counter("noc_delta_cache_hits_total").get(), 2);
    }
}
