//! Incremental CDCM rescheduling: delta evaluation of tile swaps.
//!
//! Full CDCM evaluation re-runs the whole contention-aware schedule per
//! candidate mapping — `O(events)` per SA move even on the allocation-free
//! [`schedule_cost`](crate::schedule_cost) path. [`IncrementalScheduler`]
//! makes the *swap* move (the annealer's elementary move) cheaper by
//! re-scheduling only the part of the timeline a swap can actually touch.
//!
//! ## The dirty set and the divergence frontier
//!
//! For a proposed swap of tiles `a` and `b` against a *baseline* mapping,
//! the **dirty set** `D` is the set of packets whose route changes: the
//! packets whose source or destination core sits on `a` or `b`. Everything
//! else about the instance (flit counts, dependences, computation times)
//! is mapping-independent, so `D` fully captures the input difference
//! between the baseline evaluation and the swapped one.
//!
//! The event loop processes events in strictly increasing key order
//! (`(time, packet, phase)` packed into a `u128`). A dirty packet touches
//! no resource before its `Inject` event, and its injection *request*
//! time (`ready + comp_cycles`) is produced by predecessor deliveries
//! that are identical in both runs up to the first divergent event. By
//! induction, **both runs are bit-identical for every event with key
//! below the divergence frontier**
//!
//! ```text
//!   t_key = min over p ∈ D of key(Inject(p))        (baseline times)
//! ```
//!
//! — the earliest injection of a route-changed packet. Packets that never
//! interact with the dirty packets' resources, directly or transitively
//! (through link FCFS order, input-port FIFOs or dependence edges),
//! replay identically in the suffix; packets that do are re-scheduled
//! with full contention semantics, because the suffix runs the *same*
//! event loop as the full path.
//!
//! ## Checkpointed prefix reuse
//!
//! During a baseline evaluation the engine snapshots its mid-run state
//! ([`ScheduleScratch`]'s touched link free-times, FIFO states,
//! pending/ready tables and the event heap — sparse, so early
//! checkpoints cost almost nothing) every `stride` events, plus a denser
//! grid below the first stride where divergence frontiers cluster. A
//! swap evaluation then:
//!
//! 1. computes `D` and `t_key`; if `D` is empty (both tiles empty or the
//!    moved cores exchange no packets) the swap provably cannot change
//!    the schedule and the baseline `texec` is returned in `O(1)`;
//! 2. restores the latest checkpoint whose last processed event key lies
//!    strictly below `t_key` (the initial checkpoint, with zero events
//!    processed, always qualifies — that is the **fallback to full
//!    rescheduling**, counted in [`DeltaStats::full_restores`]);
//! 3. patches the route spans of the dirty packets and re-runs the event
//!    loop.
//!
//! The result is **bit-exact** with [`schedule_cost`] on the swapped
//! mapping by construction: the restored prefix is a state both runs
//! share, and the suffix is the unmodified algorithm.
//!
//! ## Tail convergence
//!
//! A swap's timing perturbation often dies out before the end of the
//! timeline. Once every dirty packet has delivered (so no patched span
//! can be read again), the suffix run compares its state against the
//! baseline checkpoint at the equivalent event count (shifted by the
//! dirty packets' event-count difference — a rerouted packet with a
//! different hop count contributes a different number of events). The
//! comparison is *future-equivalence*, not bitwise equality: traversal
//! counters are ignored and a link's `free` (or a clear FIFO's `clear`)
//! may differ as long as both values lie at or below the next event
//! time, because every future request arrives later and overwrites the
//! slot identically either way (see
//! `ScheduleScratch::converged_with`). On a match the run stops and the
//! candidate's `texec` is completed with the baseline's recorded
//! tail-delivery maximum — the remaining events would have replayed the
//! baseline verbatim.
//!
//! ## Invariants
//!
//! * Checkpoints are valid only for the baseline mapping they were
//!   recorded under; the engine re-baselines (one full, taped run) when
//!   asked about any other mapping.
//! * A snapshot at `events_done = k` may be restored for a swap iff every
//!   one of its `k` processed events has key `< t_key`; since keys are
//!   unique and pop in increasing order, checking the *last* processed
//!   key suffices.
//! * Span tables in the scratch always describe the mapping being run;
//!   snapshots deliberately exclude them and the evaluator re-patches
//!   them after every restore.
//! * When a swap is *accepted* by the caller (the next query is for the
//!   swapped mapping), the engine promotes the candidate run to
//!   baseline, keeping the shared checkpoint prefix (and, after a
//!   tail-converged run, the shared tail) — acceptance costs no extra
//!   full evaluation. Candidate runs are not taped, so promotions thin
//!   the tape over the perturbed window; a rate-limited refresh
//!   (`RETAPE_INTERVAL`) re-records it once it gets too sparse.
//!
//! Incremental evaluation falls back to a full re-run (still through the
//! restored initial checkpoint) when the frontier precedes the first
//! checkpoint — e.g. a swap touching a start packet — and to a full
//! *re-baseline* when the queried mapping matches neither the baseline
//! nor the pending candidate. [`DeltaStats`] exposes the counters so
//! harnesses can assert the incremental path is actually taken.
//!
//! ## Auto-fallback on low prefix reuse
//!
//! On workloads where divergence frontiers sit near the start of the
//! timeline (small dense instances, swaps that keep touching start
//! packets), the incremental machinery replays almost every event
//! *and* pays for taping, restores and the convergence watch — a net
//! slowdown of a few percent over plain full evaluation. The engine
//! tracks the realized skip of its incremental moves in an EWMA
//! ([`SKIP_EWMA_ALPHA`]); once warmed up ([`FALLBACK_WARMUP`] moves)
//! and below [`FALLBACK_SKIP_THRESHOLD`], swap queries are served by an
//! ordinary untaped full evaluation of the swapped mapping instead
//! ([`DeltaStats::full_path_moves`]). Every
//! [`FALLBACK_PROBE_INTERVAL`]-th query still runs the incremental
//! path, so the EWMA stays live and the engine switches back when
//! prefix reuse becomes worthwhile again. Both paths are the same
//! `schedule_cost` arithmetic, so results are bit-identical regardless
//! of which one serves a move — only the counters (and the wall-clock)
//! differ.

use crate::cost::{
    init_run, pack, run_loop, EngineSnapshot, NoopObserver, RunObserver, ScheduleScratch, INJECT,
};
use crate::error::SimError;
use crate::params::SimParams;
use noc_model::{
    Cdcg, Mapping, Mesh, PacketId, RouteCache, RouteProvider, RouteSource, RoutingKind, TileId,
    WalkMemo,
};
use std::sync::Arc;

/// Counters describing how the incremental evaluator served its queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Swap evaluations answered by restoring a checkpoint and re-running
    /// a suffix (includes `full_restores`).
    pub incremental_moves: u64,
    /// Swap evaluations answered in `O(1)` because no packet's route
    /// changed.
    pub route_unchanged_moves: u64,
    /// Incremental moves that had to restore the initial checkpoint
    /// (zero prefix reused — the fallback to full rescheduling).
    pub full_restores: u64,
    /// Incremental moves that stopped early because the perturbed state
    /// re-converged with the baseline timeline (tail reused).
    pub tail_converged_moves: u64,
    /// Full evaluations of a new baseline mapping (includes
    /// `tape_refreshes`).
    pub full_rebaselines: u64,
    /// Full re-runs triggered only to refresh a promotion-thinned
    /// checkpoint tape (rate-limited to one per [`RETAPE_INTERVAL`]
    /// queries).
    pub tape_refreshes: u64,
    /// Swap evaluations served by the auto-fallback full path because
    /// realized prefix reuse was too small for the incremental
    /// machinery to pay off (see the module docs).
    pub full_path_moves: u64,
    /// Queries answered from the cached baseline (or promoted candidate)
    /// without touching the event loop.
    pub cache_hits: u64,
    /// Events processed across all incremental suffix re-runs.
    pub events_replayed: u64,
    /// Events a full re-run would have processed for those same moves.
    pub events_total: u64,
}

impl DeltaStats {
    /// Fraction of event work skipped by prefix reuse over all
    /// incremental moves (0 when none ran).
    pub fn skip_fraction(&self) -> f64 {
        if self.events_total == 0 {
            0.0
        } else {
            1.0 - self.events_replayed as f64 / self.events_total as f64
        }
    }
}

/// One recorded evaluation: the mapping it ran, its result and the
/// per-packet bookkeeping future delta queries need.
#[derive(Debug, Clone, Default)]
struct RunRecord {
    /// `None` marks the record invalid (nothing recorded yet, or a
    /// failed/stale run).
    mapping: Option<Mapping>,
    texec: u64,
    /// Per packet: injection request time (`ready + comp_cycles`).
    inject: Vec<u64>,
    /// Per packet: resolved route span in the cache's flat link array.
    spans: Vec<(u32, u32)>,
    /// Whether checkpoints were recorded for this run.
    taped: bool,
    /// For candidates: event count at which the run tail-converged with
    /// the baseline (`None` when it ran to completion).
    converged_at: Option<u64>,
    /// For candidates: the run is *identical* to the baseline (no route
    /// changed), so promotion preserves every checkpoint and tail.
    identical: bool,
    /// Deterministic full-run event count of this record's spans.
    total_events: u64,
}

/// Event-loop observer that records injection request times, periodic
/// engine snapshots, baseline delivery times (for tail maxima) and — in
/// candidate mode — watches for tail convergence with the baseline.
struct TapeObserver<'b> {
    inject: &'b mut [u64],
    tape: Option<TapeState<'b>>,
    /// Baseline runs: `(event index, delivery time)` per packet, in
    /// event order, for post-run tail-maximum computation.
    deliveries: Option<&'b mut Vec<(u64, u64)>>,
    /// Candidate runs: tail-convergence watch.
    converge: Option<ConvergeWatch<'b>>,
    /// Events processed so far in this run (mirrors the loop's counter).
    events_seen: u64,
}

struct TapeState<'b> {
    snaps: &'b mut Vec<EngineSnapshot>,
    pool: &'b mut Vec<EngineSnapshot>,
    stride: u64,
    /// Denser grid below the first full stride: divergence frontiers
    /// cluster at the earliest dirty injection, which usually falls well
    /// before `stride` events — without early checkpoints those moves
    /// all degrade to full restores.
    early: u64,
    n_links: usize,
    n_packets: usize,
}

impl TapeState<'_> {
    #[inline]
    fn boundary(&self, events_done: u64) -> bool {
        events_done.is_multiple_of(self.stride)
            || (events_done < self.stride && events_done.is_multiple_of(self.early))
    }
}

struct ConvergeWatch<'b> {
    /// Sorted dirty packet ids; convergence is impossible while any is
    /// undelivered (its patched span could still be read).
    dirty: &'b [u32],
    remaining: usize,
    /// The baseline checkpoints, sorted by `events_done`.
    base_snaps: &'b [EngineSnapshot],
    /// Next baseline checkpoint to compare against.
    cursor: usize,
    /// Event-count shift between the runs: a rerouted packet whose hop
    /// count changed contributes a different number of events, so the
    /// candidate's event counter at an equivalent state differs from the
    /// baseline's by `baseline_total − candidate_total`. The comparison
    /// targets baseline checkpoints at `events_done + shift`.
    shift: i64,
    heap_buf: &'b mut Vec<u128>,
    n_packets: usize,
    /// Set on detection: `(events_done, baseline tail texec)`.
    converged: Option<(u64, u64)>,
}

impl TapeObserver<'_> {
    /// Tracks the event index for delivery records (incremented in
    /// `after_event`, so during processing the current event's index is
    /// `events_seen + 1`).
    fn event_index(&self) -> u64 {
        self.events_seen + 1
    }
}

impl RunObserver for TapeObserver<'_> {
    #[inline]
    fn record_inject(&mut self, packet: usize, time: u64) {
        self.inject[packet] = time;
    }

    #[inline]
    fn record_delivery(&mut self, packet: usize, delivery: u64) {
        let index = self.event_index();
        if let Some(deliveries) = &mut self.deliveries {
            deliveries.push((index, delivery));
        }
        if let Some(watch) = &mut self.converge {
            if watch.dirty.binary_search(&(packet as u32)).is_ok() {
                watch.remaining -= 1;
            }
        }
    }

    #[inline]
    fn after_event(
        &mut self,
        key: u128,
        events_done: u64,
        texec: u64,
        delivered: usize,
        scratch: &ScheduleScratch,
    ) -> bool {
        self.events_seen = events_done;
        if let Some(tape) = &mut self.tape {
            if tape.boundary(events_done) {
                let mut snap = tape.pool.pop().unwrap_or_default();
                scratch.capture_into(tape.n_links, tape.n_packets, &mut snap);
                snap.last_key = key;
                snap.events_done = events_done;
                snap.texec = texec;
                snap.delivered = delivered;
                tape.snaps.push(snap);
            }
        }
        if let Some(watch) = &mut self.converge {
            let target = events_done as i64 + watch.shift;
            while watch.cursor < watch.base_snaps.len()
                && (watch.base_snaps[watch.cursor].events_done as i64) < target
            {
                watch.cursor += 1;
            }
            if watch.remaining == 0
                && watch.cursor < watch.base_snaps.len()
                && watch.base_snaps[watch.cursor].events_done as i64 == target
            {
                let snap = &watch.base_snaps[watch.cursor];
                if let Some(tail) = snap.tail_texec {
                    if scratch.converged_with(watch.n_packets, snap, watch.heap_buf) {
                        // Everything from here on replays the baseline
                        // verbatim; stop re-scheduling.
                        watch.converged = Some((events_done, tail));
                        return false;
                    }
                }
                // A failed comparison at this checkpoint would repeat
                // every event until the counter passes it; move on.
                watch.cursor += 1;
            }
        }
        true
    }
}

/// Aim for about this many checkpoints per baseline run; the stride is
/// derived from the (deterministic) total event count.
const TARGET_CHECKPOINTS: u64 = 12;
/// Never checkpoint more often than this — tiny instances re-run faster
/// than they snapshot.
const MIN_STRIDE: u64 = 16;
/// Refresh the tape when promotions have thinned it below this many
/// checkpoints…
const MIN_TAPE_LEN: usize = 6;
/// …but at most once per this many swap queries, bounding the re-taping
/// overhead to ≈3 % even when accepted moves (which truncate the tape at
/// their restore point) come frequently.
const RETAPE_INTERVAL: u64 = 32;
/// Incremental moves observed before the auto-fallback heuristic may
/// engage — the realized-skip EWMA needs samples to mean anything.
const FALLBACK_WARMUP: u64 = 16;
/// Realized-skip EWMA below which a swap is predicted to replay
/// (almost) the whole timeline: the restore and convergence-watch
/// overhead then outweighs the skipped prefix, and a plain full
/// evaluation is faster.
const FALLBACK_SKIP_THRESHOLD: f64 = 0.05;
/// In fallback mode, every this-many swap queries still run the
/// incremental path (re-taping first if needed) so the EWMA tracks the
/// workload; bounds the probing overhead to ≈2 % of full-evaluation
/// cost while keeping mode switches possible in both directions.
const FALLBACK_PROBE_INTERVAL: u64 = 128;
/// EWMA weight of the newest incremental move's realized skip.
const SKIP_EWMA_ALPHA: f64 = 1.0 / 16.0;

/// Incremental swap evaluation of the CDCM schedule cost. See the module
/// docs for the algorithm and its invariants.
///
/// The engine owns private scratch and checkpoint state; cloning shares
/// the (immutable) route cache but resets all baseline state, so clones
/// can evaluate concurrently on different threads.
#[derive(Debug)]
pub struct IncrementalScheduler<'a> {
    cdcg: &'a Cdcg,
    params: SimParams,
    routes: Arc<RouteProvider>,
    scratch: ScheduleScratch,
    /// Per core: packets whose source or destination is that core.
    touching: Vec<Vec<u32>>,
    baseline: RunRecord,
    /// Checkpoints of the baseline run, in `events_done` order; index 0
    /// is always the initial state (zero events processed).
    checkpoints: Vec<EngineSnapshot>,
    candidate: RunRecord,
    /// Baseline checkpoint index the candidate run restored from.
    cand_restore_idx: usize,
    /// Moves since the checkpoint tape was last recorded in full;
    /// promotions thin the tape (candidate runs are not taped), so it is
    /// refreshed at a bounded rate once it gets too sparse.
    moves_since_retape: u64,
    stride: u64,
    /// Events a full evaluation of the baseline processes (deterministic
    /// for a mapping; the denominator of the skip fraction).
    baseline_total_events: u64,
    /// Length of the scratch walk arena that live (baseline) spans
    /// reference; candidate walks appended past it are discarded when
    /// the candidate is rejected, so rejection streaks cannot grow the
    /// arena without bound. Grows on promotion, resets on re-baseline.
    walks_base: usize,
    /// Recycled snapshots (buffer reuse across moves).
    pool: Vec<EngineSnapshot>,
    dirty: Vec<u32>,
    /// Baseline delivery log `(event index, delivery)` for tail maxima.
    deliveries: Vec<(u64, u64)>,
    /// Scratch for sorted-heap comparison in the convergence check.
    heap_buf: Vec<u128>,
    /// Scratch for splicing checkpoint tails during promotion.
    tail_buf: Vec<EngineSnapshot>,
    /// Set once any swap query arrives: from then on re-baselines are
    /// taped so the delta path stays warm.
    sticky_tape: bool,
    /// EWMA of the realized skip fraction of incremental moves; drives
    /// the auto-fallback to the full path (see the module docs).
    skip_ewma: f64,
    /// Consecutive queries served by the fallback full path since the
    /// last incremental probe.
    fallback_queries: u64,
    /// Per-engine lock-free walk memo (on by default for the on-demand
    /// and fault-aware tiers, like [`crate::CostEvaluator`]'s). Dirty
    /// packets of a candidate and full re-baselines resolve through it,
    /// skipping the provider's shared-cache lock on repeat pairs. Spans
    /// still land in the scratch walk arena (`resolve_into`), so the
    /// `walks_base` truncation lifecycle is untouched; eviction happens
    /// only at re-baselines (inside `init_run`), never mid-move.
    memo: Option<WalkMemo>,
    stats: DeltaStats,
}

impl<'a> IncrementalScheduler<'a> {
    /// Builds an engine for `cdcg` on `mesh` under XY routing, with an
    /// automatically sized route provider (dense for small meshes,
    /// on-demand beyond).
    pub fn new(cdcg: &'a Cdcg, mesh: &Mesh, params: &SimParams) -> Self {
        Self::with_provider(
            cdcg,
            params,
            Arc::new(RouteProvider::auto(mesh, RoutingKind::Xy)),
        )
    }

    /// Builds an engine over an existing shared dense route cache (any
    /// routing algorithm — the evaluator is routing-generic).
    pub fn with_cache(cdcg: &'a Cdcg, params: &SimParams, cache: Arc<RouteCache>) -> Self {
        Self::with_provider(cdcg, params, Arc::new(RouteProvider::from_cache(cache)))
    }

    /// Builds an engine over an existing shared route provider (any
    /// tier; results are bit-identical across tiers).
    pub fn with_provider(cdcg: &'a Cdcg, params: &SimParams, routes: Arc<RouteProvider>) -> Self {
        let mut touching = vec![Vec::new(); cdcg.core_count()];
        for id in cdcg.packet_ids() {
            let p = cdcg.packet(id);
            touching[p.src.index()].push(id.index() as u32);
            if p.dst != p.src {
                touching[p.dst.index()].push(id.index() as u32);
            }
        }
        let memo = routes.local_memo_default().then(WalkMemo::new);
        Self {
            cdcg,
            params: *params,
            routes,
            scratch: ScheduleScratch::new(),
            touching,
            baseline: RunRecord::default(),
            checkpoints: Vec::new(),
            candidate: RunRecord::default(),
            cand_restore_idx: 0,
            moves_since_retape: 0,
            stride: MIN_STRIDE,
            baseline_total_events: 0,
            walks_base: 0,
            pool: Vec::new(),
            dirty: Vec::new(),
            deliveries: Vec::new(),
            heap_buf: Vec::new(),
            tail_buf: Vec::new(),
            sticky_tape: false,
            skip_ewma: 1.0,
            fallback_queries: 0,
            memo,
            stats: DeltaStats::default(),
        }
    }

    /// The application being evaluated.
    pub fn cdcg(&self) -> &'a Cdcg {
        self.cdcg
    }

    /// The wormhole parameter set.
    pub fn params(&self) -> &SimParams {
        &self.params
    }

    /// The shared route provider.
    pub fn provider(&self) -> &Arc<RouteProvider> {
        &self.routes
    }

    /// Counters for the queries served so far.
    pub fn stats(&self) -> DeltaStats {
        self.stats
    }

    /// Enables or disables the per-engine walk memo (no-op under a dense
    /// provider, whose shared flat array the memo cannot replay).
    /// Results are bit-identical either way.
    pub fn set_walk_memo(&mut self, enabled: bool) {
        self.memo = (enabled && self.routes.memo_compatible())
            .then(|| self.memo.take().unwrap_or_default());
    }

    /// Cumulative hit/miss/eviction counters of the walk memo, or `None`
    /// when it is disabled.
    pub fn walk_memo_stats(&self) -> Option<noc_model::WalkMemoStats> {
        self.memo.as_ref().map(|m| m.stats())
    }

    /// Whether swapping tiles `a` and `b` of `mapping` changes any
    /// packet's route — `false` exactly when the dirty set is empty
    /// (both tiles empty, or the moved cores exchange no packets), in
    /// which case the schedule *and* the per-packet hop counts are
    /// provably unchanged.
    pub fn swap_changes_routes(&self, mapping: &Mapping, a: TileId, b: TileId) -> bool {
        a != b
            && [a, b].into_iter().any(|tile| {
                mapping
                    .core_on(tile)
                    .is_some_and(|core| !self.touching[core.index()].is_empty())
            })
    }

    fn baseline_matches(&self, mapping: &Mapping) -> bool {
        self.baseline.mapping.as_ref() == Some(mapping)
    }

    fn candidate_matches(&self, mapping: &Mapping) -> bool {
        self.candidate.mapping.as_ref() == Some(mapping)
    }

    /// `texec` of `mapping` in cycles — bit-exact with
    /// [`schedule_cost`](crate::schedule_cost). Served from cache when
    /// `mapping` is the current baseline or the pending candidate
    /// (promoting the latter); otherwise runs a full evaluation and makes
    /// `mapping` the new baseline.
    ///
    /// # Errors
    ///
    /// Same as [`schedule_cost`](crate::schedule_cost).
    pub fn texec_for(&mut self, mapping: &Mapping) -> Result<u64, SimError> {
        if self.baseline_matches(mapping) {
            self.stats.cache_hits += 1;
            return Ok(self.baseline.texec);
        }
        if self.candidate_matches(mapping) {
            self.promote();
            self.stats.cache_hits += 1;
            return Ok(self.baseline.texec);
        }
        self.rebaseline(mapping, self.sticky_tape)
    }

    /// `texec` of `mapping` with tiles `a` and `b` swapped, evaluated
    /// incrementally against the baseline — bit-exact with running
    /// [`schedule_cost`](crate::schedule_cost) on the swapped mapping.
    ///
    /// The result is retained as the *pending candidate*: if the next
    /// query is for the swapped mapping (the caller accepted the move),
    /// it is served by promotion instead of a full re-evaluation.
    ///
    /// # Errors
    ///
    /// Same as [`schedule_cost`](crate::schedule_cost) for the baseline
    /// evaluation of `mapping`.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` lies outside the mesh (as
    /// [`Mapping::swap_tiles`] would).
    pub fn swap_texec(&mut self, mapping: &Mapping, a: TileId, b: TileId) -> Result<u64, SimError> {
        if a == b {
            return self.texec_for(mapping);
        }
        if self.use_full_path() {
            return self.swap_texec_full(mapping, a, b);
        }
        self.align_baseline(mapping)?;
        let n_packets = self.cdcg.packet_count();
        let base = self.baseline.mapping.as_ref().expect("baseline aligned"); // noc-verify: allow(PANIC01) — align_baseline() on the line above either set the mapping or returned an error

        // Dirty set: packets whose source or destination core moves.
        self.dirty.clear();
        for tile in [a, b] {
            if let Some(core) = base.core_on(tile) {
                self.dirty.extend_from_slice(&self.touching[core.index()]);
            }
        }
        self.dirty.sort_unstable();
        self.dirty.dedup();

        // Materialize the candidate mapping (reusing its allocation).
        match &mut self.candidate.mapping {
            Some(m) => m.clone_from(base),
            slot @ None => *slot = Some(base.clone()),
        }
        let cand = self.candidate.mapping.as_mut().expect("just set"); // noc-verify: allow(PANIC01) — the match directly above guarantees the slot is Some
        cand.swap_tiles(a, b);

        if self.dirty.is_empty() {
            // No route changes: the schedule provably cannot move.
            self.stats.route_unchanged_moves += 1;
            self.candidate.texec = self.baseline.texec;
            self.candidate.inject.clone_from(&self.baseline.inject);
            self.candidate.spans.clone_from(&self.baseline.spans);
            self.candidate.taped = true;
            self.candidate.converged_at = None;
            self.candidate.identical = true;
            self.candidate.total_events = self.baseline_total_events;
            self.cand_restore_idx = self.checkpoints.len() - 1;
            return Ok(self.baseline.texec);
        }

        // Divergence frontier: earliest injection of a dirty packet.
        let t_key = self
            .dirty
            .iter()
            .map(|&p| pack(self.baseline.inject[p as usize], p as usize, INJECT, 0))
            .min()
            .expect("dirty set non-empty"); // noc-verify: allow(PANIC01) — the dirty.is_empty() early return above makes min() over the set infallible

        // Latest checkpoint strictly before the frontier; index 0 (the
        // initial state) always qualifies.
        let idx = self
            .checkpoints
            .partition_point(|s| s.events_done == 0 || s.last_key < t_key)
            - 1;

        // Candidate spans: baseline spans with the dirty packets patched.
        // Buffering providers append the rerouted walks to the scratch's
        // walk arena; a previously rejected candidate's appends are dead
        // by now (`align_baseline` already promoted a matching one), so
        // drop them first — baseline spans all lie below `walks_base`.
        self.scratch.walks.truncate(self.walks_base);
        self.candidate.spans.clone_from(&self.baseline.spans);
        {
            let cand = self.candidate.mapping.as_ref().expect("just set"); // noc-verify: allow(PANIC01) — materialized unconditionally earlier in this function
            for &p in &self.dirty {
                let pkt = self.cdcg.packet(PacketId::new(p as usize));
                let (src, dst) = (cand.tile_of(pkt.src), cand.tile_of(pkt.dst));
                self.routes.validate_pair(src, dst)?;
                let span = match self.memo.as_mut() {
                    Some(m) => {
                        m.resolve_into(self.routes.as_ref(), src, dst, &mut self.scratch.walks)
                    }
                    None => self.routes.walk_span(src, dst, &mut self.scratch.walks),
                };
                self.candidate.spans[p as usize] = span;
            }
        }
        let cand_total_events = Self::total_events(&self.candidate.spans);
        self.candidate.total_events = cand_total_events;

        let (texec0, delivered0, events_done0) = {
            let snap = &self.checkpoints[idx];
            self.scratch.restore_from(snap);
            (snap.texec, snap.delivered, snap.events_done)
        };
        self.scratch.spans_mut()[..n_packets].copy_from_slice(&self.candidate.spans);

        self.candidate.inject.clone_from(&self.baseline.inject);
        let mut observer = TapeObserver {
            inject: &mut self.candidate.inject,
            // Candidate runs are not taped: most are rejected, and a
            // promoted candidate inherits the still-valid checkpoint
            // prefix (plus the post-convergence tail). The thinned tape
            // is refreshed at a bounded rate by `align_baseline`.
            tape: None,
            deliveries: None,
            converge: Some(ConvergeWatch {
                dirty: &self.dirty,
                remaining: self.dirty.len(),
                base_snaps: &self.checkpoints,
                cursor: 0,
                shift: self.baseline_total_events as i64 - cand_total_events as i64,
                heap_buf: &mut self.heap_buf,
                n_packets,
                converged: None,
            }),
            events_seen: events_done0,
        };
        let walks = std::mem::take(&mut self.scratch.walks);
        let (texec_run, delivered, events_done) = run_loop(
            self.cdcg,
            &self.params,
            self.routes.flat(&walks),
            &mut self.scratch,
            texec0,
            delivered0,
            events_done0,
            &mut observer,
        );
        self.scratch.walks = walks;
        let converged = observer.converge.as_ref().and_then(|w| w.converged);
        let texec = match converged {
            Some((_, tail)) => {
                // The rest of the timeline replays the baseline verbatim;
                // its deliveries are the baseline's recorded tail.
                self.stats.tail_converged_moves += 1;
                texec_run.max(tail)
            }
            None => {
                debug_assert_eq!(delivered, n_packets, "suffix must deliver all packets");
                texec_run
            }
        };

        self.stats.incremental_moves += 1;
        if idx == 0 {
            self.stats.full_restores += 1;
        }
        self.stats.events_replayed += events_done - events_done0;
        self.stats.events_total += cand_total_events;
        let skip =
            (1.0 - (events_done - events_done0) as f64 / cand_total_events.max(1) as f64).max(0.0);
        self.skip_ewma = if self.stats.incremental_moves == 1 {
            skip
        } else {
            (1.0 - SKIP_EWMA_ALPHA) * self.skip_ewma + SKIP_EWMA_ALPHA * skip
        };

        self.candidate.texec = texec;
        self.candidate.taped = true;
        self.candidate.converged_at = converged.map(|(k, _)| k);
        self.candidate.identical = false;
        self.cand_restore_idx = idx;
        Ok(texec)
    }

    /// Whether the next swap query should bypass the incremental
    /// machinery: the realized-skip EWMA is warmed up and predicts that
    /// a checkpoint restore would replay (almost) everything anyway.
    /// Every [`FALLBACK_PROBE_INTERVAL`]-th query declines, so the EWMA
    /// keeps tracking the workload.
    fn use_full_path(&mut self) -> bool {
        if self.stats.incremental_moves < FALLBACK_WARMUP
            || self.skip_ewma >= FALLBACK_SKIP_THRESHOLD
        {
            self.fallback_queries = 0;
            return false;
        }
        self.fallback_queries += 1;
        if self.fallback_queries >= FALLBACK_PROBE_INTERVAL {
            self.fallback_queries = 0;
            return false;
        }
        true
    }

    /// The auto-fallback path: serves a swap by a plain untaped full
    /// evaluation of the swapped mapping — bit-exact with the
    /// incremental path (both are the `schedule_cost` arithmetic), but
    /// without restore, taping or convergence-watch overhead. Keeps the
    /// candidate record coherent so an accepted move still promotes in
    /// `O(1)`.
    fn swap_texec_full(
        &mut self,
        mapping: &Mapping,
        a: TileId,
        b: TileId,
    ) -> Result<u64, SimError> {
        if self.candidate_matches(mapping) {
            self.promote();
        }
        if self.baseline_matches(mapping) && !self.swap_changes_routes(mapping, a, b) {
            // The no-route-change shortcut stays `O(1)` in fallback
            // mode; the schedule provably cannot move.
            self.stats.route_unchanged_moves += 1;
            match &mut self.candidate.mapping {
                Some(m) => m.clone_from(mapping),
                slot @ None => *slot = Some(mapping.clone()),
            }
            let cand = self.candidate.mapping.as_mut().expect("just set"); // noc-verify: allow(PANIC01) — the match directly above guarantees the slot is Some
            cand.swap_tiles(a, b);
            self.candidate.texec = self.baseline.texec;
            self.candidate.inject.clone_from(&self.baseline.inject);
            self.candidate.spans.clone_from(&self.baseline.spans);
            self.candidate.taped = self.baseline.taped;
            self.candidate.converged_at = None;
            self.candidate.identical = true;
            self.candidate.total_events = self.baseline_total_events;
            self.cand_restore_idx = self.checkpoints.len().saturating_sub(1);
            return Ok(self.baseline.texec);
        }

        // The full run below re-derives the scratch walk arena from
        // scratch, so any recorded tape (whose restored spans index the
        // old arena) is retired first; the next incremental probe
        // re-tapes through `align_baseline`.
        self.pool.append(&mut self.checkpoints);
        self.baseline.taped = false;

        let mut cand = match self.candidate.mapping.take() {
            Some(mut m) => {
                m.clone_from(mapping);
                m
            }
            None => mapping.clone(),
        };
        cand.swap_tiles(a, b);
        init_run(
            self.cdcg,
            self.routes.mesh(),
            &cand,
            &self.params,
            self.routes.as_ref(),
            self.memo.as_mut(),
            &mut self.scratch,
        )?;
        self.candidate.mapping = Some(cand);
        let n_packets = self.cdcg.packet_count();
        self.candidate.spans.clear();
        self.candidate
            .spans
            .extend_from_slice(&self.scratch.spans()[..n_packets]);
        self.candidate.total_events = Self::total_events(&self.candidate.spans);
        self.walks_base = self.scratch.walks.len();

        let walks = std::mem::take(&mut self.scratch.walks);
        let (texec, delivered, _) = run_loop(
            self.cdcg,
            &self.params,
            self.routes.flat(&walks),
            &mut self.scratch,
            0,
            0,
            0,
            &mut NoopObserver,
        );
        self.scratch.walks = walks;
        debug_assert_eq!(delivered, n_packets, "run must deliver all packets");

        // `candidate.inject` is stale (this path records no injection
        // times); that is safe because injections are only read on the
        // incremental path, which always re-tapes (and re-records them)
        // behind the untaped baseline this promotion produces.
        self.candidate.texec = texec;
        self.candidate.taped = false;
        self.candidate.converged_at = None;
        self.candidate.identical = false;
        self.cand_restore_idx = 0;
        self.stats.full_path_moves += 1;
        Ok(texec)
    }

    /// Upper bound on the walk arena before it is compacted by a
    /// re-baseline: a few times the live baseline footprint. Promotions
    /// leave the old baseline's walks as garbage in the arena; without
    /// this cap an accept-heavy run whose promotions never thin the
    /// checkpoint tape would grow the arena without bound.
    fn arena_budget(&self) -> usize {
        let live = self.baseline_total_events as usize / 3 + 2 * self.cdcg.packet_count();
        4 * live + 1024
    }

    /// Ensures the baseline is `mapping` with checkpoints recorded,
    /// promoting the pending candidate when it matches; refreshes a
    /// promotion-thinned tape (or a garbage-bloated walk arena) at a
    /// bounded rate.
    fn align_baseline(&mut self, mapping: &Mapping) -> Result<(), SimError> {
        self.sticky_tape = true;
        if self.candidate_matches(mapping) {
            self.promote();
        }
        if self.baseline_matches(mapping) && self.baseline.taped {
            self.moves_since_retape += 1;
            let healthy_tape =
                self.checkpoints.len() >= MIN_TAPE_LEN || self.moves_since_retape < RETAPE_INTERVAL;
            if healthy_tape && self.scratch.walks.len() <= self.arena_budget() {
                return Ok(());
            }
            self.stats.tape_refreshes += 1;
        }
        self.rebaseline(mapping, true)?;
        self.moves_since_retape = 0;
        Ok(())
    }

    /// Promotes the pending candidate to baseline. Candidate runs are
    /// not taped, so the new baseline keeps only the checkpoint prefix
    /// up to the candidate's restore point (shared state) and — when the
    /// run tail-converged — the old baseline's checkpoints past the
    /// convergence point (shared state again, at shifted event counts).
    /// The perturbed window in between is *uncovered* until the
    /// rate-limited tape refresh in `align_baseline` re-records it.
    fn promote(&mut self) {
        debug_assert!(self.candidate.mapping.is_some(), "no candidate to promote");
        std::mem::swap(&mut self.baseline.mapping, &mut self.candidate.mapping);
        std::mem::swap(&mut self.baseline.inject, &mut self.candidate.inject);
        std::mem::swap(&mut self.baseline.spans, &mut self.candidate.spans);
        self.baseline.texec = self.candidate.texec;
        self.baseline.taped = self.candidate.taped;
        self.candidate.mapping = None;
        // The candidate's appended walks are baseline-referenced now.
        self.walks_base = self.scratch.walks.len();
        if self.candidate.identical {
            // Same schedule, same checkpoints, same tail maxima.
            return;
        }
        // Checkpoints past the convergence point are valid for the new
        // baseline (identical states); the ones inside the perturbed
        // window are not. Their event counters are in the *old* run's
        // counting and shift by the event-count difference of the
        // rerouted packets.
        let shift = self.baseline_total_events as i64 - self.candidate.total_events as i64;
        let keep_from = match self.candidate.converged_at {
            Some(k) => self
                .checkpoints
                .partition_point(|s| (s.events_done as i64) <= k as i64 + shift),
            None => self.checkpoints.len(),
        };
        self.tail_buf.clear();
        self.tail_buf.extend(self.checkpoints.drain(keep_from..));
        // After a fallback full run the tape is empty and the restore
        // index meaningless; the clamp keeps the drain in bounds.
        let keep_prefix = (self.cand_restore_idx + 1).min(self.checkpoints.len());
        self.pool.extend(self.checkpoints.drain(keep_prefix..));
        // Tail maxima recorded for the old baseline cover the perturbed
        // window for prefix snapshots — invalidate them. (Kept tail
        // snapshots keep theirs: deliveries after the convergence point
        // are shared.)
        for snap in self.checkpoints.iter_mut() {
            snap.tail_texec = None;
        }
        for snap in &mut self.tail_buf {
            snap.events_done = (snap.events_done as i64 - shift) as u64;
        }
        self.checkpoints.append(&mut self.tail_buf);
        // Route changes alter per-packet event counts.
        self.baseline_total_events = self.candidate.total_events;
    }

    /// Spacing of the dense early checkpoint grid for a given stride.
    fn early_stride(stride: u64) -> u64 {
        (stride / 16).max(MIN_STRIDE)
    }

    /// Deterministic event count of a full run over these spans: 3 events
    /// per router crossed (inject + per-hop entry/decide, link requests).
    fn total_events(spans: &[(u32, u32)]) -> u64 {
        spans
            .iter()
            .map(|&(_, len)| 3 * (len as u64).saturating_sub(1))
            .sum()
    }

    /// Full evaluation of `mapping`, recording it (and, when `tape` is
    /// set, its checkpoints) as the new baseline.
    fn rebaseline(&mut self, mapping: &Mapping, tape: bool) -> Result<u64, SimError> {
        self.baseline.mapping = None;
        self.candidate.mapping = None;
        self.pool.append(&mut self.checkpoints);

        init_run(
            self.cdcg,
            self.routes.mesh(),
            mapping,
            &self.params,
            self.routes.as_ref(),
            self.memo.as_mut(),
            &mut self.scratch,
        )?;
        self.walks_base = self.scratch.walks.len();

        let n_packets = self.cdcg.packet_count();
        let n_links = self.routes.dense_link_count();
        self.baseline.spans.clear();
        self.baseline
            .spans
            .extend_from_slice(&self.scratch.spans()[..n_packets]);
        self.baseline_total_events = Self::total_events(&self.baseline.spans);
        self.stride = (self.baseline_total_events / TARGET_CHECKPOINTS).max(MIN_STRIDE);

        self.baseline.inject.clear();
        self.baseline.inject.resize(n_packets, 0);
        self.deliveries.clear();
        if tape {
            let mut snap = self.pool.pop().unwrap_or_default();
            self.scratch.capture_into(n_links, n_packets, &mut snap);
            snap.last_key = 0;
            snap.events_done = 0;
            snap.texec = 0;
            snap.delivered = 0;
            self.checkpoints.push(snap);
        }
        let mut observer = TapeObserver {
            inject: &mut self.baseline.inject,
            tape: if tape {
                Some(TapeState {
                    snaps: &mut self.checkpoints,
                    pool: &mut self.pool,
                    stride: self.stride,
                    early: Self::early_stride(self.stride),
                    n_links,
                    n_packets,
                })
            } else {
                None
            },
            deliveries: if tape {
                Some(&mut self.deliveries)
            } else {
                None
            },
            converge: None,
            events_seen: 0,
        };
        let walks = std::mem::take(&mut self.scratch.walks);
        let (texec, delivered, _) = run_loop(
            self.cdcg,
            &self.params,
            self.routes.flat(&walks),
            &mut self.scratch,
            0,
            0,
            0,
            &mut observer,
        );
        self.scratch.walks = walks;
        debug_assert_eq!(delivered, n_packets, "run must deliver all packets");

        // Tail maxima: for each checkpoint, the largest delivery time of
        // any event after it (the value a tail-converged candidate run
        // completes with). `deliveries` is in increasing event order.
        let mut di = self.deliveries.len();
        let mut tail_max = 0u64;
        for snap in self.checkpoints.iter_mut().rev() {
            while di > 0 && self.deliveries[di - 1].0 > snap.events_done {
                di -= 1;
                tail_max = tail_max.max(self.deliveries[di].1);
            }
            snap.tail_texec = Some(tail_max);
        }

        self.baseline.mapping = Some(mapping.clone());
        self.baseline.texec = texec;
        self.baseline.taped = tape;
        self.stats.full_rebaselines += 1;
        Ok(texec)
    }
}

impl Clone for IncrementalScheduler<'_> {
    /// Clones share the route provider but start with fresh scratch,
    /// baseline and statistics.
    fn clone(&self) -> Self {
        Self::with_provider(self.cdcg, &self.params, Arc::clone(&self.routes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::RouteProvider;
    use noc_model::{Mesh, TileId};

    fn figure1_cdcg() -> Cdcg {
        let mut g = Cdcg::new();
        let a = g.add_core("A");
        let b = g.add_core("B");
        let e = g.add_core("E");
        let f = g.add_core("F");
        let pab1 = g.add_packet(a, b, 6, 15).unwrap();
        let pbf1 = g.add_packet(b, f, 10, 40).unwrap();
        let pea1 = g.add_packet(e, a, 10, 20).unwrap();
        let pea2 = g.add_packet(e, a, 20, 15).unwrap();
        let paf1 = g.add_packet(a, f, 6, 15).unwrap();
        let pfb1 = g.add_packet(f, b, 6, 15).unwrap();
        g.add_dependence(pea1, pea2).unwrap();
        g.add_dependence(pab1, paf1).unwrap();
        g.add_dependence(pea1, paf1).unwrap();
        g.add_dependence(pbf1, pfb1).unwrap();
        g.add_dependence(paf1, pfb1).unwrap();
        g
    }

    fn reference(
        cdcg: &Cdcg,
        mesh: &Mesh,
        mapping: &Mapping,
        params: &SimParams,
        routes: &RouteProvider,
    ) -> u64 {
        let mut scratch = ScheduleScratch::new();
        crate::cost::schedule_cost_with(cdcg, mesh, mapping, params, routes, &mut scratch).unwrap()
    }

    #[test]
    fn swap_matches_full_on_every_pair_of_the_paper_example() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let params = SimParams::paper_example();
        let mut engine = IncrementalScheduler::new(&cdcg, &mesh, &params);
        let routes = Arc::clone(engine.provider());
        let base = Mapping::from_tiles(&mesh, [1, 0, 3, 2].map(TileId::new)).unwrap();
        for a in 0..4 {
            for b in 0..4 {
                let (a, b) = (TileId::new(a), TileId::new(b));
                let got = engine.swap_texec(&base, a, b).unwrap();
                let mut swapped = base.clone();
                swapped.swap_tiles(a, b);
                let want = reference(&cdcg, &mesh, &swapped, &params, &routes);
                assert_eq!(got, want, "swap {a}-{b}");
            }
        }
        assert!(engine.stats().incremental_moves > 0);
    }

    #[test]
    fn accepted_swaps_promote_instead_of_rebaselining() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(3, 3).unwrap();
        let params = SimParams::paper_example();
        let mut engine = IncrementalScheduler::new(&cdcg, &mesh, &params);
        let routes = Arc::clone(engine.provider());
        let mut current = Mapping::from_tiles(&mesh, [0, 1, 3, 4].map(TileId::new)).unwrap();
        // Accept a chain of swaps; each acceptance must be served without
        // a fresh full re-baseline.
        let swaps = [(0, 4), (1, 8), (3, 2), (4, 6), (0, 1)];
        let _ = engine.swap_texec(&current, TileId::new(0), TileId::new(4));
        let rebaselines_after_first = engine.stats().full_rebaselines;
        for (i, &(a, b)) in swaps.iter().enumerate() {
            let (a, b) = (TileId::new(a), TileId::new(b));
            let got = engine.swap_texec(&current, a, b).unwrap();
            current.swap_tiles(a, b);
            let want = reference(&cdcg, &mesh, &current, &params, &routes);
            assert_eq!(got, want, "accepted swap #{i}");
            assert_eq!(engine.texec_for(&current).unwrap(), want);
        }
        assert_eq!(
            engine.stats().full_rebaselines,
            rebaselines_after_first,
            "acceptances must promote, not re-run the baseline"
        );
    }

    #[test]
    fn empty_tile_swaps_with_no_traffic_are_constant_time() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(3, 3).unwrap();
        let params = SimParams::paper_example();
        let mut engine = IncrementalScheduler::new(&cdcg, &mesh, &params);
        let base = Mapping::from_tiles(&mesh, [0, 1, 2, 3].map(TileId::new)).unwrap();
        let t = engine.texec_for(&base).unwrap();
        // Tiles 4..9 are empty: swapping two of them changes no route.
        let got = engine
            .swap_texec(&base, TileId::new(5), TileId::new(7))
            .unwrap();
        assert_eq!(got, t);
        assert_eq!(engine.stats().route_unchanged_moves, 1);
        assert_eq!(engine.stats().incremental_moves, 0);
    }

    #[test]
    fn texec_for_caches_the_baseline() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let params = SimParams::paper_example();
        let mut engine = IncrementalScheduler::new(&cdcg, &mesh, &params);
        let m = Mapping::from_tiles(&mesh, [1, 0, 3, 2].map(TileId::new)).unwrap();
        assert_eq!(engine.texec_for(&m).unwrap(), 100);
        assert_eq!(engine.texec_for(&m).unwrap(), 100);
        assert_eq!(engine.stats().full_rebaselines, 1);
        assert_eq!(engine.stats().cache_hits, 1);
    }

    #[test]
    fn walk_arena_stays_bounded_on_buffering_providers() {
        // Buffering providers append rerouted walks to the scratch
        // arena per swap query; rejected candidates must be truncated
        // and accept-heavy garbage compacted, or long SA runs grow the
        // arena without bound (regression test).
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(4, 4).unwrap();
        let params = SimParams::paper_example();
        let provider = Arc::new(RouteProvider::implicit(&mesh, RoutingKind::Xy));
        let mut engine = IncrementalScheduler::with_provider(&cdcg, &params, Arc::clone(&provider));
        let mut current = Mapping::from_tiles(&mesh, [1, 0, 3, 2].map(TileId::new)).unwrap();
        for i in 0..300usize {
            let a = TileId::new(i % 16);
            let b = TileId::new((i * 7 + 3) % 16);
            let got = engine.swap_texec(&current, a, b).unwrap();
            let mut swapped = current.clone();
            swapped.swap_tiles(a, b);
            assert_eq!(got, reference(&cdcg, &mesh, &swapped, &params, &provider));
            if i % 5 == 0 {
                // Accept some moves: exercises promotion bookkeeping too.
                current = swapped;
            }
            assert!(
                engine.scratch.walks.len() <= engine.arena_budget(),
                "walk arena grew past its budget after move {i}: {} > {}",
                engine.scratch.walks.len(),
                engine.arena_budget()
            );
        }
    }

    #[test]
    fn low_skip_workloads_fall_back_to_the_full_path() {
        // On this tiny instance every swap's divergence frontier sits
        // before the first checkpoint, so incremental moves replay the
        // whole timeline (realized skip ≈ 0) while still paying for
        // restores and taping. The engine must notice and stop using
        // the incremental machinery — the no-silent-slowdown pin —
        // while staying bit-exact on every single move.
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let params = SimParams::paper_example();
        let mut engine = IncrementalScheduler::new(&cdcg, &mesh, &params);
        let routes = Arc::clone(engine.provider());
        let base = Mapping::from_tiles(&mesh, [1, 0, 3, 2].map(TileId::new)).unwrap();
        let moves = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        for i in 0..120usize {
            let (a, b) = moves[i % moves.len()];
            let (a, b) = (TileId::new(a), TileId::new(b));
            let got = engine.swap_texec(&base, a, b).unwrap();
            let mut swapped = base.clone();
            swapped.swap_tiles(a, b);
            let want = reference(&cdcg, &mesh, &swapped, &params, &routes);
            assert_eq!(got, want, "move #{i} ({a}-{b})");
        }
        let stats = engine.stats();
        assert!(
            stats.full_path_moves > 0,
            "zero-skip workload never fell back: {stats:?}"
        );
        assert!(
            stats.full_path_moves > stats.incremental_moves,
            "fallback engaged but the incremental path still dominates: {stats:?}"
        );
        // The engine must stay fully usable on the incremental side
        // afterwards (probe moves re-tape through `align_baseline`).
        let t = engine.texec_for(&base).unwrap();
        assert_eq!(t, reference(&cdcg, &mesh, &base, &params, &routes));
    }

    #[test]
    fn high_skip_workloads_keep_the_incremental_path() {
        // A long chain whose last two cores are the only ones swapped:
        // the dirty injections sit at the end of the timeline, so the
        // prefix skip is large and the fallback must never engage.
        let mut g = Cdcg::new();
        let cores: Vec<_> = (0..8).map(|i| g.add_core(format!("c{i}"))).collect();
        let mut prev = None;
        for w in cores.windows(2) {
            let p = g.add_packet(w[0], w[1], 40, 64).unwrap();
            if let Some(prev) = prev {
                g.add_dependence(prev, p).unwrap();
            }
            prev = Some(p);
        }
        let mesh = Mesh::new(3, 3).unwrap();
        let params = SimParams::paper_example();
        let mut engine = IncrementalScheduler::new(&g, &mesh, &params);
        let routes = Arc::clone(engine.provider());
        let base = Mapping::identity(&mesh, 8).unwrap();
        // The chain tail lives on tiles 6/7/8; swapping there keeps the
        // frontier late.
        let moves = [(6, 8), (7, 8), (6, 7)];
        for i in 0..80usize {
            let (a, b) = moves[i % moves.len()];
            let (a, b) = (TileId::new(a), TileId::new(b));
            let got = engine.swap_texec(&base, a, b).unwrap();
            let mut swapped = base.clone();
            swapped.swap_tiles(a, b);
            assert_eq!(
                got,
                reference(&g, &mesh, &swapped, &params, &routes),
                "move #{i}"
            );
        }
        let stats = engine.stats();
        assert_eq!(
            stats.full_path_moves, 0,
            "high-skip workload must stay incremental: {stats:?}"
        );
        assert!(stats.incremental_moves > 0);
    }

    #[test]
    fn rejects_mismatched_mappings_like_schedule_cost() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let params = SimParams::paper_example();
        let mut engine = IncrementalScheduler::new(&cdcg, &mesh, &params);
        let bad = Mapping::identity(&mesh, 3).unwrap();
        assert!(matches!(
            engine.texec_for(&bad),
            Err(SimError::CoreCountMismatch { .. })
        ));
        // The engine must stay usable after an error.
        let m = Mapping::from_tiles(&mesh, [3, 0, 1, 2].map(TileId::new)).unwrap();
        assert_eq!(engine.texec_for(&m).unwrap(), 90);
    }
}
