//! Calendar event queue of the cost engine.
//!
//! [`EventQueue`] is a drop-in replacement for the
//! `BinaryHeap<Reverse<u128>>` the cost engine's event loop used to run
//! on, keyed by the same packed `(time << 64) | discriminant` event keys
//! (see `cost::pack`). It exploits what a generic heap cannot: scheduler
//! time advances (near-)monotonically and event times cluster densely in
//! a narrow window ahead of the present. Events are binned into a ring
//! of per-cycle buckets holding only the **low 64 bits** of their keys
//! (the time is the bucket's); the current cycle is sorted once on
//! adoption — pushes arrive in near-ascending pop order, hitting the
//! sort's presorted fast path — and drains by a bare cursor, with a
//! tiny side heap absorbing same-cycle pushes that arrive mid-drain.
//! Only events beyond the ring horizon fall back to a real `u128` heap.
//! Pushes into the ring are O(1) `Vec` appends; pops are array reads
//! instead of `log(frontier)` 16-byte sift chains.
//!
//! The contract — property-pinned by the repository's bit-exactness
//! suites — is that the pop sequence is **identical** to the binary
//! heap's: keys are drawn in ascending `u128` order no matter how pushes
//! interleave, including same-cycle pushes while that cycle drains and
//! (defensively) pushes behind the current cycle, which land in a small
//! sorted `front` spill and still pop in exact order. Since the engine's
//! keys form a total order (a packet has at most one pending event), any
//! correct min-queue yields the same simulation; this one is merely
//! faster.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Ring capacity in cycles. Push deltas in the engine are bounded by
/// `n_flits·tl + tr` and successor `comp_cycles` — typically well under
/// a thousand cycles; anything farther ahead overflows into the `u128`
/// heap and migrates back into the ring as time advances.
const WINDOW: u64 = 1024;
const MASK: u64 = WINDOW - 1;

/// A growable binary min-heap over `u64` intra-cycle key halves, with
/// hole-based sifting and an O(n) `heapify` for bucket adoption.
#[derive(Debug, Clone, Default)]
struct MinHeap64(Vec<u64>);

impl MinHeap64 {
    #[inline]
    fn peek(&self) -> Option<u64> {
        self.0.first().copied()
    }

    #[inline]
    fn push(&mut self, x: u64) {
        let v = &mut self.0;
        v.push(x);
        let mut i = v.len() - 1;
        while i > 0 {
            let p = (i - 1) / 2;
            // noc-verify: allow(PANIC01) — p < i < len by the heap index arithmetic
            let pv = v[p];
            if pv <= x {
                break;
            }
            // noc-verify: allow(PANIC01) — i and p are in-bounds heap positions
            v[i] = pv;
            i = p;
        }
        // noc-verify: allow(PANIC01) — i is an in-bounds heap position
        v[i] = x;
    }

    #[inline]
    fn pop(&mut self) -> Option<u64> {
        let v = &mut self.0;
        let min = v.first().copied()?;
        // noc-verify: allow(PANIC01) — the heap is non-empty here
        let last = v[v.len() - 1];
        v.truncate(v.len() - 1);
        let len = v.len();
        if len > 0 {
            let mut i = 0usize;
            loop {
                let l = 2 * i + 1;
                if l >= len {
                    break;
                }
                let r = l + 1;
                // noc-verify: allow(PANIC01) — l (and r when taken) checked against len above
                let c = if r < len && v[r] < v[l] { r } else { l };
                // noc-verify: allow(PANIC01) — c < len by construction
                let cv = v[c];
                if cv >= last {
                    break;
                }
                // noc-verify: allow(PANIC01) — i < len: it held a value this iteration
                v[i] = cv;
                i = c;
            }
            // noc-verify: allow(PANIC01) — i < len: the hole the loop maintained
            v[i] = last;
        }
        Some(min)
    }
}

/// See the module docs. `Default`/`clear` leave the ring unallocated;
/// the first push materializes it, and buffers are retained across runs
/// so a warmed queue allocates nothing.
#[derive(Debug, Clone, Default)]
pub(crate) struct EventQueue {
    len: usize,
    /// Cycle the drain belongs to.
    cur: u64,
    /// Low key halves at time `cur`, sorted ascending once on adoption
    /// (pushes arrive in near-sorted pop order, so the sort is cheap)
    /// and consumed through `drain_pos` as plain array reads.
    drain: Vec<u64>,
    drain_pos: usize,
    /// Same-cycle pushes that arrive *while* `cur` drains. In the
    /// engine's traffic these are the immediately-next events (a packet
    /// re-queueing at the present), so this heap stays tiny.
    side: MinHeap64,
    /// Defensive spill: full keys at or before `(cur, bucket minimum)`,
    /// sorted descending so the global minimum pops from the back. In
    /// the engine's (monotone) traffic this stays empty.
    front: Vec<u128>,
    /// `WINDOW` per-cycle buckets of low key halves; slot `t & MASK`
    /// holds time `t`, for `t` in `(cur, cur + WINDOW]`.
    ring: Vec<Vec<u64>>,
    /// Total events parked in the ring.
    ring_items: usize,
    /// Events beyond the ring horizon (full keys); drains back into the
    /// ring as the present advances.
    overflow: BinaryHeap<Reverse<u128>>,
}

impl EventQueue {
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn clear(&mut self) {
        self.len = 0;
        self.cur = 0;
        self.drain.clear();
        self.drain_pos = 0;
        self.side.0.clear();
        self.front.clear();
        if self.ring_items > 0 {
            for slot in &mut self.ring {
                slot.clear();
            }
            self.ring_items = 0;
        }
        self.overflow.clear();
    }

    #[inline]
    pub(crate) fn push(&mut self, key: u128) {
        self.len += 1;
        let t = (key >> 64) as u64;
        if t > self.cur {
            let d = t - self.cur;
            if d <= WINDOW {
                if self.ring.is_empty() {
                    self.ring.resize_with(WINDOW as usize, Vec::new);
                }
                // noc-verify: allow(PANIC01) — slot index is masked to the ring length
                self.ring[(t & MASK) as usize].push(key as u64);
                self.ring_items += 1;
            } else {
                self.overflow.push(Reverse(key));
            }
        } else if t == self.cur {
            self.side.push(key as u64);
        } else {
            // Behind the present: keep `front` sorted descending so the
            // back is always the global minimum.
            let pos = self.front.partition_point(|&k| k > key);
            self.front.insert(pos, key);
        }
    }

    #[inline]
    pub(crate) fn pop(&mut self) -> Option<u128> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        if let Some(&spill) = self.front.last() {
            // The spill is only beaten by a smaller same-cycle key.
            match self.bucket_peek_low() {
                Some(low) if self.key_at_cur(low) < spill => {
                    self.bucket_pop_low();
                    return Some(self.key_at_cur(low));
                }
                _ => {
                    self.front.pop();
                    return Some(spill);
                }
            }
        }
        if let Some(low) = self.bucket_pop_low() {
            return Some(self.key_at_cur(low));
        }
        self.advance();
        let low = self.bucket_pop_low()?;
        Some(self.key_at_cur(low))
    }

    #[inline]
    fn key_at_cur(&self, low: u64) -> u128 {
        ((self.cur as u128) << 64) | low as u128
    }

    #[inline]
    fn bucket_peek_low(&self) -> Option<u64> {
        let d = self.drain.get(self.drain_pos).copied();
        match (d, self.side.peek()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    #[inline]
    fn bucket_pop_low(&mut self) -> Option<u64> {
        match (self.drain.get(self.drain_pos).copied(), self.side.peek()) {
            (Some(a), Some(b)) if b < a => self.side.pop(),
            (Some(a), _) => {
                self.drain_pos += 1;
                Some(a)
            }
            (None, Some(_)) => self.side.pop(),
            (None, None) => None,
        }
    }

    /// Moves the present to the next non-empty cycle and adopts its
    /// events into the intra-cycle heap. Called only when `front` and
    /// `bucket` are drained but events remain.
    fn advance(&mut self) {
        debug_assert!(self.ring_items > 0 || !self.overflow.is_empty());
        let ring_next = if self.ring_items > 0 {
            (1..=WINDOW).find_map(|d| {
                let t = self.cur + d;
                // noc-verify: allow(PANIC01) — slot index is masked to the ring length
                (!self.ring[(t & MASK) as usize].is_empty()).then_some(t)
            })
        } else {
            None
        };
        let over_next = self.overflow.peek().map(|r| (r.0 >> 64) as u64);
        let t = match (ring_next, over_next) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => return,
        };
        self.cur = t;
        debug_assert!(self.side.peek().is_none());
        self.drain.clear();
        self.drain_pos = 0;
        if ring_next.is_some_and(|r| r == t) {
            // noc-verify: allow(PANIC01) — slot index is masked to the ring length
            let slot = &mut self.ring[(t & MASK) as usize];
            self.ring_items -= slot.len();
            // The spent drain buffer (just cleared) becomes the slot's
            // new empty buffer; capacities recycle across cycles.
            std::mem::swap(&mut self.drain, slot);
        }
        // Overflow events now at the present join the drain; those that
        // fell inside the (moved) window migrate into the ring.
        while let Some(&Reverse(key)) = self.overflow.peek() {
            let kt = (key >> 64) as u64;
            if kt == t {
                self.drain.push(key as u64);
            } else if kt - t <= WINDOW {
                if self.ring.is_empty() {
                    self.ring.resize_with(WINDOW as usize, Vec::new);
                }
                // noc-verify: allow(PANIC01) — slot index is masked to the ring length
                self.ring[(kt & MASK) as usize].push(key as u64);
                self.ring_items += 1;
            } else {
                break;
            }
            self.overflow.pop();
        }
        // Pushes arrive in (near-)ascending pop order, so this is the
        // sort's precomputed-pattern fast path most cycles.
        self.drain.sort_unstable();
    }

    /// Time component of the minimum key, without disturbing the queue
    /// (the incremental evaluator's convergence horizon).
    pub(crate) fn peek_time(&self) -> Option<u64> {
        if let Some(&spill) = self.front.last() {
            let spill_t = (spill >> 64) as u64;
            return Some(if self.bucket_peek_low().is_some() {
                spill_t.min(self.cur)
            } else {
                spill_t
            });
        }
        if self.bucket_peek_low().is_some() {
            return Some(self.cur);
        }
        let ring_next = if self.ring_items > 0 {
            (1..=WINDOW).find_map(|d| {
                let t = self.cur + d;
                // noc-verify: allow(PANIC01) — slot index is masked to the ring length
                (!self.ring[(t & MASK) as usize].is_empty()).then_some(t)
            })
        } else {
            None
        };
        let over_next = self.overflow.peek().map(|r| (r.0 >> 64) as u64);
        match (ring_next, over_next) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    /// All pending keys in unspecified order (snapshot capture sorts).
    pub(crate) fn iter_keys(&self) -> impl Iterator<Item = u128> + '_ {
        let cur = self.cur;
        let base = cur.wrapping_add(1);
        self.front
            .iter()
            .copied()
            .chain(
                // noc-verify: allow(PANIC01) — drain_pos never exceeds drain.len()
                self.drain[self.drain_pos..]
                    .iter()
                    .chain(self.side.0.iter())
                    .map(move |&low| ((cur as u128) << 64) | low as u128),
            )
            .chain(self.ring.iter().enumerate().flat_map(move |(s, slot)| {
                // Reconstruct the slot's unique time in (cur, cur+WINDOW].
                let offset = (s as u64).wrapping_sub(base) & MASK;
                let t = base + offset;
                slot.iter()
                    .map(move |&low| ((t as u128) << 64) | low as u128)
            }))
            .chain(self.overflow.iter().map(|r| r.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: plain binary heap.
    fn drain_both(mut ops: Vec<(bool, u128)>) {
        let mut q = EventQueue::default();
        let mut h: BinaryHeap<Reverse<u128>> = BinaryHeap::new();
        for (is_pop, key) in ops.drain(..) {
            if is_pop {
                assert_eq!(q.pop(), h.pop().map(|r| r.0));
                assert_eq!(q.len(), h.len());
            } else {
                q.push(key);
                h.push(Reverse(key));
            }
        }
        let mut qs: Vec<u128> = q.iter_keys().collect();
        let mut hs: Vec<u128> = h.iter().map(|r| r.0).collect();
        qs.sort_unstable();
        hs.sort_unstable();
        assert_eq!(qs, hs);
        while let Some(k) = q.pop() {
            assert_eq!(Some(k), h.pop().map(|r| r.0));
        }
        assert!(h.pop().is_none());
        assert_eq!(q.len(), 0);
    }

    fn key(t: u64, low: u64) -> u128 {
        ((t as u128) << 64) | low as u128
    }

    #[test]
    fn matches_binary_heap_on_monotone_traffic() {
        // Simulates the engine's pattern: bursts at a cycle, pops that
        // push to same or future cycles.
        let mut ops = Vec::new();
        for p in 0..200u64 {
            ops.push((false, key(8, p << 34)));
        }
        for step in 0..1200u64 {
            ops.push((true, 0));
            let t = 8 + step / 2;
            ops.push((false, key(t + (step % 37), (step % 97) << 20 | step)));
        }
        for _ in 0..400 {
            ops.push((true, 0));
        }
        drain_both(ops);
    }

    #[test]
    fn matches_binary_heap_beyond_window_and_behind_present() {
        let mut ops = Vec::new();
        // Far-future keys (overflow), then near keys, then pops that
        // force window migration; includes pushes behind the present.
        for p in 0..32u64 {
            ops.push((false, key(10_000 + p * 700, p)));
        }
        for p in 0..32u64 {
            ops.push((false, key(5 + p, p << 34)));
        }
        for _ in 0..20 {
            ops.push((true, 0));
        }
        // Behind the present by now.
        ops.push((false, key(3, 7)));
        ops.push((false, key(0, 1)));
        for _ in 0..50 {
            ops.push((true, 0));
        }
        drain_both(ops);
    }

    #[test]
    fn same_cycle_pushes_while_draining_pop_in_order() {
        let mut q = EventQueue::default();
        for low in [50u64, 10, 30] {
            q.push(key(4, low));
        }
        assert_eq!(q.pop(), Some(key(4, 10)));
        // Same-cycle insert below and above the drained point.
        q.push(key(4, 5));
        q.push(key(4, 40));
        assert_eq!(q.pop(), Some(key(4, 5)));
        assert_eq!(q.pop(), Some(key(4, 30)));
        assert_eq!(q.pop(), Some(key(4, 40)));
        assert_eq!(q.pop(), Some(key(4, 50)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_time_tracks_the_minimum() {
        let mut q = EventQueue::default();
        assert_eq!(q.peek_time(), None);
        q.push(key(90, 1));
        assert_eq!(q.peek_time(), Some(90));
        q.push(key(4, 2));
        assert_eq!(q.peek_time(), Some(4));
        q.pop();
        assert_eq!(q.peek_time(), Some(90));
        q.push(key(100_000, 3));
        assert_eq!(q.peek_time(), Some(90));
        q.pop();
        assert_eq!(q.peek_time(), Some(100_000));
    }

    #[test]
    fn clear_resets_a_warmed_queue() {
        let mut q = EventQueue::default();
        for p in 0..64u64 {
            q.push(key(p * 50, p));
        }
        for _ in 0..10 {
            q.pop();
        }
        q.clear();
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop(), None);
        q.push(key(2, 9));
        assert_eq!(q.pop(), Some(key(2, 9)));
    }
}
