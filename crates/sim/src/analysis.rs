//! Post-schedule statistics: link loads, latencies and utilization.
//!
//! These feed the ablation harnesses in `noc-bench` (hotspot analysis is
//! what makes the CWM-vs-CDCM difference visible: CWM's hop-weighted
//! objective concentrates traffic, CDCM's timing-aware objective spreads
//! concurrent packets).

use crate::resource::Resource;
use crate::schedule::Schedule;
use noc_model::Link;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregate statistics of one schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleStats {
    /// Number of packets.
    pub packets: usize,
    /// Execution time in cycles.
    pub texec_cycles: u64,
    /// Mean end-to-end packet latency (injection → delivery) in cycles.
    pub mean_latency: f64,
    /// Maximum end-to-end packet latency in cycles.
    pub max_latency: u64,
    /// Total contention cycles across all packets.
    pub contention_cycles: u64,
    /// Number of contention incidents.
    pub contention_events: usize,
    /// Bits crossing the most loaded inter-router link.
    pub max_link_load_bits: u64,
    /// Mean bits per *used* inter-router link.
    pub mean_link_load_bits: f64,
    /// Number of inter-router links that carried at least one packet.
    pub used_links: usize,
    /// Busy fraction (busy cycles / texec) of the most loaded
    /// inter-router link, in `[0, 1]`.
    pub peak_link_utilization: f64,
}

/// Computes [`ScheduleStats`] for a schedule.
pub fn analyze(schedule: &Schedule) -> ScheduleStats {
    let packets = schedule.packets().len();
    let latencies: Vec<u64> = schedule.packets().iter().map(|p| p.latency()).collect();
    let mean_latency = if packets == 0 {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / packets as f64
    };
    let loads = link_loads(schedule);
    let used_links = loads.len();
    let max_link_load_bits = loads.values().copied().max().unwrap_or(0);
    let mean_link_load_bits = if used_links == 0 {
        0.0
    } else {
        loads.values().sum::<u64>() as f64 / used_links as f64
    };

    let texec = schedule.texec_cycles();
    let mut peak_util = 0.0f64;
    if texec > 0 {
        for (res, occs) in schedule.occupancy().iter() {
            if let Resource::Link(l) = res {
                if l.is_internal() {
                    let busy: u64 = occs.iter().map(|o| o.interval.len()).sum();
                    peak_util = peak_util.max(busy as f64 / texec as f64);
                }
            }
        }
    }

    ScheduleStats {
        packets,
        texec_cycles: texec,
        mean_latency,
        max_latency: latencies.iter().copied().max().unwrap_or(0),
        contention_cycles: schedule.total_contention_cycles(),
        contention_events: schedule.contention_events().len(),
        max_link_load_bits,
        mean_link_load_bits,
        used_links,
        peak_link_utilization: peak_util,
    }
}

/// The dependence-critical chain of a schedule: starting from the packet
/// that finished last, walk back through the predecessor whose delivery
/// bound each ready time, down to a Start packet. Mapping optimizations
/// only help `texec` if they shorten (or de-contend) packets on this
/// chain, which makes it the first thing to inspect when a mapping
/// underperforms.
pub fn critical_path(schedule: &Schedule, cdcg: &noc_model::Cdcg) -> Vec<noc_model::PacketId> {
    let Some(last) = schedule
        .packets()
        .iter()
        .max_by_key(|p| (p.delivery, p.packet))
        .map(|p| p.packet)
    else {
        return Vec::new();
    };
    let mut chain = vec![last];
    let mut current = last;
    loop {
        let ready = schedule.packet(current).ready;
        let binding = cdcg
            .predecessors(current)
            .iter()
            .copied()
            .find(|&pred| schedule.packet(pred).delivery == ready);
        match binding {
            Some(pred) => {
                chain.push(pred);
                current = pred;
            }
            None => break,
        }
    }
    chain.reverse();
    chain
}

/// Bits carried by each *inter-router* link (deterministic order). This is
/// the classic "channel load" view of a mapping.
pub fn link_loads(schedule: &Schedule) -> BTreeMap<Link, u64> {
    let mut loads = BTreeMap::new();
    for (res, occs) in schedule.occupancy().iter() {
        if let Resource::Link(l) = res {
            if l.is_internal() {
                let bits: u64 = occs.iter().map(|o| o.bits).sum();
                loads.insert(l, bits);
            }
        }
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SimParams;
    use crate::schedule::schedule;
    use noc_model::{Cdcg, Mapping, Mesh, TileId};

    fn figure1_schedule(tiles: [usize; 4]) -> Schedule {
        let mut g = Cdcg::new();
        let a = g.add_core("A");
        let b = g.add_core("B");
        let e = g.add_core("E");
        let f = g.add_core("F");
        let pab1 = g.add_packet(a, b, 6, 15).unwrap();
        let pbf1 = g.add_packet(b, f, 10, 40).unwrap();
        let pea1 = g.add_packet(e, a, 10, 20).unwrap();
        let pea2 = g.add_packet(e, a, 20, 15).unwrap();
        let paf1 = g.add_packet(a, f, 6, 15).unwrap();
        let pfb1 = g.add_packet(f, b, 6, 15).unwrap();
        g.add_dependence(pea1, pea2).unwrap();
        g.add_dependence(pab1, paf1).unwrap();
        g.add_dependence(pea1, paf1).unwrap();
        g.add_dependence(pbf1, pfb1).unwrap();
        g.add_dependence(paf1, pfb1).unwrap();
        let mesh = Mesh::new(2, 2).unwrap();
        let mapping = Mapping::from_tiles(&mesh, tiles.map(TileId::new)).unwrap();
        schedule(&g, &mesh, &mapping, &SimParams::paper_example()).unwrap()
    }

    #[test]
    fn stats_for_contended_mapping() {
        let stats = analyze(&figure1_schedule([1, 0, 3, 2]));
        assert_eq!(stats.packets, 6);
        assert_eq!(stats.texec_cycles, 100);
        assert_eq!(stats.contention_cycles, 7);
        assert_eq!(stats.contention_events, 1);
        assert!(stats.mean_latency > 0.0);
        assert!(stats.max_latency >= stats.mean_latency as u64);
    }

    #[test]
    fn link_loads_mapping_c() {
        let sched = figure1_schedule([1, 0, 3, 2]);
        let loads = link_loads(&sched);
        // τ1→τ3 carries B→F (40) and A→F (15).
        let l = Link::between(TileId::new(0), TileId::new(2));
        assert_eq!(loads.get(&l), Some(&55));
        // τ2→τ1 carries A→B and A→F (15 + 15).
        let l = Link::between(TileId::new(1), TileId::new(0));
        assert_eq!(loads.get(&l), Some(&30));
        assert_eq!(
            sched
                .occupancy()
                .bits_through(crate::resource::Resource::Link(Link::between(
                    TileId::new(0),
                    TileId::new(2)
                ))),
            55
        );
    }

    #[test]
    fn utilization_is_bounded() {
        let stats = analyze(&figure1_schedule([1, 0, 3, 2]));
        assert!(stats.peak_link_utilization > 0.0);
        assert!(stats.peak_link_utilization <= 1.0);
    }

    #[test]
    fn contention_free_mapping_has_clean_stats() {
        let stats = analyze(&figure1_schedule([3, 0, 1, 2]));
        assert_eq!(stats.contention_cycles, 0);
        assert_eq!(stats.contention_events, 0);
        assert_eq!(stats.texec_cycles, 90);
    }

    #[test]
    fn critical_path_of_figure1_mapping_c() {
        let sched = figure1_schedule([1, 0, 3, 2]);
        let mut g = Cdcg::new();
        let a = g.add_core("A");
        let b = g.add_core("B");
        let e = g.add_core("E");
        let f = g.add_core("F");
        let pab1 = g.add_packet(a, b, 6, 15).unwrap();
        let pbf1 = g.add_packet(b, f, 10, 40).unwrap();
        let pea1 = g.add_packet(e, a, 10, 20).unwrap();
        let pea2 = g.add_packet(e, a, 20, 15).unwrap();
        let paf1 = g.add_packet(a, f, 6, 15).unwrap();
        let pfb1 = g.add_packet(f, b, 6, 15).unwrap();
        g.add_dependence(pea1, pea2).unwrap();
        g.add_dependence(pab1, paf1).unwrap();
        g.add_dependence(pea1, paf1).unwrap();
        g.add_dependence(pbf1, pfb1).unwrap();
        g.add_dependence(paf1, pfb1).unwrap();
        // texec is set by pFB1, whose readiness came from pAF1, whose
        // readiness came from pEA1 (delivered 36 > pAB1's 27).
        let chain = critical_path(&sched, &g);
        assert_eq!(chain, vec![pea1, paf1, pfb1]);
        // The chain starts at a Start packet and ends at the last
        // delivery.
        assert!(g.predecessors(chain[0]).is_empty());
        assert_eq!(sched.packet(*chain.last().unwrap()).delivery, 100);
    }

    #[test]
    fn critical_path_is_empty_for_empty_schedules() {
        let mut g = Cdcg::new();
        g.add_core("A");
        g.add_core("B");
        let mesh = Mesh::new(2, 1).unwrap();
        let mapping = Mapping::identity(&mesh, 2).unwrap();
        let sched = schedule(&g, &mesh, &mapping, &SimParams::paper_example()).unwrap();
        assert!(critical_path(&sched, &g).is_empty());
    }

    #[test]
    fn max_load_dominates_mean() {
        let stats = analyze(&figure1_schedule([1, 0, 3, 2]));
        assert!(stats.max_link_load_bits as f64 >= stats.mean_link_load_bits);
        assert!(stats.used_links > 0);
    }
}
