//! Timing diagrams in the style of the paper's Figures 4 and 5.
//!
//! A [`GanttChart`] decomposes every packet's lifetime into the four delay
//! classes of the paper's legend — *computation*, *routing*, *contention*
//! and *packet* delay — and renders them as an ASCII chart whose rows are
//! packets and whose columns are clock cycles.

use crate::schedule::Schedule;
use noc_model::{Cdcg, PacketId};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

use crate::interval::CycleInterval;

/// The delay classes of the paper's timing-diagram legend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SegmentKind {
    /// The source core computing before injection (`t_aq`).
    Computation,
    /// Waiting for the injection link (only with same-core concurrency).
    InjectionWait,
    /// Header travelling through routers and links (Eq. 6).
    Routing,
    /// Header blocked in a router buffer behind a busy link.
    Contention,
    /// Body flits draining behind the header (Eq. 7).
    Packet,
}

impl SegmentKind {
    /// One-character glyph used by the ASCII renderer.
    pub fn glyph(self) -> char {
        match self {
            Self::Computation => '=',
            Self::InjectionWait => 'w',
            Self::Routing => '>',
            Self::Contention => 'X',
            Self::Packet => '#',
        }
    }

    /// Human-readable legend entry.
    pub fn label(self) -> &'static str {
        match self {
            Self::Computation => "computation delay",
            Self::InjectionWait => "injection wait",
            Self::Routing => "routing delay",
            Self::Contention => "contention delay",
            Self::Packet => "packet delay",
        }
    }
}

/// One row of the chart: a packet's labelled delay segments in time order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GanttRow {
    /// The packet.
    pub packet: PacketId,
    /// Display label, e.g. `15(A→B):6`.
    pub label: String,
    /// Contiguous, non-overlapping segments from readiness to delivery.
    pub segments: Vec<(SegmentKind, CycleInterval)>,
}

impl GanttRow {
    /// Delivery cycle of the row's packet (end of the last segment).
    pub fn end(&self) -> u64 {
        self.segments.last().map_or(0, |(_, i)| i.end)
    }

    /// Total cycles spent in one delay class.
    pub fn cycles_in(&self, kind: SegmentKind) -> u64 {
        self.segments
            .iter()
            .filter(|(k, _)| *k == kind)
            .map(|(_, i)| i.len())
            .sum()
    }
}

/// A complete timing diagram for one schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GanttChart {
    rows: Vec<GanttRow>,
    texec_cycles: u64,
}

impl GanttChart {
    /// Builds the chart for a schedule. Labels use the core names of
    /// `cdcg`, in the paper's `bits(src→dst):comp` notation.
    pub fn from_schedule(schedule: &Schedule, cdcg: &Cdcg) -> Self {
        let tl = schedule.params().link_cycles;
        let rows = schedule
            .packets()
            .iter()
            .map(|ps| {
                let packet = cdcg.packet(ps.packet);
                let src = cdcg.core_name(packet.src).unwrap_or("?");
                let dst = cdcg.core_name(packet.dst).unwrap_or("?");
                let label = format!("{}({src}→{dst}):{}", packet.bits, packet.comp_cycles);

                let mut segments = Vec::new();
                let push = |segments: &mut Vec<(SegmentKind, CycleInterval)>,
                            kind: SegmentKind,
                            start: u64,
                            end: u64| {
                    if end > start {
                        segments.push((kind, CycleInterval::new(start, end)));
                    }
                };

                push(
                    &mut segments,
                    SegmentKind::Computation,
                    ps.ready,
                    ps.inject_request,
                );
                let inject = ps.inject();
                push(
                    &mut segments,
                    SegmentKind::InjectionWait,
                    ps.inject_request,
                    inject,
                );

                // Header trip: routing pieces interleaved with contention
                // waits, reconstructed from this packet's contention log.
                let mut cursor = inject;
                let mut events: Vec<_> = schedule
                    .contention_events()
                    .iter()
                    .filter(|e| {
                        e.packet == ps.packet && !matches!(e.link, noc_model::Link::Injection(_))
                    })
                    .collect();
                events.sort_by_key(|e| e.requested);
                for ev in events {
                    push(&mut segments, SegmentKind::Routing, cursor, ev.requested);
                    push(
                        &mut segments,
                        SegmentKind::Contention,
                        ev.requested,
                        ev.granted,
                    );
                    cursor = ev.granted;
                }
                // The header reaches the destination core one link time
                // after it enters the ejection link.
                let ejection_entry = ps.links.last().expect("path has links").1.start;
                let head_arrival = ejection_entry + tl;
                push(&mut segments, SegmentKind::Routing, cursor, head_arrival);
                push(
                    &mut segments,
                    SegmentKind::Packet,
                    head_arrival,
                    ps.delivery,
                );
                GanttRow {
                    packet: ps.packet,
                    label,
                    segments,
                }
            })
            .collect();
        Self {
            rows,
            texec_cycles: schedule.texec_cycles(),
        }
    }

    /// The rows, one per packet in packet-id order.
    pub fn rows(&self) -> &[GanttRow] {
        &self.rows
    }

    /// Execution time of the underlying schedule.
    pub fn texec_cycles(&self) -> u64 {
        self.texec_cycles
    }

    /// Renders the chart as ASCII art, at most `max_width` columns for the
    /// time axis (the scale is chosen automatically). Includes a legend
    /// and a cycle ruler.
    pub fn render(&self, max_width: usize) -> String {
        let max_width = max_width.max(10);
        let span = self.texec_cycles.max(1);
        let scale = span.div_ceil(max_width as u64).max(1);
        let columns = span.div_ceil(scale) as usize;
        let label_width = self
            .rows
            .iter()
            .map(|r| r.label.chars().count())
            .max()
            .unwrap_or(0)
            .max(8);

        let mut out = String::new();
        let _ = writeln!(
            out,
            "time: 0..{} cycles, {} cycle(s) per column",
            self.texec_cycles, scale
        );
        for row in &self.rows {
            let mut lane = vec!['.'; columns];
            for (kind, interval) in &row.segments {
                let from = (interval.start / scale) as usize;
                let to = (interval.end.div_ceil(scale) as usize).min(columns);
                for cell in lane.iter_mut().take(to).skip(from) {
                    // Later (more specific) segments may share a cell with
                    // an earlier one at coarse scales; prefer contention so
                    // hotspots stay visible.
                    if *cell == '.' || kind.glyph() == 'X' {
                        *cell = kind.glyph();
                    }
                }
            }
            let _ = writeln!(
                out,
                "{:label_width$} |{}|",
                row.label,
                lane.iter().collect::<String>()
            );
        }
        let legend: Vec<String> = [
            SegmentKind::Computation,
            SegmentKind::Routing,
            SegmentKind::Packet,
            SegmentKind::Contention,
            SegmentKind::InjectionWait,
        ]
        .iter()
        .map(|k| format!("{}={}", k.glyph(), k.label()))
        .collect();
        let _ = writeln!(out, "legend: {}", legend.join(", "));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SimParams;
    use crate::schedule::schedule;
    use noc_model::{Mapping, Mesh, TileId};

    fn figure1_cdcg() -> Cdcg {
        let mut g = Cdcg::new();
        let a = g.add_core("A");
        let b = g.add_core("B");
        let e = g.add_core("E");
        let f = g.add_core("F");
        let pab1 = g.add_packet(a, b, 6, 15).unwrap();
        let pbf1 = g.add_packet(b, f, 10, 40).unwrap();
        let pea1 = g.add_packet(e, a, 10, 20).unwrap();
        let pea2 = g.add_packet(e, a, 20, 15).unwrap();
        let paf1 = g.add_packet(a, f, 6, 15).unwrap();
        let pfb1 = g.add_packet(f, b, 6, 15).unwrap();
        g.add_dependence(pea1, pea2).unwrap();
        g.add_dependence(pab1, paf1).unwrap();
        g.add_dependence(pea1, paf1).unwrap();
        g.add_dependence(pbf1, pfb1).unwrap();
        g.add_dependence(paf1, pfb1).unwrap();
        g
    }

    fn chart(tiles: [usize; 4]) -> GanttChart {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let mapping = Mapping::from_tiles(&mesh, tiles.map(TileId::new)).unwrap();
        let sched = schedule(&cdcg, &mesh, &mapping, &SimParams::paper_example()).unwrap();
        GanttChart::from_schedule(&sched, &cdcg)
    }

    #[test]
    fn figure4_contention_segment() {
        let chart = chart([1, 0, 3, 2]); // mapping (c)
        assert_eq!(chart.texec_cycles(), 100);
        // pAF1 is row 4: comp 6, then routing/contention/routing/packet.
        let row = &chart.rows()[4];
        assert_eq!(row.label, "15(A→F):6");
        assert_eq!(row.cycles_in(SegmentKind::Computation), 6);
        assert_eq!(row.cycles_in(SegmentKind::Contention), 7);
        // Uncontended routing of K=3 routers: 3*(2+1)+1 = 10 cycles.
        assert_eq!(row.cycles_in(SegmentKind::Routing), 10);
        // Body drain: 14 cycles (15 flits).
        assert_eq!(row.cycles_in(SegmentKind::Packet), 14);
        assert_eq!(row.end(), 73);
    }

    #[test]
    fn figure5_has_no_contention() {
        let chart = chart([3, 0, 1, 2]); // mapping (d)
        assert_eq!(chart.texec_cycles(), 90);
        for row in chart.rows() {
            assert_eq!(
                row.cycles_in(SegmentKind::Contention),
                0,
                "row {} should be contention-free",
                row.label
            );
        }
    }

    #[test]
    fn segments_are_contiguous() {
        let chart = chart([1, 0, 3, 2]);
        for row in chart.rows() {
            for pair in row.segments.windows(2) {
                assert_eq!(pair[0].1.end, pair[1].1.start, "gap in row {}", row.label);
            }
        }
    }

    #[test]
    fn segment_budget_accounts_for_latency() {
        // comp + wait + routing + contention + packet = delivery - ready.
        let chart = chart([1, 0, 3, 2]);
        for row in chart.rows() {
            let total: u64 = row.segments.iter().map(|(_, i)| i.len()).sum();
            let first = row.segments.first().unwrap().1.start;
            assert_eq!(first + total, row.end());
        }
    }

    #[test]
    fn figure4_packet_rows_match_paper_labels() {
        let chart = chart([1, 0, 3, 2]);
        let labels: Vec<&str> = chart.rows().iter().map(|r| r.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "15(A→B):6",
                "40(B→F):10",
                "20(E→A):10",
                "15(E→A):20",
                "15(A→F):6",
                "15(F→B):6",
            ]
        );
    }

    #[test]
    fn render_is_stable_and_legible() {
        let chart = chart([1, 0, 3, 2]);
        let art = chart.render(100);
        assert!(art.contains("15(A→F):6"));
        assert!(art.contains('X'), "contention glyph must appear:\n{art}");
        assert!(art.contains("legend:"));
        // Deterministic output.
        assert_eq!(art, chart.render(100));
    }

    #[test]
    fn render_scales_down() {
        let chart = chart([1, 0, 3, 2]);
        let art = chart.render(20);
        let widest = art
            .lines()
            .filter(|l| l.contains('|'))
            .map(|l| l.chars().count())
            .max()
            .unwrap();
        assert!(widest < 60, "expected compressed chart, got width {widest}");
    }
}
