//! Physical resources and their occupancy lists.
//!
//! The paper's CDCM algorithm attaches a *cost variable list* to every CRG
//! edge and vertex: one entry per packet holding the bit count and "the
//! absolute time interval that the packet is occupying the NoC resource"
//! (§4). [`OccupancyMap`] is exactly that bookkeeping structure, and
//! Figure 3 of the paper is a rendering of it.

use crate::interval::CycleInterval;
use noc_model::{Link, PacketId, TileId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A NoC resource a packet can occupy: a router or a (directed) link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Resource {
    /// The router of a tile.
    Router(TileId),
    /// A link (injection, inter-router, or ejection).
    Link(Link),
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Router(t) => write!(f, "R[{t}]"),
            Self::Link(l) => write!(f, "L[{l}]"),
        }
    }
}

/// One entry of a resource's cost variable list: a packet occupying the
/// resource for an interval, annotated with its size for energy accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Occupancy {
    /// The occupying packet.
    pub packet: PacketId,
    /// Packet size in bits (`w_abq`).
    pub bits: u64,
    /// Busy interval of the resource.
    pub interval: CycleInterval,
}

/// Cost variable lists for all resources touched by a schedule, keyed by
/// resource in deterministic order. Serialized as an entry list because
/// JSON object keys must be strings.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OccupancyMap {
    #[serde(with = "entry_list")]
    entries: BTreeMap<Resource, Vec<Occupancy>>,
}

mod entry_list {
    use super::*;
    use serde::{Deserializer, Serializer};

    pub fn serialize<S: Serializer>(
        entries: &BTreeMap<Resource, Vec<Occupancy>>,
        ser: S,
    ) -> Result<S::Ok, S::Error> {
        let list: Vec<(&Resource, &Vec<Occupancy>)> = entries.iter().collect();
        serde::Serialize::serialize(&list, ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        de: D,
    ) -> Result<BTreeMap<Resource, Vec<Occupancy>>, D::Error> {
        let list: Vec<(Resource, Vec<Occupancy>)> = serde::Deserialize::deserialize(de)?;
        Ok(list.into_iter().collect())
    }
}

impl OccupancyMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an occupancy entry for `resource`.
    pub fn record(&mut self, resource: Resource, occ: Occupancy) {
        self.entries.entry(resource).or_default().push(occ);
    }

    /// Occupancy list of one resource (empty slice if untouched).
    pub fn of(&self, resource: Resource) -> &[Occupancy] {
        self.entries.get(&resource).map_or(&[], Vec::as_slice)
    }

    /// Iterator over `(resource, occupancy list)` pairs in deterministic
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (Resource, &[Occupancy])> {
        self.entries.iter().map(|(r, v)| (*r, v.as_slice()))
    }

    /// Number of resources with at least one entry.
    pub fn resource_count(&self) -> usize {
        self.entries.len()
    }

    /// Total bits that crossed a resource — the quantity multiplied by
    /// `ERbit`/`ELbit` in the paper's energy accounting.
    pub fn bits_through(&self, resource: Resource) -> u64 {
        self.of(resource).iter().map(|o| o.bits).sum()
    }

    /// Sorts every list by interval start (then packet id); useful before
    /// comparing against golden data.
    pub fn sort(&mut self) {
        for list in self.entries.values_mut() {
            list.sort_by_key(|o| (o.interval.start, o.packet));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn occ(p: usize, bits: u64, start: u64, end: u64) -> Occupancy {
        Occupancy {
            packet: PacketId::new(p),
            bits,
            interval: CycleInterval::new(start, end),
        }
    }

    #[test]
    fn record_and_query() {
        let mut map = OccupancyMap::new();
        let r = Resource::Router(TileId::new(0));
        map.record(r, occ(0, 15, 6, 21));
        map.record(r, occ(1, 40, 10, 50));
        assert_eq!(map.of(r).len(), 2);
        assert_eq!(map.bits_through(r), 55);
        assert_eq!(map.resource_count(), 1);
    }

    #[test]
    fn untouched_resource_is_empty() {
        let map = OccupancyMap::new();
        assert!(map.of(Resource::Router(TileId::new(9))).is_empty());
        assert_eq!(map.bits_through(Resource::Router(TileId::new(9))), 0);
    }

    #[test]
    fn sort_orders_by_start() {
        let mut map = OccupancyMap::new();
        let r = Resource::Link(Link::Injection(TileId::new(1)));
        map.record(r, occ(1, 5, 30, 40));
        map.record(r, occ(0, 5, 10, 20));
        map.sort();
        assert_eq!(map.of(r)[0].interval.start, 10);
        assert_eq!(map.of(r)[1].interval.start, 30);
    }

    #[test]
    fn resources_order_deterministically() {
        let mut map = OccupancyMap::new();
        map.record(Resource::Router(TileId::new(2)), occ(0, 1, 0, 1));
        map.record(Resource::Router(TileId::new(0)), occ(0, 1, 0, 1));
        let order: Vec<Resource> = map.iter().map(|(r, _)| r).collect();
        assert_eq!(
            order,
            vec![
                Resource::Router(TileId::new(0)),
                Resource::Router(TileId::new(2)),
            ]
        );
    }

    #[test]
    fn occupancy_map_serializes_to_json() {
        let mut map = OccupancyMap::new();
        map.record(Resource::Router(TileId::new(1)), occ(0, 15, 6, 21));
        map.record(
            Resource::Link(Link::between(TileId::new(0), TileId::new(2))),
            occ(1, 40, 13, 53),
        );
        let json = serde_json::to_string(&map).expect("serializes");
        let back: OccupancyMap = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, map);
    }
    #[test]
    fn display_formats() {
        assert_eq!(Resource::Router(TileId::new(3)).to_string(), "R[t3]");
        let l = Resource::Link(Link::between(TileId::new(0), TileId::new(1)));
        assert_eq!(l.to_string(), "L[t0→t1]");
    }
}
