//! Cost-only fast path of the interval scheduler.
//!
//! [`schedule_cost`] runs exactly the event-driven algorithm of
//! [`crate::schedule`] — same events, same FIFO and arbitration rules,
//! same tie-breaking (the [`crate::event`] types are shared) — but
//! computes **only** what a mapping cost function needs: the application
//! execution time `texec` and per-link traversal statistics. It does not
//! materialize [`PacketSchedule`](crate::PacketSchedule)s, an
//! [`OccupancyMap`](crate::OccupancyMap) or a contention log, and it
//! performs **no per-call allocation**: all working state lives in a
//! reusable [`ScheduleScratch`] whose per-link tables are indexed by the
//! dense link ids of a shared route source — a dense [`RouteCache`] or
//! any tier of [`noc_model::RouteProvider`] (see [`schedule_cost_with`])
//! — instead of `HashMap<Link, _>`.
//!
//! The contract, enforced by unit tests here and by the repository's
//! property tests: for every application, mesh, mapping and parameter
//! set, `schedule_cost` returns exactly
//! `schedule(...)?.texec_cycles()` — bit-exact, not approximate. Use the
//! full [`schedule`](crate::schedule()) when the occupancy lists, per-packet
//! timelines or the contention log are needed (reports, Gantt charts,
//! energy *breakdowns*); use this path inside search loops, where the
//! schedule itself is discarded and only the scalar cost survives.
//!
//! [`CostEvaluator`] bundles an application with a route cache and a
//! scratch into a reusable engine; it is the building block
//! `noc-energy`'s cost-only CDCM evaluation and `noc-mapping`'s
//! objectives are made of.

use crate::error::SimError;
use crate::params::SimParams;
#[cfg(test)]
use noc_model::TileId;
use noc_model::{
    Cdcg, Link, Mapping, Mesh, PacketId, RouteCache, RouteProvider, RouteSource, RoutingKind,
    WalkMemo, WalkMemoStats,
};
use std::collections::VecDeque;
use std::sync::Arc;

// The fast path packs each pending event into one `u128` key whose
// integer ordering is *exactly* the lexicographic `(time, packet, phase)`
// ordering of [`crate::event::Event`] — the invariant that keeps this
// path bit-identical to the full scheduler. Layout, most significant
// first: `time` (64 bits) | `packet` (30 bits) | phase variant (2 bits,
// Inject=0 < RouterEntry=1 < Decide=2 < LinkRequest=3, matching the
// declaration order the derived `Ord` of `Phase` compares by) | `hop`
// (32 bits, the tie-breaker *within* a variant, again as derived).
pub(crate) const PACKET_LIMIT: usize = 1 << 30;
pub(crate) const INJECT: u32 = 0;
const ROUTER_ENTRY: u32 = 1;
const DECIDE: u32 = 2;
const LINK_REQUEST: u32 = 3;

#[inline]
pub(crate) fn pack(time: u64, packet: usize, variant: u32, hop: u32) -> u128 {
    debug_assert!(packet < PACKET_LIMIT);
    ((time as u128) << 64) | ((packet as u128) << 34) | ((variant as u128) << 32) | hop as u128
}

#[derive(Debug, Clone, Default)]
struct LinkSlot {
    epoch: u64,
    free: u64,
    traversals: u64,
}

#[derive(Debug, Clone, Default)]
struct FifoSlot {
    epoch: u64,
    /// `true` while a packet owns the FIFO head.
    busy: bool,
    /// When not busy: cycle at which the head was released.
    clear: u64,
    /// Arrivals parked behind the owner: `(packet, hop, arrival)`.
    parked: VecDeque<(u32, u32, u64)>,
}

/// Reusable working state of [`schedule_cost`].
///
/// Buffers grow to the high-water mark of the instances they evaluate and
/// are reused across calls — after warm-up, a cost evaluation allocates
/// nothing. A scratch may be reused across different applications,
/// meshes and mappings; sizing is re-checked on every call.
#[derive(Debug, Clone, Default)]
pub struct ScheduleScratch {
    epoch: u64,
    /// Cumulative run-loop telemetry (see [`RunStats`]).
    stats: RunStats,
    links: Vec<LinkSlot>,
    fifo: Vec<FifoSlot>,
    /// Per packet: outstanding dependence count.
    pending: Vec<u32>,
    /// Per packet: cycle at which all dependences were satisfied.
    ready: Vec<u64>,
    /// Per packet: flit count.
    flits: Vec<u64>,
    /// Per packet: span of the resource walk inside the cache's flat
    /// link-id array (`start`, `len`), resolved once per evaluation.
    spans: Vec<(u32, u32)>,
    /// Bitmask of delivered packets (used by the incremental evaluator's
    /// convergence check; maintained by every run, one bit set per
    /// delivery).
    delivered_mask: Vec<u64>,
    /// Walk arena for route sources without a shared flat array
    /// (on-demand / implicit providers): packet walks are appended here
    /// by `init_run` and `spans` index into it. Stays empty under a
    /// dense source, whose spans index the cache's own flat array.
    pub(crate) walks: Vec<u32>,
    queue: crate::queue::EventQueue,
}

/// Cumulative run-loop telemetry of a [`ScheduleScratch`]: how many
/// complete cost evaluations it has served and how many scheduler events
/// they processed. Search telemetry uses this to relate *billed*
/// evaluations (the search subsystem's budget unit) to the engine work
/// they actually caused. Counts only full [`schedule_cost`] /
/// [`schedule_cost_with`] runs; the incremental delta evaluator keeps
/// its own counters ([`crate::DeltaStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Completed full cost evaluations served by this scratch.
    pub runs: u64,
    /// Scheduler events processed across those evaluations.
    pub events: u64,
}

impl ScheduleScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cumulative run-loop telemetry of this scratch (monotone; survives
    /// re-sizing and reuse across instances).
    pub fn run_stats(&self) -> RunStats {
        self.stats
    }

    fn ensure(&mut self, n_links: usize, n_packets: usize) {
        if self.links.len() < n_links {
            self.links.resize(n_links, LinkSlot::default());
        }
        if self.pending.len() < n_packets {
            self.pending.resize(n_packets, 0);
            self.ready.resize(n_packets, 0);
            self.flits.resize(n_packets, 0);
            self.spans.resize(n_packets, (0, 0));
        }
        let words = n_packets.div_ceil(64);
        if self.delivered_mask.len() < words {
            self.delivered_mask.resize(words, 0);
        }
        self.delivered_mask[..words].fill(0);
        if self.fifo.len() < n_links {
            self.fifo.resize(n_links, FifoSlot::default());
        }
        self.epoch += 1;
        self.queue.clear();
    }

    #[inline]
    fn link(&mut self, id: u32) -> &mut LinkSlot {
        let slot = &mut self.links[id as usize];
        if slot.epoch != self.epoch {
            slot.epoch = self.epoch;
            slot.free = 0;
            slot.traversals = 0;
        }
        slot
    }

    #[inline]
    fn fifo(&mut self, id: u32) -> &mut FifoSlot {
        let slot = &mut self.fifo[id as usize];
        if slot.epoch != self.epoch {
            slot.epoch = self.epoch;
            slot.busy = false;
            slot.clear = 0;
            // Completed runs drain every FIFO, but a tail-converged
            // incremental run stops mid-stream and may leave arrivals
            // parked from its epoch.
            slot.parked.clear();
        }
        slot
    }

    /// Traversal count of a dense link in the most recent evaluation (0
    /// for links the schedule never touched).
    pub fn link_traversals(&self, id: u32) -> u64 {
        match self.links.get(id as usize) {
            Some(slot) if slot.epoch == self.epoch => slot.traversals,
            _ => 0,
        }
    }

    /// Tests whether the live engine state and a snapshot are
    /// *future-equivalent*: from here on, both evolve identically. This
    /// is deliberately weaker than bitwise state equality — a rerouted
    /// packet leaves permanent residue on the links of its old route
    /// (`free` times, traversal counters) that can never influence a
    /// future grant once it lies at or below the next event time. Rules:
    ///
    /// * heaps must hold the same event multiset (snapshot heaps are
    ///   stored sorted; `heap_buf` is scratch for sorting the live one);
    /// * the delivered-packet sets must be identical;
    /// * traversal counters are ignored (pure diagnostics, never read by
    ///   the event loop);
    /// * a link's `free` (and a clear FIFO's `clear`) may differ if both
    ///   values are `≤ T`, the next event time — every future request
    ///   arrives at `≥ T`, so the grant outcome (`entry = request`) and
    ///   the overwritten state are identical either way;
    /// * FIFO ownership (`busy`) and parked queues must match exactly;
    /// * `pending`/`ready` must match for every undelivered packet
    ///   (delivered packets' cells are never read again).
    pub(crate) fn converged_with(
        &self,
        n_packets: usize,
        snap: &EngineSnapshot,
        heap_buf: &mut Vec<u128>,
    ) -> bool {
        if self.queue.len() != snap.heap.len() {
            return false;
        }
        // Every future request time is at least the next event's time
        // (the loop processes events in increasing key order). With an
        // empty queue there is no future at all and timing residue is
        // vacuously irrelevant.
        let horizon = self.queue.peek_time().unwrap_or(u64::MAX);
        // Links: sparse snapshot (touched slots only, sorted by id);
        // live slots missing from it must be at the reset value.
        {
            let mut si = 0usize;
            for (id, slot) in self.links[..snap.n_links].iter().enumerate() {
                let snap_free = match snap.links.get(si) {
                    Some(&(sid, free, _)) if sid as usize == id => {
                        si += 1;
                        free
                    }
                    _ => 0,
                };
                let cur_free = if slot.epoch == self.epoch {
                    slot.free
                } else {
                    0
                };
                if cur_free != snap_free && (cur_free > horizon || snap_free > horizon) {
                    return false;
                }
            }
            if si != snap.links.len() {
                return false;
            }
        }
        // FIFOs likewise; parked queues are recorded in (link id, queue
        // position) order and must match exactly.
        let mut parked_seen = 0usize;
        {
            let mut si = 0usize;
            for (id, slot) in self.fifo[..snap.n_links].iter().enumerate() {
                let (snap_busy, snap_clear) = match snap.fifo.get(si) {
                    Some(&(sid, busy, clear)) if sid as usize == id => {
                        si += 1;
                        (busy, clear)
                    }
                    _ => (false, 0),
                };
                let live = slot.epoch == self.epoch;
                let (cur_busy, cur_clear) = if live {
                    (slot.busy, slot.clear)
                } else {
                    (false, 0)
                };
                if cur_busy != snap_busy {
                    return false;
                }
                if cur_clear != snap_clear && (cur_clear > horizon || snap_clear > horizon) {
                    return false;
                }
                if !live {
                    continue;
                }
                for &(p, hop, arrival) in &slot.parked {
                    match snap.parked.get(parked_seen) {
                        Some(&(l, sp, shop, sarr))
                            if l as usize == id && (sp, shop, sarr) == (p, hop, arrival) =>
                        {
                            parked_seen += 1;
                        }
                        _ => return false,
                    }
                }
            }
            if si != snap.fifo.len() {
                return false;
            }
        }
        if parked_seen != snap.parked.len() {
            return false;
        }
        let words = n_packets.div_ceil(64);
        if self.delivered_mask[..words] != snap.delivered_mask[..words] {
            return false;
        }
        for p in 0..n_packets {
            if self.delivered_mask[p / 64] >> (p % 64) & 1 == 1 {
                continue;
            }
            if self.pending[p] != snap.pending[p] {
                return false;
            }
            // `ready` is consumed the moment `pending` hits zero (the
            // inject event is pushed with it); afterwards the cell is
            // dead and residue from rescheduled predecessors is fine.
            if self.pending[p] > 0 && self.ready[p] != snap.ready[p] {
                return false;
            }
        }
        heap_buf.clear();
        heap_buf.extend(self.queue.iter_keys());
        heap_buf.sort_unstable();
        heap_buf[..] == snap.heap[..]
    }

    /// Captures the complete mid-run engine state into `snap` (epoch-stale
    /// slots normalize to their reset values), so an incremental evaluator
    /// can later [`Self::restore_from`] it and resume the event loop
    /// mid-stream. `n_links`/`n_packets` bound the instance being run.
    pub(crate) fn capture_into(&self, n_links: usize, n_packets: usize, snap: &mut EngineSnapshot) {
        snap.links.clear();
        snap.fifo.clear();
        snap.parked.clear();
        snap.pending.clear();
        snap.ready.clear();
        snap.heap.clear();
        snap.n_links = n_links;
        // Sparse: only slots the run has touched. Early-timeline
        // captures (where the dense checkpoint grid lives) record a
        // handful of entries instead of the whole mesh.
        for (id, slot) in self.links[..n_links].iter().enumerate() {
            if slot.epoch == self.epoch {
                snap.links.push((id as u32, slot.free, slot.traversals));
            }
            let f = &self.fifo[id];
            if f.epoch == self.epoch {
                snap.fifo.push((id as u32, f.busy, f.clear));
                for &(p, hop, arrival) in &f.parked {
                    snap.parked.push((id as u32, p, hop, arrival));
                }
            }
        }
        snap.pending.extend_from_slice(&self.pending[..n_packets]);
        snap.ready.extend_from_slice(&self.ready[..n_packets]);
        snap.delivered_mask.clear();
        snap.delivered_mask
            .extend_from_slice(&self.delivered_mask[..n_packets.div_ceil(64)]);
        // Stored sorted so `converged_with` can compare heaps directly
        // (restore order is irrelevant to a binary heap's semantics).
        snap.heap.extend(self.queue.iter_keys());
        snap.heap.sort_unstable();
        snap.tail_texec = None;
    }

    /// Restores engine state captured by [`Self::capture_into`], bumping
    /// the epoch so that untouched slots beyond the snapshot reset lazily.
    /// `spans` and `flits` are *not* part of a snapshot — the caller
    /// re-resolves them for the mapping it is about to run.
    pub(crate) fn restore_from(&mut self, snap: &EngineSnapshot) {
        // Bumping the epoch resets every slot lazily; only the sparse
        // touched entries are written back.
        self.epoch += 1;
        for &(id, free, traversals) in &snap.links {
            let slot = &mut self.links[id as usize];
            slot.epoch = self.epoch;
            slot.free = free;
            slot.traversals = traversals;
        }
        for &(id, busy, clear) in &snap.fifo {
            let slot = &mut self.fifo[id as usize];
            slot.epoch = self.epoch;
            slot.busy = busy;
            slot.clear = clear;
            slot.parked.clear();
        }
        for &(link, p, hop, arrival) in &snap.parked {
            self.fifo[link as usize].parked.push_back((p, hop, arrival));
        }
        self.pending[..snap.pending.len()].copy_from_slice(&snap.pending);
        self.ready[..snap.ready.len()].copy_from_slice(&snap.ready);
        self.delivered_mask[..snap.delivered_mask.len()].copy_from_slice(&snap.delivered_mask);
        self.queue.clear();
        for &key in &snap.heap {
            self.queue.push(key);
        }
    }

    /// The per-packet spans resolved by the most recent
    /// [`init_run`] (read side for the incremental evaluator's baseline
    /// bookkeeping).
    pub(crate) fn spans(&self) -> &[(u32, u32)] {
        &self.spans
    }

    /// Write access to the resolved per-packet spans (used by the
    /// incremental evaluator to patch rerouted packets in place).
    pub(crate) fn spans_mut(&mut self) -> &mut [(u32, u32)] {
        &mut self.spans
    }

    /// Primes the scratch for one run of an already-validated instance
    /// from precomputed per-packet buffers — the batch evaluator's
    /// replacement for the per-call workload pass of [`init_run`].
    /// `seeds` are the packed start events.
    pub(crate) fn prime_run(
        &mut self,
        n_links: usize,
        n_packets: usize,
        flits: &[u64],
        pending: &[u32],
        spans: &[(u32, u32)],
        seeds: &[u128],
    ) {
        self.ensure(n_links, n_packets);
        // noc-verify: allow(PANIC01) — ensure() has just grown every buffer to at least n_packets, and the batch packer hands slices of exactly n_packets entries
        self.flits[..n_packets].copy_from_slice(flits);
        // noc-verify: allow(PANIC01) — same invariant: buffers sized by ensure(), source slices exactly n_packets long
        self.pending[..n_packets].copy_from_slice(pending);
        // noc-verify: allow(PANIC01) — ready is resized alongside pending in ensure(), so the prefix is in bounds
        self.ready[..n_packets].fill(0);
        // noc-verify: allow(PANIC01) — same invariant: buffers sized by ensure(), source slices exactly n_packets long
        self.spans[..n_packets].copy_from_slice(spans);
        for &key in seeds {
            self.queue.push(key);
        }
    }

    /// Accounts one completed full run in [`RunStats`].
    pub(crate) fn note_run(&mut self, events: u64) {
        self.stats.runs += 1;
        self.stats.events += events;
    }
}

/// A frozen mid-run state of the cost engine: everything the event loop
/// mutates, captured between two event pops. Snapshots are plain data
/// (no epochs); buffers are reused across captures.
#[derive(Debug, Clone, Default)]
pub(crate) struct EngineSnapshot {
    /// Key of the last event processed before the capture (`0` when no
    /// event has been processed yet — see `events_done`).
    pub(crate) last_key: u128,
    /// Number of events processed before the capture.
    pub(crate) events_done: u64,
    /// Running `texec` (max delivery so far).
    pub(crate) texec: u64,
    /// Packets delivered so far.
    pub(crate) delivered: usize,
    /// Maximum delivery time over events *after* this snapshot, when
    /// known for the run the snapshot belongs to (`None` after the
    /// snapshot is grafted onto a different run by candidate promotion).
    pub(crate) tail_texec: Option<u64>,
    /// Dense-link table size of the instance the snapshot describes.
    n_links: usize,
    /// Touched links only, sorted by id: `(id, free, traversals)`.
    links: Vec<(u32, u64, u64)>,
    /// Touched FIFOs only, sorted by id: `(id, busy, clear)`.
    fifo: Vec<(u32, bool, u64)>,
    /// Parked FIFO arrivals: `(link, packet, hop, arrival)` in queue order.
    parked: Vec<(u32, u32, u32, u64)>,
    pending: Vec<u32>,
    ready: Vec<u64>,
    delivered_mask: Vec<u64>,
    heap: Vec<u128>,
}

/// Hooks into the event loop of [`run_loop`]; the no-op impl compiles
/// away, keeping [`schedule_cost`] as fast as before the refactor.
pub(crate) trait RunObserver {
    /// Called when an `Inject` event is popped (its time is the packet's
    /// injection *request* time, `ready + comp_cycles`).
    #[inline]
    fn record_inject(&mut self, _packet: usize, _time: u64) {}
    /// Called when a packet is delivered.
    #[inline]
    fn record_delivery(&mut self, _packet: usize, _delivery: u64) {}
    /// Called after each event is fully processed; `scratch` is
    /// quiescent. Returning `false` stops the loop early (the
    /// incremental evaluator's tail-convergence exit).
    #[inline]
    fn after_event(
        &mut self,
        _key: u128,
        _events_done: u64,
        _texec: u64,
        _delivered: usize,
        _scratch: &ScheduleScratch,
    ) -> bool {
        true
    }
}

/// Observer that does nothing (the plain [`schedule_cost`] path).
pub(crate) struct NoopObserver;

impl RunObserver for NoopObserver {}

/// Computes the application execution time of `cdcg` on `mesh` under
/// `mapping` — exactly [`schedule`](crate::schedule())'s `texec_cycles()`,
/// but allocation-free. See the module docs for the contract.
///
/// `cache` must have been built for `mesh` with the routing algorithm the
/// comparison schedule would use (XY for [`schedule`](crate::schedule())).
///
/// # Errors
///
/// Returns the same errors as [`schedule`](crate::schedule()):
/// [`SimError::CoreCountMismatch`] on a core-count mismatch and
/// [`SimError::Model`] for invalid mappings or out-of-mesh tiles.
///
/// # Panics
///
/// Panics if `cache` was built for a different mesh than `mesh`.
pub fn schedule_cost(
    cdcg: &Cdcg,
    mesh: &Mesh,
    mapping: &Mapping,
    params: &SimParams,
    cache: &RouteCache,
    scratch: &mut ScheduleScratch,
) -> Result<u64, SimError> {
    schedule_cost_with(cdcg, mesh, mapping, params, cache, scratch)
}

/// [`schedule_cost`] over any [`RouteSource`] — a dense [`RouteCache`]
/// or any tier of [`RouteProvider`]. Results are bit-identical across
/// sources built for the same mesh and routing algorithm: the engine
/// depends only on which walks share which links, not on the numbering.
///
/// # Errors
///
/// Same as [`schedule_cost`].
///
/// # Panics
///
/// Panics if `routes` was built for a different mesh than `mesh`.
pub fn schedule_cost_with<S: RouteSource + ?Sized>(
    cdcg: &Cdcg,
    mesh: &Mesh,
    mapping: &Mapping,
    params: &SimParams,
    routes: &S,
    scratch: &mut ScheduleScratch,
) -> Result<u64, SimError> {
    schedule_cost_inner(cdcg, mesh, mapping, params, routes, None, scratch)
}

/// [`schedule_cost_with`] accelerated by a per-evaluator [`WalkMemo`]:
/// route resolutions hit the memo's lock-free pair→span table instead of
/// the provider's shared cache, turning repeat pairs into a single probe.
/// Results are bit-identical to the unmemoized path — the memo replays
/// the exact walks the provider produced.
///
/// `routes` must be a *buffering* source (one that appends walks to the
/// caller's arena — any [`RouteProvider`] tier except dense; see
/// [`RouteProvider::memo_compatible`]).
///
/// # Errors
///
/// Same as [`schedule_cost`].
///
/// # Panics
///
/// Panics if `routes` was built for a different mesh than `mesh`.
pub fn schedule_cost_memoized<S: RouteSource + ?Sized>(
    cdcg: &Cdcg,
    mesh: &Mesh,
    mapping: &Mapping,
    params: &SimParams,
    routes: &S,
    memo: &mut WalkMemo,
    scratch: &mut ScheduleScratch,
) -> Result<u64, SimError> {
    schedule_cost_inner(cdcg, mesh, mapping, params, routes, Some(memo), scratch)
}

fn schedule_cost_inner<S: RouteSource + ?Sized>(
    cdcg: &Cdcg,
    mesh: &Mesh,
    mapping: &Mapping,
    params: &SimParams,
    routes: &S,
    memo: Option<&mut WalkMemo>,
    scratch: &mut ScheduleScratch,
) -> Result<u64, SimError> {
    init_run(cdcg, mesh, mapping, params, routes, memo, scratch)?;
    let walks = std::mem::take(&mut scratch.walks);
    let (texec, delivered, events_done) = run_loop(
        cdcg,
        params,
        routes.flat(&walks),
        scratch,
        0,
        0,
        0,
        &mut NoopObserver,
    );
    scratch.walks = walks;
    scratch.stats.runs += 1;
    scratch.stats.events += events_done;
    debug_assert_eq!(
        delivered,
        cdcg.packet_count(),
        "DAG execution must deliver all packets"
    );
    Ok(texec)
}

/// Validates the instance, sizes the scratch, resolves spans/flits and
/// seeds the start events — everything [`schedule_cost`] does before its
/// event loop. For buffering route sources the packet walks land in
/// `scratch.walks` (cleared first); dense sources leave it empty and
/// span their shared flat array.
///
/// With a `memo`, pair resolutions go through its lock-free table
/// ([`WalkMemo::resolve_into`]) instead of the provider's shared cache;
/// the memo's eviction checkpoint runs here, at the evaluation boundary.
/// Only valid for buffering sources (the memo replays appended walks).
pub(crate) fn init_run<S: RouteSource + ?Sized>(
    cdcg: &Cdcg,
    mesh: &Mesh,
    mapping: &Mapping,
    params: &SimParams,
    routes: &S,
    mut memo: Option<&mut WalkMemo>,
    scratch: &mut ScheduleScratch,
) -> Result<(), SimError> {
    assert_eq!(
        routes.mesh(),
        mesh,
        "route source was built for a different mesh"
    );
    if mapping.core_count() != cdcg.core_count() {
        return Err(SimError::CoreCountMismatch {
            mapping: mapping.core_count(),
            application: cdcg.core_count(),
        });
    }
    mapping.validate()?;
    for (_, tile) in mapping.assignments() {
        if !mesh.contains(tile) {
            return Err(SimError::Model(noc_model::ModelError::UnknownTile(tile)));
        }
    }

    let n_packets = cdcg.packet_count();
    assert!(
        n_packets < PACKET_LIMIT,
        "cost evaluation supports up to 2^30 packets"
    );
    scratch.ensure(routes.dense_link_count(), n_packets);
    scratch.walks.clear();
    if let Some(m) = memo.as_deref_mut() {
        m.begin_eval();
    }

    for id in cdcg.packet_ids() {
        let i = id.index();
        let p = cdcg.packet(id);
        let (src, dst) = (mapping.tile_of(p.src), mapping.tile_of(p.dst));
        // No-op for the healthy tiers; the fault-aware tier reports
        // `ModelError::MeshPartitioned` here instead of producing a
        // nonsense schedule over a degenerate walk.
        routes.validate_pair(src, dst)?;
        let span = match memo.as_deref_mut() {
            Some(m) => m.resolve_into(routes, src, dst, &mut scratch.walks),
            None => routes.walk_span(src, dst, &mut scratch.walks),
        };
        scratch.spans[i] = span;
        scratch.flits[i] = params.flits(p.bits).max(1);
        scratch.pending[i] = cdcg.predecessors(id).len() as u32;
        scratch.ready[i] = 0;
    }

    for id in cdcg.start_packets() {
        scratch
            .queue
            .push(pack(cdcg.packet(id).comp_cycles, id.index(), INJECT, 0));
    }
    Ok(())
}

/// The shared event loop of the cost engine. Starts from an initialized
/// (or [restored](ScheduleScratch::restore_from)) scratch and runs the
/// heap dry; `texec`/`delivered`/`events_done` seed the running tallies
/// when resuming mid-stream. Returns the final tallies.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_loop<O: RunObserver>(
    cdcg: &Cdcg,
    params: &SimParams,
    flat: &[u32],
    scratch: &mut ScheduleScratch,
    texec0: u64,
    delivered0: usize,
    events_done0: u64,
    observer: &mut O,
) -> (u64, usize, u64) {
    let tl = params.link_cycles;
    let tr = params.routing_cycles;
    let mut texec: u64 = texec0;
    let mut delivered = delivered0;
    let mut events_done = events_done0;

    while let Some(key) = scratch.queue.pop() {
        let time = (key >> 64) as u64;
        let p = ((key >> 34) as usize) & (PACKET_LIMIT - 1);
        let variant = (key >> 32) as u32 & 3;
        let hop = key as u32 as usize;
        let (start, len) = scratch.spans[p];
        // Resource walk of the packet: [injection, internals..., ejection].
        let path = &flat[start as usize..start as usize + len as usize];
        let k = path.len() - 1; // router count
        let n = scratch.flits[p];
        match variant {
            INJECT => {
                observer.record_inject(p, time);
                let slot = scratch.link(path[0]);
                let entry = if params.injection_serialization {
                    time.max(slot.free)
                } else {
                    time
                };
                slot.free = entry + n * tl;
                slot.traversals += 1;
                scratch.queue.push(pack(entry + tl, p, ROUTER_ENTRY, 0));
            }
            ROUTER_ENTRY => {
                // The feeding link of router `hop` is `path[hop]`; the
                // input-port FIFO does not apply to un-serialized
                // injection links (see `schedule`'s `fifo_applies`).
                let applies = hop > 0 || params.injection_serialization;
                if !applies {
                    scratch.queue.push(pack(time, p, DECIDE, hop as u32));
                } else {
                    let slot = scratch.fifo(path[hop]);
                    if slot.busy {
                        slot.parked.push_back((p as u32, hop as u32, time));
                    } else {
                        let eff = time.max(slot.clear);
                        slot.busy = true;
                        scratch.queue.push(pack(eff, p, DECIDE, hop as u32));
                    }
                }
            }
            DECIDE => {
                let last = hop + 1 == k;
                if last {
                    // Request the ejection link.
                    let request = time + tr;
                    let slot = scratch.link(path[k]);
                    let entry = if params.ejection_contention && slot.free > request {
                        slot.free + tr
                    } else {
                        request
                    };
                    slot.free = entry + n * tl;
                    slot.traversals += 1;
                    release_fifo(
                        scratch,
                        path[hop],
                        hop > 0 || params.injection_serialization,
                        entry + (n - 1) * tl + 1,
                    );
                    let delivery = entry + n * tl;
                    texec = texec.max(delivery);
                    delivered += 1;
                    scratch.delivered_mask[p / 64] |= 1 << (p % 64);
                    observer.record_delivery(p, delivery);
                    // Wake up dependent packets.
                    for &succ in cdcg.successors(PacketId::new(p)) {
                        let s = succ.index();
                        scratch.ready[s] = scratch.ready[s].max(delivery);
                        scratch.pending[s] -= 1;
                        if scratch.pending[s] == 0 {
                            scratch.queue.push(pack(
                                scratch.ready[s] + cdcg.packet(succ).comp_cycles,
                                s,
                                INJECT,
                                0,
                            ));
                        }
                    }
                } else {
                    scratch
                        .queue
                        .push(pack(time + tr, p, LINK_REQUEST, hop as u32));
                }
            }
            _ => {
                // LINK_REQUEST
                let slot = scratch.link(path[hop + 1]);
                let entry = if slot.free > time {
                    slot.free + tr
                } else {
                    time
                };
                slot.free = entry + n * tl;
                slot.traversals += 1;
                release_fifo(
                    scratch,
                    path[hop],
                    hop > 0 || params.injection_serialization,
                    entry + (n - 1) * tl + 1,
                );
                scratch
                    .queue
                    .push(pack(entry + tl, p, ROUTER_ENTRY, hop as u32 + 1));
            }
        }
        events_done += 1;
        if !observer.after_event(key, events_done, texec, delivered, scratch) {
            break;
        }
    }

    (texec, delivered, events_done)
}

/// Releases the FIFO head of `link` at cycle `clear`, waking the next
/// parked packet — the dense-id twin of `schedule`'s `release_fifo`.
fn release_fifo(scratch: &mut ScheduleScratch, link: u32, applies: bool, clear: u64) {
    if !applies {
        return;
    }
    let slot = scratch.fifo(link);
    debug_assert!(slot.busy, "owner released a tracked FIFO");
    if let Some((q, qhop, arrival)) = slot.parked.pop_front() {
        let eff = arrival.max(clear);
        scratch.queue.push(pack(eff, q as usize, DECIDE, qhop));
        // `q` now owns the FIFO head; remaining arrivals stay parked.
    } else {
        slot.busy = false;
        slot.clear = clear;
    }
}

/// A reusable cost-evaluation engine: one application plus a shared route
/// provider plus a private scratch.
///
/// Cloning an evaluator shares the (immutable) route provider via `Arc`
/// but gives the clone its own scratch **and its own walk memo**, so
/// clones can evaluate concurrently on different threads — the layout
/// parallel multi-start search uses. The memo is a per-evaluator,
/// lock-free pair→span table ([`WalkMemo`]); it is on by default for the
/// on-demand and fault-aware tiers, where resolving a pair means taking
/// a shared-cache lock or walking the mesh
/// ([`RouteProvider::local_memo_default`]).
#[derive(Debug, Clone)]
pub struct CostEvaluator<'a> {
    cdcg: &'a Cdcg,
    params: SimParams,
    routes: Arc<RouteProvider>,
    scratch: ScheduleScratch,
    memo: Option<WalkMemo>,
}

impl<'a> CostEvaluator<'a> {
    /// Builds an evaluator for `cdcg` on `mesh` under XY routing, with an
    /// automatically sized route provider (dense for small meshes,
    /// on-demand beyond — never fails, never panics on mesh size).
    pub fn new(cdcg: &'a Cdcg, mesh: &Mesh, params: &SimParams) -> Self {
        Self::with_provider(
            cdcg,
            params,
            Arc::new(RouteProvider::auto(mesh, RoutingKind::Xy)),
        )
    }

    /// Builds an evaluator sharing an existing dense route cache.
    pub fn with_cache(cdcg: &'a Cdcg, params: &SimParams, cache: Arc<RouteCache>) -> Self {
        Self::with_provider(cdcg, params, Arc::new(RouteProvider::from_cache(cache)))
    }

    /// Builds an evaluator sharing an existing route provider (any tier).
    pub fn with_provider(cdcg: &'a Cdcg, params: &SimParams, routes: Arc<RouteProvider>) -> Self {
        let memo = routes.local_memo_default().then(WalkMemo::new);
        Self {
            cdcg,
            params: *params,
            routes,
            scratch: ScheduleScratch::new(),
            memo,
        }
    }

    /// Enables or disables the per-evaluator walk memo. Enabling is a
    /// no-op under a dense provider (its spans index a shared flat array
    /// the memo cannot replay — [`RouteProvider::memo_compatible`]);
    /// disabling drops the table. Evaluation results are bit-identical
    /// either way.
    pub fn set_walk_memo(&mut self, enabled: bool) {
        self.memo = (enabled && self.routes.memo_compatible())
            .then(|| self.memo.take().unwrap_or_default());
    }

    /// Whether the walk memo is currently active.
    pub fn walk_memo_enabled(&self) -> bool {
        self.memo.is_some()
    }

    /// Cumulative hit/miss/eviction counters of the walk memo, or `None`
    /// when the memo is disabled. The hit ratio doubles as the
    /// route-dedup ratio the observability layer reports.
    pub fn walk_memo_stats(&self) -> Option<WalkMemoStats> {
        self.memo.as_ref().map(|m| m.stats())
    }

    /// The application being evaluated.
    pub fn cdcg(&self) -> &'a Cdcg {
        self.cdcg
    }

    /// The wormhole parameter set.
    pub fn params(&self) -> &SimParams {
        &self.params
    }

    /// The shared route provider.
    pub fn provider(&self) -> &Arc<RouteProvider> {
        &self.routes
    }

    /// `texec` of `mapping` in cycles; bit-exact with
    /// [`schedule`](crate::schedule())'s `texec_cycles()`.
    ///
    /// # Errors
    ///
    /// Same as [`schedule_cost`].
    pub fn texec_cycles(&mut self, mapping: &Mapping) -> Result<u64, SimError> {
        schedule_cost_inner(
            self.cdcg,
            self.routes.mesh(),
            mapping,
            &self.params,
            self.routes.as_ref(),
            self.memo.as_mut(),
            &mut self.scratch,
        )
    }

    /// `texec` of `mapping` in nanoseconds.
    ///
    /// # Errors
    ///
    /// Same as [`schedule_cost`].
    pub fn texec_ns(&mut self, mapping: &Mapping) -> Result<f64, SimError> {
        let cycles = self.texec_cycles(mapping)?;
        Ok(self.params.cycles_to_ns(cycles))
    }

    /// Cumulative run-loop telemetry of this evaluator (full evaluations
    /// served and events processed) — the sim-side hook search telemetry
    /// reads.
    pub fn run_stats(&self) -> RunStats {
        self.scratch.run_stats()
    }

    /// Per-link traversal counts of the most recent evaluation, for load
    /// diagnostics: `(link, traversals)` for every traversed link.
    pub fn link_traversals(&self) -> impl Iterator<Item = (Link, u64)> + '_ {
        (0..self.routes.dense_link_count() as u32).filter_map(move |id| {
            let n = self.scratch.link_traversals(id);
            // noc-verify: allow(PANIC01) — a traversal count above zero proves the id was produced by the encoder, so decoding cannot fail
            (n > 0).then(|| (self.routes.link_at(id).expect("traversed ids decode"), n))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::schedule;
    use noc_model::Mesh;

    fn figure1_cdcg() -> Cdcg {
        let mut g = Cdcg::new();
        let a = g.add_core("A");
        let b = g.add_core("B");
        let e = g.add_core("E");
        let f = g.add_core("F");
        let pab1 = g.add_packet(a, b, 6, 15).unwrap();
        let pbf1 = g.add_packet(b, f, 10, 40).unwrap();
        let pea1 = g.add_packet(e, a, 10, 20).unwrap();
        let pea2 = g.add_packet(e, a, 20, 15).unwrap();
        let paf1 = g.add_packet(a, f, 6, 15).unwrap();
        let pfb1 = g.add_packet(f, b, 6, 15).unwrap();
        g.add_dependence(pea1, pea2).unwrap();
        g.add_dependence(pab1, paf1).unwrap();
        g.add_dependence(pea1, paf1).unwrap();
        g.add_dependence(pbf1, pfb1).unwrap();
        g.add_dependence(paf1, pfb1).unwrap();
        g
    }

    #[test]
    fn packed_keys_order_exactly_like_events() {
        // The bit-exactness contract hangs on `pack` being order-isomorphic
        // to the derived `Ord` of `crate::event::Event`. Enumerate a grid
        // of events (all variants, several hops/packets/times, including
        // equal-field ties) and compare the two orderings pairwise.
        use crate::event::{Event, Phase};
        let phases = [
            (Phase::Inject, INJECT, 0u32),
            (Phase::RouterEntry(0), ROUTER_ENTRY, 0),
            (Phase::RouterEntry(3), ROUTER_ENTRY, 3),
            (Phase::Decide(0), DECIDE, 0),
            (Phase::Decide(3), DECIDE, 3),
            (Phase::LinkRequest(0), LINK_REQUEST, 0),
            (Phase::LinkRequest(7), LINK_REQUEST, 7),
        ];
        let mut all: Vec<(Event, u128)> = Vec::new();
        for time in [0u64, 1, 5, u64::MAX] {
            for packet in [0usize, 1, 42, PACKET_LIMIT - 1] {
                for &(phase, variant, hop) in &phases {
                    all.push((
                        Event {
                            time,
                            packet,
                            phase,
                        },
                        pack(time, packet, variant, hop),
                    ));
                }
            }
        }
        for (ea, ka) in &all {
            for (eb, kb) in &all {
                assert_eq!(
                    ea.cmp(eb),
                    ka.cmp(kb),
                    "ordering diverges for {ea:?} vs {eb:?}"
                );
            }
        }
    }

    #[test]
    fn matches_full_schedule_on_paper_example() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let params = SimParams::paper_example();
        let mut eval = CostEvaluator::new(&cdcg, &mesh, &params);
        for tiles in [[1, 0, 3, 2], [3, 0, 1, 2], [0, 1, 2, 3], [2, 3, 0, 1]] {
            let mapping = Mapping::from_tiles(&mesh, tiles.map(TileId::new)).unwrap();
            let full = schedule(&cdcg, &mesh, &mapping, &params).unwrap();
            assert_eq!(
                eval.texec_cycles(&mapping).unwrap(),
                full.texec_cycles(),
                "tiles {tiles:?}"
            );
        }
    }

    #[test]
    fn matches_full_schedule_across_parameter_sets() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let mapping = Mapping::from_tiles(&mesh, [1, 0, 3, 2].map(TileId::new)).unwrap();
        for (tr, tl, flit, ej, inj) in [
            (2, 1, 1, false, true),
            (4, 1, 1, false, true),
            (2, 3, 1, false, true),
            (2, 1, 16, false, true),
            (2, 1, 1, true, true),
            (2, 1, 1, false, false),
            (5, 2, 8, true, false),
        ] {
            let params = SimParams {
                routing_cycles: tr,
                link_cycles: tl,
                flit_width_bits: flit,
                ejection_contention: ej,
                injection_serialization: inj,
                ..SimParams::paper_example()
            };
            let mut eval = CostEvaluator::new(&cdcg, &mesh, &params);
            let full = schedule(&cdcg, &mesh, &mapping, &params).unwrap();
            assert_eq!(
                eval.texec_cycles(&mapping).unwrap(),
                full.texec_cycles(),
                "params {params:?}"
            );
        }
    }

    #[test]
    fn scratch_reuse_is_stateless() {
        // Evaluating A, then B, then A again must give A's result twice.
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let params = SimParams::paper_example();
        let mut eval = CostEvaluator::new(&cdcg, &mesh, &params);
        let a = Mapping::from_tiles(&mesh, [1, 0, 3, 2].map(TileId::new)).unwrap();
        let b = Mapping::from_tiles(&mesh, [3, 0, 1, 2].map(TileId::new)).unwrap();
        let first = eval.texec_cycles(&a).unwrap();
        assert_eq!(eval.texec_cycles(&b).unwrap(), 90);
        assert_eq!(eval.texec_cycles(&a).unwrap(), first);
        assert_eq!(first, 100);
    }

    #[test]
    fn run_stats_count_evaluations_and_events() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let params = SimParams::paper_example();
        let mut eval = CostEvaluator::new(&cdcg, &mesh, &params);
        assert_eq!(eval.run_stats(), RunStats::default());
        let a = Mapping::from_tiles(&mesh, [1, 0, 3, 2].map(TileId::new)).unwrap();
        eval.texec_cycles(&a).unwrap();
        let after_one = eval.run_stats();
        assert_eq!(after_one.runs, 1);
        assert!(after_one.events > 0, "the run must process events");
        eval.texec_cycles(&a).unwrap();
        let after_two = eval.run_stats();
        assert_eq!(after_two.runs, 2);
        // Identical runs process identical event counts; the counter is
        // cumulative and monotone.
        assert_eq!(after_two.events, 2 * after_one.events);
    }

    #[test]
    fn traversal_counts_match_packet_paths() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let params = SimParams::paper_example();
        let mapping = Mapping::from_tiles(&mesh, [1, 0, 3, 2].map(TileId::new)).unwrap();
        let mut eval = CostEvaluator::new(&cdcg, &mesh, &params);
        eval.texec_cycles(&mapping).unwrap();
        let total: u64 = eval.link_traversals().map(|(_, n)| n).sum();
        let expected: u64 = schedule(&cdcg, &mesh, &mapping, &params)
            .unwrap()
            .packets()
            .iter()
            .map(|p| p.links.len() as u64)
            .sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn rejects_mismatched_mapping() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let params = SimParams::paper_example();
        let mut eval = CostEvaluator::new(&cdcg, &mesh, &params);
        let mapping = Mapping::identity(&mesh, 3).unwrap();
        assert!(matches!(
            eval.texec_cycles(&mapping),
            Err(SimError::CoreCountMismatch { .. })
        ));
    }

    #[test]
    fn empty_application_takes_zero_time() {
        let mut g = Cdcg::new();
        g.add_core("A");
        g.add_core("B");
        let mesh = Mesh::new(2, 2).unwrap();
        let params = SimParams::paper_example();
        let mapping = Mapping::identity(&mesh, 2).unwrap();
        let mut eval = CostEvaluator::new(&g, &mesh, &params);
        assert_eq!(eval.texec_cycles(&mapping).unwrap(), 0);
    }

    #[test]
    fn clones_share_the_cache_but_not_the_scratch() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let params = SimParams::paper_example();
        let eval = CostEvaluator::new(&cdcg, &mesh, &params);
        let mut clone_a = eval.clone();
        let mut clone_b = eval.clone();
        assert!(Arc::ptr_eq(clone_a.provider(), clone_b.provider()));
        let mapping = Mapping::from_tiles(&mesh, [1, 0, 3, 2].map(TileId::new)).unwrap();
        assert_eq!(clone_a.texec_cycles(&mapping).unwrap(), 100);
        assert_eq!(clone_b.texec_cycles(&mapping).unwrap(), 100);
    }
}
