//! # noc-sim
//!
//! Wormhole NoC timing engine for the DATE 2005 CDCM reproduction.
//!
//! Two independent implementations of the same timing model live here:
//!
//! * [`schedule`] — the paper's CDCM execution algorithm: an event-driven
//!   *interval scheduler* that walks every CDCG packet over its XY path,
//!   annotates each CRG resource with absolute occupancy intervals (the
//!   paper's "cost variable lists", Figure 3), arbitrates inter-router
//!   links FCFS and produces the application execution time `texec`.
//! * [`des`] — a flit-level, cycle-driven discrete-event simulator used to
//!   cross-validate the interval scheduler (and to explore bounded router
//!   buffers, which the analytic model cannot express).
//!
//! The interval scheduler additionally has a **cost-only fast path**,
//! [`cost`]: the same algorithm (shared event types, identical
//! arbitration and tie-breaking, bit-exact `texec`) evaluated without
//! materializing schedules, occupancy maps or contention logs, over
//! preallocated scratch state ([`ScheduleScratch`]) and a shared route
//! source — a dense [`noc_model::RouteCache`] or any tier of the
//! large-mesh [`noc_model::RouteProvider`]. The contract:
//!
//! * **Full evaluation** ([`schedule`]) — when the *artifacts* matter:
//!   occupancy lists, per-packet timelines, contention events, Gantt
//!   charts, paper-style reports. Allocates per call.
//! * **Cost-only evaluation** ([`schedule_cost`] / [`CostEvaluator`]) —
//!   when only the scalar cost matters, i.e. inside search loops that
//!   evaluate millions of candidate mappings. Allocation-free after
//!   warm-up, several times faster, and guaranteed to return exactly the
//!   full path's `texec_cycles()` on every input.
//! * **Incremental swap evaluation** ([`delta`] /
//!   [`IncrementalScheduler`]) — when the search loop proposes *tile
//!   swaps* against a current mapping: a dirty-set delta evaluator that
//!   restores a checkpointed prefix of the event timeline and re-runs
//!   only from the first route-changed injection, still bit-exact with
//!   [`schedule_cost`]. See the [`delta`] module docs for the dirty-set
//!   invariants and the fallback-to-full conditions.
//!
//! Supporting modules: [`params`] (the `tr`/`tl`/`λ`/flit-width parameter
//! set), [`wormhole`] (Equations 6–8 in closed form), [`gantt`] (the
//! timing diagrams of Figures 4–5) and [`analysis`] (link-load and
//! latency statistics).
//!
//! # Examples
//!
//! Scheduling a two-packet application:
//!
//! ```
//! use noc_model::{Cdcg, Mapping, Mesh};
//! use noc_sim::{schedule, SimParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut app = Cdcg::new();
//! let a = app.add_core("producer");
//! let b = app.add_core("consumer");
//! let first = app.add_packet(a, b, 4, 64)?;
//! let second = app.add_packet(a, b, 2, 32)?;
//! app.add_dependence(first, second)?;
//!
//! let mesh = Mesh::new(2, 1)?;
//! let mapping = Mapping::identity(&mesh, 2)?;
//! let sched = schedule(&app, &mesh, &mapping, &SimParams::paper_example())?;
//! assert!(sched.is_contention_free());
//! assert!(sched.texec_cycles() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod batch;
pub mod cost;
pub mod delta;
pub mod des;
pub mod error;
mod event;
pub mod gantt;
pub mod interval;
pub mod obs;
pub mod params;
mod queue;
pub mod resource;
pub mod schedule;
pub mod wormhole;

pub use batch::{BatchEvaluator, BatchStats, BATCH_SIZE_BUCKETS};
pub use cost::{
    schedule_cost, schedule_cost_memoized, schedule_cost_with, CostEvaluator, RunStats,
    ScheduleScratch,
};
pub use delta::{DeltaStats, IncrementalScheduler};
pub use error::SimError;
pub use interval::CycleInterval;
pub use params::SimParams;
pub use resource::{Occupancy, OccupancyMap, Resource};
pub use schedule::{schedule, schedule_with, ContentionEvent, PacketSchedule, Schedule};
