//! Simulation parameters of the wormhole timing model.

use serde::{Deserialize, Serialize};

/// Parameters of the wormhole NoC timing model (paper §3.2 and §4.1).
///
/// All timing quantities are expressed in clock cycles; [`clock_period_ns`]
/// (the paper's `λ`) converts cycle counts into wall-clock time at the
/// reporting boundary only, so scheduling stays integer-exact.
///
/// [`clock_period_ns`]: SimParams::clock_period_ns
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimParams {
    /// Clock period `λ` in nanoseconds.
    pub clock_period_ns: f64,
    /// Cycles a router needs to take a routing decision (`tr`).
    pub routing_cycles: u64,
    /// Cycles to transmit one flit through any link (`tl`), between tiles
    /// or between an IP core and its router.
    pub link_cycles: u64,
    /// Bits per flit; a `w`-bit packet becomes `ceil(w / flit_width_bits)`
    /// flits.
    pub flit_width_bits: u64,
    /// Whether the ejection (router → core) link serializes packets.
    ///
    /// The paper's model does **not** arbitrate ejection links — in
    /// Figure 3(b) two packets overlap on the link into core F and the
    /// mapping is still called contention-free — so the default is `false`.
    pub ejection_contention: bool,
    /// Whether the injection (core → router) link serializes packets from
    /// the same core. The paper arbitrates only inter-router links
    /// (core-side links are not contention resources, see the Figure 3(b)
    /// ejection overlap), so [`SimParams::new`] defaults to `false`;
    /// [`SimParams::paper_example`] keeps `true` because the worked
    /// example never exercises it and a physical core link is a single
    /// channel. The flit-level DES only supports `true`.
    pub injection_serialization: bool,
}

impl SimParams {
    /// The parameter set of the paper's worked example (§4.1):
    /// `tr = 2`, `tl = 1`, `λ = 1 ns`, one-bit flits, unbounded buffers.
    ///
    /// # Examples
    ///
    /// ```
    /// let p = noc_sim::SimParams::paper_example();
    /// assert_eq!(p.routing_cycles, 2);
    /// assert_eq!(p.flit_width_bits, 1);
    /// ```
    pub fn paper_example() -> Self {
        Self {
            clock_period_ns: 1.0,
            routing_cycles: 2,
            link_cycles: 1,
            flit_width_bits: 1,
            ejection_contention: false,
            injection_serialization: true,
        }
    }

    /// The benchmark-suite default: the paper's worked-example timing
    /// (`tr = 2`, `tl = 1`, `λ = 1 ns`, one-bit flits) and — matching the
    /// paper's model, which arbitrates only inter-router links — *no*
    /// serialization on the core-side links (see
    /// `injection_serialization`).
    pub fn new() -> Self {
        Self {
            injection_serialization: false,
            ..Self::paper_example()
        }
    }

    /// Number of flits of a `bits`-bit packet (`n_abq` in the paper,
    /// `ceil(bits / flit_width)`).
    ///
    /// # Panics
    ///
    /// Panics if `flit_width_bits` is zero.
    pub fn flits(&self, bits: u64) -> u64 {
        assert!(self.flit_width_bits > 0, "flit width must be non-zero");
        bits.div_ceil(self.flit_width_bits)
    }

    /// Converts a cycle count into nanoseconds using `λ`.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 * self.clock_period_ns
    }
}

impl Default for SimParams {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_values() {
        let p = SimParams::paper_example();
        assert_eq!(p.clock_period_ns, 1.0);
        assert_eq!(p.routing_cycles, 2);
        assert_eq!(p.link_cycles, 1);
        assert_eq!(p.flit_width_bits, 1);
        assert!(!p.ejection_contention);
        assert!(p.injection_serialization);
    }

    #[test]
    fn flit_count_rounds_up() {
        let mut p = SimParams::new();
        assert_eq!(p.flit_width_bits, 1);
        assert!(!p.injection_serialization);
        p.flit_width_bits = 16;
        assert_eq!(p.flits(1), 1);
        assert_eq!(p.flits(16), 1);
        assert_eq!(p.flits(17), 2);
        assert_eq!(p.flits(64), 4);
        assert_eq!(p.flits(0), 0);
    }

    #[test]
    fn one_bit_flits_are_identity() {
        let p = SimParams::paper_example();
        for bits in [1, 15, 20, 40] {
            assert_eq!(p.flits(bits), bits);
        }
    }

    #[test]
    fn cycles_to_ns_scales_by_lambda() {
        let mut p = SimParams::paper_example();
        assert_eq!(p.cycles_to_ns(100), 100.0);
        p.clock_period_ns = 0.5;
        assert_eq!(p.cycles_to_ns(100), 50.0);
    }

    #[test]
    fn default_equals_new() {
        assert_eq!(SimParams::default(), SimParams::new());
    }
}
