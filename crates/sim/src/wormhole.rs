//! Closed-form wormhole delay equations (paper Equations 6–8).
//!
//! These are the *uncontended* delays; the scheduler in
//! [`crate::schedule`] adds contention on top. They are exposed separately
//! because the CWM model (which cannot see contention) and several tests
//! use them directly.

use crate::params::SimParams;

/// Routing delay of a packet crossing `k` routers without contention
/// (Equation 6): `dR = (K·(tr + tl) + tl)` cycles — the time for the
/// header flit to travel from the source core to the destination core.
pub fn routing_delay_cycles(params: &SimParams, k: usize) -> u64 {
    k as u64 * (params.routing_cycles + params.link_cycles) + params.link_cycles
}

/// Packet (body) delay of an `n`-flit packet (Equation 7):
/// `dP = tl·(n − 1)` cycles — the time for the remaining flits to drain
/// behind the header.
pub fn packet_delay_cycles(params: &SimParams, flits: u64) -> u64 {
    params.link_cycles * flits.saturating_sub(1)
}

/// Total uncontended packet delay (Equation 8):
/// `d = (K·(tr + tl) + tl·n)` cycles, i.e. the sum of Equations 6 and 7.
pub fn total_delay_cycles(params: &SimParams, k: usize, flits: u64) -> u64 {
    debug_assert_eq!(
        routing_delay_cycles(params, k) + packet_delay_cycles(params, flits),
        k as u64 * (params.routing_cycles + params.link_cycles) + params.link_cycles * flits,
        "Eq. 8 must equal Eq. 6 + Eq. 7"
    );
    k as u64 * (params.routing_cycles + params.link_cycles) + params.link_cycles * flits
}

/// Total uncontended delay in nanoseconds (Equation 8 with the `λ`
/// factor applied).
pub fn total_delay_ns(params: &SimParams, k: usize, flits: u64) -> f64 {
    params.cycles_to_ns(total_delay_cycles(params, k, flits))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_delays() {
        // pAB1 in mapping (c): 15 one-bit flits across K = 2 routers with
        // tr = 2, tl = 1 → injected at 6, delivered at 27 (Figure 3(a)).
        let p = SimParams::paper_example();
        assert_eq!(total_delay_cycles(&p, 2, 15), 21);
        // pEA1: 20 flits across 2 routers → 26 cycles (10 → 36).
        assert_eq!(total_delay_cycles(&p, 2, 20), 26);
        // pAF1 in mapping (c): 15 flits across 3 routers → 24 cycles.
        assert_eq!(total_delay_cycles(&p, 3, 15), 24);
    }

    #[test]
    fn eq8_is_sum_of_eq6_and_eq7() {
        let p = SimParams::paper_example();
        for k in 1..6 {
            for n in 1..50 {
                assert_eq!(
                    total_delay_cycles(&p, k, n),
                    routing_delay_cycles(&p, k) + packet_delay_cycles(&p, n)
                );
            }
        }
    }

    #[test]
    fn single_flit_packet_has_header_delay_only() {
        let p = SimParams::paper_example();
        assert_eq!(packet_delay_cycles(&p, 1), 0);
        assert_eq!(total_delay_cycles(&p, 1, 1), routing_delay_cycles(&p, 1));
    }

    #[test]
    fn delay_in_ns_scales_with_lambda() {
        let mut p = SimParams::paper_example();
        p.clock_period_ns = 2.0;
        assert_eq!(total_delay_ns(&p, 2, 15), 42.0);
    }

    #[test]
    fn zero_flit_packet_delay_saturates() {
        let p = SimParams::paper_example();
        assert_eq!(packet_delay_cycles(&p, 0), 0);
    }
}
