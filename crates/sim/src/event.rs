//! Event and phase types shared by the two interval-model implementations.
//!
//! Both [`crate::schedule`] (full bookkeeping) and [`crate::cost`]
//! (cost-only fast path) drive the *same* event-driven algorithm. The
//! full scheduler orders its heap with the derived `Ord` below; the fast
//! path packs the same `(time, packet, phase)` triple into a `u128` key
//! whose integer ordering must stay equivalent — a unit test in
//! `crate::cost` compares the two orderings exhaustively, so any change
//! to the variant order or fields here fails that test instead of
//! silently desynchronizing the schedulers.

/// One pending simulator event, ordered by time then deterministic
/// tie-breakers (packet id, phase).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Event {
    pub time: u64,
    pub packet: usize,
    pub phase: Phase,
}

/// Progress marker of a packet inside the wormhole pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Phase {
    /// Request the injection link.
    Inject,
    /// Header enters router `hop` (joins the input-port FIFO).
    RouterEntry(usize),
    /// Header reaches the front of the input-port FIFO of router `hop`
    /// and the routing decision starts.
    Decide(usize),
    /// Request the output link of router `hop`.
    LinkRequest(usize),
}
