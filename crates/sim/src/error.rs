//! Error type of the timing engine.

use noc_model::ModelError;
use std::error::Error;
use std::fmt;

/// Errors produced by the scheduler and the flit-level simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The underlying model was inconsistent.
    Model(ModelError),
    /// The mapping covers a different number of cores than the application.
    CoreCountMismatch {
        /// Cores covered by the mapping.
        mapping: usize,
        /// Cores of the application graph.
        application: usize,
    },
    /// The flit-level simulator exceeded its cycle budget without
    /// delivering every packet (deadlock or livelock, e.g. with
    /// pathological bounded buffers).
    CycleLimitExceeded {
        /// Cycle at which the simulation gave up.
        limit: u64,
        /// Packets delivered when it gave up.
        delivered: usize,
        /// Total packets.
        total: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Model(e) => write!(f, "invalid model: {e}"),
            Self::CoreCountMismatch {
                mapping,
                application,
            } => write!(
                f,
                "mapping covers {mapping} cores but the application has {application}"
            ),
            Self::CycleLimitExceeded {
                limit,
                delivered,
                total,
            } => write!(
                f,
                "simulation exceeded {limit} cycles with {delivered}/{total} packets delivered"
            ),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for SimError {
    fn from(e: ModelError) -> Self {
        Self::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::CoreId;

    #[test]
    fn wraps_model_errors() {
        let err = SimError::from(ModelError::UnknownCore(CoreId::new(3)));
        assert!(err.to_string().contains("unknown core c3"));
        assert!(Error::source(&err).is_some());
    }

    #[test]
    fn mismatch_message() {
        let err = SimError::CoreCountMismatch {
            mapping: 3,
            application: 4,
        };
        assert!(err.to_string().contains('3'));
        assert!(err.to_string().contains('4'));
    }
}
