//! The CDCM execution algorithm: scheduling a CDCG onto a mapped mesh.
//!
//! This module implements the paper's §4 algorithm. Execution starts from
//! the vertices the `Start` vertex points to; a vertex may execute once all
//! of its input edges are free (all predecessor packets delivered); the
//! originating core then computes for the packet's `comp_cycles` and
//! injects it. Each packet walks its XY path, annotating every CRG
//! resource with the absolute interval it occupies (the *cost variable
//! lists* of the paper, rendered in Figure 3). When two packets compete
//! for the same inter-router link, the later requester is "contained into
//! the router input buffer" and its remaining hops are delayed. When all
//! paths reach `End`, the application execution time `texec` is known.
//!
//! ## Timing rules (validated against Figures 3–5, see DESIGN.md §2)
//!
//! With `tr` routing cycles, `tl` link cycles and `n` flits:
//!
//! * injection link busy `[t0, t0 + n·tl)`;
//! * a router receives the header one `tl` after the feeding link is
//!   entered, spends `tr` deciding, then requests the output link;
//! * a free link is entered immediately; a busy one is entered `tr` cycles
//!   after it frees (re-arbitration), FCFS by request time;
//! * every link is busy `n·tl` from entry; a router is busy from header
//!   arrival until its last flit starts on the output link;
//! * delivery = ejection-link entry + `n·tl`; the uncontended end-to-end
//!   delay reduces to Equation (8), `K(tr+tl) + tl·n` cycles;
//! * **input-port FIFO**: wormhole buffers are per input port, so a
//!   packet's header can only be routed once the previous packet that
//!   arrived through the same link has completely left the router. The
//!   paper's figures never exercise this (their overlapping transfers
//!   arrive on distinct ports), but the flit-level simulator in
//!   [`crate::des`] enforces it physically, and the two implementations
//!   agree cycle-exactly because this model tracks it too. FIFO waits
//!   are logged as [`ContentionEvent`]s on the *incoming* link.

use crate::error::SimError;
use crate::event::{Event, Phase};
use crate::interval::CycleInterval;
use crate::params::SimParams;
use crate::resource::{Occupancy, OccupancyMap, Resource};
use noc_model::{Cdcg, Link, Mapping, Mesh, PacketId, RoutingAlgorithm, TileId, XyRouting};
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// A contention incident: `packet` asked for `link` at `requested` but the
/// link was held by another packet, so it was granted only at `granted`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContentionEvent {
    /// Delayed packet.
    pub packet: PacketId,
    /// Contended link.
    pub link: Link,
    /// Cycle at which the packet first requested the link.
    pub requested: u64,
    /// Cycle at which the link was granted.
    pub granted: u64,
}

impl ContentionEvent {
    /// Cycles lost to this incident.
    pub fn delay(&self) -> u64 {
        self.granted - self.requested
    }
}

/// The complete timeline of one packet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PacketSchedule {
    /// The packet.
    pub packet: PacketId,
    /// Cycle at which every dependence was satisfied (0 for Start packets).
    pub ready: u64,
    /// Cycle at which injection was requested (`ready + comp_cycles`).
    pub inject_request: u64,
    /// Occupancy of each router on the path, in traversal order.
    pub routers: Vec<(TileId, CycleInterval)>,
    /// Occupancy of each link on the path (injection, internals, ejection),
    /// in traversal order.
    pub links: Vec<(Link, CycleInterval)>,
    /// Cycle at which the last flit reached the destination core.
    pub delivery: u64,
    /// Total cycles lost waiting for busy links.
    pub contention_cycles: u64,
}

impl PacketSchedule {
    /// Occupancy of the injection link.
    pub fn injection(&self) -> CycleInterval {
        self.links[0].1
    }

    /// Cycle at which the packet entered the network (its injection-link
    /// entry; equals `inject_request` unless the core link was busy).
    pub fn inject(&self) -> u64 {
        self.injection().start
    }

    /// End-to-end latency from injection to delivery, in cycles.
    pub fn latency(&self) -> u64 {
        self.delivery - self.inject()
    }

    /// Number of routers traversed (the paper's `K`).
    pub fn router_count(&self) -> usize {
        self.routers.len()
    }
}

/// Result of executing a CDCG on a mapped mesh: per-packet timelines,
/// per-resource occupancy lists, contention log and the application
/// execution time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    params: SimParams,
    packets: Vec<PacketSchedule>,
    occupancy: OccupancyMap,
    contention: Vec<ContentionEvent>,
    texec_cycles: u64,
}

impl Schedule {
    /// Application execution time in clock cycles (delivery of the last
    /// packet).
    pub fn texec_cycles(&self) -> u64 {
        self.texec_cycles
    }

    /// Application execution time in nanoseconds (`texec · λ`).
    pub fn texec_ns(&self) -> f64 {
        self.params.cycles_to_ns(self.texec_cycles)
    }

    /// The parameter set the schedule was produced with.
    pub fn params(&self) -> &SimParams {
        &self.params
    }

    /// Timeline of one packet.
    ///
    /// # Panics
    ///
    /// Panics if `packet` is out of range for the scheduled application.
    pub fn packet(&self, packet: PacketId) -> &PacketSchedule {
        &self.packets[packet.index()]
    }

    /// All packet timelines, indexed by packet id.
    pub fn packets(&self) -> &[PacketSchedule] {
        &self.packets
    }

    /// The cost variable lists: every resource with the packets that
    /// occupied it (paper Figure 3).
    pub fn occupancy(&self) -> &OccupancyMap {
        &self.occupancy
    }

    /// All contention incidents, in grant order.
    pub fn contention_events(&self) -> &[ContentionEvent] {
        &self.contention
    }

    /// Total cycles lost to contention across all packets.
    pub fn total_contention_cycles(&self) -> u64 {
        self.packets.iter().map(|p| p.contention_cycles).sum()
    }

    /// True if no packet ever waited for a resource (the property the
    /// paper highlights for the Figure 3(b) mapping).
    pub fn is_contention_free(&self) -> bool {
        self.contention.is_empty()
    }

    /// Renders the occupancy lists in the notation of the paper's
    /// Figure 3: `bits(src→dst):[start,end]` per resource.
    pub fn paper_annotations(&self, cdcg: &Cdcg) -> Vec<(Resource, Vec<String>)> {
        self.occupancy
            .iter()
            .map(|(res, occs)| {
                let mut sorted: Vec<&Occupancy> = occs.iter().collect();
                sorted.sort_by_key(|o| (o.interval.start, o.packet));
                let lines = sorted
                    .into_iter()
                    .map(|o| {
                        let p = cdcg.packet(o.packet);
                        let src = cdcg.core_name(p.src).unwrap_or("?");
                        let dst = cdcg.core_name(p.dst).unwrap_or("?");
                        format!("{}({src}→{dst}):{}", o.bits, o.interval)
                    })
                    .collect();
                (res, lines)
            })
            .collect()
    }
}

/// Schedules `cdcg` on `mesh` under `mapping` with XY routing.
///
/// This is the CDCM evaluation step of the paper: it produces everything
/// needed by the cost function of Equation (10) — the occupancy lists for
/// dynamic energy and `texec` for static energy.
///
/// # Errors
///
/// Returns [`SimError::CoreCountMismatch`] if the mapping and the
/// application disagree on the number of cores, and [`SimError::Model`] if
/// either structure fails validation.
///
/// # Examples
///
/// ```
/// use noc_model::{Cdcg, Mapping, Mesh, TileId};
/// use noc_sim::{schedule, SimParams};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut app = Cdcg::new();
/// let a = app.add_core("A");
/// let b = app.add_core("B");
/// app.add_packet(a, b, 6, 15)?;
/// let mesh = Mesh::new(2, 2)?;
/// let mapping = Mapping::identity(&mesh, 2)?;
/// let sched = schedule(&app, &mesh, &mapping, &SimParams::paper_example())?;
/// // Eq. 8: K=2 routers, 15 flits -> injected at 6, delivered at 6+21.
/// assert_eq!(sched.texec_cycles(), 27);
/// # Ok(())
/// # }
/// ```
pub fn schedule(
    cdcg: &Cdcg,
    mesh: &Mesh,
    mapping: &Mapping,
    params: &SimParams,
) -> Result<Schedule, SimError> {
    schedule_with(cdcg, mesh, mapping, params, &XyRouting)
}

/// Per-input-link FIFO state: either the link's last packet has fully
/// left its router (`Clear` at the given cycle), or a packet still owns
/// the FIFO head and later arrivals are parked behind it in order.
#[derive(Debug, Clone)]
enum FifoState {
    Clear(u64),
    Busy {
        parked: std::collections::VecDeque<(usize, usize, u64)>,
    },
}

/// Same as [`schedule`] with an explicit routing algorithm.
///
/// # Errors
///
/// See [`schedule`].
pub fn schedule_with(
    cdcg: &Cdcg,
    mesh: &Mesh,
    mapping: &Mapping,
    params: &SimParams,
    routing: &dyn RoutingAlgorithm,
) -> Result<Schedule, SimError> {
    if mapping.core_count() != cdcg.core_count() {
        return Err(SimError::CoreCountMismatch {
            mapping: mapping.core_count(),
            application: cdcg.core_count(),
        });
    }
    mapping.validate()?;
    for (_, tile) in mapping.assignments() {
        if !mesh.contains(tile) {
            return Err(SimError::Model(noc_model::ModelError::UnknownTile(tile)));
        }
    }

    let n_packets = cdcg.packet_count();
    let tl = params.link_cycles;
    let tr = params.routing_cycles;

    // Per-packet routed path and flit count.
    let paths: Vec<noc_model::Path> = cdcg
        .packet_ids()
        .map(|id| {
            let p = cdcg.packet(id);
            routing.route(mesh, mapping.tile_of(p.src), mapping.tile_of(p.dst))
        })
        .collect();
    let flits: Vec<u64> = cdcg
        .packet_ids()
        .map(|id| params.flits(cdcg.packet(id).bits).max(1))
        .collect();

    // Dependence bookkeeping.
    let mut pending: Vec<usize> = cdcg
        .packet_ids()
        .map(|id| cdcg.predecessors(id).len())
        .collect();
    let mut ready: Vec<u64> = vec![0; n_packets];

    // Resource free times and input-port FIFO states, keyed lazily.
    let mut link_free: std::collections::HashMap<Link, u64> = std::collections::HashMap::new();
    let mut fifo: std::collections::HashMap<Link, FifoState> = std::collections::HashMap::new();

    // Per-packet in-flight state.
    let mut router_entry: Vec<Vec<u64>> = paths.iter().map(|p| vec![0; p.router_count()]).collect();
    let mut schedules: Vec<PacketSchedule> = cdcg
        .packet_ids()
        .map(|id| PacketSchedule {
            packet: id,
            ready: 0,
            inject_request: 0,
            routers: Vec::new(),
            links: Vec::new(),
            delivery: 0,
            contention_cycles: 0,
        })
        .collect();

    let mut contention: Vec<ContentionEvent> = Vec::new();
    let mut queue: BinaryHeap<std::cmp::Reverse<Event>> = BinaryHeap::new();

    // The link a packet used to reach router `hop` (its input port there).
    let feeding_link = |p: usize, hop: usize| -> Link {
        let path = &paths[p];
        if hop == 0 {
            Link::Injection(path.source())
        } else {
            Link::between(path.routers()[hop - 1], path.routers()[hop])
        }
    };

    // Whether the input-port FIFO applies to arrivals over `link`. With
    // non-serialized injection the core link is an infinite-bandwidth
    // fiction, so its "FIFO" cannot be meaningfully ordered.
    let fifo_applies = |link: &Link| -> bool {
        match link {
            Link::Injection(_) => params.injection_serialization,
            _ => true,
        }
    };

    // Releases the FIFO head of `link` at cycle `clear` (the previous
    // packet's tail has left the router); wakes the next parked packet.
    let release_fifo = |fifo: &mut std::collections::HashMap<Link, FifoState>,
                        queue: &mut BinaryHeap<std::cmp::Reverse<Event>>,
                        contention: &mut Vec<ContentionEvent>,
                        schedules: &mut Vec<PacketSchedule>,
                        link: Link,
                        clear: u64| {
        if !fifo_applies(&link) {
            return;
        }
        let state = fifo.get_mut(&link).expect("owner released a tracked FIFO");
        match state {
            FifoState::Busy { parked } => {
                if let Some((q, qhop, arrival)) = parked.pop_front() {
                    let eff = arrival.max(clear);
                    if eff > arrival {
                        schedules[q].contention_cycles += eff - arrival;
                        contention.push(ContentionEvent {
                            packet: PacketId::new(q),
                            link,
                            requested: arrival,
                            granted: eff,
                        });
                    }
                    queue.push(std::cmp::Reverse(Event {
                        time: eff,
                        packet: q,
                        phase: Phase::Decide(qhop),
                    }));
                    // `q` now owns the FIFO head; remaining arrivals stay
                    // parked behind it.
                } else {
                    *state = FifoState::Clear(clear);
                }
            }
            FifoState::Clear(_) => unreachable!("release without an owner"),
        }
    };

    for id in cdcg.start_packets() {
        let comp = cdcg.packet(id).comp_cycles;
        schedules[id.index()].ready = 0;
        schedules[id.index()].inject_request = comp;
        queue.push(std::cmp::Reverse(Event {
            time: comp,
            packet: id.index(),
            phase: Phase::Inject,
        }));
    }

    let mut texec: u64 = 0;
    let mut delivered = 0usize;

    while let Some(std::cmp::Reverse(ev)) = queue.pop() {
        let p = ev.packet;
        let path = &paths[p];
        let n = flits[p];
        match ev.phase {
            Phase::Inject => {
                let link = Link::Injection(path.source());
                let free = link_free.get(&link).copied().unwrap_or(0);
                let entry = if params.injection_serialization {
                    ev.time.max(free)
                } else {
                    ev.time
                };
                if entry > ev.time {
                    schedules[p].contention_cycles += entry - ev.time;
                    contention.push(ContentionEvent {
                        packet: PacketId::new(p),
                        link,
                        requested: ev.time,
                        granted: entry,
                    });
                }
                link_free.insert(link, entry + n * tl);
                schedules[p]
                    .links
                    .push((link, CycleInterval::new(entry, entry + n * tl)));
                queue.push(std::cmp::Reverse(Event {
                    time: entry + tl,
                    packet: p,
                    phase: Phase::RouterEntry(0),
                }));
            }
            Phase::RouterEntry(hop) => {
                // Header arrives and joins the input-port FIFO.
                router_entry[p][hop] = ev.time;
                let in_link = feeding_link(p, hop);
                if !fifo_applies(&in_link) {
                    queue.push(std::cmp::Reverse(Event {
                        time: ev.time,
                        packet: p,
                        phase: Phase::Decide(hop),
                    }));
                } else {
                    match fifo.entry(in_link).or_insert(FifoState::Clear(0)) {
                        FifoState::Clear(clear) => {
                            let eff = ev.time.max(*clear);
                            if eff > ev.time {
                                schedules[p].contention_cycles += eff - ev.time;
                                contention.push(ContentionEvent {
                                    packet: PacketId::new(p),
                                    link: in_link,
                                    requested: ev.time,
                                    granted: eff,
                                });
                            }
                            fifo.insert(
                                in_link,
                                FifoState::Busy {
                                    parked: std::collections::VecDeque::new(),
                                },
                            );
                            queue.push(std::cmp::Reverse(Event {
                                time: eff,
                                packet: p,
                                phase: Phase::Decide(hop),
                            }));
                        }
                        FifoState::Busy { parked } => {
                            parked.push_back((p, hop, ev.time));
                        }
                    }
                }
            }
            Phase::Decide(hop) => {
                let last = hop + 1 == path.router_count();
                if last {
                    // Request the ejection link.
                    let link = Link::Ejection(path.destination());
                    let request = ev.time + tr;
                    let free = link_free.get(&link).copied().unwrap_or(0);
                    let entry = if params.ejection_contention && free > request {
                        free + tr
                    } else {
                        request
                    };
                    if entry > request {
                        schedules[p].contention_cycles += entry - request;
                        contention.push(ContentionEvent {
                            packet: PacketId::new(p),
                            link,
                            requested: request,
                            granted: entry,
                        });
                    }
                    link_free.insert(link, entry + n * tl);
                    schedules[p]
                        .links
                        .push((link, CycleInterval::new(entry, entry + n * tl)));
                    let router = path.routers()[hop];
                    schedules[p].routers.push((
                        router,
                        CycleInterval::new(router_entry[p][hop], entry + (n - 1) * tl),
                    ));
                    release_fifo(
                        &mut fifo,
                        &mut queue,
                        &mut contention,
                        &mut schedules,
                        feeding_link(p, hop),
                        entry + (n - 1) * tl + 1,
                    );
                    let delivery = entry + n * tl;
                    schedules[p].delivery = delivery;
                    texec = texec.max(delivery);
                    delivered += 1;
                    // Wake up dependent packets.
                    let id = PacketId::new(p);
                    for &succ in cdcg.successors(id) {
                        let s = succ.index();
                        ready[s] = ready[s].max(delivery);
                        pending[s] -= 1;
                        if pending[s] == 0 {
                            let comp = cdcg.packet(succ).comp_cycles;
                            schedules[s].ready = ready[s];
                            schedules[s].inject_request = ready[s] + comp;
                            queue.push(std::cmp::Reverse(Event {
                                time: ready[s] + comp,
                                packet: s,
                                phase: Phase::Inject,
                            }));
                        }
                    }
                } else {
                    queue.push(std::cmp::Reverse(Event {
                        time: ev.time + tr,
                        packet: p,
                        phase: Phase::LinkRequest(hop),
                    }));
                }
            }
            Phase::LinkRequest(hop) => {
                let from = path.routers()[hop];
                let to = path.routers()[hop + 1];
                let link = Link::between(from, to);
                let free = link_free.get(&link).copied().unwrap_or(0);
                let entry = if free > ev.time { free + tr } else { ev.time };
                if entry > ev.time {
                    schedules[p].contention_cycles += entry - ev.time;
                    contention.push(ContentionEvent {
                        packet: PacketId::new(p),
                        link,
                        requested: ev.time,
                        granted: entry,
                    });
                }
                link_free.insert(link, entry + n * tl);
                schedules[p]
                    .links
                    .push((link, CycleInterval::new(entry, entry + n * tl)));
                schedules[p].routers.push((
                    from,
                    CycleInterval::new(router_entry[p][hop], entry + (n - 1) * tl),
                ));
                release_fifo(
                    &mut fifo,
                    &mut queue,
                    &mut contention,
                    &mut schedules,
                    feeding_link(p, hop),
                    entry + (n - 1) * tl + 1,
                );
                queue.push(std::cmp::Reverse(Event {
                    time: entry + tl,
                    packet: p,
                    phase: Phase::RouterEntry(hop + 1),
                }));
            }
        }
    }

    debug_assert_eq!(
        delivered, n_packets,
        "DAG execution must deliver all packets"
    );

    // Build the per-resource cost variable lists.
    let mut occupancy = OccupancyMap::new();
    for sched in &schedules {
        let bits = cdcg.packet(sched.packet).bits;
        for &(tile, interval) in &sched.routers {
            occupancy.record(
                Resource::Router(tile),
                Occupancy {
                    packet: sched.packet,
                    bits,
                    interval,
                },
            );
        }
        for &(link, interval) in &sched.links {
            occupancy.record(
                Resource::Link(link),
                Occupancy {
                    packet: sched.packet,
                    bits,
                    interval,
                },
            );
        }
    }
    occupancy.sort();
    contention.sort_by_key(|c| (c.granted, c.packet));

    Ok(Schedule {
        params: *params,
        packets: schedules,
        occupancy,
        contention,
        texec_cycles: texec,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::Mesh;

    /// Figure 1 application with cores in order A, B, E, F.
    fn figure1_cdcg() -> Cdcg {
        let mut g = Cdcg::new();
        let a = g.add_core("A");
        let b = g.add_core("B");
        let e = g.add_core("E");
        let f = g.add_core("F");
        let pab1 = g.add_packet(a, b, 6, 15).unwrap();
        let pbf1 = g.add_packet(b, f, 10, 40).unwrap();
        let pea1 = g.add_packet(e, a, 10, 20).unwrap();
        let pea2 = g.add_packet(e, a, 20, 15).unwrap();
        let paf1 = g.add_packet(a, f, 6, 15).unwrap();
        let pfb1 = g.add_packet(f, b, 6, 15).unwrap();
        g.add_dependence(pea1, pea2).unwrap();
        g.add_dependence(pab1, paf1).unwrap();
        g.add_dependence(pea1, paf1).unwrap();
        g.add_dependence(pbf1, pfb1).unwrap();
        g.add_dependence(paf1, pfb1).unwrap();
        g
    }

    fn mapping_c(mesh: &Mesh) -> Mapping {
        // Figure 1(c): A@τ2, B@τ1, E@τ4, F@τ3 (zero-based tiles 1,0,3,2).
        Mapping::from_tiles(mesh, [1, 0, 3, 2].map(TileId::new)).unwrap()
    }

    fn mapping_d(mesh: &Mesh) -> Mapping {
        // Figure 1(d): A@τ4, B@τ1, E@τ2, F@τ3.
        Mapping::from_tiles(mesh, [3, 0, 1, 2].map(TileId::new)).unwrap()
    }

    #[test]
    fn figure3a_execution_time_is_100() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let sched = schedule(&cdcg, &mesh, &mapping_c(&mesh), &SimParams::paper_example()).unwrap();
        assert_eq!(sched.texec_cycles(), 100);
        assert_eq!(sched.texec_ns(), 100.0);
        assert!(!sched.is_contention_free());
    }

    #[test]
    fn figure3b_execution_time_is_90() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let sched = schedule(&cdcg, &mesh, &mapping_d(&mesh), &SimParams::paper_example()).unwrap();
        assert_eq!(sched.texec_cycles(), 90);
        assert!(sched.is_contention_free());
    }

    #[test]
    fn figure3a_packet_intervals_match_paper() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let sched = schedule(&cdcg, &mesh, &mapping_c(&mesh), &SimParams::paper_example()).unwrap();

        // pAB1 (packet 0): inj [6,21], Rτ2 [7,23], link τ2→τ1 [9,24],
        // Rτ1 [10,26], ej [12,27], delivered 27.
        let pab1 = sched.packet(PacketId::new(0));
        assert_eq!(pab1.injection(), CycleInterval::new(6, 21));
        assert_eq!(pab1.routers[0].1, CycleInterval::new(7, 23));
        assert_eq!(pab1.links[1].1, CycleInterval::new(9, 24));
        assert_eq!(pab1.routers[1].1, CycleInterval::new(10, 26));
        assert_eq!(pab1.links[2].1, CycleInterval::new(12, 27));
        assert_eq!(pab1.delivery, 27);

        // pBF1 (packet 1): inj [10,50], Rτ1 [11,52], link τ1→τ3 [13,53],
        // Rτ3 [14,55], ej [16,56], delivered 56.
        let pbf1 = sched.packet(PacketId::new(1));
        assert_eq!(pbf1.injection(), CycleInterval::new(10, 50));
        assert_eq!(pbf1.routers[0].1, CycleInterval::new(11, 52));
        assert_eq!(pbf1.links[1].1, CycleInterval::new(13, 53));
        assert_eq!(pbf1.routers[1].1, CycleInterval::new(14, 55));
        assert_eq!(pbf1.links[2].1, CycleInterval::new(16, 56));
        assert_eq!(pbf1.delivery, 56);

        // pEA1 (packet 2): inj [10,30], Rτ4 [11,32], link τ4→τ2 [13,33],
        // Rτ2 [14,35], ej [16,36], delivered 36.
        let pea1 = sched.packet(PacketId::new(2));
        assert_eq!(pea1.injection(), CycleInterval::new(10, 30));
        assert_eq!(pea1.routers[0].1, CycleInterval::new(11, 32));
        assert_eq!(pea1.links[1].1, CycleInterval::new(13, 33));
        assert_eq!(pea1.routers[1].1, CycleInterval::new(14, 35));
        assert_eq!(pea1.links[2].1, CycleInterval::new(16, 36));
        assert_eq!(pea1.delivery, 36);

        // pEA2 (packet 3): ready at 36, comp 20 -> inj [56,71], delivered 77.
        let pea2 = sched.packet(PacketId::new(3));
        assert_eq!(pea2.ready, 36);
        assert_eq!(pea2.injection(), CycleInterval::new(56, 71));
        assert_eq!(pea2.routers[0].1, CycleInterval::new(57, 73));
        assert_eq!(pea2.links[1].1, CycleInterval::new(59, 74));
        assert_eq!(pea2.routers[1].1, CycleInterval::new(60, 76));
        assert_eq!(pea2.links[2].1, CycleInterval::new(62, 77));
        assert_eq!(pea2.delivery, 77);

        // pAF1 (packet 4): ready max(27, 36) = 36, inj [42,57],
        // Rτ2 [43,59], link τ2→τ1 [45,60], then *contention* at Rτ1:
        // link τ1→τ3 busy until 53 -> entry 55; Rτ1 [46,69],
        // link τ1→τ3 [55,70], Rτ3 [56,72], ej [58,73], delivered 73.
        let paf1 = sched.packet(PacketId::new(4));
        assert_eq!(paf1.ready, 36);
        assert_eq!(paf1.injection(), CycleInterval::new(42, 57));
        assert_eq!(paf1.routers[0].1, CycleInterval::new(43, 59));
        assert_eq!(paf1.links[1].1, CycleInterval::new(45, 60));
        assert_eq!(paf1.routers[1].1, CycleInterval::new(46, 69));
        assert_eq!(paf1.links[2].1, CycleInterval::new(55, 70));
        assert_eq!(paf1.routers[2].1, CycleInterval::new(56, 72));
        assert_eq!(paf1.links[3].1, CycleInterval::new(58, 73));
        assert_eq!(paf1.delivery, 73);
        assert_eq!(paf1.contention_cycles, 7);

        // pFB1 (packet 5): ready max(56, 73) = 73, comp 6 -> inj [79,94],
        // Rτ3 [80,96], link τ3→τ1 [82,97], Rτ1 [83,99], ej [85,100],
        // delivered 100.
        let pfb1 = sched.packet(PacketId::new(5));
        assert_eq!(pfb1.ready, 73);
        assert_eq!(pfb1.injection(), CycleInterval::new(79, 94));
        assert_eq!(pfb1.routers[0].1, CycleInterval::new(80, 96));
        assert_eq!(pfb1.links[1].1, CycleInterval::new(82, 97));
        assert_eq!(pfb1.routers[1].1, CycleInterval::new(83, 99));
        assert_eq!(pfb1.links[2].1, CycleInterval::new(85, 100));
        assert_eq!(pfb1.delivery, 100);
    }

    #[test]
    fn figure3b_packet_intervals_match_paper() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let sched = schedule(&cdcg, &mesh, &mapping_d(&mesh), &SimParams::paper_example()).unwrap();

        // pAB1: A@τ4 → B@τ1 crosses 3 routers: inj [6,21], Rτ4 [7,23],
        // τ4→τ3 [9,24], Rτ3 [10,26], τ3→τ1 [12,27], Rτ1 [13,29],
        // ej [15,30], delivered 30.
        let pab1 = sched.packet(PacketId::new(0));
        assert_eq!(pab1.injection(), CycleInterval::new(6, 21));
        assert_eq!(pab1.routers[0].1, CycleInterval::new(7, 23));
        assert_eq!(pab1.links[1].1, CycleInterval::new(9, 24));
        assert_eq!(pab1.routers[1].1, CycleInterval::new(10, 26));
        assert_eq!(pab1.links[2].1, CycleInterval::new(12, 27));
        assert_eq!(pab1.routers[2].1, CycleInterval::new(13, 29));
        assert_eq!(pab1.links[3].1, CycleInterval::new(15, 30));
        assert_eq!(pab1.delivery, 30);

        // pAF1: ready max(30, 36) = 36, inj [42,57], Rτ4 [43,59],
        // τ4→τ3 [45,60], Rτ3 [46,62], ej [48,63] — overlaps pBF1's
        // ejection [16,56] without contention (paper model).
        let paf1 = sched.packet(PacketId::new(4));
        assert_eq!(paf1.ready, 36);
        assert_eq!(paf1.injection(), CycleInterval::new(42, 57));
        assert_eq!(paf1.routers[1].1, CycleInterval::new(46, 62));
        assert_eq!(paf1.links[2].1, CycleInterval::new(48, 63));
        assert_eq!(paf1.delivery, 63);
        assert_eq!(paf1.contention_cycles, 0);

        // pBF1 ejection [16,56].
        let pbf1 = sched.packet(PacketId::new(1));
        assert_eq!(pbf1.links[2].1, CycleInterval::new(16, 56));

        // pFB1: ready max(56, 63) = 63, comp 6 -> inj [69,84], delivered 90.
        let pfb1 = sched.packet(PacketId::new(5));
        assert_eq!(pfb1.ready, 63);
        assert_eq!(pfb1.injection(), CycleInterval::new(69, 84));
        assert_eq!(pfb1.delivery, 90);
    }

    #[test]
    fn contention_event_log_matches_figure4() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let sched = schedule(&cdcg, &mesh, &mapping_c(&mesh), &SimParams::paper_example()).unwrap();
        assert_eq!(sched.contention_events().len(), 1);
        let ev = sched.contention_events()[0];
        assert_eq!(ev.packet, PacketId::new(4)); // pAF1
        assert_eq!(ev.link, Link::between(TileId::new(0), TileId::new(2)));
        assert_eq!(ev.requested, 48);
        assert_eq!(ev.granted, 55);
        assert_eq!(ev.delay(), 7);
        assert_eq!(sched.total_contention_cycles(), 7);
    }

    #[test]
    fn ejection_contention_flag_serializes_deliveries() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let mut params = SimParams::paper_example();
        params.ejection_contention = true;
        let sched = schedule(&cdcg, &mesh, &mapping_d(&mesh), &params).unwrap();
        // With strict ejection arbitration the Fig. 3(b) mapping is no
        // longer contention-free: pAF1 waits for pBF1 on the link into F.
        assert!(!sched.is_contention_free());
        assert!(sched.texec_cycles() > 90);
    }

    #[test]
    fn mismatched_mapping_is_rejected() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let mapping = Mapping::identity(&mesh, 3).unwrap();
        let err = schedule(&cdcg, &mesh, &mapping, &SimParams::paper_example());
        assert!(matches!(err, Err(SimError::CoreCountMismatch { .. })));
    }

    #[test]
    fn empty_application_takes_zero_time() {
        let mut g = Cdcg::new();
        g.add_core("A");
        g.add_core("B");
        let mesh = Mesh::new(2, 2).unwrap();
        let mapping = Mapping::identity(&mesh, 2).unwrap();
        let sched = schedule(&g, &mesh, &mapping, &SimParams::paper_example()).unwrap();
        assert_eq!(sched.texec_cycles(), 0);
        assert!(sched.is_contention_free());
    }

    #[test]
    fn uncontended_delivery_matches_equation_8() {
        // A single packet's latency must equal Eq. 8 exactly.
        let mut g = Cdcg::new();
        let a = g.add_core("A");
        let b = g.add_core("B");
        g.add_packet(a, b, 7, 64).unwrap();
        let mesh = Mesh::new(4, 4).unwrap();
        // Place A at (0,0) and B at (3,2): K = 6 routers.
        let mapping = Mapping::from_tiles(&mesh, [TileId::new(0), TileId::new(11)]).unwrap();
        let params = SimParams::paper_example();
        let sched = schedule(&g, &mesh, &mapping, &params).unwrap();
        let expected = crate::wormhole::total_delay_cycles(&params, 6, 64);
        assert_eq!(sched.packet(PacketId::new(0)).latency(), expected);
        assert_eq!(sched.texec_cycles(), 7 + expected);
    }

    #[test]
    fn injection_serialization_orders_same_core_packets() {
        // Two independent packets from the same core must share the
        // injection link.
        let mut g = Cdcg::new();
        let a = g.add_core("A");
        let b = g.add_core("B");
        let c = g.add_core("C");
        g.add_packet(a, b, 0, 10).unwrap();
        g.add_packet(a, c, 0, 10).unwrap();
        let mesh = Mesh::new(3, 1).unwrap();
        let mapping = Mapping::identity(&mesh, 3).unwrap();
        let params = SimParams::paper_example();
        let sched = schedule(&g, &mesh, &mapping, &params).unwrap();
        let i0 = sched.packet(PacketId::new(0)).injection();
        let i1 = sched.packet(PacketId::new(1)).injection();
        assert!(
            !i0.overlaps(&i1),
            "injection link must serialize {i0} vs {i1}"
        );

        let mut free = params;
        free.injection_serialization = false;
        let sched2 = schedule(&g, &mesh, &mapping, &free).unwrap();
        let j0 = sched2.packet(PacketId::new(0)).injection();
        let j1 = sched2.packet(PacketId::new(1)).injection();
        assert!(j0.overlaps(&j1), "serialization off must allow overlap");
    }

    #[test]
    fn occupancy_lists_cover_all_packets() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let sched = schedule(&cdcg, &mesh, &mapping_c(&mesh), &SimParams::paper_example()).unwrap();
        // Every packet contributes K router entries and K+1 link entries.
        let total_entries: usize = sched.occupancy().iter().map(|(_, occs)| occs.len()).sum();
        let expected: usize = sched
            .packets()
            .iter()
            .map(|p| p.routers.len() + p.links.len())
            .sum();
        assert_eq!(total_entries, expected);
    }

    #[test]
    fn paper_annotation_strings() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let sched = schedule(&cdcg, &mesh, &mapping_c(&mesh), &SimParams::paper_example()).unwrap();
        let annotations = sched.paper_annotations(&cdcg);
        let all: Vec<String> = annotations
            .iter()
            .flat_map(|(_, lines)| lines.clone())
            .collect();
        assert!(all.contains(&"15(A→B):[6,21]".to_string()));
        assert!(all.contains(&"15(A→F):[55,70]".to_string()));
        assert!(all.contains(&"15(F→B):[85,100]".to_string()));
    }

    #[test]
    fn input_port_fifo_delays_same_port_followers() {
        // Two packets cross the same link τ1→τ3 back to back with tr=4:
        // the follower's head reaches τ1's input FIFO while the leader is
        // still streaming to the core of τ3, and must wait for the
        // leader's tail to leave the router before its routing decision
        // starts — exactly what the flit-level DES enforces.
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let params = SimParams {
            routing_cycles: 4,
            ..SimParams::paper_example()
        };
        let sched = schedule(&cdcg, &mesh, &mapping_c(&mesh), &params).unwrap();

        // pBF1 (leader) enters the τ1→τ3 link at 15 and forwards its tail
        // out of router τ3 at 20+39 = 59; the FIFO clears at 60.
        let pbf1 = sched.packet(PacketId::new(1));
        assert_eq!(pbf1.links[1].1.start, 15);
        // pAF1 (follower) arrives at router τ3 on the same input link at
        // 57 and is FIFO-blocked until 60; ejection starts at 60+4.
        let paf1 = sched.packet(PacketId::new(4));
        assert_eq!(paf1.routers[2].1.start, 57);
        assert_eq!(paf1.links[3].1.start, 64);
        assert_eq!(paf1.delivery, 79);
        // The wait is logged as contention on the *incoming* link.
        let fifo_events: Vec<_> = sched
            .contention_events()
            .iter()
            .filter(|e| e.packet == PacketId::new(4))
            .collect();
        assert!(
            fifo_events
                .iter()
                .any(|e| e.link == Link::between(TileId::new(0), TileId::new(2))
                    && e.requested == 57
                    && e.granted == 60),
            "expected a FIFO wait on t0→t2, got {fifo_events:?}"
        );
    }

    #[test]
    fn fifo_does_not_fire_when_ports_differ() {
        // Figure 3(b): the two packets into F arrive through different
        // input ports of τ3, so no FIFO coupling exists and the mapping
        // stays contention-free (the paper's claim).
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let sched = schedule(&cdcg, &mesh, &mapping_d(&mesh), &SimParams::paper_example()).unwrap();
        assert!(sched.is_contention_free());
    }

    #[test]
    fn fifo_chains_three_packets_in_arrival_order() {
        // Three independent same-route packets from one core, serialized
        // injection: the input FIFO at the destination router must keep
        // arrival order and space the ejections by full packet times.
        let mut g = Cdcg::new();
        let a = g.add_core("A");
        let b = g.add_core("B");
        for _ in 0..3 {
            g.add_packet(a, b, 0, 8).unwrap();
        }
        let mesh = Mesh::new(2, 1).unwrap();
        let mapping = Mapping::identity(&mesh, 2).unwrap();
        let params = SimParams::paper_example(); // injection serialized
        let sched = schedule(&g, &mesh, &mapping, &params).unwrap();
        let deliveries: Vec<u64> = (0..3)
            .map(|i| sched.packet(PacketId::new(i)).delivery)
            .collect();
        assert!(deliveries[0] < deliveries[1]);
        assert!(deliveries[1] < deliveries[2]);
        // Consecutive ejections are at least one packet apart.
        for w in deliveries.windows(2) {
            assert!(w[1] - w[0] >= 8, "deliveries too close: {deliveries:?}");
        }
    }

    #[test]
    fn schedule_serializes_to_json() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let sched = schedule(&cdcg, &mesh, &mapping_c(&mesh), &SimParams::paper_example()).unwrap();
        let json = serde_json::to_string(&sched).expect("schedule serializes");
        let back: Schedule = serde_json::from_str(&json).expect("schedule deserializes");
        assert_eq!(back, sched);
        assert_eq!(back.texec_cycles(), 100);
    }

    #[test]
    fn yx_routing_changes_paths() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let params = SimParams::paper_example();
        let a = schedule(&cdcg, &mesh, &mapping_c(&mesh), &params).unwrap();
        let b = schedule_with(
            &cdcg,
            &mesh,
            &mapping_c(&mesh),
            &params,
            &noc_model::YxRouting,
        )
        .unwrap();
        // Under YX the A→F packet routes via τ4 instead of τ1, avoiding
        // the contention with B→F.
        assert!(b.is_contention_free());
        assert!(a.texec_cycles() > b.texec_cycles());
    }
}
