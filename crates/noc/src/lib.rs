//! # noc
//!
//! Umbrella crate for the reproduction of Marcon et al., *"Exploring NoC
//! Mapping Strategies: An Energy and Timing Aware Technique"* (DATE
//! 2005). It re-exports the whole public API:
//!
//! * [`model`] — application/architecture graphs: CWG, CDCG, mesh CRG,
//!   XY routing, mappings;
//! * [`sim`] — the wormhole timing engine (interval scheduler with
//!   contention, flit-level DES, Gantt diagrams);
//! * [`energy`] — bit-energy/static-power models and technology presets;
//! * [`mapping`] — the CWM/CDCM objectives and the classic search
//!   engines (simulated annealing, exhaustive, baselines);
//! * [`search`] — the metaheuristic subsystem: the [`mod@search`]
//!   strategy trait with adaptive restart scheduling, a permutation
//!   genetic algorithm, tabu search and a strategy portfolio;
//! * [`apps`] — workload generators and the Table 1 benchmark suite.
//!
//! # Quickstart
//!
//! ```
//! use noc::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's Figure 1 application on its 2x2 NoC.
//! let app = noc::apps::paper_example::figure1_cdcg();
//! let mesh = noc::apps::paper_example::mesh_2x2();
//!
//! // Search for the best CDCM mapping exhaustively (24 placements).
//! let explorer = Explorer::new(
//!     &app,
//!     mesh,
//!     Technology::paper_example(),
//!     SimParams::paper_example(),
//! );
//! let best = explorer.explore(Strategy::Cdcm, SearchMethod::Exhaustive);
//! assert!(best.cost <= 399.0); // at least as good as Figure 3(b)
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use noc_apps as apps;
pub use noc_energy as energy;
pub use noc_mapping as mapping;
pub use noc_model as model;
pub use noc_search as search;
pub use noc_sim as sim;

/// One-stop imports for applications using the library.
pub mod prelude {
    pub use noc_apps::{table1_suite, Benchmark, TgffConfig};
    pub use noc_energy::{
        evaluate_cdcm, evaluate_cwm, CdcmEvaluation, Energy, EnergyBreakdown, Power, Technology,
    };
    pub use noc_mapping::{
        anneal, exhaustive, Comparison, CostFunction, Explorer, SaConfig, SearchMethod,
        SearchOutcome, Strategy,
    };
    pub use noc_model::{
        Cdcg, CoreId, Cwg, Mapping, Mesh, ModelError, PacketId, TileId, XyRouting,
    };
    pub use noc_sim::{schedule, Schedule, SimError, SimParams};
}
