//! Communication resource graph (CRG) — Definition 3.
//!
//! The CRG models the target architecture: a `width × height` mesh of
//! tiles, each holding a router connected to its four neighbours and to the
//! local IP core. [`Mesh`] provides the vertex set (tiles, written `τ1 …
//! τn` in the paper, row-major and zero-based here) and the physical
//! resources packets traverse: routers and [`Link`]s.
//!
//! Links come in three kinds, mirroring the paper's energy components:
//! inter-router links (`ELbit` energy, contention-arbitrated), injection
//! links from a core into its router, and ejection links from a router to
//! its core (`ECbit` energy, negligible for large tiles; the paper's model
//! does not arbitrate them — see `noc-sim`).

use crate::error::ModelError;
use crate::ids::TileId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Cartesian coordinates of a tile: `x` grows eastwards (along a row),
/// `y` grows southwards (across rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Coord {
    /// Column index, `0 ≤ x < width`.
    pub x: usize,
    /// Row index, `0 ≤ y < height`.
    pub y: usize,
}

impl Coord {
    /// Creates a coordinate pair.
    pub const fn new(x: usize, y: usize) -> Self {
        Self { x, y }
    }

    /// Manhattan distance to another coordinate.
    pub fn manhattan(self, other: Coord) -> usize {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// A cardinal direction on the mesh, plus the local core port. Used by
/// routing and by the flit-level router model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Towards decreasing `y`.
    North,
    /// Towards increasing `y`.
    South,
    /// Towards increasing `x`.
    East,
    /// Towards decreasing `x`.
    West,
    /// The tile's own IP core.
    Local,
}

impl Direction {
    /// The opposite direction (`Local` is its own opposite).
    pub fn opposite(self) -> Self {
        match self {
            Self::North => Self::South,
            Self::South => Self::North,
            Self::East => Self::West,
            Self::West => Self::East,
            Self::Local => Self::Local,
        }
    }

    /// All four mesh directions (excluding `Local`).
    pub const CARDINAL: [Direction; 4] = [Self::North, Self::South, Self::East, Self::West];
}

/// A physical communication resource connecting two endpoints.
///
/// Inter-router links are directed: `Link::between(a, b)` and
/// `Link::between(b, a)` are distinct resources, matching a NoC with one
/// channel per direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Link {
    /// Core → router link of `tile` (used by every packet exactly once,
    /// when it is injected).
    Injection(TileId),
    /// Directed router → router channel.
    Internal {
        /// Upstream router.
        from: TileId,
        /// Downstream router.
        to: TileId,
    },
    /// Router → core link of `tile` (used once, at delivery).
    Ejection(TileId),
}

impl Link {
    /// Convenience constructor for an inter-router channel.
    pub const fn between(from: TileId, to: TileId) -> Self {
        Self::Internal { from, to }
    }

    /// True for inter-router channels (the resources the paper's contention
    /// model arbitrates).
    pub const fn is_internal(&self) -> bool {
        matches!(self, Self::Internal { .. })
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Injection(t) => write!(f, "inj[{t}]"),
            Self::Internal { from, to } => write!(f, "{from}→{to}"),
            Self::Ejection(t) => write!(f, "ej[{t}]"),
        }
    }
}

/// A 2-D mesh NoC: the vertex set of the CRG.
///
/// # Examples
///
/// ```
/// use noc_model::crg::{Coord, Mesh};
/// use noc_model::ids::TileId;
///
/// # fn main() -> Result<(), noc_model::ModelError> {
/// let mesh = Mesh::new(3, 2)?; // the paper's "3 x 2" NoC size
/// assert_eq!(mesh.tile_count(), 6);
/// let t = mesh.tile_at(Coord::new(2, 1)).unwrap();
/// assert_eq!(mesh.coord(t), Coord::new(2, 1));
/// assert_eq!(mesh.manhattan(TileId::new(0), t), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mesh {
    width: usize,
    height: usize,
}

impl Mesh {
    /// Creates a `width × height` mesh.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyMesh`] if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Result<Self, ModelError> {
        if width == 0 || height == 0 {
            return Err(ModelError::EmptyMesh);
        }
        Ok(Self { width, height })
    }

    /// Mesh width (number of columns, the paper's `M`).
    pub const fn width(&self) -> usize {
        self.width
    }

    /// Mesh height (number of rows, the paper's `N`).
    pub const fn height(&self) -> usize {
        self.height
    }

    /// Total number of tiles `n = width × height`.
    pub const fn tile_count(&self) -> usize {
        self.width * self.height
    }

    /// Iterator over all tiles in row-major order.
    pub fn tiles(&self) -> impl Iterator<Item = TileId> {
        (0..self.tile_count()).map(TileId::new)
    }

    /// Coordinates of a tile.
    ///
    /// # Panics
    ///
    /// Panics if `tile` lies outside the mesh.
    pub fn coord(&self, tile: TileId) -> Coord {
        assert!(tile.index() < self.tile_count(), "tile {tile} outside mesh");
        Coord::new(tile.index() % self.width, tile.index() / self.width)
    }

    /// Tile at the given coordinates, if inside the mesh.
    pub fn tile_at(&self, coord: Coord) -> Option<TileId> {
        (coord.x < self.width && coord.y < self.height)
            .then(|| TileId::new(coord.y * self.width + coord.x))
    }

    /// True if `tile` is a valid tile of this mesh.
    pub fn contains(&self, tile: TileId) -> bool {
        tile.index() < self.tile_count()
    }

    /// Manhattan (hop) distance between two tiles.
    ///
    /// # Panics
    ///
    /// Panics if either tile lies outside the mesh.
    pub fn manhattan(&self, a: TileId, b: TileId) -> usize {
        self.coord(a).manhattan(self.coord(b))
    }

    /// The neighbour of `tile` in `dir`, if it exists. `Local` has no
    /// neighbour tile.
    pub fn neighbor(&self, tile: TileId, dir: Direction) -> Option<TileId> {
        let c = self.coord(tile);
        let n = match dir {
            Direction::North => Coord::new(c.x, c.y.checked_sub(1)?),
            Direction::South => Coord::new(c.x, c.y + 1),
            Direction::East => Coord::new(c.x + 1, c.y),
            Direction::West => Coord::new(c.x.checked_sub(1)?, c.y),
            Direction::Local => return None,
        };
        self.tile_at(n)
    }

    /// Direction from `from` to an adjacent tile `to`.
    ///
    /// Returns `None` if the tiles are not mesh-adjacent.
    pub fn direction_between(&self, from: TileId, to: TileId) -> Option<Direction> {
        let a = self.coord(from);
        let b = self.coord(to);
        match (b.x as isize - a.x as isize, b.y as isize - a.y as isize) {
            (1, 0) => Some(Direction::East),
            (-1, 0) => Some(Direction::West),
            (0, 1) => Some(Direction::South),
            (0, -1) => Some(Direction::North),
            _ => None,
        }
    }

    /// All directed inter-router links of the mesh, in deterministic order.
    pub fn internal_links(&self) -> Vec<Link> {
        let mut links = Vec::new();
        for t in self.tiles() {
            for dir in [Direction::East, Direction::South] {
                if let Some(n) = self.neighbor(t, dir) {
                    links.push(Link::between(t, n));
                    links.push(Link::between(n, t));
                }
            }
        }
        links.sort();
        links
    }
}

impl fmt::Display for Mesh {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} x {} mesh", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_mesh() {
        assert_eq!(Mesh::new(0, 3).unwrap_err(), ModelError::EmptyMesh);
        assert_eq!(Mesh::new(3, 0).unwrap_err(), ModelError::EmptyMesh);
    }

    #[test]
    fn row_major_layout_matches_paper() {
        // Paper's 2x2 example: τ1 τ2 / τ3 τ4, i.e. tiles 0 1 / 2 3.
        let m = Mesh::new(2, 2).unwrap();
        assert_eq!(m.coord(TileId::new(0)), Coord::new(0, 0));
        assert_eq!(m.coord(TileId::new(1)), Coord::new(1, 0));
        assert_eq!(m.coord(TileId::new(2)), Coord::new(0, 1));
        assert_eq!(m.coord(TileId::new(3)), Coord::new(1, 1));
    }

    #[test]
    fn coord_tile_roundtrip() {
        let m = Mesh::new(5, 3).unwrap();
        for t in m.tiles() {
            assert_eq!(m.tile_at(m.coord(t)), Some(t));
        }
        assert_eq!(m.tile_at(Coord::new(5, 0)), None);
        assert_eq!(m.tile_at(Coord::new(0, 3)), None);
    }

    #[test]
    fn manhattan_distance() {
        let m = Mesh::new(4, 4).unwrap();
        let a = m.tile_at(Coord::new(0, 0)).unwrap();
        let b = m.tile_at(Coord::new(3, 2)).unwrap();
        assert_eq!(m.manhattan(a, b), 5);
        assert_eq!(m.manhattan(a, a), 0);
    }

    #[test]
    fn neighbors_on_borders() {
        let m = Mesh::new(2, 2).unwrap();
        let t0 = TileId::new(0);
        assert_eq!(m.neighbor(t0, Direction::North), None);
        assert_eq!(m.neighbor(t0, Direction::West), None);
        assert_eq!(m.neighbor(t0, Direction::East), Some(TileId::new(1)));
        assert_eq!(m.neighbor(t0, Direction::South), Some(TileId::new(2)));
        assert_eq!(m.neighbor(t0, Direction::Local), None);
    }

    #[test]
    fn direction_between_adjacent_tiles() {
        let m = Mesh::new(3, 3).unwrap();
        let c = m.tile_at(Coord::new(1, 1)).unwrap();
        assert_eq!(
            m.direction_between(c, m.tile_at(Coord::new(2, 1)).unwrap()),
            Some(Direction::East)
        );
        assert_eq!(
            m.direction_between(c, m.tile_at(Coord::new(1, 0)).unwrap()),
            Some(Direction::North)
        );
        assert_eq!(
            m.direction_between(c, m.tile_at(Coord::new(0, 0)).unwrap()),
            None
        );
    }

    #[test]
    fn direction_opposites() {
        for d in Direction::CARDINAL {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
        assert_eq!(Direction::Local.opposite(), Direction::Local);
    }

    #[test]
    fn internal_link_count() {
        // width*(height-1) vertical + (width-1)*height horizontal, x2 directions.
        let m = Mesh::new(3, 2).unwrap();
        assert_eq!(m.internal_links().len(), 2 * (3 + 2 * 2));
        let m = Mesh::new(1, 1).unwrap();
        assert!(m.internal_links().is_empty());
    }

    #[test]
    fn links_are_directional() {
        let a = TileId::new(0);
        let b = TileId::new(1);
        assert_ne!(Link::between(a, b), Link::between(b, a));
        assert!(Link::between(a, b).is_internal());
        assert!(!Link::Injection(a).is_internal());
    }

    #[test]
    fn display_formats() {
        let m = Mesh::new(4, 3).unwrap();
        assert_eq!(m.to_string(), "4 x 3 mesh");
        assert_eq!(Link::Injection(TileId::new(2)).to_string(), "inj[t2]");
        assert_eq!(
            Link::between(TileId::new(0), TileId::new(1)).to_string(),
            "t0→t1"
        );
    }
}
