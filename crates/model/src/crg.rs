//! Communication resource graph (CRG) — Definition 3.
//!
//! The CRG models the target architecture: a `width × height × depth`
//! mesh of tiles, each holding a router connected to its neighbours and
//! to the local IP core. [`Mesh`] provides the vertex set (tiles, written
//! `τ1 … τn` in the paper, row-major and zero-based here) and the
//! physical resources packets traverse: routers and [`Link`]s.
//!
//! The paper evaluates planar meshes; `depth = 1` (the [`Mesh::new`]
//! constructor) reproduces them exactly. `depth > 1` stacks `depth`
//! layers connected by vertical links — the 3D NoCs of the follow-on
//! literature (Jha et al., arXiv:1404.2512 / 1405.0109), where vertical
//! through-silicon vias (TSVs) carry a different per-bit energy than
//! horizontal wires (see `noc-energy`).
//!
//! Links come in three kinds, mirroring the paper's energy components:
//! inter-router links (`ELbit` energy, contention-arbitrated), injection
//! links from a core into its router, and ejection links from a router to
//! its core (`ECbit` energy, negligible for large tiles; the paper's model
//! does not arbitrate them — see `noc-sim`).

use crate::error::ModelError;
use crate::ids::TileId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Cartesian coordinates of a tile: `x` grows eastwards (along a row),
/// `y` grows southwards (across rows), `z` grows downwards through the
/// layer stack (`z = 0` for every tile of a planar mesh).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Coord {
    /// Column index, `0 ≤ x < width`.
    pub x: usize,
    /// Row index, `0 ≤ y < height`.
    pub y: usize,
    /// Layer index, `0 ≤ z < depth`.
    pub z: usize,
}

impl Coord {
    /// Creates a planar coordinate pair (`z = 0`) — the 2D constructor
    /// every depth-1 call site keeps using.
    pub const fn new(x: usize, y: usize) -> Self {
        Self { x, y, z: 0 }
    }

    /// Creates a full 3D coordinate triple.
    pub const fn new3(x: usize, y: usize, z: usize) -> Self {
        Self { x, y, z }
    }

    /// Manhattan distance to another coordinate (all three axes).
    pub fn manhattan(self, other: Coord) -> usize {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y) + self.z.abs_diff(other.z)
    }
}

impl fmt::Display for Coord {
    /// Layer-0 coordinates render as the classic pair `(x, y)`, so every
    /// depth-1 mesh keeps its existing textual output (golden files,
    /// examples); coordinates on deeper layers render as `(x, y, z)`.
    ///
    /// A `Coord` does not know its mesh, so on a 3D mesh layer-0 tiles
    /// still print the short form — accepted trade-off for keeping all
    /// planar output byte-identical. Use the `Debug` form (always three
    /// fields) where uniform width matters.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.z == 0 {
            write!(f, "({}, {})", self.x, self.y)
        } else {
            write!(f, "({}, {}, {})", self.x, self.y, self.z)
        }
    }
}

/// A direction on the mesh (four planar, two vertical), plus the local
/// core port. Used by routing and by the flit-level router model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Towards decreasing `y`.
    North,
    /// Towards increasing `y`.
    South,
    /// Towards increasing `x`.
    East,
    /// Towards decreasing `x`.
    West,
    /// Towards decreasing `z` (the layer above).
    Up,
    /// Towards increasing `z` (the layer below).
    Down,
    /// The tile's own IP core.
    Local,
}

impl Direction {
    /// The opposite direction (`Local` is its own opposite).
    pub fn opposite(self) -> Self {
        match self {
            Self::North => Self::South,
            Self::South => Self::North,
            Self::East => Self::West,
            Self::West => Self::East,
            Self::Up => Self::Down,
            Self::Down => Self::Up,
            Self::Local => Self::Local,
        }
    }

    /// The four planar mesh directions (excluding the vertical pair and
    /// `Local`).
    pub const CARDINAL: [Direction; 4] = [Self::North, Self::South, Self::East, Self::West];

    /// All six mesh directions of a 3D mesh (excluding `Local`).
    pub const AXIAL: [Direction; 6] = [
        Self::North,
        Self::South,
        Self::East,
        Self::West,
        Self::Up,
        Self::Down,
    ];
}

/// A physical communication resource connecting two endpoints.
///
/// Inter-router links are directed: `Link::between(a, b)` and
/// `Link::between(b, a)` are distinct resources, matching a NoC with one
/// channel per direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Link {
    /// Core → router link of `tile` (used by every packet exactly once,
    /// when it is injected).
    Injection(TileId),
    /// Directed router → router channel.
    Internal {
        /// Upstream router.
        from: TileId,
        /// Downstream router.
        to: TileId,
    },
    /// Router → core link of `tile` (used once, at delivery).
    Ejection(TileId),
}

impl Link {
    /// Convenience constructor for an inter-router channel.
    pub const fn between(from: TileId, to: TileId) -> Self {
        Self::Internal { from, to }
    }

    /// True for inter-router channels (the resources the paper's contention
    /// model arbitrates).
    pub const fn is_internal(&self) -> bool {
        matches!(self, Self::Internal { .. })
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Injection(t) => write!(f, "inj[{t}]"),
            Self::Internal { from, to } => write!(f, "{from}→{to}"),
            Self::Ejection(t) => write!(f, "ej[{t}]"),
        }
    }
}

/// A mesh NoC (2D plane or 3D layer stack): the vertex set of the CRG.
///
/// Tiles are numbered layer-major, row-major within a layer:
/// `index = z·width·height + y·width + x`. A `depth = 1` mesh is
/// index-for-index the paper's planar mesh.
///
/// # Examples
///
/// ```
/// use noc_model::crg::{Coord, Mesh};
/// use noc_model::ids::TileId;
///
/// # fn main() -> Result<(), noc_model::ModelError> {
/// let mesh = Mesh::new(3, 2)?; // the paper's "3 x 2" NoC size
/// assert_eq!(mesh.tile_count(), 6);
/// let t = mesh.tile_at(Coord::new(2, 1)).unwrap();
/// assert_eq!(mesh.coord(t), Coord::new(2, 1));
/// assert_eq!(mesh.manhattan(TileId::new(0), t), 3);
///
/// let cube = Mesh::new3(4, 4, 4)?; // a 3D NoC
/// assert_eq!(cube.tile_count(), 64);
/// assert_eq!(cube.coord(TileId::new(16)), Coord::new3(0, 0, 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mesh {
    width: usize,
    height: usize,
    depth: usize,
}

impl Mesh {
    /// Creates a planar `width × height` mesh (`depth = 1`) — the
    /// paper's architecture, bit-for-bit: every consumer of a depth-1
    /// mesh behaves exactly as before the mesh became dimension-aware.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyMesh`] if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Result<Self, ModelError> {
        Self::new3(width, height, 1)
    }

    /// Creates a `width × height × depth` mesh; `depth > 1` stacks
    /// layers connected by vertical (TSV) links.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyMesh`] if any dimension is zero.
    pub fn new3(width: usize, height: usize, depth: usize) -> Result<Self, ModelError> {
        if width == 0 || height == 0 || depth == 0 {
            return Err(ModelError::EmptyMesh);
        }
        Ok(Self {
            width,
            height,
            depth,
        })
    }

    /// Mesh width (number of columns, the paper's `M`).
    pub const fn width(&self) -> usize {
        self.width
    }

    /// Mesh height (number of rows, the paper's `N`).
    pub const fn height(&self) -> usize {
        self.height
    }

    /// Mesh depth (number of stacked layers; `1` for a planar mesh).
    pub const fn depth(&self) -> usize {
        self.depth
    }

    /// Number of tiles of one layer (`width × height`).
    pub const fn layer_size(&self) -> usize {
        self.width * self.height
    }

    /// Total number of tiles `n = width × height × depth`.
    pub const fn tile_count(&self) -> usize {
        self.width * self.height * self.depth
    }

    /// Iterator over all tiles in layer-major, row-major order.
    pub fn tiles(&self) -> impl Iterator<Item = TileId> {
        (0..self.tile_count()).map(TileId::new)
    }

    /// Coordinates of a tile.
    ///
    /// # Panics
    ///
    /// Panics if `tile` lies outside the mesh.
    pub fn coord(&self, tile: TileId) -> Coord {
        assert!(tile.index() < self.tile_count(), "tile {tile} outside mesh");
        let layer = self.layer_size();
        let planar = tile.index() % layer;
        Coord::new3(
            planar % self.width,
            planar / self.width,
            tile.index() / layer,
        )
    }

    /// Tile at the given coordinates, if inside the mesh.
    pub fn tile_at(&self, coord: Coord) -> Option<TileId> {
        (coord.x < self.width && coord.y < self.height && coord.z < self.depth)
            .then(|| TileId::new(coord.z * self.layer_size() + coord.y * self.width + coord.x))
    }

    /// True if `tile` is a valid tile of this mesh.
    pub fn contains(&self, tile: TileId) -> bool {
        tile.index() < self.tile_count()
    }

    /// Manhattan (hop) distance between two tiles.
    ///
    /// # Panics
    ///
    /// Panics if either tile lies outside the mesh.
    pub fn manhattan(&self, a: TileId, b: TileId) -> usize {
        self.coord(a).manhattan(self.coord(b))
    }

    /// The neighbour of `tile` in `dir`, if it exists. `Local` has no
    /// neighbour tile.
    pub fn neighbor(&self, tile: TileId, dir: Direction) -> Option<TileId> {
        let c = self.coord(tile);
        let n = match dir {
            Direction::North => Coord::new3(c.x, c.y.checked_sub(1)?, c.z),
            Direction::South => Coord::new3(c.x, c.y + 1, c.z),
            Direction::East => Coord::new3(c.x + 1, c.y, c.z),
            Direction::West => Coord::new3(c.x.checked_sub(1)?, c.y, c.z),
            Direction::Up => Coord::new3(c.x, c.y, c.z.checked_sub(1)?),
            Direction::Down => Coord::new3(c.x, c.y, c.z + 1),
            Direction::Local => return None,
        };
        self.tile_at(n)
    }

    /// Direction from `from` to an adjacent tile `to`.
    ///
    /// Returns `None` if the tiles are not mesh-adjacent.
    pub fn direction_between(&self, from: TileId, to: TileId) -> Option<Direction> {
        let a = self.coord(from);
        let b = self.coord(to);
        let dx = b.x as isize - a.x as isize;
        let dy = b.y as isize - a.y as isize;
        let dz = b.z as isize - a.z as isize;
        match (dx, dy, dz) {
            (1, 0, 0) => Some(Direction::East),
            (-1, 0, 0) => Some(Direction::West),
            (0, 1, 0) => Some(Direction::South),
            (0, -1, 0) => Some(Direction::North),
            (0, 0, 1) => Some(Direction::Down),
            (0, 0, -1) => Some(Direction::Up),
            _ => None,
        }
    }

    /// All directed inter-router links of the mesh, in deterministic order.
    pub fn internal_links(&self) -> Vec<Link> {
        let mut links = Vec::new();
        for t in self.tiles() {
            for dir in [Direction::East, Direction::South, Direction::Down] {
                if let Some(n) = self.neighbor(t, dir) {
                    links.push(Link::between(t, n));
                    links.push(Link::between(n, t));
                }
            }
        }
        links.sort();
        links
    }
}

impl fmt::Display for Mesh {
    /// Depth-1 meshes render as the classic `W x H mesh` (unchanged
    /// output for every planar consumer); deeper meshes append the depth.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.depth == 1 {
            write!(f, "{} x {} mesh", self.width, self.height)
        } else {
            write!(f, "{} x {} x {} mesh", self.width, self.height, self.depth)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_mesh() {
        assert_eq!(Mesh::new(0, 3).unwrap_err(), ModelError::EmptyMesh);
        assert_eq!(Mesh::new(3, 0).unwrap_err(), ModelError::EmptyMesh);
        assert_eq!(Mesh::new3(3, 3, 0).unwrap_err(), ModelError::EmptyMesh);
    }

    #[test]
    fn planar_constructor_is_depth_one() {
        let m = Mesh::new(3, 2).unwrap();
        assert_eq!(m.depth(), 1);
        assert_eq!(m, Mesh::new3(3, 2, 1).unwrap());
    }

    #[test]
    fn row_major_layout_matches_paper() {
        // Paper's 2x2 example: τ1 τ2 / τ3 τ4, i.e. tiles 0 1 / 2 3.
        let m = Mesh::new(2, 2).unwrap();
        assert_eq!(m.coord(TileId::new(0)), Coord::new(0, 0));
        assert_eq!(m.coord(TileId::new(1)), Coord::new(1, 0));
        assert_eq!(m.coord(TileId::new(2)), Coord::new(0, 1));
        assert_eq!(m.coord(TileId::new(3)), Coord::new(1, 1));
    }

    #[test]
    fn layer_major_layout_in_3d() {
        let m = Mesh::new3(2, 2, 2).unwrap();
        assert_eq!(m.coord(TileId::new(3)), Coord::new3(1, 1, 0));
        assert_eq!(m.coord(TileId::new(4)), Coord::new3(0, 0, 1));
        assert_eq!(m.coord(TileId::new(7)), Coord::new3(1, 1, 1));
    }

    #[test]
    fn coord_tile_roundtrip() {
        let m = Mesh::new(5, 3).unwrap();
        for t in m.tiles() {
            assert_eq!(m.tile_at(m.coord(t)), Some(t));
        }
        assert_eq!(m.tile_at(Coord::new(5, 0)), None);
        assert_eq!(m.tile_at(Coord::new(0, 3)), None);
        let cube = Mesh::new3(3, 4, 5).unwrap();
        for t in cube.tiles() {
            assert_eq!(cube.tile_at(cube.coord(t)), Some(t));
        }
        assert_eq!(cube.tile_at(Coord::new3(0, 0, 5)), None);
    }

    #[test]
    fn manhattan_distance() {
        let m = Mesh::new(4, 4).unwrap();
        let a = m.tile_at(Coord::new(0, 0)).unwrap();
        let b = m.tile_at(Coord::new(3, 2)).unwrap();
        assert_eq!(m.manhattan(a, b), 5);
        assert_eq!(m.manhattan(a, a), 0);
        let cube = Mesh::new3(4, 4, 4).unwrap();
        let a = cube.tile_at(Coord::new3(0, 0, 0)).unwrap();
        let b = cube.tile_at(Coord::new3(3, 2, 1)).unwrap();
        assert_eq!(cube.manhattan(a, b), 6);
    }

    #[test]
    fn neighbors_on_borders() {
        let m = Mesh::new(2, 2).unwrap();
        let t0 = TileId::new(0);
        assert_eq!(m.neighbor(t0, Direction::North), None);
        assert_eq!(m.neighbor(t0, Direction::West), None);
        assert_eq!(m.neighbor(t0, Direction::East), Some(TileId::new(1)));
        assert_eq!(m.neighbor(t0, Direction::South), Some(TileId::new(2)));
        assert_eq!(m.neighbor(t0, Direction::Up), None);
        assert_eq!(
            m.neighbor(t0, Direction::Down),
            None,
            "depth-1 has no layers"
        );
        assert_eq!(m.neighbor(t0, Direction::Local), None);
    }

    #[test]
    fn vertical_neighbors_in_3d() {
        let m = Mesh::new3(2, 2, 3).unwrap();
        let t0 = TileId::new(0);
        assert_eq!(m.neighbor(t0, Direction::Down), Some(TileId::new(4)));
        assert_eq!(m.neighbor(TileId::new(4), Direction::Up), Some(t0));
        assert_eq!(m.neighbor(TileId::new(8), Direction::Down), None);
        assert_eq!(
            m.direction_between(t0, TileId::new(4)),
            Some(Direction::Down)
        );
        assert_eq!(m.direction_between(TileId::new(4), t0), Some(Direction::Up));
        // Diagonal across layers is not adjacent.
        assert_eq!(m.direction_between(t0, TileId::new(5)), None);
    }

    #[test]
    fn direction_between_adjacent_tiles() {
        let m = Mesh::new(3, 3).unwrap();
        let c = m.tile_at(Coord::new(1, 1)).unwrap();
        assert_eq!(
            m.direction_between(c, m.tile_at(Coord::new(2, 1)).unwrap()),
            Some(Direction::East)
        );
        assert_eq!(
            m.direction_between(c, m.tile_at(Coord::new(1, 0)).unwrap()),
            Some(Direction::North)
        );
        assert_eq!(
            m.direction_between(c, m.tile_at(Coord::new(0, 0)).unwrap()),
            None
        );
    }

    #[test]
    fn direction_opposites() {
        for d in Direction::AXIAL {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
        assert_eq!(Direction::Local.opposite(), Direction::Local);
        assert_eq!(Direction::Up.opposite(), Direction::Down);
    }

    #[test]
    fn internal_link_count() {
        // width*(height-1) vertical + (width-1)*height horizontal, x2 directions.
        let m = Mesh::new(3, 2).unwrap();
        assert_eq!(m.internal_links().len(), 2 * (3 + 2 * 2));
        let m = Mesh::new(1, 1).unwrap();
        assert!(m.internal_links().is_empty());
        // 3D adds (depth-1)*width*height vertical pairs.
        let m = Mesh::new3(2, 2, 2).unwrap();
        // Per layer: 2*(1*2 + 2*1) = 8; two layers = 16; plus 2*4 TSVs.
        assert_eq!(m.internal_links().len(), 16 + 8);
    }

    #[test]
    fn links_are_directional() {
        let a = TileId::new(0);
        let b = TileId::new(1);
        assert_ne!(Link::between(a, b), Link::between(b, a));
        assert!(Link::between(a, b).is_internal());
        assert!(!Link::Injection(a).is_internal());
    }

    #[test]
    fn display_formats() {
        let m = Mesh::new(4, 3).unwrap();
        assert_eq!(m.to_string(), "4 x 3 mesh");
        assert_eq!(Mesh::new3(4, 3, 2).unwrap().to_string(), "4 x 3 x 2 mesh");
        assert_eq!(Link::Injection(TileId::new(2)).to_string(), "inj[t2]");
        assert_eq!(
            Link::between(TileId::new(0), TileId::new(1)).to_string(),
            "t0→t1"
        );
    }

    #[test]
    fn coord_display_renders_z_only_off_layer_zero() {
        assert_eq!(Coord::new(2, 1).to_string(), "(2, 1)");
        assert_eq!(Coord::new3(2, 1, 0).to_string(), "(2, 1)");
        assert_eq!(Coord::new3(2, 1, 3).to_string(), "(2, 1, 3)");
    }
}
