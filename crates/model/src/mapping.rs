//! Core-to-tile mappings.
//!
//! A [`Mapping`] is an injective association of every application core to a
//! tile of the mesh — the decision variable of the whole paper. The search
//! algorithms in `noc-mapping` explore the `n!/(n−k)!` mapping space by
//! swapping tiles; [`Mapping::swap_tiles`] supports that move natively
//! (including swaps with empty tiles).

use crate::error::ModelError;
use crate::ids::{CoreId, TileId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An injective placement of `k` cores onto `n ≥ k` tiles.
///
/// # Examples
///
/// ```
/// use noc_model::crg::Mesh;
/// use noc_model::ids::{CoreId, TileId};
/// use noc_model::mapping::Mapping;
///
/// # fn main() -> Result<(), noc_model::ModelError> {
/// let mesh = Mesh::new(2, 2)?;
/// // Paper Figure 1(c): B→τ1, A→τ2, F→τ3, E→τ4 with cores ordered A,B,E,F.
/// let mapping = Mapping::from_tiles(&mesh, vec![1, 0, 3, 2].into_iter().map(TileId::new))?;
/// assert_eq!(mapping.tile_of(CoreId::new(0)), TileId::new(1)); // A on τ2
/// assert_eq!(mapping.core_on(TileId::new(0)), Some(CoreId::new(1))); // τ1 holds B
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mapping {
    /// `tiles[c]` is the tile core `c` occupies.
    tiles: Vec<TileId>,
    /// `cores[t]` is the core on tile `t`, if any.
    cores: Vec<Option<CoreId>>,
}

impl Mapping {
    /// Builds a mapping from the tile assigned to each core, in `CoreId`
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::TooManyCores`] when more cores than tiles are
    /// supplied, [`ModelError::UnknownTile`] for out-of-mesh tiles and
    /// [`ModelError::TileConflict`] when two cores land on the same tile.
    pub fn from_tiles(
        mesh: &crate::crg::Mesh,
        tiles: impl IntoIterator<Item = TileId>,
    ) -> Result<Self, ModelError> {
        let tiles: Vec<TileId> = tiles.into_iter().collect();
        let n = mesh.tile_count();
        if tiles.len() > n {
            return Err(ModelError::TooManyCores {
                cores: tiles.len(),
                tiles: n,
            });
        }
        let mut cores: Vec<Option<CoreId>> = vec![None; n];
        for (i, &tile) in tiles.iter().enumerate() {
            if !mesh.contains(tile) {
                return Err(ModelError::UnknownTile(tile));
            }
            let core = CoreId::new(i);
            if let Some(prev) = cores[tile.index()] {
                return Err(ModelError::TileConflict {
                    tile,
                    first: prev,
                    second: core,
                });
            }
            cores[tile.index()] = Some(core);
        }
        Ok(Self { tiles, cores })
    }

    /// The identity mapping: core `i` on tile `i`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::TooManyCores`] when `core_count` exceeds the
    /// number of tiles.
    pub fn identity(mesh: &crate::crg::Mesh, core_count: usize) -> Result<Self, ModelError> {
        Self::from_tiles(mesh, (0..core_count).map(TileId::new))
    }

    /// Number of mapped cores.
    pub fn core_count(&self) -> usize {
        self.tiles.len()
    }

    /// Number of tiles of the underlying mesh.
    pub fn tile_count(&self) -> usize {
        self.cores.len()
    }

    /// Tile occupied by `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn tile_of(&self, core: CoreId) -> TileId {
        self.tiles[core.index()]
    }

    /// Core placed on `tile`, or `None` for an empty tile.
    ///
    /// # Panics
    ///
    /// Panics if `tile` is out of range.
    pub fn core_on(&self, tile: TileId) -> Option<CoreId> {
        self.cores[tile.index()]
    }

    /// Iterator over `(core, tile)` pairs in core order.
    pub fn assignments(&self) -> impl Iterator<Item = (CoreId, TileId)> + '_ {
        self.tiles
            .iter()
            .enumerate()
            .map(|(i, &t)| (CoreId::new(i), t))
    }

    /// Swaps the contents of two tiles (either may be empty). This is the
    /// elementary move of the annealer; swapping a core with an empty tile
    /// relocates it.
    ///
    /// # Panics
    ///
    /// Panics if either tile is out of range.
    pub fn swap_tiles(&mut self, a: TileId, b: TileId) {
        if a == b {
            return;
        }
        let ca = self.cores[a.index()];
        let cb = self.cores[b.index()];
        self.cores[a.index()] = cb;
        self.cores[b.index()] = ca;
        if let Some(c) = ca {
            self.tiles[c.index()] = b;
        }
        if let Some(c) = cb {
            self.tiles[c.index()] = a;
        }
    }

    /// Checks injectivity and consistency of the two internal indexes.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant; mappings produced through the
    /// public API are always valid, so this matters after deserialization.
    pub fn validate(&self) -> Result<(), ModelError> {
        let mut seen: Vec<Option<CoreId>> = vec![None; self.cores.len()];
        for (core, tile) in self.assignments() {
            if tile.index() >= self.cores.len() {
                return Err(ModelError::UnknownTile(tile));
            }
            if let Some(prev) = seen[tile.index()] {
                return Err(ModelError::TileConflict {
                    tile,
                    first: prev,
                    second: core,
                });
            }
            seen[tile.index()] = Some(core);
            if self.cores[tile.index()] != Some(core) {
                return Err(ModelError::IncompleteMapping {
                    mapped: self.cores.iter().flatten().count(),
                    expected: self.tiles.len(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .assignments()
            .map(|(c, t)| format!("{c}@{t}"))
            .collect();
        write!(f, "[{}]", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crg::Mesh;

    fn mesh() -> Mesh {
        Mesh::new(2, 2).unwrap()
    }

    #[test]
    fn identity_mapping() {
        let m = Mapping::identity(&mesh(), 3).unwrap();
        assert_eq!(m.core_count(), 3);
        assert_eq!(m.tile_of(CoreId::new(2)), TileId::new(2));
        assert_eq!(m.core_on(TileId::new(3)), None);
        m.validate().unwrap();
    }

    #[test]
    fn rejects_conflicts() {
        let err = Mapping::from_tiles(&mesh(), [TileId::new(1), TileId::new(1)]).unwrap_err();
        assert!(matches!(err, ModelError::TileConflict { .. }));
    }

    #[test]
    fn rejects_too_many_cores() {
        let err = Mapping::identity(&mesh(), 5).unwrap_err();
        assert_eq!(err, ModelError::TooManyCores { cores: 5, tiles: 4 });
    }

    #[test]
    fn rejects_out_of_mesh_tiles() {
        let err = Mapping::from_tiles(&mesh(), [TileId::new(7)]).unwrap_err();
        assert_eq!(err, ModelError::UnknownTile(TileId::new(7)));
    }

    #[test]
    fn swap_two_occupied_tiles() {
        let mut m = Mapping::identity(&mesh(), 2).unwrap();
        m.swap_tiles(TileId::new(0), TileId::new(1));
        assert_eq!(m.tile_of(CoreId::new(0)), TileId::new(1));
        assert_eq!(m.tile_of(CoreId::new(1)), TileId::new(0));
        m.validate().unwrap();
    }

    #[test]
    fn swap_with_empty_tile_relocates() {
        let mut m = Mapping::identity(&mesh(), 2).unwrap();
        m.swap_tiles(TileId::new(0), TileId::new(3));
        assert_eq!(m.tile_of(CoreId::new(0)), TileId::new(3));
        assert_eq!(m.core_on(TileId::new(0)), None);
        assert_eq!(m.core_on(TileId::new(3)), Some(CoreId::new(0)));
        m.validate().unwrap();
    }

    #[test]
    fn swap_is_involutive() {
        let mut m = Mapping::identity(&mesh(), 3).unwrap();
        let orig = m.clone();
        m.swap_tiles(TileId::new(1), TileId::new(2));
        m.swap_tiles(TileId::new(1), TileId::new(2));
        assert_eq!(m, orig);
    }

    #[test]
    fn swap_same_tile_is_noop() {
        let mut m = Mapping::identity(&mesh(), 2).unwrap();
        let orig = m.clone();
        m.swap_tiles(TileId::new(1), TileId::new(1));
        assert_eq!(m, orig);
    }

    #[test]
    fn display_shows_assignments() {
        let m = Mapping::identity(&mesh(), 2).unwrap();
        assert_eq!(m.to_string(), "[c0@t0, c1@t1]");
    }

    #[test]
    fn paper_mappings_are_valid() {
        // Cores ordered A,B,E,F. Mapping (c): A@τ2, B@τ1, E@τ4, F@τ3.
        let c = Mapping::from_tiles(&mesh(), [1, 0, 3, 2].map(TileId::new)).unwrap();
        c.validate().unwrap();
        // Mapping (d): A@τ4, B@τ1, E@τ2, F@τ3.
        let d = Mapping::from_tiles(&mesh(), [3, 0, 1, 2].map(TileId::new)).unwrap();
        d.validate().unwrap();
        assert_ne!(c, d);
    }
}
