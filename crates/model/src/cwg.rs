//! Communication weighted graph (CWG) — Definition 1 of the paper.
//!
//! A [`Cwg`] is a directed graph whose vertices are the application cores
//! and whose edges `(a, b)` are labelled with `w_ab`, the total number of
//! bits of all packets sent from core `a` to core `b`. It is the model used
//! by the CWM mapping strategy (and equivalent to the APCG of Hu &
//! Marculescu and the *core graph* of Murali & De Micheli).
//!
//! The CWG deliberately abstracts *when* communication happens; see
//! [`Cdcg`](crate::cdcg::Cdcg) for the dependence- and computation-aware
//! model.

use crate::error::ModelError;
use crate::ids::CoreId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A single weighted communication `src -> dst` carrying `bits` bits in
/// total over the whole application execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Communication {
    /// Producing core.
    pub src: CoreId,
    /// Consuming core.
    pub dst: CoreId,
    /// Total number of bits sent from `src` to `dst` (`w_ab` in the paper,
    /// always non-zero).
    pub bits: u64,
}

impl fmt::Display for Communication {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({}→{})", self.bits, self.src, self.dst)
    }
}

/// Communication weighted graph: cores plus total-bit-volume edges.
///
/// Cores are created with [`Cwg::add_core`] and referenced by [`CoreId`].
/// Edges accumulate: adding the same `(src, dst)` pair twice sums the bit
/// volumes, which makes it easy to *collapse* a packet-level
/// [`Cdcg`](crate::cdcg::Cdcg) into its CWG.
///
/// # Examples
///
/// ```
/// use noc_model::cwg::Cwg;
///
/// # fn main() -> Result<(), noc_model::ModelError> {
/// let mut cwg = Cwg::new();
/// let a = cwg.add_core("A");
/// let b = cwg.add_core("B");
/// cwg.add_communication(a, b, 15)?;
/// cwg.add_communication(a, b, 5)?; // accumulates
/// assert_eq!(cwg.volume(a, b), Some(20));
/// assert_eq!(cwg.total_volume(), 20);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Cwg {
    names: Vec<String>,
    /// Edge map keyed by `(src, dst)`; `BTreeMap` keeps iteration
    /// deterministic, which matters for reproducible search. Serialized as
    /// an edge list because JSON map keys must be strings.
    #[serde(with = "edge_list")]
    edges: BTreeMap<(CoreId, CoreId), u64>,
}

mod edge_list {
    use super::*;
    use serde::{Deserializer, Serializer};

    pub fn serialize<S: Serializer>(
        edges: &BTreeMap<(CoreId, CoreId), u64>,
        ser: S,
    ) -> Result<S::Ok, S::Error> {
        let list: Vec<Communication> = edges
            .iter()
            .map(|(&(src, dst), &bits)| Communication { src, dst, bits })
            .collect();
        serde::Serialize::serialize(&list, ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        de: D,
    ) -> Result<BTreeMap<(CoreId, CoreId), u64>, D::Error> {
        let list: Vec<Communication> = serde::Deserialize::deserialize(de)?;
        Ok(list.into_iter().map(|c| ((c.src, c.dst), c.bits)).collect())
    }
}

impl Cwg {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a core and returns its identifier. Core names are purely
    /// descriptive; they do not need to be unique.
    pub fn add_core(&mut self, name: impl Into<String>) -> CoreId {
        let id = CoreId::new(self.names.len());
        self.names.push(name.into());
        id
    }

    /// Adds `bits` to the communication volume from `src` to `dst`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownCore`] if either endpoint does not
    /// exist, [`ModelError::SelfCommunication`] if `src == dst`, and keeps
    /// zero-bit calls as no-ops only when an edge already exists (a fresh
    /// zero-bit edge is rejected because Definition 1 requires `w ≠ 0`).
    pub fn add_communication(
        &mut self,
        src: CoreId,
        dst: CoreId,
        bits: u64,
    ) -> Result<(), ModelError> {
        self.check_core(src)?;
        self.check_core(dst)?;
        if src == dst {
            return Err(ModelError::SelfCommunication(src));
        }
        if bits == 0 && !self.edges.contains_key(&(src, dst)) {
            // Definition 1: W = {(ca, cb) | w_ab != 0}.
            return Err(ModelError::EmptyPacket(crate::ids::PacketId::new(0)));
        }
        *self.edges.entry((src, dst)).or_insert(0) += bits;
        Ok(())
    }

    /// Number of cores (`|C|`).
    pub fn core_count(&self) -> usize {
        self.names.len()
    }

    /// Number of distinct communications (`|W|`, the NCC quantity used in
    /// the paper's complexity discussion).
    pub fn communication_count(&self) -> usize {
        self.edges.len()
    }

    /// Name of a core, if it exists.
    pub fn core_name(&self, id: CoreId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Looks a core up by name (first match).
    pub fn core_by_name(&self, name: &str) -> Option<CoreId> {
        self.names.iter().position(|n| n == name).map(CoreId::new)
    }

    /// Iterator over all core identifiers.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> + '_ {
        (0..self.names.len()).map(CoreId::new)
    }

    /// Total bit volume from `src` to `dst`, if the edge exists.
    pub fn volume(&self, src: CoreId, dst: CoreId) -> Option<u64> {
        self.edges.get(&(src, dst)).copied()
    }

    /// Iterator over all communications in deterministic `(src, dst)` order.
    pub fn communications(&self) -> impl Iterator<Item = Communication> + '_ {
        self.edges
            .iter()
            .map(|(&(src, dst), &bits)| Communication { src, dst, bits })
    }

    /// Communications originating at `src`.
    pub fn outgoing(&self, src: CoreId) -> impl Iterator<Item = Communication> + '_ {
        self.communications().filter(move |c| c.src == src)
    }

    /// Communications terminating at `dst`.
    pub fn incoming(&self, dst: CoreId) -> impl Iterator<Item = Communication> + '_ {
        self.communications().filter(move |c| c.dst == dst)
    }

    /// Sum of all edge weights — the "total volume of bits during
    /// application execution" column of Table 1.
    pub fn total_volume(&self) -> u64 {
        self.edges.values().sum()
    }

    /// Validates internal consistency (non-zero weights, endpoints in
    /// range). Graphs built through the public API are always valid; this
    /// is useful after deserialization.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), ModelError> {
        for (&(src, dst), &bits) in &self.edges {
            self.check_core(src)?;
            self.check_core(dst)?;
            if src == dst {
                return Err(ModelError::SelfCommunication(src));
            }
            if bits == 0 {
                return Err(ModelError::EmptyPacket(crate::ids::PacketId::new(0)));
            }
        }
        Ok(())
    }

    fn check_core(&self, id: CoreId) -> Result<(), ModelError> {
        if id.index() < self.names.len() {
            Ok(())
        } else {
            Err(ModelError::UnknownCore(id))
        }
    }
}

impl fmt::Display for Cwg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "CWG: {} cores, {} communications",
            self.core_count(),
            self.communication_count()
        )?;
        for c in self.communications() {
            let src = self.core_name(c.src).unwrap_or("?");
            let dst = self.core_name(c.dst).unwrap_or("?");
            writeln!(f, "  {src} -> {dst}: {} bits", c.bits)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_core_graph() -> (Cwg, CoreId, CoreId) {
        let mut g = Cwg::new();
        let a = g.add_core("A");
        let b = g.add_core("B");
        (g, a, b)
    }

    #[test]
    fn add_and_query_edges() {
        let (mut g, a, b) = two_core_graph();
        g.add_communication(a, b, 15).unwrap();
        assert_eq!(g.volume(a, b), Some(15));
        assert_eq!(g.volume(b, a), None);
        assert_eq!(g.communication_count(), 1);
    }

    #[test]
    fn volumes_accumulate() {
        let (mut g, a, b) = two_core_graph();
        g.add_communication(a, b, 10).unwrap();
        g.add_communication(a, b, 5).unwrap();
        assert_eq!(g.volume(a, b), Some(15));
        assert_eq!(g.communication_count(), 1);
        assert_eq!(g.total_volume(), 15);
    }

    #[test]
    fn rejects_self_loop() {
        let (mut g, a, _) = two_core_graph();
        assert_eq!(
            g.add_communication(a, a, 3),
            Err(ModelError::SelfCommunication(a))
        );
    }

    #[test]
    fn rejects_unknown_core() {
        let (mut g, a, _) = two_core_graph();
        let ghost = CoreId::new(99);
        assert_eq!(
            g.add_communication(a, ghost, 3),
            Err(ModelError::UnknownCore(ghost))
        );
    }

    #[test]
    fn rejects_fresh_zero_weight_edge() {
        let (mut g, a, b) = two_core_graph();
        assert!(g.add_communication(a, b, 0).is_err());
        g.add_communication(a, b, 4).unwrap();
        // Zero increments on an existing edge are harmless.
        g.add_communication(a, b, 0).unwrap();
        assert_eq!(g.volume(a, b), Some(4));
    }

    #[test]
    fn directional_iterators() {
        let mut g = Cwg::new();
        let a = g.add_core("A");
        let b = g.add_core("B");
        let c = g.add_core("C");
        g.add_communication(a, b, 1).unwrap();
        g.add_communication(a, c, 2).unwrap();
        g.add_communication(c, a, 3).unwrap();
        assert_eq!(g.outgoing(a).count(), 2);
        assert_eq!(g.incoming(a).count(), 1);
        assert_eq!(g.incoming(b).count(), 1);
    }

    #[test]
    fn lookup_by_name() {
        let (g, a, b) = two_core_graph();
        assert_eq!(g.core_by_name("A"), Some(a));
        assert_eq!(g.core_by_name("B"), Some(b));
        assert_eq!(g.core_by_name("Z"), None);
    }

    #[test]
    fn figure1_cwg_totals() {
        // Figure 1(a): wAB=15, wAF=15, wBF=40, wEA=35, wFB=15.
        let mut g = Cwg::new();
        let a = g.add_core("A");
        let b = g.add_core("B");
        let e = g.add_core("E");
        let f = g.add_core("F");
        g.add_communication(a, b, 15).unwrap();
        g.add_communication(a, f, 15).unwrap();
        g.add_communication(b, f, 40).unwrap();
        g.add_communication(e, a, 35).unwrap();
        g.add_communication(f, b, 15).unwrap();
        assert_eq!(g.total_volume(), 120);
        assert_eq!(g.communication_count(), 5);
        assert_eq!(g.core_count(), 4);
        g.validate().unwrap();
    }

    #[test]
    fn display_contains_core_names() {
        let (mut g, a, b) = two_core_graph();
        g.add_communication(a, b, 7).unwrap();
        let s = g.to_string();
        assert!(s.contains("A -> B: 7 bits"));
    }

    #[test]
    fn serde_roundtrip() {
        let (mut g, a, b) = two_core_graph();
        g.add_communication(a, b, 42).unwrap();
        let json = serde_json::to_string(&g).unwrap();
        let back: Cwg = serde_json::from_str(&json).unwrap();
        assert_eq!(back, g);
        back.validate().unwrap();
    }
}
