//! Strongly-typed identifiers for cores, tiles and packets.
//!
//! Index-based graphs are easy to corrupt with plain `usize` indices; the
//! newtypes here ([`CoreId`], [`TileId`], [`PacketId`]) make the three index
//! spaces statically distinct (Rust API guidelines C-NEWTYPE) while staying
//! `Copy` and free to convert back into `usize` for slice indexing.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(usize);

        impl $name {
            /// Creates an identifier from a raw index.
            #[inline]
            pub const fn new(index: usize) -> Self {
                Self(index)
            }

            /// Returns the raw index, suitable for slice indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(index: usize) -> Self {
                Self(index)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of an IP core (a vertex of the [CWG](crate::cwg::Cwg) and
    /// the source/destination of [CDCG](crate::cdcg::Cdcg) packets).
    CoreId,
    "c"
);

id_type!(
    /// Identifier of a tile of the target mesh (a vertex of the
    /// [CRG](crate::crg::Mesh)). The paper writes tiles as `τ1, τ2, …`;
    /// our indices are zero-based and row-major, so the paper's `τ1` is
    /// `TileId::new(0)`.
    TileId,
    "t"
);

id_type!(
    /// Identifier of a packet vertex of the [CDCG](crate::cdcg::Cdcg)
    /// (the special `Start`/`End` vertices are *not* packets and have no
    /// `PacketId`).
    PacketId,
    "p"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn roundtrip_usize() {
        let id = CoreId::new(7);
        assert_eq!(usize::from(id), 7);
        assert_eq!(CoreId::from(7), id);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(CoreId::new(2).to_string(), "c2");
        assert_eq!(TileId::new(5).to_string(), "t5");
        assert_eq!(PacketId::new(0).to_string(), "p0");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(TileId::new(1) < TileId::new(2));
        assert_eq!(PacketId::new(4), PacketId::new(4));
    }

    #[test]
    fn usable_as_hash_keys() {
        let set: HashSet<CoreId> = [0, 1, 2, 1].iter().copied().map(CoreId::new).collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(CoreId::default().index(), 0);
    }

    #[test]
    fn serde_is_transparent() {
        let id = TileId::new(9);
        let json = serde_json::to_string(&id).expect("serialize");
        assert_eq!(json, "9");
        let back: TileId = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, id);
    }
}
