//! Graphviz (DOT) exports for the application graphs.
//!
//! These are debugging/paper-figure aids: `dot -Tpdf` on the output
//! reproduces diagrams in the style of the paper's Figure 1(a)/(b).

use crate::cdcg::Cdcg;
use crate::cwg::Cwg;
use std::fmt::Write as _;

/// Renders a [`Cwg`] as a DOT digraph with bit-volume edge labels
/// (Figure 1(a) style).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), noc_model::ModelError> {
/// let mut cwg = noc_model::Cwg::new();
/// let a = cwg.add_core("A");
/// let b = cwg.add_core("B");
/// cwg.add_communication(a, b, 15)?;
/// let dot = noc_model::dot::cwg_to_dot(&cwg);
/// assert!(dot.contains("\"A\" -> \"B\" [label=\"15\"]"));
/// # Ok(())
/// # }
/// ```
pub fn cwg_to_dot(cwg: &Cwg) -> String {
    let mut out = String::from("digraph cwg {\n  rankdir=LR;\n");
    for core in cwg.cores() {
        let name = cwg.core_name(core).unwrap_or("?");
        let _ = writeln!(out, "  \"{name}\" [shape=circle];");
    }
    for comm in cwg.communications() {
        let src = cwg.core_name(comm.src).unwrap_or("?");
        let dst = cwg.core_name(comm.dst).unwrap_or("?");
        let _ = writeln!(out, "  \"{src}\" -> \"{dst}\" [label=\"{}\"];", comm.bits);
    }
    out.push_str("}\n");
    out
}

/// Renders a [`Cdcg`] as a DOT digraph with explicit `Start`/`End`
/// vertices (Figure 1(b) style). Each packet vertex is labelled
/// `bits(src→dst) t=comp`.
pub fn cdcg_to_dot(cdcg: &Cdcg) -> String {
    let mut out = String::from("digraph cdcg {\n  rankdir=TB;\n");
    out.push_str("  Start [shape=doublecircle];\n  End [shape=doublecircle];\n");
    for id in cdcg.packet_ids() {
        let p = cdcg.packet(id);
        let src = cdcg.core_name(p.src).unwrap_or("?");
        let dst = cdcg.core_name(p.dst).unwrap_or("?");
        let _ = writeln!(
            out,
            "  {id} [shape=box,label=\"{}({src}→{dst}) t={}\"];",
            p.bits, p.comp_cycles
        );
    }
    for id in cdcg.start_packets() {
        let _ = writeln!(out, "  Start -> {id};");
    }
    for id in cdcg.packet_ids() {
        for succ in cdcg.successors(id) {
            let _ = writeln!(out, "  {id} -> {succ};");
        }
    }
    for id in cdcg.end_packets() {
        let _ = writeln!(out, "  {id} -> End;");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cwg_dot_contains_edges() {
        let mut g = Cwg::new();
        let a = g.add_core("A");
        let b = g.add_core("B");
        g.add_communication(a, b, 15).unwrap();
        let dot = cwg_to_dot(&g);
        assert!(dot.starts_with("digraph cwg {"));
        assert!(dot.contains("\"A\" -> \"B\" [label=\"15\"]"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn cdcg_dot_has_start_end() {
        let mut g = Cdcg::new();
        let a = g.add_core("A");
        let b = g.add_core("B");
        let p0 = g.add_packet(a, b, 6, 15).unwrap();
        let p1 = g.add_packet(a, b, 2, 5).unwrap();
        g.add_dependence(p0, p1).unwrap();
        let dot = cdcg_to_dot(&g);
        assert!(dot.contains("Start -> p0;"));
        assert!(dot.contains("p0 -> p1;"));
        assert!(dot.contains("p1 -> End;"));
        assert!(dot.contains("15(A→B) t=6"));
    }
}
