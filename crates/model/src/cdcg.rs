//! Communication dependence and computation graph (CDCG) — Definition 2.
//!
//! A [`Cdcg`] has one vertex per *packet* exchanged between cores, plus two
//! implicit vertices `Start` and `End`. A packet `p_abq = (ca, cb, t_aq,
//! w_abq)` is the `q`-th packet from core `ca` to core `cb`; it carries
//! `w_abq` bits and is injected after the originating core has computed for
//! `t_aq` time units. Edges are *communication dependences*: a packet vertex
//! may only execute once every predecessor packet has been delivered.
//!
//! `Start` and `End` are represented implicitly: packets without
//! predecessors are exactly the ones `Start` points to, and packets without
//! successors are the ones pointing to `End`.
//!
//! Computation times are expressed in **clock cycles** of the NoC; the
//! simulator multiplies by the clock period `λ` when reporting wall-clock
//! results, so all scheduling stays integer-exact.

use crate::cwg::Cwg;
use crate::error::ModelError;
use crate::ids::{CoreId, PacketId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A packet vertex of the CDCG: the 4-tuple `(src, dst, comp_cycles, bits)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Packet {
    /// Originating core `ca`.
    pub src: CoreId,
    /// Destination core `cb`.
    pub dst: CoreId,
    /// Computation time `t_aq` of the originating core before the packet is
    /// transmitted, in clock cycles.
    pub comp_cycles: u64,
    /// Number of bits `w_abq` in the packet (non-zero).
    pub bits: u64,
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({}→{}):t{}",
            self.bits, self.src, self.dst, self.comp_cycles
        )
    }
}

/// Communication dependence and computation graph.
///
/// # Examples
///
/// Building the two-packet chain `p0 → p1` (the destination of `p1`'s
/// dependence can only start computing after `p0` is delivered):
///
/// ```
/// use noc_model::cdcg::Cdcg;
///
/// # fn main() -> Result<(), noc_model::ModelError> {
/// let mut g = Cdcg::new();
/// let e = g.add_core("E");
/// let a = g.add_core("A");
/// let p0 = g.add_packet(e, a, 10, 20)?;
/// let p1 = g.add_packet(e, a, 20, 15)?;
/// g.add_dependence(p0, p1)?;
/// assert_eq!(g.start_packets().collect::<Vec<_>>(), vec![p0]);
/// assert_eq!(g.end_packets().collect::<Vec<_>>(), vec![p1]);
/// assert_eq!(g.total_volume(), 35);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Cdcg {
    core_names: Vec<String>,
    packets: Vec<Packet>,
    /// Successor adjacency, indexed by packet.
    succs: Vec<Vec<PacketId>>,
    /// Predecessor adjacency, indexed by packet.
    preds: Vec<Vec<PacketId>>,
}

impl Cdcg {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a core and returns its identifier.
    pub fn add_core(&mut self, name: impl Into<String>) -> CoreId {
        let id = CoreId::new(self.core_names.len());
        self.core_names.push(name.into());
        id
    }

    /// Adds a packet vertex.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownCore`] for out-of-range endpoints,
    /// [`ModelError::SelfCommunication`] when `src == dst`, and
    /// [`ModelError::EmptyPacket`] when `bits == 0`.
    pub fn add_packet(
        &mut self,
        src: CoreId,
        dst: CoreId,
        comp_cycles: u64,
        bits: u64,
    ) -> Result<PacketId, ModelError> {
        self.check_core(src)?;
        self.check_core(dst)?;
        if src == dst {
            return Err(ModelError::SelfCommunication(src));
        }
        let id = PacketId::new(self.packets.len());
        if bits == 0 {
            return Err(ModelError::EmptyPacket(id));
        }
        self.packets.push(Packet {
            src,
            dst,
            comp_cycles,
            bits,
        });
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        Ok(id)
    }

    /// Adds a dependence edge `from → to`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownPacket`] for missing endpoints,
    /// [`ModelError::DuplicateDependence`] if the edge already exists and
    /// [`ModelError::DependenceCycle`] if the edge would close a cycle
    /// (the CDCG must stay a DAG for the Start→End execution to terminate).
    pub fn add_dependence(&mut self, from: PacketId, to: PacketId) -> Result<(), ModelError> {
        self.check_packet(from)?;
        self.check_packet(to)?;
        if self.succs[from.index()].contains(&to) {
            return Err(ModelError::DuplicateDependence { from, to });
        }
        if from == to || self.reaches(to, from) {
            return Err(ModelError::DependenceCycle { from, to });
        }
        self.succs[from.index()].push(to);
        self.preds[to.index()].push(from);
        Ok(())
    }

    /// Number of cores known to the graph.
    pub fn core_count(&self) -> usize {
        self.core_names.len()
    }

    /// Number of packet vertices (`|P|` minus the two special vertices;
    /// this is the "number of packets of all cores" column of Table 1).
    pub fn packet_count(&self) -> usize {
        self.packets.len()
    }

    /// Number of dependence edges (`|D|` excluding the implicit Start/End
    /// edges).
    pub fn dependence_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// The NDP quantity of the paper's complexity discussion: number of
    /// dependences and packets, including the implicit Start/End edges.
    pub fn ndp(&self) -> usize {
        self.packet_count()
            + self.dependence_count()
            + self.start_packets().count()
            + self.end_packets().count()
    }

    /// Name of a core, if it exists.
    pub fn core_name(&self, id: CoreId) -> Option<&str> {
        self.core_names.get(id.index()).map(String::as_str)
    }

    /// Looks a core up by name (first match).
    pub fn core_by_name(&self, name: &str) -> Option<CoreId> {
        self.core_names
            .iter()
            .position(|n| n == name)
            .map(CoreId::new)
    }

    /// Iterator over core identifiers.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> + '_ {
        (0..self.core_names.len()).map(CoreId::new)
    }

    /// Iterator over packet identifiers in insertion order.
    pub fn packet_ids(&self) -> impl Iterator<Item = PacketId> + '_ {
        (0..self.packets.len()).map(PacketId::new)
    }

    /// The packet behind an identifier.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range; use [`Cdcg::get`] for a fallible
    /// lookup.
    pub fn packet(&self, id: PacketId) -> &Packet {
        &self.packets[id.index()]
    }

    /// Fallible packet lookup.
    pub fn get(&self, id: PacketId) -> Option<&Packet> {
        self.packets.get(id.index())
    }

    /// Packets with no predecessors — the ones the implicit `Start` vertex
    /// points to.
    pub fn start_packets(&self) -> impl Iterator<Item = PacketId> + '_ {
        self.packet_ids()
            .filter(move |p| self.preds[p.index()].is_empty())
    }

    /// Packets with no successors — the ones pointing to the implicit `End`.
    pub fn end_packets(&self) -> impl Iterator<Item = PacketId> + '_ {
        self.packet_ids()
            .filter(move |p| self.succs[p.index()].is_empty())
    }

    /// Direct predecessors of a packet.
    pub fn predecessors(&self, id: PacketId) -> &[PacketId] {
        &self.preds[id.index()]
    }

    /// Direct successors of a packet.
    pub fn successors(&self, id: PacketId) -> &[PacketId] {
        &self.succs[id.index()]
    }

    /// All packets sent from `src` to `dst` in insertion order (the set
    /// `P_ab` of Definition 2).
    pub fn packets_between(&self, src: CoreId, dst: CoreId) -> Vec<PacketId> {
        self.packet_ids()
            .filter(|p| {
                let pk = self.packet(*p);
                pk.src == src && pk.dst == dst
            })
            .collect()
    }

    /// Sum of all packet sizes in bits (Table 1's "total volume" column).
    pub fn total_volume(&self) -> u64 {
        self.packets.iter().map(|p| p.bits).sum()
    }

    /// A topological order of the packet vertices (Kahn's algorithm).
    /// Construction guarantees acyclicity, so this always succeeds and has
    /// deterministic output (ready vertices are taken in id order).
    pub fn topological_order(&self) -> Vec<PacketId> {
        let n = self.packets.len();
        let mut indegree: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        // Using a sorted frontier (BTreeMap keys) keeps determinism.
        let mut ready: std::collections::BTreeSet<PacketId> = (0..n)
            .map(PacketId::new)
            .filter(|p| indegree[p.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(&p) = ready.iter().next() {
            ready.remove(&p);
            order.push(p);
            for &s in &self.succs[p.index()] {
                indegree[s.index()] -= 1;
                if indegree[s.index()] == 0 {
                    ready.insert(s);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "CDCG must be acyclic by construction");
        order
    }

    /// Length (in vertices) of the longest Start→End dependence chain.
    pub fn depth(&self) -> usize {
        let order = self.topological_order();
        let mut depth = vec![0usize; self.packets.len()];
        let mut max = 0;
        for p in order {
            let d = self.preds[p.index()]
                .iter()
                .map(|q| depth[q.index()])
                .max()
                .unwrap_or(0)
                + 1;
            depth[p.index()] = d;
            max = max.max(d);
        }
        max
    }

    /// Collapses the packet-level graph into its [`Cwg`] by summing the
    /// bits of all packets per `(src, dst)` pair. This is exactly the
    /// abstraction the CWM strategy works on, so mapping experiments can
    /// compare both models on identical applications.
    pub fn to_cwg(&self) -> Cwg {
        let mut cwg = Cwg::new();
        for name in &self.core_names {
            cwg.add_core(name.clone());
        }
        let mut volumes: BTreeMap<(CoreId, CoreId), u64> = BTreeMap::new();
        for p in &self.packets {
            *volumes.entry((p.src, p.dst)).or_insert(0) += p.bits;
        }
        for ((src, dst), bits) in volumes {
            cwg.add_communication(src, dst, bits)
                .expect("collapsing a valid CDCG yields a valid CWG");
        }
        cwg
    }

    /// Validates internal consistency after deserialization.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant (endpoint ranges, zero-bit
    /// packets, adjacency symmetry, acyclicity).
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.succs.len() != self.packets.len() || self.preds.len() != self.packets.len() {
            return Err(ModelError::UnknownPacket(PacketId::new(self.packets.len())));
        }
        for (i, p) in self.packets.iter().enumerate() {
            self.check_core(p.src)?;
            self.check_core(p.dst)?;
            if p.src == p.dst {
                return Err(ModelError::SelfCommunication(p.src));
            }
            if p.bits == 0 {
                return Err(ModelError::EmptyPacket(PacketId::new(i)));
            }
        }
        for (i, ss) in self.succs.iter().enumerate() {
            for s in ss {
                self.check_packet(*s)?;
                if !self.preds[s.index()].contains(&PacketId::new(i)) {
                    return Err(ModelError::UnknownPacket(*s));
                }
            }
        }
        if self.topological_order().len() != self.packets.len() {
            // A cycle sneaked in through deserialization.
            return Err(ModelError::DependenceCycle {
                from: PacketId::new(0),
                to: PacketId::new(0),
            });
        }
        Ok(())
    }

    /// True if `to` is reachable from `from` following dependence edges.
    fn reaches(&self, from: PacketId, to: PacketId) -> bool {
        if from == to {
            return true;
        }
        let mut stack = vec![from];
        let mut seen = vec![false; self.packets.len()];
        seen[from.index()] = true;
        while let Some(p) = stack.pop() {
            for &s in &self.succs[p.index()] {
                if s == to {
                    return true;
                }
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        false
    }

    fn check_core(&self, id: CoreId) -> Result<(), ModelError> {
        if id.index() < self.core_names.len() {
            Ok(())
        } else {
            Err(ModelError::UnknownCore(id))
        }
    }

    fn check_packet(&self, id: PacketId) -> Result<(), ModelError> {
        if id.index() < self.packets.len() {
            Ok(())
        } else {
            Err(ModelError::UnknownPacket(id))
        }
    }
}

impl fmt::Display for Cdcg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "CDCG: {} cores, {} packets, {} dependences",
            self.core_count(),
            self.packet_count(),
            self.dependence_count()
        )?;
        for id in self.packet_ids() {
            let p = self.packet(id);
            let src = self.core_name(p.src).unwrap_or("?");
            let dst = self.core_name(p.dst).unwrap_or("?");
            let deps: Vec<String> = self
                .predecessors(id)
                .iter()
                .map(|d| d.to_string())
                .collect();
            writeln!(
                f,
                "  {id}: {} bits {src} -> {dst}, t={} cycles, after [{}]",
                p.bits,
                p.comp_cycles,
                deps.join(", ")
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 1(b) CDCG of the paper (see DESIGN.md §2).
    fn figure1() -> Cdcg {
        let mut g = Cdcg::new();
        let a = g.add_core("A");
        let b = g.add_core("B");
        let e = g.add_core("E");
        let f = g.add_core("F");
        let pab1 = g.add_packet(a, b, 6, 15).unwrap();
        let pbf1 = g.add_packet(b, f, 10, 40).unwrap();
        let pea1 = g.add_packet(e, a, 10, 20).unwrap();
        let pea2 = g.add_packet(e, a, 20, 15).unwrap();
        let paf1 = g.add_packet(a, f, 6, 15).unwrap();
        let pfb1 = g.add_packet(f, b, 6, 15).unwrap();
        g.add_dependence(pea1, pea2).unwrap();
        g.add_dependence(pab1, paf1).unwrap();
        g.add_dependence(pea1, paf1).unwrap();
        g.add_dependence(pbf1, pfb1).unwrap();
        g.add_dependence(paf1, pfb1).unwrap();
        g
    }

    #[test]
    fn figure1_shape() {
        let g = figure1();
        assert_eq!(g.core_count(), 4);
        assert_eq!(g.packet_count(), 6);
        assert_eq!(g.dependence_count(), 5);
        assert_eq!(g.total_volume(), 120);
        // Start points at pAB1, pBF1, pEA1.
        assert_eq!(g.start_packets().count(), 3);
        // pEA2 and pFB1 point at End.
        assert_eq!(g.end_packets().count(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn collapse_matches_figure1_cwg() {
        let g = figure1();
        let cwg = g.to_cwg();
        let a = cwg.core_by_name("A").unwrap();
        let b = cwg.core_by_name("B").unwrap();
        let e = cwg.core_by_name("E").unwrap();
        let f = cwg.core_by_name("F").unwrap();
        assert_eq!(cwg.volume(a, b), Some(15));
        assert_eq!(cwg.volume(a, f), Some(15));
        assert_eq!(cwg.volume(b, f), Some(40));
        assert_eq!(cwg.volume(e, a), Some(35)); // 20 + 15
        assert_eq!(cwg.volume(f, b), Some(15));
        assert_eq!(cwg.total_volume(), 120);
    }

    #[test]
    fn rejects_cycles() {
        let mut g = Cdcg::new();
        let a = g.add_core("A");
        let b = g.add_core("B");
        let p0 = g.add_packet(a, b, 0, 1).unwrap();
        let p1 = g.add_packet(b, a, 0, 1).unwrap();
        let p2 = g.add_packet(a, b, 0, 1).unwrap();
        g.add_dependence(p0, p1).unwrap();
        g.add_dependence(p1, p2).unwrap();
        assert!(matches!(
            g.add_dependence(p2, p0),
            Err(ModelError::DependenceCycle { .. })
        ));
        assert!(matches!(
            g.add_dependence(p0, p0),
            Err(ModelError::DependenceCycle { .. })
        ));
    }

    #[test]
    fn rejects_duplicate_edges() {
        let mut g = Cdcg::new();
        let a = g.add_core("A");
        let b = g.add_core("B");
        let p0 = g.add_packet(a, b, 0, 1).unwrap();
        let p1 = g.add_packet(a, b, 0, 1).unwrap();
        g.add_dependence(p0, p1).unwrap();
        assert_eq!(
            g.add_dependence(p0, p1),
            Err(ModelError::DuplicateDependence { from: p0, to: p1 })
        );
    }

    #[test]
    fn rejects_zero_bits() {
        let mut g = Cdcg::new();
        let a = g.add_core("A");
        let b = g.add_core("B");
        assert!(matches!(
            g.add_packet(a, b, 5, 0),
            Err(ModelError::EmptyPacket(_))
        ));
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = figure1();
        let order = g.topological_order();
        assert_eq!(order.len(), g.packet_count());
        let pos: Vec<usize> = {
            let mut pos = vec![0; order.len()];
            for (i, p) in order.iter().enumerate() {
                pos[p.index()] = i;
            }
            pos
        };
        for p in g.packet_ids() {
            for s in g.successors(p) {
                assert!(pos[p.index()] < pos[s.index()]);
            }
        }
    }

    #[test]
    fn depth_of_figure1_is_three() {
        // Longest chain: pEA1 -> pAF1 -> pFB1 (or pAB1 -> pAF1 -> pFB1).
        assert_eq!(figure1().depth(), 3);
    }

    #[test]
    fn packets_between_orders_by_insertion() {
        let g = figure1();
        let e = g.core_by_name("E").unwrap();
        let a = g.core_by_name("A").unwrap();
        let pea = g.packets_between(e, a);
        assert_eq!(pea.len(), 2);
        assert!(pea[0] < pea[1]);
        assert_eq!(g.packet(pea[0]).bits, 20);
        assert_eq!(g.packet(pea[1]).bits, 15);
    }

    #[test]
    fn ndp_counts_implicit_edges() {
        let g = figure1();
        // 6 packets + 5 explicit deps + 3 start edges + 2 end edges.
        assert_eq!(g.ndp(), 16);
    }

    #[test]
    fn serde_roundtrip_validates() {
        let g = figure1();
        let json = serde_json::to_string(&g).unwrap();
        let back: Cdcg = serde_json::from_str(&json).unwrap();
        assert_eq!(back, g);
        back.validate().unwrap();
    }

    #[test]
    fn display_lists_packets() {
        let g = figure1();
        let s = g.to_string();
        assert!(s.contains("6 packets"));
        assert!(s.contains("A -> B"));
    }
}
