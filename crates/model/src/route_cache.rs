//! Precomputed routes for every tile pair of a mesh — the **dense** tier
//! of the route-provisioning stack.
//!
//! Mapping search evaluates the same mesh millions of times: every cost
//! call routes each packet between two *tiles*, and under deterministic
//! routing the route between a tile pair never changes. [`RouteCache`]
//! therefore computes all `n²` routes once per mesh and exposes them as
//! flat, allocation-free lookups:
//!
//! * [`RouteCache::router_count`] — the paper's `K` for a pair, `O(1)`;
//! * [`RouteCache::routers`] — the ordered router list of the pair;
//! * [`RouteCache::link_ids`] — the complete resource walk of the pair
//!   (injection link, inter-router links, ejection link) as **dense link
//!   ids**: consecutive `u32` indices assigned per mesh, so per-link state
//!   lives in plain vectors instead of `HashMap<Link, _>`.
//!
//! The cache is routing-algorithm-agnostic ([`RouteCache::with_routing`])
//! and immutable after construction, so it is shared freely across search
//! threads (`Arc<RouteCache>` in the evaluation engine).
//!
//! ## Memory, honestly
//!
//! The tables are `O(n² · diameter)`: negligible for the paper's flow
//! (a few hundred tiles ⇒ a few megabytes), but growing fast — roughly
//! 150 MB at 32×32 and over 3 GB at 64×64. Construction therefore
//! *refuses* meshes whose tables would be unreasonably large
//! ([`ModelError::RouteCacheTooLarge`], checked analytically **before**
//! any allocation) instead of thrashing or overflowing the `u32` offset
//! space. Larger meshes are served by the other two tiers of
//! [`crate::route_provider`]: the bounded-memory on-demand pair cache and
//! the allocation-free implicit walker.
//! [`RouteProvider::auto`](crate::route_provider::RouteProvider::auto)
//! picks a tier by size so callers never hit the limit accidentally.

use crate::crg::{Link, Mesh};
use crate::error::ModelError;
use crate::ids::TileId;
use crate::routing::{RoutingAlgorithm, XyRouting};
use std::collections::HashMap;

/// Hard ceiling on the estimated dense table entries a [`RouteCache`]
/// will agree to precompute (~1 GB of tables). Beyond it construction
/// returns [`ModelError::RouteCacheTooLarge`]; use the on-demand or
/// implicit provider tiers instead.
pub const MAX_DENSE_ENTRIES: u128 = 1 << 27;

/// All routes of a mesh under one deterministic routing function, with
/// dense link numbering. See the module docs.
#[derive(Debug, Clone)]
pub struct RouteCache {
    mesh: Mesh,
    routing_name: &'static str,
    /// Per pair `src * n + dst`: start offset into `routers`/`link_ids`.
    /// The pair's routers are `routers[offsets[p]..offsets[p + 1]]` and its
    /// links are `link_ids[offsets[p] + p..offsets[p + 1] + p + 1]` (every
    /// pair has exactly one more link than routers).
    offsets: Vec<u32>,
    routers: Vec<TileId>,
    link_ids: Vec<u32>,
    /// Dense id → physical link.
    links: Vec<Link>,
    /// Physical link → dense id (the interning map retained from
    /// construction, so reverse lookups are `O(1)`).
    index: HashMap<Link, u32>,
    /// Per pair: vertical (TSV) link count of the route. Empty on
    /// depth-1 meshes, where every route is planar — no memory is spent
    /// and lookups return `0` without touching a table.
    vertical: Vec<u32>,
}

impl RouteCache {
    /// Builds the cache for `mesh` under XY routing (the paper's default).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::RouteCacheTooLarge`] when the dense tables
    /// would exceed [`MAX_DENSE_ENTRIES`]; no allocation happens in that
    /// case.
    pub fn new(mesh: &Mesh) -> Result<Self, ModelError> {
        Self::with_routing(mesh, &XyRouting)
    }

    /// Estimated total table entries (routers + link ids + offsets) the
    /// dense cache needs for `mesh` under any *minimal* routing, in
    /// closed form: the sum of Manhattan distances over all ordered tile
    /// pairs plus the per-pair constants. Non-minimal custom routings may
    /// exceed this; construction still guards the `u32` offset space for
    /// them.
    pub fn dense_entry_estimate(mesh: &Mesh) -> u128 {
        let w = mesh.width() as u128;
        let h = mesh.height() as u128;
        let d = mesh.depth() as u128;
        let n = mesh.tile_count() as u128;
        let pairs = n * n;
        // Σ over ordered tile pairs of |x1−x2|: each x value occurs on
        // h·d tiles, and Σ over ordered value pairs of |x1−x2| is
        // W(W²−1)/3 — hence (H·D)²·W(W²−1)/3; same per axis.
        let manhattan_sum = (h * d) * (h * d) * w * (w * w - 1) / 3
            + (w * d) * (w * d) * h * (h * h - 1) / 3
            + (w * h) * (w * h) * d * (d * d - 1) / 3;
        let routers = pairs + manhattan_sum; // K = distance + 1 per pair
        let links = routers + pairs; // K + 1 link ids per pair
                                     // 3D meshes additionally carry the per-pair vertical-hop table.
        let vertical = if d > 1 { pairs } else { 0 };
        routers + links + pairs + 1 + vertical // + the offsets table
    }

    /// Builds the cache for `mesh` under an explicit routing algorithm.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::RouteCacheTooLarge`] when the estimated
    /// tables exceed [`MAX_DENSE_ENTRIES`] (checked before allocating),
    /// or when a non-minimal routing overflows the `u32` offset space
    /// mid-construction.
    pub fn with_routing(mesh: &Mesh, routing: &dyn RoutingAlgorithm) -> Result<Self, ModelError> {
        let estimate = Self::dense_entry_estimate(mesh);
        if estimate > MAX_DENSE_ENTRIES {
            return Err(ModelError::RouteCacheTooLarge {
                tiles: mesh.tile_count(),
                entries: estimate,
            });
        }
        let n = mesh.tile_count();
        let mut offsets = Vec::with_capacity(n * n + 1);
        let mut routers = Vec::new();
        let mut link_ids = Vec::new();
        let mut links = Vec::new();
        let mut vertical = Vec::new();
        let mut index: HashMap<Link, u32> = HashMap::new();
        let mut intern = |link: Link, links: &mut Vec<Link>| -> u32 {
            *index.entry(link).or_insert_with(|| {
                links.push(link);
                (links.len() - 1) as u32
            })
        };
        offsets.push(0);
        for src in mesh.tiles() {
            for dst in mesh.tiles() {
                let path = routing.route(mesh, src, dst);
                link_ids.push(intern(Link::Injection(src), &mut links));
                for w in path.routers().windows(2) {
                    link_ids.push(intern(Link::between(w[0], w[1]), &mut links));
                }
                link_ids.push(intern(Link::Ejection(dst), &mut links));
                if mesh.depth() > 1 {
                    vertical.push(path.vertical_link_count(mesh) as u32);
                }
                routers.extend_from_slice(path.routers());
                let offset = u32::try_from(routers.len()).map_err(|_| {
                    // Only reachable for non-minimal custom routings that
                    // blow past the analytic estimate.
                    ModelError::RouteCacheTooLarge {
                        tiles: n,
                        entries: estimate.max(routers.len() as u128),
                    }
                })?;
                offsets.push(offset);
            }
        }
        Ok(Self {
            mesh: *mesh,
            routing_name: routing.name(),
            offsets,
            routers,
            link_ids,
            links,
            index,
            vertical,
        })
    }

    /// The mesh the cache was built for.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Name of the routing algorithm the routes follow ("XY", ...).
    pub fn routing_name(&self) -> &'static str {
        self.routing_name
    }

    #[inline]
    fn pair(&self, src: TileId, dst: TileId) -> usize {
        debug_assert!(self.mesh.contains(src) && self.mesh.contains(dst));
        src.index() * self.mesh.tile_count() + dst.index()
    }

    /// Number of routers on the route (the paper's `K`), in `O(1)`.
    #[inline]
    pub fn router_count(&self, src: TileId, dst: TileId) -> usize {
        let p = self.pair(src, dst);
        (self.offsets[p + 1] - self.offsets[p]) as usize
    }

    /// Number of vertical (TSV) inter-router links of the route, in
    /// `O(1)` — `0` on depth-1 meshes (no table is consulted, matching
    /// the planar energy model exactly).
    #[inline]
    pub fn vertical_hops(&self, src: TileId, dst: TileId) -> usize {
        if self.vertical.is_empty() {
            return 0;
        }
        self.vertical[self.pair(src, dst)] as usize
    }

    /// The ordered router list of the route.
    #[inline]
    pub fn routers(&self, src: TileId, dst: TileId) -> &[TileId] {
        let p = self.pair(src, dst);
        &self.routers[self.offsets[p] as usize..self.offsets[p + 1] as usize]
    }

    /// The complete resource walk of the route as dense link ids:
    /// injection link, inter-router links in traversal order, ejection
    /// link (`router_count + 1` entries).
    #[inline]
    pub fn link_ids(&self, src: TileId, dst: TileId) -> &[u32] {
        &self.link_ids_flat()[self.link_span(src, dst)]
    }

    /// The span of the pair's resource walk inside [`Self::link_ids_flat`];
    /// lets hot loops resolve each packet's walk once and then index the
    /// flat array directly.
    #[inline]
    pub fn link_span(&self, src: TileId, dst: TileId) -> std::ops::Range<usize> {
        let p = self.pair(src, dst);
        // Each pair contributes routers + 1 links, so the link offset of
        // pair `p` is `offsets[p] + p`.
        self.offsets[p] as usize + p..self.offsets[p + 1] as usize + p + 1
    }

    /// The concatenated dense link ids of every pair's resource walk, in
    /// pair order; index with [`Self::link_span`].
    #[inline]
    pub fn link_ids_flat(&self) -> &[u32] {
        &self.link_ids
    }

    /// Total number of distinct links touched by any route (the size for
    /// dense per-link state vectors).
    pub fn dense_link_count(&self) -> usize {
        self.links.len()
    }

    /// The physical link behind a dense id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn link_of(&self, id: u32) -> Link {
        self.links[id as usize]
    }

    /// Dense id of a physical link, if any route uses it — an `O(1)`
    /// lookup in the interning map retained from construction.
    pub fn dense_id(&self, link: Link) -> Option<u32> {
        self.index.get(&link).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::YxRouting;

    #[test]
    fn matches_direct_routing_on_every_pair() {
        let mesh = Mesh::new(4, 3).unwrap();
        let cache = RouteCache::new(&mesh).unwrap();
        for src in mesh.tiles() {
            for dst in mesh.tiles() {
                let path = XyRouting.route(&mesh, src, dst);
                assert_eq!(cache.routers(src, dst), path.routers());
                assert_eq!(cache.router_count(src, dst), path.router_count());
                let links: Vec<Link> = cache
                    .link_ids(src, dst)
                    .iter()
                    .map(|&id| cache.link_of(id))
                    .collect();
                assert_eq!(links, path.links());
            }
        }
    }

    #[test]
    fn respects_the_routing_algorithm() {
        let mesh = Mesh::new(3, 3).unwrap();
        let yx = RouteCache::with_routing(&mesh, &YxRouting).unwrap();
        assert_eq!(yx.routing_name(), "YX");
        for src in mesh.tiles() {
            for dst in mesh.tiles() {
                assert_eq!(
                    yx.routers(src, dst),
                    YxRouting.route(&mesh, src, dst).routers()
                );
            }
        }
    }

    #[test]
    fn dense_ids_round_trip_for_every_id() {
        // `dense_id(link_of(id)) == id` must hold for every dense id —
        // this exercises the O(1) interning-map reverse lookup.
        for (mesh, routing) in [
            (
                Mesh::new(3, 2).unwrap(),
                &XyRouting as &dyn RoutingAlgorithm,
            ),
            (Mesh::new(5, 4).unwrap(), &XyRouting),
            (Mesh::new(4, 4).unwrap(), &YxRouting),
        ] {
            let cache = RouteCache::with_routing(&mesh, routing).unwrap();
            for id in 0..cache.dense_link_count() as u32 {
                assert_eq!(cache.dense_id(cache.link_of(id)), Some(id));
            }
            // Every injection and ejection link is used (self-routes).
            assert!(cache.dense_link_count() >= 2 * mesh.tile_count());
        }
    }

    #[test]
    fn dense_id_misses_unused_links() {
        let mesh = Mesh::new(2, 2).unwrap();
        let cache = RouteCache::new(&mesh).unwrap();
        let foreign = Link::between(TileId::new(7), TileId::new(8));
        assert_eq!(cache.dense_id(foreign), None);
    }

    #[test]
    fn single_tile_mesh() {
        let mesh = Mesh::new(1, 1).unwrap();
        let cache = RouteCache::new(&mesh).unwrap();
        let t = TileId::new(0);
        assert_eq!(cache.router_count(t, t), 1);
        assert_eq!(cache.link_ids(t, t).len(), 2); // inj + ej
    }

    #[test]
    fn oversized_meshes_are_rejected_before_allocating() {
        // 64×64 estimates past MAX_DENSE_ENTRIES: typed error, no panic,
        // and the check fires before any table is allocated.
        let mesh = Mesh::new(64, 64).unwrap();
        assert!(RouteCache::dense_entry_estimate(&mesh) > MAX_DENSE_ENTRIES);
        match RouteCache::new(&mesh) {
            Err(ModelError::RouteCacheTooLarge { tiles, entries }) => {
                assert_eq!(tiles, 4096);
                assert!(entries > MAX_DENSE_ENTRIES);
            }
            other => panic!("expected RouteCacheTooLarge, got {other:?}"),
        }
        // Degenerate thin meshes trip the guard too (long routes).
        assert!(RouteCache::new(&Mesh::new(4096, 1).unwrap()).is_err());
        // A mesh inside the limit still builds.
        assert!(RouteCache::new(&Mesh::new(16, 16).unwrap()).is_ok());
    }

    #[test]
    fn entry_estimate_matches_actual_tables_on_small_meshes() {
        for (w, h, d) in [
            (1, 1, 1),
            (2, 2, 1),
            (4, 3, 1),
            (6, 5, 1),
            (3, 2, 4),
            (4, 4, 4),
        ] {
            let mesh = Mesh::new3(w, h, d).unwrap();
            let cache = RouteCache::new(&mesh).unwrap();
            let actual = (cache.routers.len()
                + cache.link_ids.len()
                + cache.offsets.len()
                + cache.vertical.len()) as u128;
            assert_eq!(
                RouteCache::dense_entry_estimate(&mesh),
                actual,
                "{w}x{h}x{d}: the closed form must be exact for minimal routing"
            );
        }
    }

    #[test]
    fn vertical_hops_match_walked_routes() {
        let planar = Mesh::new(4, 3).unwrap();
        let cache = RouteCache::new(&planar).unwrap();
        assert!(cache.vertical.is_empty(), "no table on depth-1 meshes");
        for src in planar.tiles() {
            for dst in planar.tiles() {
                assert_eq!(cache.vertical_hops(src, dst), 0);
            }
        }
        let cube = Mesh::new3(3, 2, 3).unwrap();
        for routing in [&XyRouting as &dyn RoutingAlgorithm, &YxRouting] {
            let cache = RouteCache::with_routing(&cube, routing).unwrap();
            for src in cube.tiles() {
                for dst in cube.tiles() {
                    assert_eq!(
                        cache.vertical_hops(src, dst),
                        routing.route(&cube, src, dst).vertical_link_count(&cube),
                        "{src}->{dst}"
                    );
                }
            }
        }
    }
}
