//! Precomputed routes for every tile pair of a mesh.
//!
//! Mapping search evaluates the same mesh millions of times: every cost
//! call routes each packet between two *tiles*, and under deterministic
//! routing the route between a tile pair never changes. [`RouteCache`]
//! therefore computes all `n²` routes once per mesh and exposes them as
//! flat, allocation-free lookups:
//!
//! * [`RouteCache::router_count`] — the paper's `K` for a pair, `O(1)`;
//! * [`RouteCache::routers`] — the ordered router list of the pair;
//! * [`RouteCache::link_ids`] — the complete resource walk of the pair
//!   (injection link, inter-router links, ejection link) as **dense link
//!   ids**: consecutive `u32` indices assigned per mesh, so per-link state
//!   lives in plain vectors instead of `HashMap<Link, _>`.
//!
//! The cache is routing-algorithm-agnostic ([`RouteCache::with_routing`])
//! and immutable after construction, so it is shared freely across search
//! threads (`Arc<RouteCache>` in the evaluation engine).
//!
//! Memory is `O(n² · diameter)`; for the mesh sizes the paper's flow
//! targets (up to a few hundred tiles) that is at most a few megabytes.

use crate::crg::{Link, Mesh};
use crate::ids::TileId;
use crate::routing::{RoutingAlgorithm, XyRouting};
use std::collections::HashMap;

/// All routes of a mesh under one deterministic routing function, with
/// dense link numbering. See the module docs.
#[derive(Debug, Clone)]
pub struct RouteCache {
    mesh: Mesh,
    routing_name: &'static str,
    /// Per pair `src * n + dst`: start offset into `routers`/`link_ids`.
    /// The pair's routers are `routers[offsets[p]..offsets[p + 1]]` and its
    /// links are `link_ids[offsets[p] + p..offsets[p + 1] + p + 1]` (every
    /// pair has exactly one more link than routers).
    offsets: Vec<u32>,
    routers: Vec<TileId>,
    link_ids: Vec<u32>,
    /// Dense id → physical link.
    links: Vec<Link>,
}

impl RouteCache {
    /// Builds the cache for `mesh` under XY routing (the paper's default).
    pub fn new(mesh: &Mesh) -> Self {
        Self::with_routing(mesh, &XyRouting)
    }

    /// Builds the cache for `mesh` under an explicit routing algorithm.
    pub fn with_routing(mesh: &Mesh, routing: &dyn RoutingAlgorithm) -> Self {
        let n = mesh.tile_count();
        let mut offsets = Vec::with_capacity(n * n + 1);
        let mut routers = Vec::new();
        let mut link_ids = Vec::new();
        let mut links = Vec::new();
        let mut index: HashMap<Link, u32> = HashMap::new();
        let mut intern = |link: Link, links: &mut Vec<Link>| -> u32 {
            *index.entry(link).or_insert_with(|| {
                links.push(link);
                (links.len() - 1) as u32
            })
        };
        offsets.push(0);
        for src in mesh.tiles() {
            for dst in mesh.tiles() {
                let path = routing.route(mesh, src, dst);
                link_ids.push(intern(Link::Injection(src), &mut links));
                for w in path.routers().windows(2) {
                    link_ids.push(intern(Link::between(w[0], w[1]), &mut links));
                }
                link_ids.push(intern(Link::Ejection(dst), &mut links));
                routers.extend_from_slice(path.routers());
                let offset = u32::try_from(routers.len())
                    .expect("route cache exceeds u32 offsets; mesh too large to cache");
                offsets.push(offset);
            }
        }
        Self {
            mesh: *mesh,
            routing_name: routing.name(),
            offsets,
            routers,
            link_ids,
            links,
        }
    }

    /// The mesh the cache was built for.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Name of the routing algorithm the routes follow ("XY", ...).
    pub fn routing_name(&self) -> &'static str {
        self.routing_name
    }

    #[inline]
    fn pair(&self, src: TileId, dst: TileId) -> usize {
        debug_assert!(self.mesh.contains(src) && self.mesh.contains(dst));
        src.index() * self.mesh.tile_count() + dst.index()
    }

    /// Number of routers on the route (the paper's `K`), in `O(1)`.
    #[inline]
    pub fn router_count(&self, src: TileId, dst: TileId) -> usize {
        let p = self.pair(src, dst);
        (self.offsets[p + 1] - self.offsets[p]) as usize
    }

    /// The ordered router list of the route.
    #[inline]
    pub fn routers(&self, src: TileId, dst: TileId) -> &[TileId] {
        let p = self.pair(src, dst);
        &self.routers[self.offsets[p] as usize..self.offsets[p + 1] as usize]
    }

    /// The complete resource walk of the route as dense link ids:
    /// injection link, inter-router links in traversal order, ejection
    /// link (`router_count + 1` entries).
    #[inline]
    pub fn link_ids(&self, src: TileId, dst: TileId) -> &[u32] {
        &self.link_ids_flat()[self.link_span(src, dst)]
    }

    /// The span of the pair's resource walk inside [`Self::link_ids_flat`];
    /// lets hot loops resolve each packet's walk once and then index the
    /// flat array directly.
    #[inline]
    pub fn link_span(&self, src: TileId, dst: TileId) -> std::ops::Range<usize> {
        let p = self.pair(src, dst);
        // Each pair contributes routers + 1 links, so the link offset of
        // pair `p` is `offsets[p] + p`.
        self.offsets[p] as usize + p..self.offsets[p + 1] as usize + p + 1
    }

    /// The concatenated dense link ids of every pair's resource walk, in
    /// pair order; index with [`Self::link_span`].
    #[inline]
    pub fn link_ids_flat(&self) -> &[u32] {
        &self.link_ids
    }

    /// Total number of distinct links touched by any route (the size for
    /// dense per-link state vectors).
    pub fn dense_link_count(&self) -> usize {
        self.links.len()
    }

    /// The physical link behind a dense id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn link_of(&self, id: u32) -> Link {
        self.links[id as usize]
    }

    /// Dense id of a physical link, if any route uses it.
    pub fn dense_id(&self, link: Link) -> Option<u32> {
        // Linear scan: only used by tests and diagnostics, never on the
        // evaluation hot path (which reads precomputed `link_ids`).
        self.links.iter().position(|&l| l == link).map(|i| i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::YxRouting;

    #[test]
    fn matches_direct_routing_on_every_pair() {
        let mesh = Mesh::new(4, 3).unwrap();
        let cache = RouteCache::new(&mesh);
        for src in mesh.tiles() {
            for dst in mesh.tiles() {
                let path = XyRouting.route(&mesh, src, dst);
                assert_eq!(cache.routers(src, dst), path.routers());
                assert_eq!(cache.router_count(src, dst), path.router_count());
                let links: Vec<Link> = cache
                    .link_ids(src, dst)
                    .iter()
                    .map(|&id| cache.link_of(id))
                    .collect();
                assert_eq!(links, path.links());
            }
        }
    }

    #[test]
    fn respects_the_routing_algorithm() {
        let mesh = Mesh::new(3, 3).unwrap();
        let yx = RouteCache::with_routing(&mesh, &YxRouting);
        assert_eq!(yx.routing_name(), "YX");
        for src in mesh.tiles() {
            for dst in mesh.tiles() {
                assert_eq!(
                    yx.routers(src, dst),
                    YxRouting.route(&mesh, src, dst).routers()
                );
            }
        }
    }

    #[test]
    fn dense_ids_are_consistent() {
        let mesh = Mesh::new(3, 2).unwrap();
        let cache = RouteCache::new(&mesh);
        for id in 0..cache.dense_link_count() as u32 {
            assert_eq!(cache.dense_id(cache.link_of(id)), Some(id));
        }
        // Every injection and ejection link is used (self-routes), plus
        // every internal link an XY route can take.
        assert!(cache.dense_link_count() >= 2 * mesh.tile_count());
    }

    #[test]
    fn single_tile_mesh() {
        let mesh = Mesh::new(1, 1).unwrap();
        let cache = RouteCache::new(&mesh);
        let t = TileId::new(0);
        assert_eq!(cache.router_count(t, t), 1);
        assert_eq!(cache.link_ids(t, t).len(), 2); // inj + ej
    }
}
