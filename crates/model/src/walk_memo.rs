//! Per-evaluator, lock-free walk memoization.
//!
//! PR 3's numbers exposed an uncomfortable fact about the shared
//! on-demand route cache: its 64 mutex shards cost more per lookup than
//! the implicit walker's recomputation, so a *bigger* shared cache is
//! the wrong lever. [`WalkMemo`] is the opposite shape — a small
//! open-addressed pair→span table **owned by one evaluator** (one
//! `CostEvaluator`, one incremental scheduler, one batch evaluator, one
//! service worker), probed and filled without any lock, shard, guard or
//! atomic. Thread safety is by construction: the table is private
//! state, a clone duplicates it wholesale, and nothing is ever shared.
//!
//! A memo fronts any *buffering* [`RouteSource`] tier (on-demand,
//! implicit, fault-aware — sources whose `walk_span` appends the walk
//! to the caller's buffer). On a hit the resolved walk is served from
//! the memo's private arena; on a miss the source resolves once into
//! that arena and the pair is recorded. Two read paths cover the two
//! engine shapes:
//!
//! * [`WalkMemo::resolve`] returns a span into the memo's own arena
//!   ([`WalkMemo::arena`] is then the engine's flat link array) — the
//!   zero-copy path of full and batch cost evaluations, which also
//!   deduplicates route work across batch siblings for free;
//! * [`WalkMemo::resolve_into`] appends the walk to a caller buffer —
//!   the incremental evaluator's path, whose baseline arena has its own
//!   truncate/patch lifecycle.
//!
//! Eviction (a full clear) happens **only** at [`WalkMemo::begin_eval`]
//! checkpoints, never mid-evaluation, so spans handed out during an
//! evaluation stay valid until its end. Results are bit-identical to
//! direct resolution: the memo stores exactly the walk the source would
//! produce, and the cost engine depends only on which walks share which
//! link ids.

use crate::ids::TileId;
use crate::route_provider::RouteSource;

/// Cumulative telemetry of a [`WalkMemo`] (monotone; survives
/// evictions). `hits / (hits + misses)` is the dedup ratio batch
/// evaluation reports to observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalkMemoStats {
    /// Pair lookups served from the table without touching the source.
    pub hits: u64,
    /// Pair lookups that resolved through the underlying source.
    pub misses: u64,
    /// Full-table evictions at `begin_eval` checkpoints.
    pub evictions: u64,
}

impl WalkMemoStats {
    /// Fraction of lookups served locally (`0.0` when idle).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Default arena budget in link ids (4 MiB): at a typical 10–60-entry
/// walk this memoizes tens of thousands of distinct pairs, far beyond
/// one batch or one incremental baseline window.
const DEFAULT_ARENA_BUDGET: usize = 1 << 20;

/// Initial slot count of the pair table (power of two).
const INITIAL_SLOTS: usize = 1024;

/// See the module docs. Not `Sync`, deliberately: a memo belongs to
/// exactly one evaluator and takes no locks because it never needs any.
#[derive(Debug, Clone)]
pub struct WalkMemo {
    /// Open-addressed slots: pair key + 1, `0` = empty.
    keys: Vec<u64>,
    /// Parallel values: `(start, len)` spans into `arena`.
    vals: Vec<(u32, u32)>,
    /// Live entries (for the growth trigger).
    live: usize,
    /// Private walk arena the memoized spans index.
    arena: Vec<u32>,
    /// Arena size beyond which the next `begin_eval` evicts everything.
    arena_budget: usize,
    stats: WalkMemoStats,
}

impl Default for WalkMemo {
    fn default() -> Self {
        Self::new()
    }
}

impl WalkMemo {
    /// An empty memo with the default arena budget.
    pub fn new() -> Self {
        Self::with_budget(DEFAULT_ARENA_BUDGET)
    }

    /// An empty memo evicting once its arena exceeds `arena_budget`
    /// link ids (checked only at [`Self::begin_eval`]).
    pub fn with_budget(arena_budget: usize) -> Self {
        Self {
            keys: Vec::new(),
            vals: Vec::new(),
            live: 0,
            arena: Vec::new(),
            arena_budget: arena_budget.max(1),
            stats: WalkMemoStats::default(),
        }
    }

    /// Cumulative hit/miss/eviction counters.
    pub fn stats(&self) -> WalkMemoStats {
        self.stats
    }

    /// The private walk arena all [`Self::resolve`]d spans index — the
    /// engine's flat link-id array on the zero-copy path.
    pub fn arena(&self) -> &[u32] {
        &self.arena
    }

    /// Evaluation-boundary checkpoint: evicts the whole table if the
    /// arena has outgrown its budget. Calling this *only* between
    /// evaluations is what keeps previously returned spans valid for
    /// the evaluation that obtained them.
    pub fn begin_eval(&mut self) {
        if self.arena.len() > self.arena_budget {
            self.keys.fill(0);
            self.live = 0;
            self.arena.clear();
            self.stats.evictions += 1;
        }
    }

    /// Drops every entry and counter (a fresh memo with warm buffers).
    pub fn reset(&mut self) {
        self.keys.fill(0);
        self.live = 0;
        self.arena.clear();
        self.stats = WalkMemoStats::default();
    }

    /// Resolves the `src → dst` walk through the memo, returning its
    /// `(start, len)` span in [`Self::arena`]. `routes` must be a
    /// buffering source (one whose `walk_span` appends into the caller
    /// buffer); on a miss it is consulted exactly once.
    #[inline]
    pub fn resolve<S: RouteSource + ?Sized>(
        &mut self,
        routes: &S,
        src: TileId,
        dst: TileId,
    ) -> (u32, u32) {
        let key = pair_key(src, dst);
        // The table allocates lazily on first insert.
        if !self.keys.is_empty() {
            let slot = self.find_slot(key);
            // noc-verify: allow(PANIC01) — find_slot returns an index below keys.len()
            if self.keys[slot] == key + 1 {
                self.stats.hits += 1;
                // noc-verify: allow(PANIC01) — vals is sized with keys
                return self.vals[slot];
            }
        }
        self.stats.misses += 1;
        let before = self.arena.len();
        let span = routes.walk_span(src, dst, &mut self.arena);
        debug_assert_eq!(
            self.arena.len(),
            before + span.1 as usize,
            "WalkMemo requires a buffering route source"
        );
        self.insert(key, span);
        span
    }

    /// Resolves the `src → dst` walk through the memo and appends it to
    /// `buf`, returning the span *in `buf`* — a drop-in for
    /// `routes.walk_span(src, dst, buf)` for callers that own their
    /// walk arena (the incremental evaluator).
    #[inline]
    pub fn resolve_into<S: RouteSource + ?Sized>(
        &mut self,
        routes: &S,
        src: TileId,
        dst: TileId,
        buf: &mut Vec<u32>,
    ) -> (u32, u32) {
        let (start, len) = self.resolve(routes, src, dst);
        let at = buf.len() as u32;
        // noc-verify: allow(PANIC01) — the span was produced by resolve over this arena
        buf.extend_from_slice(&self.arena[start as usize..(start + len) as usize]);
        (at, len)
    }

    /// Linear probe: the slot holding `key`, or the empty slot where it
    /// belongs. The table is never full (growth keeps load ≤ 70%).
    #[inline]
    fn find_slot(&self, key: u64) -> usize {
        debug_assert!(!self.keys.is_empty());
        let mask = self.keys.len() - 1;
        // Fibonacci multiplicative hash; deterministic by construction.
        let mut i = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & mask;
        loop {
            // noc-verify: allow(PANIC01) — i is masked to the table length
            let k = self.keys[i];
            if k == 0 || k == key + 1 {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    #[inline]
    fn insert(&mut self, key: u64, span: (u32, u32)) {
        if self.keys.is_empty() {
            self.keys.resize(INITIAL_SLOTS, 0);
            self.vals.resize(INITIAL_SLOTS, (0, 0));
        } else if (self.live + 1) * 10 > self.keys.len() * 7 {
            self.grow();
        }
        let slot = self.find_slot(key);
        // noc-verify: allow(PANIC01) — find_slot returns an index below keys.len()
        debug_assert_eq!(self.keys[slot], 0, "insert only fills empty slots");
        // noc-verify: allow(PANIC01) — slot is below keys.len(); vals is sized with keys
        self.keys[slot] = key + 1;
        // noc-verify: allow(PANIC01) — vals is sized with keys
        self.vals[slot] = span;
        self.live += 1;
    }

    /// Doubles the table, re-seating every live pair (spans and arena
    /// are untouched, so outstanding spans stay valid across growth).
    fn grow(&mut self) {
        let old_keys = std::mem::take(&mut self.keys);
        let old_vals = std::mem::take(&mut self.vals);
        let cap = (old_keys.len() * 2).max(INITIAL_SLOTS);
        self.keys.resize(cap, 0);
        self.vals.resize(cap, (0, 0));
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != 0 {
                let slot = self.find_slot(k - 1);
                // noc-verify: allow(PANIC01) — find_slot returns an index below keys.len()
                self.keys[slot] = k;
                // noc-verify: allow(PANIC01) — vals is sized with keys
                self.vals[slot] = v;
            }
        }
    }
}

/// Packs a tile pair into the table key. Tile indices fit 32 bits by
/// mesh construction (`Mesh::new` bounds the tile count).
#[inline]
fn pair_key(src: TileId, dst: TileId) -> u64 {
    ((src.index() as u64) << 32) | dst.index() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crg::Mesh;
    use crate::route_provider::RouteProvider;
    use crate::routing::RoutingKind;

    fn mesh() -> Mesh {
        Mesh::new(6, 6).unwrap()
    }

    #[test]
    fn memoized_walks_match_direct_resolution() {
        let mesh = mesh();
        let routes = RouteProvider::on_demand(&mesh, RoutingKind::Xy);
        let mut memo = WalkMemo::new();
        let mut direct = Vec::new();
        for src in 0..36 {
            for dst in 0..36 {
                let (s, d) = (TileId::new(src), TileId::new(dst));
                direct.clear();
                let (ds, dl) = routes.walk_span(s, d, &mut direct);
                let (ms, ml) = memo.resolve(&routes, s, d);
                assert_eq!(dl, ml, "walk length differs for {src}->{dst}");
                assert_eq!(
                    &direct[ds as usize..(ds + dl) as usize],
                    &memo.arena()[ms as usize..(ms + ml) as usize],
                    "walk differs for {src}->{dst}"
                );
            }
        }
    }

    #[test]
    fn second_lookup_hits_without_touching_the_source() {
        let mesh = mesh();
        let routes = RouteProvider::implicit(&mesh, RoutingKind::Xy);
        let mut memo = WalkMemo::new();
        let (a, b) = (TileId::new(3), TileId::new(22));
        let first = memo.resolve(&routes, a, b);
        let arena_after_first = memo.arena().len();
        let second = memo.resolve(&routes, a, b);
        assert_eq!(first, second, "hit must return the recorded span");
        assert_eq!(memo.arena().len(), arena_after_first, "hit must not append");
        assert_eq!(memo.stats().hits, 1);
        assert_eq!(memo.stats().misses, 1);
    }

    #[test]
    fn resolve_into_matches_walk_span() {
        let mesh = mesh();
        let routes = RouteProvider::on_demand(&mesh, RoutingKind::Xy);
        let mut memo = WalkMemo::new();
        let mut via_memo = Vec::new();
        let mut via_source = Vec::new();
        for (src, dst) in [(0usize, 35usize), (35, 0), (7, 7), (0, 35)] {
            let (s, d) = (TileId::new(src), TileId::new(dst));
            let (ms, ml) = memo.resolve_into(&routes, s, d, &mut via_memo);
            let (ss, sl) = routes.walk_span(s, d, &mut via_source);
            assert_eq!(
                &via_memo[ms as usize..(ms + ml) as usize],
                &via_source[ss as usize..(ss + sl) as usize]
            );
        }
        assert_eq!(memo.stats().hits, 1, "the repeated pair must hit");
    }

    #[test]
    fn eviction_only_at_begin_eval_and_counted() {
        let mesh = mesh();
        let routes = RouteProvider::on_demand(&mesh, RoutingKind::Xy);
        let mut memo = WalkMemo::with_budget(8);
        let (a, b) = (TileId::new(0), TileId::new(35));
        memo.resolve(&routes, a, b);
        // Over budget, but no eviction until the checkpoint.
        memo.resolve(&routes, TileId::new(1), TileId::new(30));
        assert!(memo.arena().len() > 8);
        assert_eq!(memo.stats().evictions, 0);
        memo.begin_eval();
        assert_eq!(memo.stats().evictions, 1);
        assert!(memo.arena().is_empty());
        // Post-eviction lookups miss and re-resolve correctly.
        let span = memo.resolve(&routes, a, b);
        let mut direct = Vec::new();
        let (ds, dl) = routes.walk_span(a, b, &mut direct);
        assert_eq!(
            &memo.arena()[span.0 as usize..(span.0 + span.1) as usize],
            &direct[ds as usize..(ds + dl) as usize]
        );
    }

    #[test]
    fn growth_keeps_every_recorded_pair() {
        let mesh = Mesh::new(16, 16).unwrap();
        let routes = RouteProvider::implicit(&mesh, RoutingKind::Xy);
        let mut memo = WalkMemo::new();
        let pairs: Vec<(TileId, TileId)> = (0..256)
            .flat_map(|s| [(TileId::new(s), TileId::new((s * 7 + 13) % 256))])
            .collect();
        let spans: Vec<(u32, u32)> = pairs
            .iter()
            .map(|&(s, d)| memo.resolve(&routes, s, d))
            .collect();
        // Everything re-resolves as a hit with the identical span.
        let misses = memo.stats().misses;
        for (&(s, d), &span) in pairs.iter().zip(&spans) {
            assert_eq!(memo.resolve(&routes, s, d), span);
        }
        assert_eq!(memo.stats().misses, misses, "re-lookups must all hit");
    }
}
