//! Link/TSV failure injection and fault-tolerant detour routing.
//!
//! The paper's mappings assume a pristine mesh; this module models the
//! mesh after components die. A [`FaultSet`] is a set of dead
//! inter-router channels (both directions of a planar link, or a whole
//! vertical TSV pillar), built by hand or from a deterministic,
//! seed-driven [`FaultScenario`]. [`FaultAwareRoutes`] is the route
//! tier that survives it ([`crate::RouteProvider::FaultAware`]):
//!
//! * **Fast path** — when the canonical dimension-order route of a pair
//!   touches no dead link, the exact walk of the implicit tier is
//!   emitted. With an empty fault set every pair takes this path, so
//!   the tier is bit-identical to the healthy tiers (pinned by the
//!   repository's property tests).
//! * **Detour path** — otherwise a breadth-first search over the
//!   surviving channels finds a shortest detour, with deterministic
//!   tie-breaking (FIFO order, neighbours expanded in the fixed
//!   [`Direction::AXIAL`] order). Detours are cached per pair.
//! * **Partition** — when no surviving route exists,
//!   [`RouteSource::validate_pair`] reports
//!   [`ModelError::MeshPartitioned`]; nothing panics.
//!
//! Detours are *oblivious* per pair, not adaptive: every packet of a
//! pair takes the same surviving route, chosen without regard to load.
//! That models a router with a reconfigured routing table after fault
//! diagnosis — not a dynamically adaptive router — and it can lengthen
//! routes beyond the minimal surviving distance for no pair (BFS is
//! shortest-path) but *can* concentrate traffic on the links around a
//! fault. The robustness metrics in `noc-mapping` quantify exactly that
//! concentration.

use crate::crg::{Coord, Direction, Link, Mesh};
use crate::error::ModelError;
use crate::ids::TileId;
use crate::route_provider::{LinkNumbering, RouteSource};
use crate::routing::RoutingKind;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::Mutex;

/// Number of independently locked shards of the per-pair detour cache.
const FAULT_SHARDS: usize = 64;

/// Default total walk-arena budget of the detour cache, in `u32`
/// entries across all shards (matches the on-demand tier's ~64 MB).
const FAULT_CACHE_CAPACITY: usize = 1 << 24;

/// A set of dead inter-router channels.
///
/// Only [`Link::Internal`] channels can die: injection and ejection
/// links are core-local wiring the fault model (like the paper's
/// contention model) does not arbitrate. Channels are directed, and a
/// physical failure kills both directions — use [`FaultSet::kill_between`]
/// or the [`FaultScenario`] generators, which do.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct FaultSet {
    dead: BTreeSet<Link>,
}

impl FaultSet {
    /// Creates an empty (healthy-mesh) fault set.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no link is dead.
    pub fn is_empty(&self) -> bool {
        self.dead.is_empty()
    }

    /// Number of dead directed channels.
    pub fn len(&self) -> usize {
        self.dead.len()
    }

    /// True when the directed channel is dead.
    pub fn is_dead(&self, link: &Link) -> bool {
        self.dead.contains(link)
    }

    /// The dead channels, in deterministic (sorted) order.
    pub fn dead_links(&self) -> impl Iterator<Item = &Link> {
        self.dead.iter()
    }

    /// Kills one directed inter-router channel.
    ///
    /// # Panics
    ///
    /// Panics if `link` is an injection or ejection link — the fault
    /// model covers inter-router channels only.
    pub fn kill(&mut self, link: Link) {
        assert!(
            link.is_internal(),
            "fault model covers inter-router channels, not {link}"
        );
        self.dead.insert(link);
    }

    /// Kills both directions of the physical channel between two
    /// adjacent routers (a link failure takes down the wire pair).
    pub fn kill_between(&mut self, a: TileId, b: TileId) {
        self.kill(Link::between(a, b));
        self.kill(Link::between(b, a));
    }

    /// Kills the whole vertical TSV pillar at column `(x, y)`: both
    /// directions of every inter-layer channel, including the torus
    /// wrap channel of meshes deeper than two layers. A no-op on planar
    /// meshes.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` lies outside the mesh.
    pub fn kill_tsv_pillar(&mut self, mesh: &Mesh, x: usize, y: usize) {
        assert!(
            x < mesh.width() && y < mesh.height(),
            "pillar ({x}, {y}) outside the {}x{} layer",
            mesh.width(),
            mesh.height()
        );
        let tile = |z| {
            mesh.tile_at(Coord::new3(x, y, z))
                .expect("pillar coordinates are inside the mesh") // noc-verify: allow(PANIC01) — x/y asserted in-bounds above; z iterates 0..depth
        };
        for z in 0..mesh.depth().saturating_sub(1) {
            self.kill_between(tile(z), tile(z + 1));
        }
        if mesh.depth() > 2 {
            self.kill_between(tile(mesh.depth() - 1), tile(0));
        }
    }
}

/// Deterministic, seed-driven fault-set generators.
///
/// Equal scenarios on equal meshes generate equal [`FaultSet`]s — the
/// robustness experiments and their regression tests depend on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultScenario {
    /// `count` random physical mesh channels die (both directions
    /// each), drawn without replacement; clamped to the channel count.
    RandomLinks {
        /// Physical channels to kill.
        count: usize,
        /// Draw seed.
        seed: u64,
    },
    /// `count` random vertical TSV pillars die (see
    /// [`FaultSet::kill_tsv_pillar`]); clamped to the pillar count.
    /// Generates an empty set on planar meshes.
    RandomTsvs {
        /// Pillars to kill.
        count: usize,
        /// Draw seed.
        seed: u64,
    },
    /// Every channel touching a `width × height` tile region of one
    /// randomly placed layer dies (a localized manufacturing or thermal
    /// failure). Region dimensions clamp to the mesh.
    Region {
        /// Region width in tiles.
        width: usize,
        /// Region height in tiles.
        height: usize,
        /// Placement seed.
        seed: u64,
    },
}

/// `splitmix64` — the tiny deterministic generator the scenario
/// draws use (self-contained, so fault generation cannot drift with a
/// RNG crate).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// First `k` elements of a seeded Fisher–Yates shuffle of `0..n`.
fn choose_k(n: usize, k: usize, seed: u64) -> Vec<usize> {
    let mut state = seed ^ 0x5fa7_41fe_f417_0001;
    let mut indices: Vec<usize> = (0..n).collect();
    let k = k.min(n);
    for i in 0..k {
        let j = i + (splitmix64(&mut state) as usize) % (n - i);
        indices.swap(i, j);
    }
    indices.truncate(k);
    indices
}

impl FaultScenario {
    /// Generates the scenario's fault set on `mesh`. Deterministic:
    /// equal scenarios on equal meshes yield equal sets.
    pub fn generate(&self, mesh: &Mesh) -> FaultSet {
        let mut faults = FaultSet::new();
        match *self {
            Self::RandomLinks { count, seed } => {
                // One entry per physical channel: keep the canonical
                // (low → high) direction of the sorted link list.
                let channels: Vec<(TileId, TileId)> = mesh
                    .internal_links()
                    .into_iter()
                    .filter_map(|l| match l {
                        Link::Internal { from, to } if from < to => Some((from, to)),
                        _ => None,
                    })
                    .collect();
                for i in choose_k(channels.len(), count, seed) {
                    let (a, b) = channels[i];
                    faults.kill_between(a, b);
                }
            }
            Self::RandomTsvs { count, seed } => {
                if mesh.depth() > 1 {
                    let pillars = mesh.layer_size();
                    for i in choose_k(pillars, count, seed) {
                        faults.kill_tsv_pillar(mesh, i % mesh.width(), i / mesh.width());
                    }
                }
            }
            Self::Region {
                width,
                height,
                seed,
            } => {
                let rw = width.clamp(1, mesh.width());
                let rh = height.clamp(1, mesh.height());
                let mut state = seed ^ 0x5fa7_41fe_f417_0002;
                let x0 = (splitmix64(&mut state) as usize) % (mesh.width() - rw + 1);
                let y0 = (splitmix64(&mut state) as usize) % (mesh.height() - rh + 1);
                let z = (splitmix64(&mut state) as usize) % mesh.depth();
                for y in y0..y0 + rh {
                    for x in x0..x0 + rw {
                        let t = mesh
                            .tile_at(Coord::new3(x, y, z))
                            .expect("region is clamped to the mesh"); // noc-verify: allow(PANIC01) — region extent and origin are clamped/reduced modulo the mesh dimensions above
                        for dir in Direction::AXIAL {
                            if let Some(n) = mesh.neighbor(t, dir) {
                                faults.kill_between(t, n);
                            }
                        }
                    }
                }
            }
        }
        faults
    }
}

/// One cached pair resolution.
#[derive(Debug, Clone, Copy)]
enum PairEntry {
    /// A surviving route: span into the shard's walk arena, its
    /// vertical-hop count, and whether it detours off the canonical
    /// dimension-order route.
    Route {
        start: u32,
        len: u32,
        vertical: u32,
        detoured: bool,
    },
    /// The fault set disconnects the pair.
    Partitioned,
}

/// One shard of the per-pair route cache.
#[derive(Debug, Default)]
struct FaultShard {
    entries: HashMap<u64, PairEntry>,
    walks: Vec<u32>,
}

/// Resolution counters of a [`FaultAwareRoutes`] (diagnostics; reset
/// when a shard hits its memory cap and evicts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultRouteStats {
    /// Pairs resolved and currently cached.
    pub resolved_pairs: usize,
    /// Cached pairs routed around at least one dead link.
    pub detoured_pairs: usize,
    /// Cached pairs the fault set disconnects.
    pub partitioned_pairs: usize,
}

/// The fault-aware route tier. See the module docs for the routing
/// policy and [`crate::RouteProvider::fault_aware`] for the usual way
/// to construct one.
#[derive(Debug)]
pub struct FaultAwareRoutes {
    mesh: Mesh,
    kind: RoutingKind,
    numbering: LinkNumbering,
    faults: FaultSet,
    wrap_xy: bool,
    wrap_z: bool,
    shards: Box<[Mutex<FaultShard>]>,
    shard_capacity: usize,
}

impl FaultAwareRoutes {
    /// Creates the fault-aware router for `mesh` under the canonical
    /// routing `kind`, surviving `faults`.
    pub fn new(mesh: &Mesh, kind: RoutingKind, faults: FaultSet) -> Self {
        let order = kind.order();
        let shards = (0..FAULT_SHARDS)
            .map(|_| Mutex::new(FaultShard::default()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            mesh: *mesh,
            kind,
            numbering: LinkNumbering::new(mesh),
            faults,
            wrap_xy: order.wrap_xy,
            wrap_z: order.wrap_z,
            shards,
            shard_capacity: (FAULT_CACHE_CAPACITY / FAULT_SHARDS).max(64),
        }
    }

    /// [`Self::new`] with an explicit per-shard walk-arena capacity
    /// (in `u32` link ids). Tiny capacities force constant eviction —
    /// the concurrency stress tests use this to exercise the
    /// resolve-under-eviction paths that the default 16M-entry budget
    /// would never reach.
    pub fn with_shard_capacity(
        mesh: &Mesh,
        kind: RoutingKind,
        faults: FaultSet,
        shard_capacity: usize,
    ) -> Self {
        let mut this = Self::new(mesh, kind, faults);
        this.shard_capacity = shard_capacity.max(1);
        this
    }

    /// The canonical routing kind (used whenever it survives).
    pub fn kind(&self) -> RoutingKind {
        self.kind
    }

    /// The injected fault set.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// Current resolution counters (diagnostics).
    pub fn stats(&self) -> FaultRouteStats {
        let mut stats = FaultRouteStats::default();
        for shard in self.shards.iter() {
            let shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            // noc-verify: allow(DET01) — order-insensitive counter accumulation; totals are identical for any iteration order
            for entry in shard.entries.values() {
                stats.resolved_pairs += 1;
                match entry {
                    PairEntry::Route { detoured: true, .. } => stats.detoured_pairs += 1,
                    PairEntry::Route { .. } => {}
                    PairEntry::Partitioned => stats.partitioned_pairs += 1,
                }
            }
        }
        stats
    }

    /// The physical neighbour behind a router port, including the torus
    /// wrap neighbour of border tiles when the routing kind wraps that
    /// axis.
    fn port_neighbor(&self, tile: TileId, dir: Direction) -> Option<TileId> {
        if let Some(n) = self.mesh.neighbor(tile, dir) {
            return Some(n);
        }
        let c = self.mesh.coord(tile);
        let (w, h, d) = (self.mesh.width(), self.mesh.height(), self.mesh.depth());
        let wrapped = match dir {
            Direction::North if self.wrap_xy && h > 1 => Coord::new3(c.x, h - 1, c.z),
            Direction::South if self.wrap_xy && h > 1 => Coord::new3(c.x, 0, c.z),
            Direction::East if self.wrap_xy && w > 1 => Coord::new3(0, c.y, c.z),
            Direction::West if self.wrap_xy && w > 1 => Coord::new3(w - 1, c.y, c.z),
            Direction::Up if self.wrap_z && d > 1 => Coord::new3(c.x, c.y, d - 1),
            Direction::Down if self.wrap_z && d > 1 => Coord::new3(c.x, c.y, 0),
            _ => return None,
        };
        self.mesh.tile_at(wrapped)
    }

    /// The canonical dimension-order steps of a pair, and whether any
    /// of them traverses a dead link.
    fn canonical_steps(&self, src: TileId, dst: TileId) -> (Vec<(Coord, Coord)>, bool) {
        let mut steps = Vec::new();
        let mut touched = false;
        self.kind
            .order()
            .for_each_step(&self.mesh, src, dst, |a, b| {
                let (ta, tb) = (
                    // noc-verify: allow(PANIC01) — for_each_step yields only in-mesh coordinates by construction, so tile_at cannot return None
                    self.mesh.tile_at(a).expect("walk stays inside mesh"),
                    self.mesh.tile_at(b).expect("walk stays inside mesh"), // noc-verify: allow(PANIC01) — same invariant as the line above
                );
                touched |= self.faults.is_dead(&Link::between(ta, tb));
                steps.push((a, b));
            });
        (steps, touched)
    }

    /// Shortest surviving route as a tile path (`src ..= dst`), or
    /// `None` when the fault set disconnects the pair. Deterministic:
    /// FIFO breadth-first search expanding neighbours in
    /// [`Direction::AXIAL`] order assigns every tile a unique parent.
    fn detour(&self, src: TileId, dst: TileId) -> Option<Vec<TileId>> {
        let n = self.mesh.tile_count();
        let mut parent: Vec<u32> = vec![u32::MAX; n];
        parent[src.index()] = src.index() as u32;
        let mut queue = VecDeque::new();
        queue.push_back(src);
        while let Some(t) = queue.pop_front() {
            if t == dst {
                let mut path = vec![dst];
                let mut cur = dst.index();
                while cur != src.index() {
                    cur = parent[cur] as usize;
                    path.push(TileId::new(cur));
                }
                path.reverse();
                return Some(path);
            }
            for dir in Direction::AXIAL {
                let Some(nb) = self.port_neighbor(t, dir) else {
                    continue;
                };
                if parent[nb.index()] != u32::MAX || self.faults.is_dead(&Link::between(t, nb)) {
                    continue;
                }
                parent[nb.index()] = t.index() as u32;
                queue.push_back(nb);
            }
        }
        None
    }

    /// The pair's cache key and owning shard index.
    fn shard_of(&self, src: TileId, dst: TileId) -> (usize, u64) {
        let n = self.mesh.tile_count() as u64;
        let key = src.index() as u64 * n + dst.index() as u64;
        (key as usize % self.shards.len(), key)
    }

    /// Resolves (or fetches) the pair's cached route. Callers that only
    /// need the entry metadata; [`Self::walk_span`] must use
    /// [`Self::resolve_in`] under its own guard instead, so the walk
    /// copy happens before any other thread can evict the shard.
    fn resolve(&self, src: TileId, dst: TileId) -> PairEntry {
        let (idx, key) = self.shard_of(src, dst);
        let mut shard = self.shards[idx].lock().unwrap_or_else(|e| e.into_inner());
        self.resolve_in(&mut shard, key, src, dst)
    }

    /// Resolves (or fetches) the pair's route inside an already-locked
    /// shard. The returned span stays valid for exactly as long as the
    /// caller holds the guard.
    fn resolve_in(&self, shard: &mut FaultShard, key: u64, src: TileId, dst: TileId) -> PairEntry {
        if let Some(&entry) = shard.entries.get(&key) {
            return entry;
        }
        if shard.walks.len() >= self.shard_capacity {
            // Bounded memory, as in the on-demand tier: evict the whole
            // shard rather than track per-entry recency.
            shard.entries.clear();
            shard.walks.clear();
        }

        let (canonical, touched) = self.canonical_steps(src, dst);
        let (steps, detoured): (Vec<(Coord, Coord)>, bool) = if !touched {
            (canonical, false)
        } else {
            match self.detour(src, dst) {
                Some(path) => (
                    path.windows(2)
                        .map(|w| (self.mesh.coord(w[0]), self.mesh.coord(w[1])))
                        .collect(),
                    true,
                ),
                None => {
                    shard.entries.insert(key, PairEntry::Partitioned);
                    return PairEntry::Partitioned;
                }
            }
        };

        let start = shard.walks.len() as u32;
        let mut vertical = 0u32;
        shard.walks.push(self.numbering.injection(src));
        for &(a, b) in &steps {
            vertical += u32::from(a.z != b.z);
            let id = self.numbering.internal(a, b);
            shard.walks.push(id);
        }
        shard.walks.push(self.numbering.ejection(dst));
        let entry = PairEntry::Route {
            start,
            len: shard.walks.len() as u32 - start,
            vertical,
            detoured,
        };
        shard.entries.insert(key, entry);
        entry
    }
}

impl RouteSource for FaultAwareRoutes {
    fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    fn routing_name(&self) -> &'static str {
        self.kind.name()
    }

    fn dense_link_count(&self) -> usize {
        self.numbering.id_count()
    }

    fn router_count(&self, src: TileId, dst: TileId) -> usize {
        if self.faults.is_empty() {
            return self.kind.hop_distance(&self.mesh, src, dst) + 1;
        }
        match self.resolve(src, dst) {
            // Walk = injection + internals + ejection; routers = internals + 1.
            PairEntry::Route { len, .. } => len as usize - 1,
            PairEntry::Partitioned => 1,
        }
    }

    fn vertical_hops(&self, src: TileId, dst: TileId) -> usize {
        if self.faults.is_empty() {
            return self.kind.vertical_hops(&self.mesh, src, dst);
        }
        match self.resolve(src, dst) {
            PairEntry::Route { vertical, .. } => vertical as usize,
            PairEntry::Partitioned => 0,
        }
    }

    fn walk_span(&self, src: TileId, dst: TileId, buf: &mut Vec<u32>) -> (u32, u32) {
        let start = buf.len();
        if self.faults.is_empty() {
            // Bit-identical to the implicit tier: same coordinate walk,
            // same closed-form numbering, no locking.
            buf.push(self.numbering.injection(src));
            self.kind
                .order()
                .for_each_step(&self.mesh, src, dst, |a, b| {
                    buf.push(self.numbering.internal(a, b));
                });
            buf.push(self.numbering.ejection(dst));
            return (start as u32, (buf.len() - start) as u32);
        }
        // Resolve and copy under ONE guard: releasing the shard between
        // resolution and the walk copy would let a concurrent thread
        // evict the shard and leave the span pointing at cleared (or
        // recycled) arena slots.
        let (idx, key) = self.shard_of(src, dst);
        let mut shard = self.shards[idx].lock().unwrap_or_else(|e| e.into_inner());
        match self.resolve_in(&mut shard, key, src, dst) {
            PairEntry::Route { start: s, len, .. } => {
                buf.extend_from_slice(&shard.walks[s as usize..(s + len) as usize]);
                (start as u32, len)
            }
            PairEntry::Partitioned => {
                // Degenerate walk; callers learn the truth from
                // `validate_pair`, which the engines check.
                buf.push(self.numbering.injection(src));
                buf.push(self.numbering.ejection(dst));
                (start as u32, 2)
            }
        }
    }

    fn flat<'s>(&'s self, buf: &'s [u32]) -> &'s [u32] {
        buf
    }

    fn link_at(&self, id: u32) -> Option<Link> {
        self.numbering.link_at(id, self.wrap_xy, self.wrap_z)
    }

    fn validate_pair(&self, src: TileId, dst: TileId) -> Result<(), ModelError> {
        if self.faults.is_empty() {
            return Ok(());
        }
        match self.resolve(src, dst) {
            PairEntry::Route { .. } => Ok(()),
            PairEntry::Partitioned => Err(ModelError::MeshPartitioned { pair: (src, dst) }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route_provider::{ImplicitRoutes, RouteProvider};

    fn decode_walk<S: RouteSource>(source: &S, src: TileId, dst: TileId) -> Vec<Link> {
        let mut buf = Vec::new();
        let (start, len) = source.walk_span(src, dst, &mut buf);
        let flat = source.flat(&buf);
        flat[start as usize..(start + len) as usize]
            .iter()
            .map(|&id| source.link_at(id).expect("walk ids decode"))
            .collect()
    }

    #[test]
    fn empty_fault_set_matches_the_implicit_tier() {
        for (mesh, kinds) in [
            (Mesh::new(4, 3).unwrap(), RoutingKind::ALL.as_slice()),
            (Mesh::new3(3, 2, 2).unwrap(), RoutingKind::ALL.as_slice()),
        ] {
            for &kind in kinds {
                let implicit = ImplicitRoutes::new(&mesh, kind);
                let fault = FaultAwareRoutes::new(&mesh, kind, FaultSet::new());
                for src in mesh.tiles() {
                    for dst in mesh.tiles() {
                        assert_eq!(
                            decode_walk(&fault, src, dst),
                            decode_walk(&implicit, src, dst),
                            "{kind:?} {src}->{dst}"
                        );
                        assert_eq!(
                            RouteSource::router_count(&fault, src, dst),
                            RouteSource::router_count(&implicit, src, dst)
                        );
                        assert_eq!(
                            RouteSource::vertical_hops(&fault, src, dst),
                            RouteSource::vertical_hops(&implicit, src, dst)
                        );
                        fault.validate_pair(src, dst).unwrap();
                    }
                }
            }
        }
    }

    #[test]
    fn detours_avoid_dead_links_and_stay_shortest() {
        let mesh = Mesh::new(3, 3).unwrap();
        let mut faults = FaultSet::new();
        // Kill the first XY hop of 0 -> 2 (t0 -> t1 east).
        faults.kill_between(TileId::new(0), TileId::new(1));
        let fault = FaultAwareRoutes::new(&mesh, RoutingKind::Xy, faults.clone());
        let walk = decode_walk(&fault, TileId::new(0), TileId::new(2));
        for link in &walk {
            assert!(!faults.is_dead(link), "route traverses dead {link}");
        }
        // Shortest surviving detour is 3 internal hops (down, across is
        // blocked — around via row 1 or down-up), i.e. 4 hops total.
        assert_eq!(walk.len(), 2 + 4, "injection + 4 hops + ejection");
        assert_eq!(
            RouteSource::router_count(&fault, TileId::new(0), TileId::new(2)),
            5
        );
        // Untouched pairs keep the canonical route.
        let clean = decode_walk(&fault, TileId::new(3), TileId::new(5));
        let implicit = ImplicitRoutes::new(&mesh, RoutingKind::Xy);
        assert_eq!(
            clean,
            decode_walk(&implicit, TileId::new(3), TileId::new(5))
        );
        let stats = fault.stats();
        assert_eq!(stats.partitioned_pairs, 0);
        assert!(stats.detoured_pairs >= 1);
    }

    #[test]
    fn partition_is_a_typed_error_not_a_panic() {
        // 1x3 path mesh: killing the middle link separates the ends.
        let mesh = Mesh::new(3, 1).unwrap();
        let mut faults = FaultSet::new();
        faults.kill_between(TileId::new(1), TileId::new(2));
        let fault = FaultAwareRoutes::new(&mesh, RoutingKind::Xy, faults);
        let err = fault
            .validate_pair(TileId::new(0), TileId::new(2))
            .unwrap_err();
        assert!(matches!(
            err,
            ModelError::MeshPartitioned {
                pair: (a, b)
            } if a == TileId::new(0) && b == TileId::new(2)
        ));
        // The degenerate walk still avoids dead links and stays sane.
        let walk = decode_walk(&fault, TileId::new(0), TileId::new(2));
        assert_eq!(walk.len(), 2);
        // The connected side still routes.
        fault.validate_pair(TileId::new(0), TileId::new(1)).unwrap();
        assert_eq!(fault.stats().partitioned_pairs, 1);
    }

    #[test]
    fn torus_detours_may_use_wrap_channels() {
        let mesh = Mesh::new(4, 1).unwrap();
        let mut faults = FaultSet::new();
        // Killing 1 -> 2 on a ring forces 0 -> 2 the long way round.
        faults.kill_between(TileId::new(1), TileId::new(2));
        let fault = FaultAwareRoutes::new(&mesh, RoutingKind::TorusXy, faults.clone());
        fault.validate_pair(TileId::new(0), TileId::new(2)).unwrap();
        let walk = decode_walk(&fault, TileId::new(0), TileId::new(2));
        for link in &walk {
            assert!(!faults.is_dead(link));
        }
        assert_eq!(
            walk.len(),
            2 + 2,
            "west + wrap-west beats the dead east path"
        );
        // Under plain XY (no wrap ports) the same fault partitions.
        let xy = FaultAwareRoutes::new(&mesh, RoutingKind::Xy, faults);
        assert!(xy.validate_pair(TileId::new(0), TileId::new(2)).is_err());
    }

    #[test]
    fn tsv_pillar_faults_reroute_through_other_pillars() {
        let mesh = Mesh::new3(2, 2, 2).unwrap();
        let scenario = FaultScenario::RandomTsvs { count: 1, seed: 9 };
        let faults = scenario.generate(&mesh);
        assert_eq!(faults.len(), 2, "one pillar, one inter-layer channel pair");
        let fault = FaultAwareRoutes::new(&mesh, RoutingKind::Xyz, faults.clone());
        for src in mesh.tiles() {
            for dst in mesh.tiles() {
                fault.validate_pair(src, dst).unwrap();
                for link in decode_walk(&fault, src, dst) {
                    assert!(!faults.is_dead(&link), "{src}->{dst} uses dead {link}");
                }
            }
        }
    }

    #[test]
    fn scenarios_are_seed_deterministic() {
        let mesh = Mesh::new3(4, 4, 2).unwrap();
        for scenario in [
            FaultScenario::RandomLinks { count: 3, seed: 7 },
            FaultScenario::RandomTsvs { count: 2, seed: 7 },
            FaultScenario::Region {
                width: 2,
                height: 2,
                seed: 7,
            },
        ] {
            assert_eq!(scenario.generate(&mesh), scenario.generate(&mesh));
        }
        let a = FaultScenario::RandomLinks { count: 3, seed: 1 }.generate(&mesh);
        let b = FaultScenario::RandomLinks { count: 3, seed: 2 }.generate(&mesh);
        assert_ne!(a, b, "different seeds should draw different channels");
        // Counts are honoured (both directions per channel).
        assert_eq!(a.len(), 6);
        // Clamping: asking for more channels than exist kills them all.
        let all = FaultScenario::RandomLinks {
            count: usize::MAX,
            seed: 0,
        }
        .generate(&mesh);
        assert_eq!(all.len(), 2 * mesh.internal_links().len() / 2);
    }

    #[test]
    fn provider_integration_reports_the_tier() {
        let mesh = Mesh::new(3, 3).unwrap();
        let provider = RouteProvider::fault_aware(&mesh, RoutingKind::Xy, FaultSet::new());
        assert_eq!(provider.tier().name(), "fault-aware");
        assert!(provider.as_fault_aware().is_some());
        assert!(provider.as_dense().is_none());
        provider
            .validate_pair(TileId::new(0), TileId::new(8))
            .unwrap();
    }
}
