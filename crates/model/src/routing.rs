//! Deterministic routing algorithms and routed paths.
//!
//! The paper evaluates a mesh NoC with deterministic, dimension-ordered
//! **XY** routing: a packet first travels along the X dimension to the
//! destination column, then along Y. [`XyRouting`] implements exactly that;
//! [`YxRouting`] (Y first) is provided as an alternative for ablations.
//! On 3D meshes every dimension-ordered router finishes with the Z axis
//! ([`XyzRouting`] is the canonical 3D name), and the torus variants
//! ([`TorusXyRouting`], [`TorusXyzRouting`]) wrap around their respective
//! axes.
//!
//! A [`Path`] is the ordered list of routers a packet traverses (`K`
//! routers in the paper's equations) and exposes the full ordered resource
//! list — injection link, routers, inter-router links, ejection link —
//! consumed by the timing and energy models.

use crate::crg::{Coord, Link, Mesh};
use crate::ids::TileId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A routed path through the mesh: the sequence of routers from the source
/// tile to the destination tile (both inclusive).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Path {
    routers: Vec<TileId>,
}

impl Path {
    /// Builds a path from an ordered, non-empty router list.
    ///
    /// # Panics
    ///
    /// Panics if `routers` is empty (every path visits at least the source
    /// router).
    pub fn new(routers: Vec<TileId>) -> Self {
        assert!(!routers.is_empty(), "a path visits at least one router");
        Self { routers }
    }

    /// The routers visited, in order. `K = self.routers().len()` in the
    /// paper's Equations (2) and (6)–(8).
    pub fn routers(&self) -> &[TileId] {
        &self.routers
    }

    /// Number of routers traversed (the paper's `K`).
    pub fn router_count(&self) -> usize {
        self.routers.len()
    }

    /// Number of inter-router links traversed (`K − 1`).
    pub fn internal_link_count(&self) -> usize {
        self.routers.len() - 1
    }

    /// Number of *vertical* (TSV) inter-router links traversed: the steps
    /// whose endpoints lie on different layers of `mesh`. Always `0` on a
    /// depth-1 mesh, so the planar energy model is untouched.
    ///
    /// # Panics
    ///
    /// Panics if a router of the path lies outside `mesh`.
    pub fn vertical_link_count(&self, mesh: &Mesh) -> usize {
        if mesh.depth() == 1 {
            return 0;
        }
        self.routers
            .windows(2)
            .filter(|w| mesh.coord(w[0]).z != mesh.coord(w[1]).z)
            .count()
    }

    /// Source tile.
    pub fn source(&self) -> TileId {
        self.routers[0]
    }

    /// Destination tile.
    pub fn destination(&self) -> TileId {
        *self.routers.last().expect("non-empty")
    }

    /// The directed inter-router links of the path, in traversal order.
    pub fn internal_links(&self) -> impl Iterator<Item = Link> + '_ {
        self.routers.windows(2).map(|w| Link::between(w[0], w[1]))
    }

    /// The complete ordered resource walk of a packet following this path:
    /// injection link, then alternating router / link hops, then the
    /// ejection link. Routers are *not* part of this list; the timing model
    /// tracks router occupancy separately from the serializing links.
    pub fn links(&self) -> Vec<Link> {
        let mut seq = Vec::with_capacity(self.routers.len() + 1);
        seq.push(Link::Injection(self.source()));
        seq.extend(self.internal_links());
        seq.push(Link::Ejection(self.destination()));
        seq
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.routers.iter().map(|t| t.to_string()).collect();
        write!(f, "{}", parts.join(" → "))
    }
}

/// A deterministic unicast routing function on a mesh.
///
/// Implementations must return a connected path starting at `src` and
/// ending at `dst` whose consecutive routers are mesh-adjacent (or
/// torus-adjacent); `route` for `src == dst` returns the single-router
/// path (local delivery).
pub trait RoutingAlgorithm: fmt::Debug {
    /// Routes a packet from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if either tile lies outside `mesh`.
    fn route(&self, mesh: &Mesh, src: TileId, dst: TileId) -> Path;

    /// Short human-readable name ("XY", "YX", …).
    ///
    /// The names of the library algorithms (`"XY"`, `"YX"`,
    /// `"torus-XY"`, `"XYZ"`, `"torus-XYZ"`) are **reserved**:
    /// route-provider tier selection
    /// ([`crate::route_provider::RouteProvider::for_algorithm`])
    /// dispatches on this name, so a custom implementation must only
    /// report one of them if it produces identical routes.
    fn name(&self) -> &'static str;
}

/// The axis sweep order and wrap behaviour of one dimension-ordered
/// router. Every library routing is an instance of this walk; the
/// implicit route provider replays the identical step sequence from
/// coordinates, which is what keeps the tiers bit-exact.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DimensionOrder {
    /// Sweep Y before X (YX routing); X-first otherwise.
    pub(crate) y_first: bool,
    /// Wrap the planar axes (torus links in X and Y).
    pub(crate) wrap_xy: bool,
    /// Wrap the vertical axis (torus links in Z).
    pub(crate) wrap_z: bool,
}

impl DimensionOrder {
    /// Visits every routing step `a → b` of the pair's route, in order.
    /// The Z axis is always swept last — on a depth-1 mesh the Z sweep is
    /// empty and the walk is exactly the planar algorithm's.
    pub(crate) fn for_each_step(
        self,
        mesh: &Mesh,
        src: TileId,
        dst: TileId,
        mut f: impl FnMut(Coord, Coord),
    ) {
        let to = mesh.coord(dst);
        let mut cur = mesh.coord(src);
        let (w, h, d) = (mesh.width(), mesh.height(), mesh.depth());
        let sweep_x = |cur: &mut Coord, f: &mut dyn FnMut(Coord, Coord)| {
            while cur.x != to.x {
                let nx = if self.wrap_xy {
                    ring_step(cur.x, to.x, w)
                } else if cur.x < to.x {
                    cur.x + 1
                } else {
                    cur.x - 1
                };
                let next = Coord::new3(nx, cur.y, cur.z);
                f(*cur, next);
                *cur = next;
            }
        };
        let sweep_y = |cur: &mut Coord, f: &mut dyn FnMut(Coord, Coord)| {
            while cur.y != to.y {
                let ny = if self.wrap_xy {
                    ring_step(cur.y, to.y, h)
                } else if cur.y < to.y {
                    cur.y + 1
                } else {
                    cur.y - 1
                };
                let next = Coord::new3(cur.x, ny, cur.z);
                f(*cur, next);
                *cur = next;
            }
        };
        if self.y_first {
            sweep_y(&mut cur, &mut f);
            sweep_x(&mut cur, &mut f);
        } else {
            sweep_x(&mut cur, &mut f);
            sweep_y(&mut cur, &mut f);
        }
        while cur.z != to.z {
            let nz = if self.wrap_z {
                ring_step(cur.z, to.z, d)
            } else if cur.z < to.z {
                cur.z + 1
            } else {
                cur.z - 1
            };
            let next = Coord::new3(cur.x, cur.y, nz);
            f(cur, next);
            cur = next;
        }
    }

    /// Materializes the walk as a [`Path`].
    fn route(self, mesh: &Mesh, src: TileId, dst: TileId) -> Path {
        let mut routers = Vec::with_capacity(mesh.manhattan(src, dst) + 1);
        routers.push(src);
        self.for_each_step(mesh, src, dst, |_, b| {
            routers.push(mesh.tile_at(b).expect("sweep stays inside mesh"));
        });
        Path::new(routers)
    }
}

/// Dimension-ordered XY routing (X first, then Y, then Z on 3D meshes) —
/// the algorithm the paper evaluates. Deadlock-free and minimal on
/// meshes.
///
/// # Examples
///
/// ```
/// use noc_model::crg::Mesh;
/// use noc_model::ids::TileId;
/// use noc_model::routing::{RoutingAlgorithm, XyRouting};
///
/// # fn main() -> Result<(), noc_model::ModelError> {
/// let mesh = Mesh::new(2, 2)?;
/// // τ2 → τ3 in the paper (tiles 1 → 2): X first through tile 0.
/// let path = XyRouting.route(&mesh, TileId::new(1), TileId::new(2));
/// let ids: Vec<usize> = path.routers().iter().map(|t| t.index()).collect();
/// assert_eq!(ids, vec![1, 0, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct XyRouting;

pub(crate) const XY_ORDER: DimensionOrder = DimensionOrder {
    y_first: false,
    wrap_xy: false,
    wrap_z: false,
};

pub(crate) const YX_ORDER: DimensionOrder = DimensionOrder {
    y_first: true,
    wrap_xy: false,
    wrap_z: false,
};

pub(crate) const TORUS_XY_ORDER: DimensionOrder = DimensionOrder {
    y_first: false,
    wrap_xy: true,
    wrap_z: false,
};

pub(crate) const TORUS_XYZ_ORDER: DimensionOrder = DimensionOrder {
    y_first: false,
    wrap_xy: true,
    wrap_z: true,
};

impl RoutingAlgorithm for XyRouting {
    fn route(&self, mesh: &Mesh, src: TileId, dst: TileId) -> Path {
        XY_ORDER.route(mesh, src, dst)
    }

    fn name(&self) -> &'static str {
        "XY"
    }
}

/// Dimension-ordered YX routing (Y first, then X, then Z); useful for
/// routing ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct YxRouting;

impl RoutingAlgorithm for YxRouting {
    fn route(&self, mesh: &Mesh, src: TileId, dst: TileId) -> Path {
        YX_ORDER.route(mesh, src, dst)
    }

    fn name(&self) -> &'static str {
        "YX"
    }
}

/// Dimension-ordered XYZ routing on a 3D mesh: X, then Y, then Z down
/// the TSV pillars. This is the canonical deterministic router of the 3D
/// NoC mapping literature (Jha et al.); its routes coincide with
/// [`XyRouting`]'s on every mesh (XY already sweeps Z last), but it is a
/// distinct named algorithm so 3D experiments say what they run and so
/// the CLI exposes `--routing xyz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct XyzRouting;

impl RoutingAlgorithm for XyzRouting {
    fn route(&self, mesh: &Mesh, src: TileId, dst: TileId) -> Path {
        XY_ORDER.route(mesh, src, dst)
    }

    fn name(&self) -> &'static str {
        "XYZ"
    }
}

/// The routing algorithms the library ships, as a closed enum.
///
/// The `dyn RoutingAlgorithm` objects above are open for extension; this
/// enum is the *closed* subset the implicit and on-demand route providers
/// (see [`crate::route_provider`]) can walk directly from coordinates,
/// with closed-form hop distances and no stored routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutingKind {
    /// [`XyRouting`] — the paper's default.
    Xy,
    /// [`YxRouting`].
    Yx,
    /// [`TorusXyRouting`].
    TorusXy,
    /// [`XyzRouting`] — dimension-ordered 3D routing.
    Xyz,
    /// [`TorusXyzRouting`] — 3D torus with wrap links on all axes.
    TorusXyz,
}

impl RoutingKind {
    /// All library routing kinds, in declaration order (test and CLI
    /// enumeration helper).
    pub const ALL: [RoutingKind; 5] =
        [Self::Xy, Self::Yx, Self::TorusXy, Self::Xyz, Self::TorusXyz];

    /// The corresponding routing algorithm object.
    pub fn algorithm(self) -> &'static dyn RoutingAlgorithm {
        match self {
            Self::Xy => &XyRouting,
            Self::Yx => &YxRouting,
            Self::TorusXy => &TorusXyRouting,
            Self::Xyz => &XyzRouting,
            Self::TorusXyz => &TorusXyzRouting,
        }
    }

    /// The coordinate walk this kind performs (shared with the implicit
    /// route provider).
    pub(crate) fn order(self) -> DimensionOrder {
        match self {
            Self::Xy | Self::Xyz => XY_ORDER,
            Self::Yx => YX_ORDER,
            Self::TorusXy => TORUS_XY_ORDER,
            Self::TorusXyz => TORUS_XYZ_ORDER,
        }
    }

    /// The algorithm's display name (identical to
    /// [`RoutingAlgorithm::name`] of [`Self::algorithm`]).
    pub fn name(self) -> &'static str {
        self.algorithm().name()
    }

    /// Resolves an algorithm name ("XY", "yx", "torus-xy", "xyz", …) back
    /// to its kind; `None` for algorithms outside the closed set.
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "xy" => Some(Self::Xy),
            "yx" => Some(Self::Yx),
            "torus-xy" | "torus" => Some(Self::TorusXy),
            "xyz" => Some(Self::Xyz),
            "torus-xyz" => Some(Self::TorusXyz),
            _ => None,
        }
    }

    /// Number of inter-router hops of the route from `src` to `dst`
    /// (`router_count - 1`), in closed form — `O(1)`, no route is walked.
    pub fn hop_distance(self, mesh: &Mesh, src: TileId, dst: TileId) -> usize {
        let a = mesh.coord(src);
        let b = mesh.coord(dst);
        match self {
            // All dimension orders traverse the same Manhattan distance
            // (the Z sweep adds |Δz| on 3D meshes, 0 on planar ones).
            Self::Xy | Self::Yx | Self::Xyz => a.manhattan(b),
            Self::TorusXy => {
                ring_dist(a.x, b.x, mesh.width())
                    + ring_dist(a.y, b.y, mesh.height())
                    + a.z.abs_diff(b.z)
            }
            Self::TorusXyz => {
                ring_dist(a.x, b.x, mesh.width())
                    + ring_dist(a.y, b.y, mesh.height())
                    + ring_dist(a.z, b.z, mesh.depth())
            }
        }
    }

    /// Number of *vertical* (TSV) hops of the route, in closed form —
    /// the count [`Path::vertical_link_count`] returns for the walked
    /// route. `0` on depth-1 meshes for every kind.
    pub fn vertical_hops(self, mesh: &Mesh, src: TileId, dst: TileId) -> usize {
        let (az, bz) = (mesh.coord(src).z, mesh.coord(dst).z);
        match self {
            Self::TorusXyz => ring_dist(az, bz, mesh.depth()),
            _ => az.abs_diff(bz),
        }
    }
}

/// Minimal distance along a ring of length `len`.
pub(crate) fn ring_dist(from: usize, to: usize, len: usize) -> usize {
    let forward = (to + len - from) % len;
    let backward = (from + len - to) % len;
    forward.min(backward)
}

/// Dimension-ordered XY routing on a **torus** (the mesh with wrap-around
/// links in the two planar dimensions). Each wrapped dimension moves in
/// the direction of the shorter way around (ties go the positive way),
/// so routes are minimal on the torus. On 3D meshes the Z axis is swept
/// last *without* wrap links (stacked toroidal layers); use
/// [`TorusXyzRouting`] for a full 3D torus.
///
/// The paper notes that "other NoC topologies can be equally treated";
/// this router is that extension: the timing and energy engines only
/// consume the routed [`Path`], so torus experiments reuse them
/// unchanged. (The flit-level DES in `noc-sim` remains wrap-free —
/// dimension-ordered XY/XYZ meshes only.)
///
/// # Examples
///
/// ```
/// use noc_model::crg::Mesh;
/// use noc_model::ids::TileId;
/// use noc_model::routing::{RoutingAlgorithm, TorusXyRouting};
///
/// # fn main() -> Result<(), noc_model::ModelError> {
/// let mesh = Mesh::new(4, 1)?;
/// // 0 → 3 wraps west: one hop instead of three.
/// let path = TorusXyRouting.route(&mesh, TileId::new(0), TileId::new(3));
/// assert_eq!(path.router_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TorusXyRouting;

/// One minimal step along a ring of length `len` from `from` towards
/// `to`, preferring the positive direction on ties.
pub(crate) fn ring_step(from: usize, to: usize, len: usize) -> usize {
    debug_assert_ne!(from, to);
    let forward = (to + len - from) % len;
    let backward = (from + len - to) % len;
    if forward <= backward {
        (from + 1) % len
    } else {
        (from + len - 1) % len
    }
}

impl RoutingAlgorithm for TorusXyRouting {
    fn route(&self, mesh: &Mesh, src: TileId, dst: TileId) -> Path {
        TORUS_XY_ORDER.route(mesh, src, dst)
    }

    fn name(&self) -> &'static str {
        "torus-XY"
    }
}

/// Dimension-ordered routing on a full **3D torus**: wrap-around links
/// on all three axes, each swept the shorter way around (X, then Y,
/// then Z).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TorusXyzRouting;

impl RoutingAlgorithm for TorusXyzRouting {
    fn route(&self, mesh: &Mesh, src: TileId, dst: TileId) -> Path {
        TORUS_XYZ_ORDER.route(mesh, src, dst)
    }

    fn name(&self) -> &'static str {
        "torus-XYZ"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crg::Coord;

    fn mesh4() -> Mesh {
        Mesh::new(4, 4).unwrap()
    }

    #[test]
    fn xy_goes_x_first() {
        let m = mesh4();
        let src = m.tile_at(Coord::new(0, 0)).unwrap();
        let dst = m.tile_at(Coord::new(2, 2)).unwrap();
        let path = XyRouting.route(&m, src, dst);
        let coords: Vec<Coord> = path.routers().iter().map(|&t| m.coord(t)).collect();
        assert_eq!(
            coords,
            vec![
                Coord::new(0, 0),
                Coord::new(1, 0),
                Coord::new(2, 0),
                Coord::new(2, 1),
                Coord::new(2, 2),
            ]
        );
    }

    #[test]
    fn yx_goes_y_first() {
        let m = mesh4();
        let src = m.tile_at(Coord::new(0, 0)).unwrap();
        let dst = m.tile_at(Coord::new(2, 2)).unwrap();
        let path = YxRouting.route(&m, src, dst);
        let coords: Vec<Coord> = path.routers().iter().map(|&t| m.coord(t)).collect();
        assert_eq!(
            coords,
            vec![
                Coord::new(0, 0),
                Coord::new(0, 1),
                Coord::new(0, 2),
                Coord::new(1, 2),
                Coord::new(2, 2),
            ]
        );
    }

    #[test]
    fn route_to_self_is_single_router() {
        let m = mesh4();
        let t = TileId::new(5);
        let path = XyRouting.route(&m, t, t);
        assert_eq!(path.router_count(), 1);
        assert_eq!(path.internal_link_count(), 0);
        assert_eq!(path.source(), t);
        assert_eq!(path.destination(), t);
    }

    #[test]
    fn route_is_minimal_and_adjacent() {
        let m = mesh4();
        for src in m.tiles() {
            for dst in m.tiles() {
                for algo in [&XyRouting as &dyn RoutingAlgorithm, &YxRouting] {
                    let path = algo.route(&m, src, dst);
                    assert_eq!(path.source(), src);
                    assert_eq!(path.destination(), dst);
                    assert_eq!(path.router_count(), m.manhattan(src, dst) + 1);
                    for w in path.routers().windows(2) {
                        assert!(m.direction_between(w[0], w[1]).is_some());
                    }
                }
            }
        }
    }

    #[test]
    fn routes_sweep_z_last_on_3d_meshes() {
        let m = Mesh::new3(3, 3, 3).unwrap();
        let src = m.tile_at(Coord::new3(0, 0, 0)).unwrap();
        let dst = m.tile_at(Coord::new3(2, 1, 2)).unwrap();
        for algo in [&XyRouting as &dyn RoutingAlgorithm, &YxRouting, &XyzRouting] {
            let path = algo.route(&m, src, dst);
            assert_eq!(path.source(), src);
            assert_eq!(path.destination(), dst);
            assert_eq!(path.router_count(), m.manhattan(src, dst) + 1);
            assert_eq!(path.vertical_link_count(&m), 2, "{algo:?}");
            // The planar part completes before the first layer change.
            let coords: Vec<Coord> = path.routers().iter().map(|&t| m.coord(t)).collect();
            let first_z = coords.iter().position(|c| c.z != 0).unwrap();
            assert_eq!(coords[first_z - 1].x, 2);
            assert_eq!(coords[first_z - 1].y, 1);
            for w in path.routers().windows(2) {
                assert!(m.direction_between(w[0], w[1]).is_some());
            }
        }
    }

    #[test]
    fn xyz_routes_equal_xy_routes_everywhere() {
        for mesh in [Mesh::new(4, 3).unwrap(), Mesh::new3(3, 2, 3).unwrap()] {
            for src in mesh.tiles() {
                for dst in mesh.tiles() {
                    assert_eq!(
                        XyzRouting.route(&mesh, src, dst).routers(),
                        XyRouting.route(&mesh, src, dst).routers()
                    );
                }
            }
        }
    }

    #[test]
    fn torus_xyz_wraps_every_axis() {
        let m = Mesh::new3(4, 4, 4).unwrap();
        let a = m.tile_at(Coord::new3(0, 0, 0)).unwrap();
        let b = m.tile_at(Coord::new3(3, 0, 3)).unwrap();
        let path = TorusXyzRouting.route(&m, a, b);
        // One wrap hop west plus one wrap hop up.
        assert_eq!(path.router_count(), 3);
        assert_eq!(path.vertical_link_count(&m), 1);
        // torus-XY on the same pair wraps X but must walk Z the long way.
        let planar = TorusXyRouting.route(&m, a, b);
        assert_eq!(planar.router_count(), 5);
        assert_eq!(planar.vertical_link_count(&m), 3);
    }

    #[test]
    fn westward_and_northward_routes() {
        let m = mesh4();
        let src = m.tile_at(Coord::new(3, 3)).unwrap();
        let dst = m.tile_at(Coord::new(1, 0)).unwrap();
        let path = XyRouting.route(&m, src, dst);
        assert_eq!(path.router_count(), 6);
        assert_eq!(path.source(), src);
        assert_eq!(path.destination(), dst);
    }

    #[test]
    fn resource_walk_shape() {
        let m = mesh4();
        let src = TileId::new(0);
        let dst = TileId::new(3);
        let path = XyRouting.route(&m, src, dst);
        let links = path.links();
        assert_eq!(links.first(), Some(&Link::Injection(src)));
        assert_eq!(links.last(), Some(&Link::Ejection(dst)));
        assert_eq!(links.len(), path.internal_link_count() + 2);
        assert!(links[1..links.len() - 1].iter().all(Link::is_internal));
    }

    #[test]
    fn paper_figure1_mapping_a_route_a_to_f() {
        // Mapping (c): A on τ2 (tile 1), F on τ3 (tile 2). The paper shows
        // the A→F packet crossing router τ1 (tile 0), which is the X-first
        // route.
        let m = Mesh::new(2, 2).unwrap();
        let path = XyRouting.route(&m, TileId::new(1), TileId::new(2));
        assert_eq!(
            path.routers(),
            &[TileId::new(1), TileId::new(0), TileId::new(2)]
        );
        assert_eq!(path.to_string(), "t1 → t0 → t2");
    }

    #[test]
    fn torus_wraps_the_short_way() {
        let m = Mesh::new(5, 5).unwrap();
        let a = m.tile_at(Coord::new(0, 0)).unwrap();
        let b = m.tile_at(Coord::new(4, 0)).unwrap();
        let path = TorusXyRouting.route(&m, a, b);
        assert_eq!(path.router_count(), 2, "wrap west is one hop");
        let c = m.tile_at(Coord::new(0, 4)).unwrap();
        assert_eq!(TorusXyRouting.route(&m, a, c).router_count(), 2);
    }

    #[test]
    fn torus_matches_mesh_inside_short_distances() {
        let m = Mesh::new(5, 5).unwrap();
        let a = m.tile_at(Coord::new(1, 1)).unwrap();
        let b = m.tile_at(Coord::new(3, 2)).unwrap();
        assert_eq!(
            TorusXyRouting.route(&m, a, b).routers(),
            XyRouting.route(&m, a, b).routers()
        );
    }

    #[test]
    fn torus_routes_never_exceed_mesh_routes() {
        let m = Mesh::new(4, 3).unwrap();
        for src in m.tiles() {
            for dst in m.tiles() {
                let torus = TorusXyRouting.route(&m, src, dst).router_count();
                let mesh_route = XyRouting.route(&m, src, dst).router_count();
                assert!(torus <= mesh_route, "{src}->{dst}");
                assert!(
                    TorusXyRouting.route(&m, src, dst).router_count() - 1
                        <= m.width() / 2 + m.height() / 2 + 1
                );
            }
        }
    }

    #[test]
    fn torus_route_endpoints() {
        let m = Mesh::new(6, 2).unwrap();
        for src in m.tiles() {
            for dst in m.tiles() {
                let path = TorusXyRouting.route(&m, src, dst);
                assert_eq!(path.source(), src);
                assert_eq!(path.destination(), dst);
            }
        }
    }

    #[test]
    fn ring_step_prefers_positive_on_ties() {
        // len 4, 0 -> 2: both ways are 2 hops; positive preferred.
        assert_eq!(ring_step(0, 2, 4), 1);
        assert_eq!(ring_step(3, 1, 4), 0); // wrap forward
        assert_eq!(ring_step(1, 0, 4), 0); // backward shorter
    }

    #[test]
    #[should_panic(expected = "at least one router")]
    fn empty_path_panics() {
        let _ = Path::new(Vec::new());
    }

    #[test]
    fn routing_kind_round_trips_names() {
        for kind in RoutingKind::ALL {
            assert_eq!(RoutingKind::from_name(kind.name()), Some(kind));
            assert_eq!(kind.algorithm().name(), kind.name());
        }
        assert_eq!(RoutingKind::from_name("torus"), Some(RoutingKind::TorusXy));
        assert_eq!(RoutingKind::from_name("XYZ"), Some(RoutingKind::Xyz));
        assert_eq!(
            RoutingKind::from_name("torus-xyz"),
            Some(RoutingKind::TorusXyz)
        );
        assert_eq!(RoutingKind::from_name("zigzag"), None);
    }

    #[test]
    fn hop_distance_matches_walked_routes() {
        for mesh in [
            Mesh::new(5, 3).unwrap(),
            Mesh::new3(3, 2, 4).unwrap(),
            Mesh::new3(2, 2, 2).unwrap(),
        ] {
            for kind in RoutingKind::ALL {
                for src in mesh.tiles() {
                    for dst in mesh.tiles() {
                        assert_eq!(
                            kind.hop_distance(&mesh, src, dst) + 1,
                            kind.algorithm().route(&mesh, src, dst).router_count(),
                            "{kind:?} {src}->{dst}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn vertical_hops_match_walked_routes() {
        for mesh in [
            Mesh::new(4, 3).unwrap(),
            Mesh::new3(3, 3, 3).unwrap(),
            Mesh::new3(2, 2, 5).unwrap(),
        ] {
            for kind in RoutingKind::ALL {
                for src in mesh.tiles() {
                    for dst in mesh.tiles() {
                        let path = kind.algorithm().route(&mesh, src, dst);
                        assert_eq!(
                            kind.vertical_hops(&mesh, src, dst),
                            path.vertical_link_count(&mesh),
                            "{kind:?} {src}->{dst}"
                        );
                    }
                }
            }
        }
    }
}
