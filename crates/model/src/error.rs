//! Error types for model construction and validation.

use crate::ids::{CoreId, PacketId, TileId};
use std::error::Error;
use std::fmt;

/// Errors produced while building or validating the application/architecture
/// models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A core identifier referenced a core that does not exist.
    UnknownCore(CoreId),
    /// A tile identifier referenced a tile outside the mesh.
    UnknownTile(TileId),
    /// A packet identifier referenced a packet that does not exist.
    UnknownPacket(PacketId),
    /// A communication edge connected a core to itself.
    SelfCommunication(CoreId),
    /// A packet carried zero bits (the CWG/CDCG definitions require `w ≠ 0`).
    EmptyPacket(PacketId),
    /// Adding a dependence edge would create a cycle in the CDCG.
    DependenceCycle {
        /// Source packet of the offending edge.
        from: PacketId,
        /// Destination packet of the offending edge.
        to: PacketId,
    },
    /// A dependence edge was inserted twice.
    DuplicateDependence {
        /// Source packet of the duplicated edge.
        from: PacketId,
        /// Destination packet of the duplicated edge.
        to: PacketId,
    },
    /// The mesh would have zero tiles.
    EmptyMesh,
    /// There are more cores than tiles, so no injective mapping exists.
    TooManyCores {
        /// Number of application cores.
        cores: usize,
        /// Number of available tiles.
        tiles: usize,
    },
    /// A mapping placed two cores on the same tile.
    TileConflict {
        /// The doubly-used tile.
        tile: TileId,
        /// First core mapped to `tile`.
        first: CoreId,
        /// Second core mapped to `tile`.
        second: CoreId,
    },
    /// A mapping does not cover every core of the application.
    IncompleteMapping {
        /// Number of cores the mapping covers.
        mapped: usize,
        /// Number of cores the application has.
        expected: usize,
    },
    /// The dense per-pair route cache would be too large for this mesh;
    /// use an on-demand or implicit route provider instead
    /// (`noc_model::route_provider`).
    RouteCacheTooLarge {
        /// Tiles of the offending mesh.
        tiles: usize,
        /// Estimated table entries the dense cache would need.
        entries: u128,
    },
    /// A fault set disconnected the mesh: no surviving route exists
    /// between the pair (`noc_model::fault`).
    MeshPartitioned {
        /// The unroutable `(source, destination)` tile pair.
        pair: (TileId, TileId),
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownCore(c) => write!(f, "unknown core {c}"),
            Self::UnknownTile(t) => write!(f, "unknown tile {t}"),
            Self::UnknownPacket(p) => write!(f, "unknown packet {p}"),
            Self::SelfCommunication(c) => {
                write!(f, "core {c} cannot communicate with itself")
            }
            Self::EmptyPacket(p) => write!(f, "packet {p} carries zero bits"),
            Self::DependenceCycle { from, to } => {
                write!(f, "dependence {from} -> {to} would create a cycle")
            }
            Self::DuplicateDependence { from, to } => {
                write!(f, "dependence {from} -> {to} inserted twice")
            }
            Self::EmptyMesh => write!(f, "mesh must have at least one tile"),
            Self::TooManyCores { cores, tiles } => {
                write!(f, "{cores} cores cannot be mapped onto {tiles} tiles")
            }
            Self::TileConflict {
                tile,
                first,
                second,
            } => {
                write!(f, "cores {first} and {second} both mapped to tile {tile}")
            }
            Self::IncompleteMapping { mapped, expected } => {
                write!(f, "mapping covers {mapped} of {expected} cores")
            }
            Self::RouteCacheTooLarge { tiles, entries } => {
                write!(
                    f,
                    "dense route cache for {tiles} tiles needs ~{entries} table entries; \
                     use an on-demand or implicit route provider"
                )
            }
            Self::MeshPartitioned { pair: (src, dst) } => {
                write!(
                    f,
                    "fault set partitions the mesh: no surviving route from {src} to {dst}"
                )
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let err = ModelError::TooManyCores { cores: 5, tiles: 4 };
        let msg = err.to_string();
        assert!(msg.contains('5') && msg.contains('4'));
        assert!(msg.starts_with(char::is_numeric) || msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }

    #[test]
    fn display_all_variants() {
        let variants = [
            ModelError::UnknownCore(CoreId::new(1)),
            ModelError::UnknownTile(TileId::new(2)),
            ModelError::UnknownPacket(PacketId::new(3)),
            ModelError::SelfCommunication(CoreId::new(0)),
            ModelError::EmptyPacket(PacketId::new(9)),
            ModelError::DependenceCycle {
                from: PacketId::new(0),
                to: PacketId::new(1),
            },
            ModelError::DuplicateDependence {
                from: PacketId::new(0),
                to: PacketId::new(1),
            },
            ModelError::EmptyMesh,
            ModelError::TileConflict {
                tile: TileId::new(0),
                first: CoreId::new(1),
                second: CoreId::new(2),
            },
            ModelError::IncompleteMapping {
                mapped: 3,
                expected: 4,
            },
            ModelError::RouteCacheTooLarge {
                tiles: 4096,
                entries: 1 << 40,
            },
            ModelError::MeshPartitioned {
                pair: (TileId::new(0), TileId::new(5)),
            },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
