//! Tiered route provisioning: dense, on-demand and implicit routes.
//!
//! The evaluation engine consumes routes as *dense-link-id walks*: per
//! packet, the ordered list of `u32` resource ids (injection link,
//! inter-router links, ejection link) that per-link state vectors are
//! indexed by. [`RouteCache`] precomputes every pair's walk — unbeatable
//! for small meshes, but its `O(n²·diameter)` tables stop fitting well
//! before the meshes the large-scale NoC-mapping literature evaluates
//! (3D and hundred-by-hundred grids). [`RouteProvider`] generalizes the
//! supply side into three tiers behind one interface ([`RouteSource`]):
//!
//! * **[`RouteProvider::Dense`]** — the precomputed [`RouteCache`],
//!   unchanged fast path for meshes up to roughly 32×32. Walks are spans
//!   into the cache's shared flat array; resolving one allocates and
//!   copies nothing.
//! * **[`RouteProvider::OnDemand`]** — a sharded pair cache
//!   ([`OnDemandRoutes`]) that routes lazily on first use and interns the
//!   walk, with bounded memory: each shard clears itself when its walk
//!   arena exceeds its cap, so the provider never grows past a fixed
//!   budget no matter how many pairs a search touches. Resolving a walk
//!   copies it into the caller's buffer (the shards are internally
//!   locked, so the provider stays `Sync` for multi-start search).
//! * **[`RouteProvider::Implicit`]** — no stored routes at all
//!   ([`ImplicitRoutes`]): XY/YX/torus/XYZ walks are generated directly
//!   from tile coordinates into the caller's buffer, and link ids come
//!   from a closed-form **per-tile-port numbering**: one slot per
//!   injection and ejection link plus one per outgoing router port —
//!   four ports per tile on planar meshes (the historical `6·n` total),
//!   six on 3D meshes (`8·n`, adding the up/down TSV ports). Zero
//!   resident memory; `O(route length)` per resolution.
//!
//! Dense ids differ between the tiers (first-use interning order versus
//! the closed form), but evaluation results do not: the ids are a
//! bijection onto the same physical links, and the timing/energy engines
//! depend only on which walks share which resources. The repository's
//! property tests pin bit-identical costs across all three tiers, on
//! planar and 3D meshes alike.
//!
//! [`RouteProvider::auto`] picks dense while the estimated tables stay
//! small and falls back to on-demand beyond — large meshes work out of
//! the box instead of failing at construction time. The CLI exposes the
//! choice as `--route-cache dense|on-demand|implicit|auto`.

use crate::crg::{Coord, Link, Mesh};
use crate::error::ModelError;
use crate::ids::TileId;
use crate::route_cache::RouteCache;
use crate::routing::{RoutingAlgorithm, RoutingKind};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Entry-estimate threshold below which [`RouteProvider::auto`] picks
/// the dense tier (≈ a 32×32 mesh; ~250 MB of tables at the boundary).
pub const AUTO_DENSE_MAX_ENTRIES: u128 = 1 << 25;

/// Default total walk-arena budget of the on-demand tier, in `u32`
/// entries across all shards (≈ 64 MB).
const ON_DEMAND_DEFAULT_CAPACITY: usize = 1 << 24;

/// Number of independently locked shards of [`OnDemandRoutes`].
const ON_DEMAND_SHARDS: usize = 64;

/// A supplier of routes in the dense-link-id form the evaluation engine
/// consumes. Implemented by [`RouteCache`] (shared flat array) and
/// [`RouteProvider`] (all three tiers).
pub trait RouteSource {
    /// The mesh the routes traverse.
    fn mesh(&self) -> &Mesh;

    /// Name of the routing algorithm ("XY", "YX", "torus-XY", …).
    fn routing_name(&self) -> &'static str;

    /// Exclusive upper bound of the dense link-id space — the size for
    /// per-link state vectors. Ids below it need not all be in use.
    fn dense_link_count(&self) -> usize;

    /// Number of routers on the pair's route (the paper's `K`), `O(1)`.
    fn router_count(&self, src: TileId, dst: TileId) -> usize;

    /// Number of vertical (TSV) inter-router links on the pair's route,
    /// `O(1)`. Always `0` on depth-1 meshes; the 3D energy model charges
    /// these hops the vertical per-bit link energy instead of the
    /// horizontal one.
    fn vertical_hops(&self, src: TileId, dst: TileId) -> usize;

    /// Resolves the pair's resource walk, returning `(start, len)` into
    /// the flat array [`Self::flat`] yields. Sources with a shared
    /// precomputed array leave `buf` untouched and span it directly; the
    /// other tiers append the walk to `buf` and span the appended region.
    fn walk_span(&self, src: TileId, dst: TileId, buf: &mut Vec<u32>) -> (u32, u32);

    /// The flat array the spans of [`Self::walk_span`] index: the shared
    /// precomputed array for the dense tier, `buf` itself otherwise.
    fn flat<'s>(&'s self, buf: &'s [u32]) -> &'s [u32];

    /// The physical link behind a dense id, if the id is in use (for
    /// diagnostics; never on the evaluation hot path).
    fn link_at(&self, id: u32) -> Option<Link>;

    /// Checks that a surviving route exists for the pair. The healthy
    /// tiers always succeed (their routings are total on a connected
    /// mesh); the fault-aware tier returns
    /// [`ModelError::MeshPartitioned`] when its fault set disconnects
    /// the pair, and [`Self::walk_span`] would yield a degenerate
    /// injection-plus-ejection walk. Engines call this before trusting a
    /// resolved walk, so disconnection surfaces as a typed error rather
    /// than a panic or a silently wrong cost.
    fn validate_pair(&self, _src: TileId, _dst: TileId) -> Result<(), ModelError> {
        Ok(())
    }
}

impl RouteSource for RouteCache {
    fn mesh(&self) -> &Mesh {
        self.mesh()
    }

    fn routing_name(&self) -> &'static str {
        self.routing_name()
    }

    fn dense_link_count(&self) -> usize {
        self.dense_link_count()
    }

    fn router_count(&self, src: TileId, dst: TileId) -> usize {
        self.router_count(src, dst)
    }

    fn vertical_hops(&self, src: TileId, dst: TileId) -> usize {
        self.vertical_hops(src, dst)
    }

    fn walk_span(&self, src: TileId, dst: TileId, _buf: &mut Vec<u32>) -> (u32, u32) {
        let span = self.link_span(src, dst);
        (span.start as u32, (span.end - span.start) as u32)
    }

    fn flat<'s>(&'s self, _buf: &'s [u32]) -> &'s [u32] {
        self.link_ids_flat()
    }

    fn link_at(&self, id: u32) -> Option<Link> {
        ((id as usize) < self.dense_link_count()).then(|| self.link_of(id))
    }
}

/// Closed-form dense link numbering shared by the implicit and on-demand
/// tiers, one slot **per tile port**: injection links occupy ids `0..n`,
/// ejection links `n..2n`, and the outgoing internal links of tile `t`
/// occupy `2n + ports·t + direction` — `ports = 4` on planar meshes
/// (north, south, east, west; the historical `6n` total) and `ports = 6`
/// on 3D meshes (adding up and down TSV ports, `8n` total). Depth-1
/// numbering is therefore bit-identical to the pre-3D formula. Border
/// slots stay unused on meshes; wrap steps of the torus routers are
/// canonicalized onto the direction the coordinate delta implies, so a
/// 2-wide ring maps both ways onto the same `Link` — exactly the
/// identity [`Link::between`] gives them.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LinkNumbering {
    mesh: Mesh,
    /// Outgoing router ports per tile: 4 planar, 6 with the TSV pair.
    ports: usize,
}

const DIR_NORTH: u32 = 0;
const DIR_SOUTH: u32 = 1;
const DIR_EAST: u32 = 2;
const DIR_WEST: u32 = 3;
const DIR_UP: u32 = 4;
const DIR_DOWN: u32 = 5;

impl LinkNumbering {
    pub(crate) fn new(mesh: &Mesh) -> Self {
        Self {
            mesh: *mesh,
            ports: if mesh.depth() == 1 { 4 } else { 6 },
        }
    }

    fn tiles(self) -> usize {
        self.mesh.tile_count()
    }

    pub(crate) fn id_count(self) -> usize {
        (2 + self.ports) * self.tiles()
    }

    pub(crate) fn injection(self, tile: TileId) -> u32 {
        tile.index() as u32
    }

    pub(crate) fn ejection(self, tile: TileId) -> u32 {
        (self.tiles() + tile.index()) as u32
    }

    /// Direction code of one routing step `a → b`, direct adjacency
    /// first, torus wrap second — so when both apply (a 2-long ring) the
    /// direct reading wins and both "directions" share one id, matching
    /// the endpoint-pair identity of [`Link::between`].
    fn step_dir(self, a: Coord, b: Coord) -> u32 {
        if a.x != b.x {
            if b.x == a.x + 1 {
                DIR_EAST
            } else if b.x + 1 == a.x {
                DIR_WEST
            } else if a.x == self.mesh.width() - 1 && b.x == 0 {
                DIR_EAST
            } else {
                debug_assert!(
                    a.x == 0 && b.x == self.mesh.width() - 1,
                    "non-adjacent x step"
                );
                DIR_WEST
            }
        } else if a.y != b.y {
            if b.y == a.y + 1 {
                DIR_SOUTH
            } else if b.y + 1 == a.y {
                DIR_NORTH
            } else if a.y == self.mesh.height() - 1 && b.y == 0 {
                DIR_SOUTH
            } else {
                debug_assert!(
                    a.y == 0 && b.y == self.mesh.height() - 1,
                    "non-adjacent y step"
                );
                DIR_NORTH
            }
        } else if b.z == a.z + 1 {
            DIR_DOWN
        } else if b.z + 1 == a.z {
            DIR_UP
        } else if a.z == self.mesh.depth() - 1 && b.z == 0 {
            DIR_DOWN
        } else {
            debug_assert!(
                a.z == 0 && b.z == self.mesh.depth() - 1,
                "non-adjacent z step"
            );
            DIR_UP
        }
    }

    pub(crate) fn internal(self, a: Coord, b: Coord) -> u32 {
        let from = self
            .mesh
            .tile_at(a)
            .expect("walk stays inside mesh") // noc-verify: allow(PANIC01) — callers pass coordinates produced by the mesh's own step walker, which never leaves the mesh
            .index() as u32;
        (2 * self.tiles()) as u32 + self.ports as u32 * from + self.step_dir(a, b)
    }

    /// Decodes an id back to its physical link; `None` for ids the
    /// encoder never produces (border slots, or the collapsed wrap slot
    /// of a 2-long ring). `wrap_xy`/`wrap_z` enable torus neighbours per
    /// axis group.
    pub(crate) fn link_at(self, id: u32, wrap_xy: bool, wrap_z: bool) -> Option<Link> {
        let n = self.tiles();
        let id = id as usize;
        if id < n {
            return Some(Link::Injection(TileId::new(id)));
        }
        if id < 2 * n {
            return Some(Link::Ejection(TileId::new(id - n)));
        }
        if id >= self.id_count() {
            return None;
        }
        let rest = id - 2 * n;
        let tile = rest / self.ports;
        let dir = (rest % self.ports) as u32;
        let (w, h, d) = (self.mesh.width(), self.mesh.height(), self.mesh.depth());
        let a = self.mesh.coord(TileId::new(tile));
        let b = match dir {
            DIR_NORTH if a.y > 0 => Coord::new3(a.x, a.y - 1, a.z),
            DIR_NORTH if wrap_xy && h > 1 => Coord::new3(a.x, h - 1, a.z),
            DIR_SOUTH if a.y + 1 < h => Coord::new3(a.x, a.y + 1, a.z),
            DIR_SOUTH if wrap_xy && h > 1 => Coord::new3(a.x, 0, a.z),
            DIR_EAST if a.x + 1 < w => Coord::new3(a.x + 1, a.y, a.z),
            DIR_EAST if wrap_xy && w > 1 => Coord::new3(0, a.y, a.z),
            DIR_WEST if a.x > 0 => Coord::new3(a.x - 1, a.y, a.z),
            DIR_WEST if wrap_xy && w > 1 => Coord::new3(w - 1, a.y, a.z),
            DIR_UP if a.z > 0 => Coord::new3(a.x, a.y, a.z - 1),
            DIR_UP if wrap_z && d > 1 => Coord::new3(a.x, a.y, d - 1),
            DIR_DOWN if a.z + 1 < d => Coord::new3(a.x, a.y, a.z + 1),
            DIR_DOWN if wrap_z && d > 1 => Coord::new3(a.x, a.y, 0),
            _ => return None,
        };
        // Reject slots the canonical encoder would map elsewhere (the
        // wrap duplicate on a 2-long ring).
        if self.step_dir(a, b) != dir {
            return None;
        }
        let to = self
            .mesh
            .tile_at(b)
            .expect("decoded neighbour is inside the mesh"); // noc-verify: allow(PANIC01) — `b` was just bounds-checked against width/height/depth in the match above
        Some(Link::between(TileId::new(tile), to))
    }
}

/// The implicit tier: allocation-free coordinate walks, no stored routes.
/// See the module docs.
#[derive(Debug, Clone)]
pub struct ImplicitRoutes {
    mesh: Mesh,
    kind: RoutingKind,
    numbering: LinkNumbering,
}

impl ImplicitRoutes {
    /// Creates the walker for `mesh` under `kind`.
    pub fn new(mesh: &Mesh, kind: RoutingKind) -> Self {
        Self {
            mesh: *mesh,
            kind,
            numbering: LinkNumbering::new(mesh),
        }
    }

    /// The routing kind being walked.
    pub fn kind(&self) -> RoutingKind {
        self.kind
    }

    /// Whether the planar / vertical axes wrap under this kind (for id
    /// decoding) — read from the kind's own [`DimensionOrder`] so the
    /// decoder can never diverge from the walk encoder.
    fn wraps(&self) -> (bool, bool) {
        let order = self.kind.order();
        (order.wrap_xy, order.wrap_z)
    }
}

impl RouteSource for ImplicitRoutes {
    fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    fn routing_name(&self) -> &'static str {
        self.kind.name()
    }

    fn dense_link_count(&self) -> usize {
        self.numbering.id_count()
    }

    fn router_count(&self, src: TileId, dst: TileId) -> usize {
        self.kind.hop_distance(&self.mesh, src, dst) + 1
    }

    fn vertical_hops(&self, src: TileId, dst: TileId) -> usize {
        self.kind.vertical_hops(&self.mesh, src, dst)
    }

    fn walk_span(&self, src: TileId, dst: TileId, buf: &mut Vec<u32>) -> (u32, u32) {
        let start = buf.len();
        buf.push(self.numbering.injection(src));
        // The identical coordinate walk the kind's `RoutingAlgorithm`
        // performs (shared `DimensionOrder`), emitted as closed-form ids.
        self.kind
            .order()
            .for_each_step(&self.mesh, src, dst, |a, b| {
                buf.push(self.numbering.internal(a, b));
            });
        buf.push(self.numbering.ejection(dst));
        (start as u32, (buf.len() - start) as u32)
    }

    fn flat<'s>(&'s self, buf: &'s [u32]) -> &'s [u32] {
        buf
    }

    fn link_at(&self, id: u32) -> Option<Link> {
        let (wrap_xy, wrap_z) = self.wraps();
        self.numbering.link_at(id, wrap_xy, wrap_z)
    }
}

/// One shard of the on-demand pair cache: memoized walks in a bump arena
/// plus the pair → span map.
#[derive(Debug, Default)]
struct Shard {
    spans: HashMap<u64, (u32, u32)>,
    walks: Vec<u32>,
}

/// The on-demand tier: lazily routed, interned pair walks with bounded
/// memory. See the module docs.
#[derive(Debug)]
pub struct OnDemandRoutes {
    walker: ImplicitRoutes,
    shards: Box<[Mutex<Shard>]>,
    /// Per-shard walk-arena cap; a shard exceeding it clears itself
    /// before interning the next walk (epoch eviction).
    shard_capacity: usize,
}

impl OnDemandRoutes {
    /// Creates the pair cache with the default memory budget (~64 MB).
    pub fn new(mesh: &Mesh, kind: RoutingKind) -> Self {
        Self::with_capacity(mesh, kind, ON_DEMAND_DEFAULT_CAPACITY)
    }

    /// Creates the pair cache with an explicit total walk-arena budget
    /// (in `u32` entries, split evenly across the internal shards).
    pub fn with_capacity(mesh: &Mesh, kind: RoutingKind, capacity: usize) -> Self {
        let shards = (0..ON_DEMAND_SHARDS)
            .map(|_| Mutex::new(Shard::default()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            walker: ImplicitRoutes::new(mesh, kind),
            shards,
            shard_capacity: (capacity / ON_DEMAND_SHARDS).max(64),
        }
    }

    /// The routing kind being cached.
    pub fn kind(&self) -> RoutingKind {
        self.walker.kind()
    }

    /// Number of pair walks currently memoized (diagnostics).
    pub fn cached_pairs(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).spans.len())
            .sum()
    }
}

impl RouteSource for OnDemandRoutes {
    fn mesh(&self) -> &Mesh {
        self.walker.mesh()
    }

    fn routing_name(&self) -> &'static str {
        self.walker.routing_name()
    }

    fn dense_link_count(&self) -> usize {
        self.walker.dense_link_count()
    }

    fn router_count(&self, src: TileId, dst: TileId) -> usize {
        self.walker.router_count(src, dst)
    }

    fn vertical_hops(&self, src: TileId, dst: TileId) -> usize {
        RouteSource::vertical_hops(&self.walker, src, dst)
    }

    fn walk_span(&self, src: TileId, dst: TileId, buf: &mut Vec<u32>) -> (u32, u32) {
        let n = self.walker.mesh().tile_count() as u64;
        let key = src.index() as u64 * n + dst.index() as u64;
        let mut shard = self.shards[key as usize % self.shards.len()]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let start = buf.len();
        let (s, l) = match shard.spans.get(&key) {
            Some(&span) => span,
            None => {
                if shard.walks.len() >= self.shard_capacity {
                    // Bounded memory: evict the whole shard rather than
                    // track per-entry recency.
                    shard.spans.clear();
                    shard.walks.clear();
                }
                let span = self.walker.walk_span(src, dst, &mut shard.walks);
                shard.spans.insert(key, span);
                span
            }
        };
        buf.extend_from_slice(&shard.walks[s as usize..(s + l) as usize]);
        (start as u32, l)
    }

    fn flat<'s>(&'s self, buf: &'s [u32]) -> &'s [u32] {
        buf
    }

    fn link_at(&self, id: u32) -> Option<Link> {
        self.walker.link_at(id)
    }
}

/// Which tier a [`RouteProvider`] is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteTier {
    /// Full per-pair precomputation ([`RouteCache`]).
    Dense,
    /// Lazily interned pair walks with bounded memory.
    OnDemand,
    /// Coordinate walks, no stored routes.
    Implicit,
    /// Detour routing around a [`crate::fault::FaultSet`] of dead links.
    FaultAware,
}

impl RouteTier {
    /// Display/CLI name of the tier.
    pub fn name(self) -> &'static str {
        match self {
            Self::Dense => "dense",
            Self::OnDemand => "on-demand",
            Self::Implicit => "implicit",
            Self::FaultAware => "fault-aware",
        }
    }
}

/// A tiered route supplier: one of the three strategies behind the
/// [`RouteSource`] interface. See the module docs for the tiers and
/// their trade-offs.
#[derive(Debug)]
pub enum RouteProvider {
    /// The dense precomputed cache.
    Dense(Arc<RouteCache>),
    /// The bounded-memory on-demand pair cache.
    OnDemand(OnDemandRoutes),
    /// The allocation-free implicit walker.
    Implicit(ImplicitRoutes),
    /// The fault-aware detour router (`crate::fault`).
    FaultAware(crate::fault::FaultAwareRoutes),
}

impl RouteProvider {
    /// Dense tier for `mesh` under `kind`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::RouteCacheTooLarge`] when the mesh exceeds
    /// what the dense cache agrees to precompute.
    pub fn dense(mesh: &Mesh, kind: RoutingKind) -> Result<Self, ModelError> {
        Ok(Self::Dense(Arc::new(RouteCache::with_routing(
            mesh,
            kind.algorithm(),
        )?)))
    }

    /// Wraps an already-built dense cache.
    pub fn from_cache(cache: Arc<RouteCache>) -> Self {
        Self::Dense(cache)
    }

    /// On-demand tier for `mesh` under `kind`.
    pub fn on_demand(mesh: &Mesh, kind: RoutingKind) -> Self {
        Self::OnDemand(OnDemandRoutes::new(mesh, kind))
    }

    /// Implicit tier for `mesh` under `kind`.
    pub fn implicit(mesh: &Mesh, kind: RoutingKind) -> Self {
        Self::Implicit(ImplicitRoutes::new(mesh, kind))
    }

    /// Fault-aware tier for `mesh` under `kind`: canonical
    /// dimension-order routes while they avoid the dead links of
    /// `faults`, cached BFS detours otherwise. With an empty fault set
    /// this tier is bit-identical to [`Self::implicit`].
    pub fn fault_aware(mesh: &Mesh, kind: RoutingKind, faults: crate::fault::FaultSet) -> Self {
        Self::FaultAware(crate::fault::FaultAwareRoutes::new(mesh, kind, faults))
    }

    /// Size-based automatic tier choice: dense while the estimated
    /// tables stay below [`AUTO_DENSE_MAX_ENTRIES`], on-demand beyond.
    /// Never fails and never precomputes more than the threshold allows.
    pub fn auto(mesh: &Mesh, kind: RoutingKind) -> Self {
        if RouteCache::dense_entry_estimate(mesh) <= AUTO_DENSE_MAX_ENTRIES {
            if let Ok(provider) = Self::dense(mesh, kind) {
                return provider;
            }
        }
        Self::on_demand(mesh, kind)
    }

    /// Automatic tier choice for any routing algorithm: library
    /// algorithms resolve to their [`RoutingKind`] and go through
    /// [`Self::auto`]; unknown custom algorithms require the dense tier
    /// (only it can call back into arbitrary `route` implementations).
    ///
    /// Resolution is **by name**: the names `"XY"`, `"YX"`, `"torus-XY"`,
    /// `"XYZ"` and `"torus-XYZ"` are reserved for the library algorithms
    /// (see [`RoutingAlgorithm::name`]) — a custom algorithm reporting
    /// one of them is served by the corresponding coordinate walker, not
    /// by its own `route` implementation.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::RouteCacheTooLarge`] only for *custom*
    /// algorithms on meshes too large to cache densely.
    pub fn for_algorithm(mesh: &Mesh, routing: &dyn RoutingAlgorithm) -> Result<Self, ModelError> {
        match RoutingKind::from_name(routing.name()) {
            Some(kind) => Ok(Self::auto(mesh, kind)),
            None => Ok(Self::Dense(Arc::new(RouteCache::with_routing(
                mesh, routing,
            )?))),
        }
    }

    /// The tier this provider runs.
    pub fn tier(&self) -> RouteTier {
        match self {
            Self::Dense(_) => RouteTier::Dense,
            Self::OnDemand(_) => RouteTier::OnDemand,
            Self::Implicit(_) => RouteTier::Implicit,
            Self::FaultAware(_) => RouteTier::FaultAware,
        }
    }

    /// Whether evaluators should front this provider with a private
    /// [`crate::WalkMemo`] by default. True for the tiers where
    /// resolution takes locks (the sharded on-demand cache) or runs a
    /// search (fault-aware BFS detours) — exactly where PR 3 measured
    /// shared-cache synchronization costing more than recomputation.
    /// The implicit walker recomputes lock-free and the dense tier's
    /// spans index its own flat array, so neither defaults on (a memo
    /// is *incorrect* over dense: nothing is appended to its arena).
    pub fn local_memo_default(&self) -> bool {
        matches!(self, Self::OnDemand(_) | Self::FaultAware(_))
    }

    /// Whether a [`crate::WalkMemo`] may front this provider at all:
    /// every buffering tier (`walk_span` appends the walk to the
    /// caller's buffer). Only the dense tier is excluded.
    pub fn memo_compatible(&self) -> bool {
        !matches!(self, Self::Dense(_))
    }

    /// The dense cache, when this is the dense tier.
    pub fn as_dense(&self) -> Option<&Arc<RouteCache>> {
        match self {
            Self::Dense(cache) => Some(cache),
            _ => None,
        }
    }

    /// The fault-aware router, when this is the fault-aware tier.
    pub fn as_fault_aware(&self) -> Option<&crate::fault::FaultAwareRoutes> {
        match self {
            Self::FaultAware(routes) => Some(routes),
            _ => None,
        }
    }
}

impl RouteSource for RouteProvider {
    fn mesh(&self) -> &Mesh {
        match self {
            Self::Dense(c) => c.mesh(),
            Self::OnDemand(o) => o.mesh(),
            Self::Implicit(i) => i.mesh(),
            Self::FaultAware(f) => RouteSource::mesh(f),
        }
    }

    fn routing_name(&self) -> &'static str {
        match self {
            Self::Dense(c) => c.routing_name(),
            Self::OnDemand(o) => o.routing_name(),
            Self::Implicit(i) => i.routing_name(),
            Self::FaultAware(f) => RouteSource::routing_name(f),
        }
    }

    fn dense_link_count(&self) -> usize {
        match self {
            Self::Dense(c) => c.dense_link_count(),
            Self::OnDemand(o) => o.dense_link_count(),
            Self::Implicit(i) => RouteSource::dense_link_count(i),
            Self::FaultAware(f) => RouteSource::dense_link_count(f),
        }
    }

    fn router_count(&self, src: TileId, dst: TileId) -> usize {
        match self {
            Self::Dense(c) => c.router_count(src, dst),
            Self::OnDemand(o) => o.router_count(src, dst),
            Self::Implicit(i) => RouteSource::router_count(i, src, dst),
            Self::FaultAware(f) => RouteSource::router_count(f, src, dst),
        }
    }

    fn vertical_hops(&self, src: TileId, dst: TileId) -> usize {
        match self {
            Self::Dense(c) => c.vertical_hops(src, dst),
            Self::OnDemand(o) => RouteSource::vertical_hops(o, src, dst),
            Self::Implicit(i) => RouteSource::vertical_hops(i, src, dst),
            Self::FaultAware(f) => RouteSource::vertical_hops(f, src, dst),
        }
    }

    fn walk_span(&self, src: TileId, dst: TileId, buf: &mut Vec<u32>) -> (u32, u32) {
        match self {
            Self::Dense(c) => RouteSource::walk_span(c.as_ref(), src, dst, buf),
            Self::OnDemand(o) => o.walk_span(src, dst, buf),
            Self::Implicit(i) => RouteSource::walk_span(i, src, dst, buf),
            Self::FaultAware(f) => RouteSource::walk_span(f, src, dst, buf),
        }
    }

    fn flat<'s>(&'s self, buf: &'s [u32]) -> &'s [u32] {
        match self {
            Self::Dense(c) => c.link_ids_flat(),
            Self::OnDemand(_) | Self::Implicit(_) | Self::FaultAware(_) => buf,
        }
    }

    fn link_at(&self, id: u32) -> Option<Link> {
        match self {
            Self::Dense(c) => RouteSource::link_at(c.as_ref(), id),
            Self::OnDemand(o) => o.link_at(id),
            Self::Implicit(i) => RouteSource::link_at(i, id),
            Self::FaultAware(f) => RouteSource::link_at(f, id),
        }
    }

    fn validate_pair(&self, src: TileId, dst: TileId) -> Result<(), ModelError> {
        match self {
            Self::Dense(_) | Self::OnDemand(_) | Self::Implicit(_) => Ok(()),
            Self::FaultAware(f) => f.validate_pair(src, dst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_walk<S: RouteSource>(source: &S, src: TileId, dst: TileId) -> Vec<Link> {
        let mut buf = Vec::new();
        let (start, len) = source.walk_span(src, dst, &mut buf);
        let flat = source.flat(&buf);
        flat[start as usize..(start + len) as usize]
            .iter()
            .map(|&id| source.link_at(id).expect("walk ids decode"))
            .collect()
    }

    #[test]
    fn implicit_walks_match_the_dense_cache() {
        for (w, h, d) in [
            (1, 1, 1),
            (1, 4, 1),
            (2, 2, 1),
            (2, 3, 1),
            (4, 4, 1),
            (5, 3, 1),
            (2, 2, 2),
            (3, 2, 3),
            (4, 4, 4),
        ] {
            let mesh = Mesh::new3(w, h, d).unwrap();
            for kind in RoutingKind::ALL {
                let dense = RouteCache::with_routing(&mesh, kind.algorithm()).unwrap();
                let implicit = ImplicitRoutes::new(&mesh, kind);
                for src in mesh.tiles() {
                    for dst in mesh.tiles() {
                        let want = decode_walk(&dense, src, dst);
                        let got = decode_walk(&implicit, src, dst);
                        assert_eq!(got, want, "{kind:?} {w}x{h}x{d} {src}->{dst}");
                        assert_eq!(
                            RouteSource::router_count(&implicit, src, dst),
                            dense.router_count(src, dst)
                        );
                        assert_eq!(
                            RouteSource::vertical_hops(&implicit, src, dst),
                            RouteSource::vertical_hops(&dense, src, dst),
                            "{kind:?} {w}x{h}x{d} {src}->{dst}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn on_demand_matches_implicit_and_caches() {
        for mesh in [Mesh::new(4, 3).unwrap(), Mesh::new3(3, 2, 2).unwrap()] {
            for kind in RoutingKind::ALL {
                let implicit = ImplicitRoutes::new(&mesh, kind);
                let lazy = OnDemandRoutes::new(&mesh, kind);
                for src in mesh.tiles() {
                    for dst in mesh.tiles() {
                        // Query twice: miss path, then memoized path.
                        for _ in 0..2 {
                            assert_eq!(
                                decode_walk(&lazy, src, dst),
                                decode_walk(&implicit, src, dst),
                                "{kind:?} {src}->{dst}"
                            );
                        }
                    }
                }
                assert_eq!(lazy.cached_pairs(), mesh.tile_count() * mesh.tile_count());
            }
        }
    }

    #[test]
    fn on_demand_memory_stays_bounded() {
        let mesh = Mesh::new(6, 6).unwrap();
        // A budget far below the full pair table forces shard eviction.
        let lazy = OnDemandRoutes::with_capacity(&mesh, RoutingKind::Xy, 64 * ON_DEMAND_SHARDS);
        let implicit = ImplicitRoutes::new(&mesh, RoutingKind::Xy);
        let mut buf = Vec::new();
        for src in mesh.tiles() {
            for dst in mesh.tiles() {
                buf.clear();
                lazy.walk_span(src, dst, &mut buf);
                assert_eq!(
                    decode_walk(&lazy, src, dst),
                    decode_walk(&implicit, src, dst)
                );
            }
        }
        let per_shard_cap = (64 * ON_DEMAND_SHARDS) / ON_DEMAND_SHARDS;
        for shard in lazy.shards.iter() {
            let shard = shard.lock().unwrap();
            // One walk may straddle the cap before eviction triggers.
            assert!(shard.walks.len() <= per_shard_cap + mesh.tile_count());
        }
    }

    #[test]
    fn auto_picks_dense_small_and_on_demand_large() {
        let small = Mesh::new(8, 8).unwrap();
        assert_eq!(
            RouteProvider::auto(&small, RoutingKind::Xy).tier(),
            RouteTier::Dense
        );
        let large = Mesh::new(64, 64).unwrap();
        let provider = RouteProvider::auto(&large, RoutingKind::Xy);
        assert_eq!(provider.tier(), RouteTier::OnDemand);
        assert!(provider.as_dense().is_none());
        // 3D meshes go through the same size logic: a 4×4×4 cube still
        // fits densely, a 32×32×8 stack does not.
        assert_eq!(
            RouteProvider::auto(&Mesh::new3(4, 4, 4).unwrap(), RoutingKind::Xyz).tier(),
            RouteTier::Dense
        );
        assert_eq!(
            RouteProvider::auto(&Mesh::new3(32, 32, 8).unwrap(), RoutingKind::Xyz).tier(),
            RouteTier::OnDemand
        );
        // Tier names for CLI/reporting.
        assert_eq!(RouteTier::Dense.name(), "dense");
        assert_eq!(RouteTier::OnDemand.name(), "on-demand");
        assert_eq!(RouteTier::Implicit.name(), "implicit");
    }

    #[test]
    fn dense_tier_surfaces_the_typed_error() {
        let large = Mesh::new(64, 64).unwrap();
        assert!(matches!(
            RouteProvider::dense(&large, RoutingKind::Xy),
            Err(ModelError::RouteCacheTooLarge { .. })
        ));
    }

    #[test]
    fn for_algorithm_resolves_library_routings_on_large_meshes() {
        use crate::routing::{TorusXyRouting, TorusXyzRouting, XyzRouting, YxRouting};
        let large = Mesh::new3(32, 32, 8).unwrap();
        for algo in [
            &crate::routing::XyRouting as &dyn RoutingAlgorithm,
            &YxRouting,
            &TorusXyRouting,
            &XyzRouting,
            &TorusXyzRouting,
        ] {
            let provider = RouteProvider::for_algorithm(&large, algo).unwrap();
            assert_eq!(provider.tier(), RouteTier::OnDemand);
            assert_eq!(RouteSource::routing_name(&provider), algo.name());
        }
    }

    #[test]
    fn numbering_decode_rejects_unused_slots() {
        let mesh = Mesh::new(3, 3).unwrap();
        let implicit = ImplicitRoutes::new(&mesh, RoutingKind::Xy);
        // Planar meshes keep the historical 4-port (6n-id) numbering.
        let n = mesh.tile_count() as u32;
        assert_eq!(RouteSource::dense_link_count(&implicit), 6 * n as usize);
        // North slot of tile 0 (top row) has no neighbour.
        assert_eq!(implicit.link_at(2 * n + DIR_NORTH), None);
        // Out-of-range ids decode to nothing.
        assert_eq!(implicit.link_at(6 * n), None);
        // Every id an actual walk produces decodes, and round-trips
        // uniquely: two distinct ids never decode to the same link.
        let mut seen = std::collections::HashMap::new();
        for id in 0..RouteSource::dense_link_count(&implicit) as u32 {
            if let Some(link) = implicit.link_at(id) {
                assert!(
                    seen.insert(link, id).is_none(),
                    "link {link} decoded from two ids"
                );
            }
        }
    }

    #[test]
    fn numbering_decode_is_injective_in_3d() {
        for kind in [RoutingKind::Xyz, RoutingKind::TorusXyz] {
            let mesh = Mesh::new3(3, 2, 3).unwrap();
            let implicit = ImplicitRoutes::new(&mesh, kind);
            let n = mesh.tile_count();
            // 3D meshes use the 6-port (8n-id) numbering.
            assert_eq!(RouteSource::dense_link_count(&implicit), 8 * n);
            // Top layer has no Up neighbour without z wrap.
            let up_of_t0 = (2 * n) as u32 + DIR_UP;
            if kind == RoutingKind::TorusXyz {
                assert!(implicit.link_at(up_of_t0).is_some(), "z wrap decodes");
            } else {
                assert_eq!(implicit.link_at(up_of_t0), None);
            }
            let mut seen = std::collections::HashMap::new();
            for id in 0..RouteSource::dense_link_count(&implicit) as u32 {
                if let Some(link) = implicit.link_at(id) {
                    assert!(
                        seen.insert(link, id).is_none(),
                        "{kind:?}: link {link} decoded from two ids"
                    );
                }
            }
        }
    }

    #[test]
    fn two_wide_torus_collapses_wrap_links() {
        // On a 2-wide ring, east-wrap and west from the same tile land on
        // the same neighbour: one physical link, one id — matching the
        // dense cache's interning of `Link::between`. Same for a 2-deep
        // stack under the 3D torus.
        for (mesh, kind) in [
            (Mesh::new(2, 1).unwrap(), RoutingKind::TorusXy),
            (Mesh::new3(2, 1, 2).unwrap(), RoutingKind::TorusXyz),
            (Mesh::new3(1, 1, 2).unwrap(), RoutingKind::TorusXyz),
        ] {
            let implicit = ImplicitRoutes::new(&mesh, kind);
            let dense = RouteCache::with_routing(&mesh, kind.algorithm()).unwrap();
            for src in mesh.tiles() {
                for dst in mesh.tiles() {
                    assert_eq!(
                        decode_walk(&implicit, src, dst),
                        decode_walk(&dense, src, dst),
                        "{kind:?} {src}->{dst}"
                    );
                }
            }
        }
    }
}
