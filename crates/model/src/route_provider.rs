//! Tiered route provisioning: dense, on-demand and implicit routes.
//!
//! The evaluation engine consumes routes as *dense-link-id walks*: per
//! packet, the ordered list of `u32` resource ids (injection link,
//! inter-router links, ejection link) that per-link state vectors are
//! indexed by. [`RouteCache`] precomputes every pair's walk — unbeatable
//! for small meshes, but its `O(n²·diameter)` tables stop fitting well
//! before the meshes the large-scale NoC-mapping literature evaluates
//! (3D and hundred-by-hundred grids). [`RouteProvider`] generalizes the
//! supply side into three tiers behind one interface ([`RouteSource`]):
//!
//! * **[`RouteProvider::Dense`]** — the precomputed [`RouteCache`],
//!   unchanged fast path for meshes up to roughly 32×32. Walks are spans
//!   into the cache's shared flat array; resolving one allocates and
//!   copies nothing.
//! * **[`RouteProvider::OnDemand`]** — a sharded pair cache
//!   ([`OnDemandRoutes`]) that routes lazily on first use and interns the
//!   walk, with bounded memory: each shard clears itself when its walk
//!   arena exceeds its cap, so the provider never grows past a fixed
//!   budget no matter how many pairs a search touches. Resolving a walk
//!   copies it into the caller's buffer (the shards are internally
//!   locked, so the provider stays `Sync` for multi-start search).
//! * **[`RouteProvider::Implicit`]** — no stored routes at all
//!   ([`ImplicitRoutes`]): XY/YX/torus-XY walks are generated directly
//!   from tile coordinates into the caller's buffer, and link ids come
//!   from a closed-form numbering ([`6·n` slots](ImplicitRoutes), one per
//!   injection/ejection link plus four outgoing directions per tile).
//!   Zero resident memory; `O(route length)` per resolution.
//!
//! Dense ids differ between the tiers (first-use interning order versus
//! the closed form), but evaluation results do not: the ids are a
//! bijection onto the same physical links, and the timing/energy engines
//! depend only on which walks share which resources. The repository's
//! property tests pin bit-identical costs across all three tiers.
//!
//! [`RouteProvider::auto`] picks dense while the estimated tables stay
//! small and falls back to on-demand beyond — large meshes work out of
//! the box instead of failing at construction time. The CLI exposes the
//! choice as `--route-cache dense|on-demand|implicit|auto`.

use crate::crg::{Coord, Link, Mesh};
use crate::error::ModelError;
use crate::ids::TileId;
use crate::route_cache::RouteCache;
use crate::routing::{ring_step, RoutingAlgorithm, RoutingKind};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Entry-estimate threshold below which [`RouteProvider::auto`] picks
/// the dense tier (≈ a 32×32 mesh; ~250 MB of tables at the boundary).
pub const AUTO_DENSE_MAX_ENTRIES: u128 = 1 << 25;

/// Default total walk-arena budget of the on-demand tier, in `u32`
/// entries across all shards (≈ 64 MB).
const ON_DEMAND_DEFAULT_CAPACITY: usize = 1 << 24;

/// Number of independently locked shards of [`OnDemandRoutes`].
const ON_DEMAND_SHARDS: usize = 64;

/// A supplier of routes in the dense-link-id form the evaluation engine
/// consumes. Implemented by [`RouteCache`] (shared flat array) and
/// [`RouteProvider`] (all three tiers).
pub trait RouteSource {
    /// The mesh the routes traverse.
    fn mesh(&self) -> &Mesh;

    /// Name of the routing algorithm ("XY", "YX", "torus-XY", …).
    fn routing_name(&self) -> &'static str;

    /// Exclusive upper bound of the dense link-id space — the size for
    /// per-link state vectors. Ids below it need not all be in use.
    fn dense_link_count(&self) -> usize;

    /// Number of routers on the pair's route (the paper's `K`), `O(1)`.
    fn router_count(&self, src: TileId, dst: TileId) -> usize;

    /// Resolves the pair's resource walk, returning `(start, len)` into
    /// the flat array [`Self::flat`] yields. Sources with a shared
    /// precomputed array leave `buf` untouched and span it directly; the
    /// other tiers append the walk to `buf` and span the appended region.
    fn walk_span(&self, src: TileId, dst: TileId, buf: &mut Vec<u32>) -> (u32, u32);

    /// The flat array the spans of [`Self::walk_span`] index: the shared
    /// precomputed array for the dense tier, `buf` itself otherwise.
    fn flat<'s>(&'s self, buf: &'s [u32]) -> &'s [u32];

    /// The physical link behind a dense id, if the id is in use (for
    /// diagnostics; never on the evaluation hot path).
    fn link_at(&self, id: u32) -> Option<Link>;
}

impl RouteSource for RouteCache {
    fn mesh(&self) -> &Mesh {
        self.mesh()
    }

    fn routing_name(&self) -> &'static str {
        self.routing_name()
    }

    fn dense_link_count(&self) -> usize {
        self.dense_link_count()
    }

    fn router_count(&self, src: TileId, dst: TileId) -> usize {
        self.router_count(src, dst)
    }

    fn walk_span(&self, src: TileId, dst: TileId, _buf: &mut Vec<u32>) -> (u32, u32) {
        let span = self.link_span(src, dst);
        (span.start as u32, (span.end - span.start) as u32)
    }

    fn flat<'s>(&'s self, _buf: &'s [u32]) -> &'s [u32] {
        self.link_ids_flat()
    }

    fn link_at(&self, id: u32) -> Option<Link> {
        ((id as usize) < self.dense_link_count()).then(|| self.link_of(id))
    }
}

/// Closed-form dense link numbering shared by the implicit and on-demand
/// tiers: injection links occupy ids `0..n`, ejection links `n..2n`, and
/// the outgoing internal links of tile `t` occupy `2n + 4t + direction`
/// (north, south, east, west). Border slots stay unused on meshes; wrap
/// steps of the torus router are canonicalized onto the direction the
/// coordinate delta implies, so a 2-wide ring maps both ways onto the
/// same `Link` — exactly the identity [`Link::between`] gives them.
#[derive(Debug, Clone, Copy)]
struct LinkNumbering {
    width: usize,
    height: usize,
}

const DIR_NORTH: u32 = 0;
const DIR_SOUTH: u32 = 1;
const DIR_EAST: u32 = 2;
const DIR_WEST: u32 = 3;

impl LinkNumbering {
    fn new(mesh: &Mesh) -> Self {
        Self {
            width: mesh.width(),
            height: mesh.height(),
        }
    }

    fn tiles(self) -> usize {
        self.width * self.height
    }

    fn id_count(self) -> usize {
        6 * self.tiles()
    }

    fn injection(self, tile: TileId) -> u32 {
        tile.index() as u32
    }

    fn ejection(self, tile: TileId) -> u32 {
        (self.tiles() + tile.index()) as u32
    }

    /// Direction code of one routing step `a → b`, direct adjacency
    /// first, torus wrap second — so when both apply (a 2-long ring) the
    /// direct reading wins and both "directions" share one id, matching
    /// the endpoint-pair identity of [`Link::between`].
    fn step_dir(self, a: Coord, b: Coord) -> u32 {
        if a.x != b.x {
            if b.x == a.x + 1 {
                DIR_EAST
            } else if b.x + 1 == a.x {
                DIR_WEST
            } else if a.x == self.width - 1 && b.x == 0 {
                DIR_EAST
            } else {
                debug_assert!(a.x == 0 && b.x == self.width - 1, "non-adjacent x step");
                DIR_WEST
            }
        } else if b.y == a.y + 1 {
            DIR_SOUTH
        } else if b.y + 1 == a.y {
            DIR_NORTH
        } else if a.y == self.height - 1 && b.y == 0 {
            DIR_SOUTH
        } else {
            debug_assert!(a.y == 0 && b.y == self.height - 1, "non-adjacent y step");
            DIR_NORTH
        }
    }

    fn internal(self, a: Coord, b: Coord) -> u32 {
        let from = (a.y * self.width + a.x) as u32;
        (2 * self.tiles()) as u32 + 4 * from + self.step_dir(a, b)
    }

    /// Decodes an id back to its physical link; `None` for ids the
    /// encoder never produces (border slots, or the collapsed wrap slot
    /// of a 2-long ring). `wrap` enables torus neighbours.
    fn link_at(self, id: u32, wrap: bool) -> Option<Link> {
        let n = self.tiles();
        let id = id as usize;
        if id < n {
            return Some(Link::Injection(TileId::new(id)));
        }
        if id < 2 * n {
            return Some(Link::Ejection(TileId::new(id - n)));
        }
        if id >= 6 * n {
            return None;
        }
        let rest = id - 2 * n;
        let tile = rest / 4;
        let dir = (rest % 4) as u32;
        let a = Coord::new(tile % self.width, tile / self.width);
        let b = match dir {
            DIR_NORTH if a.y > 0 => Coord::new(a.x, a.y - 1),
            DIR_NORTH if wrap && self.height > 1 => Coord::new(a.x, self.height - 1),
            DIR_SOUTH if a.y + 1 < self.height => Coord::new(a.x, a.y + 1),
            DIR_SOUTH if wrap && self.height > 1 => Coord::new(a.x, 0),
            DIR_EAST if a.x + 1 < self.width => Coord::new(a.x + 1, a.y),
            DIR_EAST if wrap && self.width > 1 => Coord::new(0, a.y),
            DIR_WEST if a.x > 0 => Coord::new(a.x - 1, a.y),
            DIR_WEST if wrap && self.width > 1 => Coord::new(self.width - 1, a.y),
            _ => return None,
        };
        // Reject slots the canonical encoder would map elsewhere (the
        // wrap duplicate on a 2-long ring).
        if self.step_dir(a, b) != dir {
            return None;
        }
        let to = TileId::new(b.y * self.width + b.x);
        Some(Link::between(TileId::new(tile), to))
    }
}

/// The implicit tier: allocation-free coordinate walks, no stored routes.
/// See the module docs.
#[derive(Debug, Clone)]
pub struct ImplicitRoutes {
    mesh: Mesh,
    kind: RoutingKind,
    numbering: LinkNumbering,
}

impl ImplicitRoutes {
    /// Creates the walker for `mesh` under `kind`.
    pub fn new(mesh: &Mesh, kind: RoutingKind) -> Self {
        Self {
            mesh: *mesh,
            kind,
            numbering: LinkNumbering::new(mesh),
        }
    }

    /// The routing kind being walked.
    pub fn kind(&self) -> RoutingKind {
        self.kind
    }

    /// Visits every routing step `a → b` of the pair's route, in order —
    /// the same steps the corresponding [`RoutingAlgorithm`] would take.
    fn for_each_step(&self, src: TileId, dst: TileId, mut f: impl FnMut(Coord, Coord)) {
        let to = self.mesh.coord(dst);
        let mut cur = self.mesh.coord(src);
        let (w, h) = (self.mesh.width(), self.mesh.height());
        match self.kind {
            RoutingKind::Xy => {
                while cur.x != to.x {
                    let next = Coord::new(if cur.x < to.x { cur.x + 1 } else { cur.x - 1 }, cur.y);
                    f(cur, next);
                    cur = next;
                }
                while cur.y != to.y {
                    let next = Coord::new(cur.x, if cur.y < to.y { cur.y + 1 } else { cur.y - 1 });
                    f(cur, next);
                    cur = next;
                }
            }
            RoutingKind::Yx => {
                while cur.y != to.y {
                    let next = Coord::new(cur.x, if cur.y < to.y { cur.y + 1 } else { cur.y - 1 });
                    f(cur, next);
                    cur = next;
                }
                while cur.x != to.x {
                    let next = Coord::new(if cur.x < to.x { cur.x + 1 } else { cur.x - 1 }, cur.y);
                    f(cur, next);
                    cur = next;
                }
            }
            RoutingKind::TorusXy => {
                while cur.x != to.x {
                    let next = Coord::new(ring_step(cur.x, to.x, w), cur.y);
                    f(cur, next);
                    cur = next;
                }
                while cur.y != to.y {
                    let next = Coord::new(cur.x, ring_step(cur.y, to.y, h));
                    f(cur, next);
                    cur = next;
                }
            }
        }
    }
}

impl RouteSource for ImplicitRoutes {
    fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    fn routing_name(&self) -> &'static str {
        self.kind.name()
    }

    fn dense_link_count(&self) -> usize {
        self.numbering.id_count()
    }

    fn router_count(&self, src: TileId, dst: TileId) -> usize {
        self.kind.hop_distance(&self.mesh, src, dst) + 1
    }

    fn walk_span(&self, src: TileId, dst: TileId, buf: &mut Vec<u32>) -> (u32, u32) {
        let start = buf.len();
        buf.push(self.numbering.injection(src));
        self.for_each_step(src, dst, |a, b| buf.push(self.numbering.internal(a, b)));
        buf.push(self.numbering.ejection(dst));
        (start as u32, (buf.len() - start) as u32)
    }

    fn flat<'s>(&'s self, buf: &'s [u32]) -> &'s [u32] {
        buf
    }

    fn link_at(&self, id: u32) -> Option<Link> {
        self.numbering
            .link_at(id, self.kind == RoutingKind::TorusXy)
    }
}

/// One shard of the on-demand pair cache: memoized walks in a bump arena
/// plus the pair → span map.
#[derive(Debug, Default)]
struct Shard {
    spans: HashMap<u64, (u32, u32)>,
    walks: Vec<u32>,
}

/// The on-demand tier: lazily routed, interned pair walks with bounded
/// memory. See the module docs.
#[derive(Debug)]
pub struct OnDemandRoutes {
    walker: ImplicitRoutes,
    shards: Box<[Mutex<Shard>]>,
    /// Per-shard walk-arena cap; a shard exceeding it clears itself
    /// before interning the next walk (epoch eviction).
    shard_capacity: usize,
}

impl OnDemandRoutes {
    /// Creates the pair cache with the default memory budget (~64 MB).
    pub fn new(mesh: &Mesh, kind: RoutingKind) -> Self {
        Self::with_capacity(mesh, kind, ON_DEMAND_DEFAULT_CAPACITY)
    }

    /// Creates the pair cache with an explicit total walk-arena budget
    /// (in `u32` entries, split evenly across the internal shards).
    pub fn with_capacity(mesh: &Mesh, kind: RoutingKind, capacity: usize) -> Self {
        let shards = (0..ON_DEMAND_SHARDS)
            .map(|_| Mutex::new(Shard::default()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            walker: ImplicitRoutes::new(mesh, kind),
            shards,
            shard_capacity: (capacity / ON_DEMAND_SHARDS).max(64),
        }
    }

    /// The routing kind being cached.
    pub fn kind(&self) -> RoutingKind {
        self.walker.kind()
    }

    /// Number of pair walks currently memoized (diagnostics).
    pub fn cached_pairs(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).spans.len())
            .sum()
    }
}

impl RouteSource for OnDemandRoutes {
    fn mesh(&self) -> &Mesh {
        self.walker.mesh()
    }

    fn routing_name(&self) -> &'static str {
        self.walker.routing_name()
    }

    fn dense_link_count(&self) -> usize {
        self.walker.dense_link_count()
    }

    fn router_count(&self, src: TileId, dst: TileId) -> usize {
        self.walker.router_count(src, dst)
    }

    fn walk_span(&self, src: TileId, dst: TileId, buf: &mut Vec<u32>) -> (u32, u32) {
        let n = self.walker.mesh().tile_count() as u64;
        let key = src.index() as u64 * n + dst.index() as u64;
        let mut shard = self.shards[key as usize % self.shards.len()]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let start = buf.len();
        let (s, l) = match shard.spans.get(&key) {
            Some(&span) => span,
            None => {
                if shard.walks.len() >= self.shard_capacity {
                    // Bounded memory: evict the whole shard rather than
                    // track per-entry recency.
                    shard.spans.clear();
                    shard.walks.clear();
                }
                let span = self.walker.walk_span(src, dst, &mut shard.walks);
                shard.spans.insert(key, span);
                span
            }
        };
        buf.extend_from_slice(&shard.walks[s as usize..(s + l) as usize]);
        (start as u32, l)
    }

    fn flat<'s>(&'s self, buf: &'s [u32]) -> &'s [u32] {
        buf
    }

    fn link_at(&self, id: u32) -> Option<Link> {
        self.walker.link_at(id)
    }
}

/// Which tier a [`RouteProvider`] is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteTier {
    /// Full per-pair precomputation ([`RouteCache`]).
    Dense,
    /// Lazily interned pair walks with bounded memory.
    OnDemand,
    /// Coordinate walks, no stored routes.
    Implicit,
}

impl RouteTier {
    /// Display/CLI name of the tier.
    pub fn name(self) -> &'static str {
        match self {
            Self::Dense => "dense",
            Self::OnDemand => "on-demand",
            Self::Implicit => "implicit",
        }
    }
}

/// A tiered route supplier: one of the three strategies behind the
/// [`RouteSource`] interface. See the module docs for the tiers and
/// their trade-offs.
#[derive(Debug)]
pub enum RouteProvider {
    /// The dense precomputed cache.
    Dense(Arc<RouteCache>),
    /// The bounded-memory on-demand pair cache.
    OnDemand(OnDemandRoutes),
    /// The allocation-free implicit walker.
    Implicit(ImplicitRoutes),
}

impl RouteProvider {
    /// Dense tier for `mesh` under `kind`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::RouteCacheTooLarge`] when the mesh exceeds
    /// what the dense cache agrees to precompute.
    pub fn dense(mesh: &Mesh, kind: RoutingKind) -> Result<Self, ModelError> {
        Ok(Self::Dense(Arc::new(RouteCache::with_routing(
            mesh,
            kind.algorithm(),
        )?)))
    }

    /// Wraps an already-built dense cache.
    pub fn from_cache(cache: Arc<RouteCache>) -> Self {
        Self::Dense(cache)
    }

    /// On-demand tier for `mesh` under `kind`.
    pub fn on_demand(mesh: &Mesh, kind: RoutingKind) -> Self {
        Self::OnDemand(OnDemandRoutes::new(mesh, kind))
    }

    /// Implicit tier for `mesh` under `kind`.
    pub fn implicit(mesh: &Mesh, kind: RoutingKind) -> Self {
        Self::Implicit(ImplicitRoutes::new(mesh, kind))
    }

    /// Size-based automatic tier choice: dense while the estimated
    /// tables stay below [`AUTO_DENSE_MAX_ENTRIES`], on-demand beyond.
    /// Never fails and never precomputes more than the threshold allows.
    pub fn auto(mesh: &Mesh, kind: RoutingKind) -> Self {
        if RouteCache::dense_entry_estimate(mesh) <= AUTO_DENSE_MAX_ENTRIES {
            if let Ok(provider) = Self::dense(mesh, kind) {
                return provider;
            }
        }
        Self::on_demand(mesh, kind)
    }

    /// Automatic tier choice for any routing algorithm: library
    /// algorithms resolve to their [`RoutingKind`] and go through
    /// [`Self::auto`]; unknown custom algorithms require the dense tier
    /// (only it can call back into arbitrary `route` implementations).
    ///
    /// Resolution is **by name**: the names `"XY"`, `"YX"` and
    /// `"torus-XY"` are reserved for the library algorithms (see
    /// [`RoutingAlgorithm::name`]) — a custom algorithm reporting one of
    /// them is served by the corresponding coordinate walker, not by its
    /// own `route` implementation.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::RouteCacheTooLarge`] only for *custom*
    /// algorithms on meshes too large to cache densely.
    pub fn for_algorithm(mesh: &Mesh, routing: &dyn RoutingAlgorithm) -> Result<Self, ModelError> {
        match RoutingKind::from_name(routing.name()) {
            Some(kind) => Ok(Self::auto(mesh, kind)),
            None => Ok(Self::Dense(Arc::new(RouteCache::with_routing(
                mesh, routing,
            )?))),
        }
    }

    /// The tier this provider runs.
    pub fn tier(&self) -> RouteTier {
        match self {
            Self::Dense(_) => RouteTier::Dense,
            Self::OnDemand(_) => RouteTier::OnDemand,
            Self::Implicit(_) => RouteTier::Implicit,
        }
    }

    /// The dense cache, when this is the dense tier.
    pub fn as_dense(&self) -> Option<&Arc<RouteCache>> {
        match self {
            Self::Dense(cache) => Some(cache),
            _ => None,
        }
    }
}

impl RouteSource for RouteProvider {
    fn mesh(&self) -> &Mesh {
        match self {
            Self::Dense(c) => c.mesh(),
            Self::OnDemand(o) => o.mesh(),
            Self::Implicit(i) => i.mesh(),
        }
    }

    fn routing_name(&self) -> &'static str {
        match self {
            Self::Dense(c) => c.routing_name(),
            Self::OnDemand(o) => o.routing_name(),
            Self::Implicit(i) => i.routing_name(),
        }
    }

    fn dense_link_count(&self) -> usize {
        match self {
            Self::Dense(c) => c.dense_link_count(),
            Self::OnDemand(o) => o.dense_link_count(),
            Self::Implicit(i) => RouteSource::dense_link_count(i),
        }
    }

    fn router_count(&self, src: TileId, dst: TileId) -> usize {
        match self {
            Self::Dense(c) => c.router_count(src, dst),
            Self::OnDemand(o) => o.router_count(src, dst),
            Self::Implicit(i) => RouteSource::router_count(i, src, dst),
        }
    }

    fn walk_span(&self, src: TileId, dst: TileId, buf: &mut Vec<u32>) -> (u32, u32) {
        match self {
            Self::Dense(c) => RouteSource::walk_span(c.as_ref(), src, dst, buf),
            Self::OnDemand(o) => o.walk_span(src, dst, buf),
            Self::Implicit(i) => RouteSource::walk_span(i, src, dst, buf),
        }
    }

    fn flat<'s>(&'s self, buf: &'s [u32]) -> &'s [u32] {
        match self {
            Self::Dense(c) => c.link_ids_flat(),
            Self::OnDemand(_) | Self::Implicit(_) => buf,
        }
    }

    fn link_at(&self, id: u32) -> Option<Link> {
        match self {
            Self::Dense(c) => RouteSource::link_at(c.as_ref(), id),
            Self::OnDemand(o) => o.link_at(id),
            Self::Implicit(i) => RouteSource::link_at(i, id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_walk<S: RouteSource>(source: &S, src: TileId, dst: TileId) -> Vec<Link> {
        let mut buf = Vec::new();
        let (start, len) = source.walk_span(src, dst, &mut buf);
        let flat = source.flat(&buf);
        flat[start as usize..(start + len) as usize]
            .iter()
            .map(|&id| source.link_at(id).expect("walk ids decode"))
            .collect()
    }

    fn kinds() -> [RoutingKind; 3] {
        [RoutingKind::Xy, RoutingKind::Yx, RoutingKind::TorusXy]
    }

    #[test]
    fn implicit_walks_match_the_dense_cache() {
        for (w, h) in [(1, 1), (1, 4), (2, 2), (2, 3), (4, 4), (5, 3)] {
            let mesh = Mesh::new(w, h).unwrap();
            for kind in kinds() {
                let dense = RouteCache::with_routing(&mesh, kind.algorithm()).unwrap();
                let implicit = ImplicitRoutes::new(&mesh, kind);
                for src in mesh.tiles() {
                    for dst in mesh.tiles() {
                        let want = decode_walk(&dense, src, dst);
                        let got = decode_walk(&implicit, src, dst);
                        assert_eq!(got, want, "{kind:?} {w}x{h} {src}->{dst}");
                        assert_eq!(
                            RouteSource::router_count(&implicit, src, dst),
                            dense.router_count(src, dst)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn on_demand_matches_implicit_and_caches() {
        let mesh = Mesh::new(4, 3).unwrap();
        for kind in kinds() {
            let implicit = ImplicitRoutes::new(&mesh, kind);
            let lazy = OnDemandRoutes::new(&mesh, kind);
            for src in mesh.tiles() {
                for dst in mesh.tiles() {
                    // Query twice: miss path, then memoized path.
                    for _ in 0..2 {
                        assert_eq!(
                            decode_walk(&lazy, src, dst),
                            decode_walk(&implicit, src, dst),
                            "{kind:?} {src}->{dst}"
                        );
                    }
                }
            }
            assert_eq!(lazy.cached_pairs(), mesh.tile_count() * mesh.tile_count());
        }
    }

    #[test]
    fn on_demand_memory_stays_bounded() {
        let mesh = Mesh::new(6, 6).unwrap();
        // A budget far below the full pair table forces shard eviction.
        let lazy = OnDemandRoutes::with_capacity(&mesh, RoutingKind::Xy, 64 * ON_DEMAND_SHARDS);
        let implicit = ImplicitRoutes::new(&mesh, RoutingKind::Xy);
        let mut buf = Vec::new();
        for src in mesh.tiles() {
            for dst in mesh.tiles() {
                buf.clear();
                lazy.walk_span(src, dst, &mut buf);
                assert_eq!(
                    decode_walk(&lazy, src, dst),
                    decode_walk(&implicit, src, dst)
                );
            }
        }
        let per_shard_cap = (64 * ON_DEMAND_SHARDS) / ON_DEMAND_SHARDS;
        for shard in lazy.shards.iter() {
            let shard = shard.lock().unwrap();
            // One walk may straddle the cap before eviction triggers.
            assert!(shard.walks.len() <= per_shard_cap + mesh.tile_count());
        }
    }

    #[test]
    fn auto_picks_dense_small_and_on_demand_large() {
        let small = Mesh::new(8, 8).unwrap();
        assert_eq!(
            RouteProvider::auto(&small, RoutingKind::Xy).tier(),
            RouteTier::Dense
        );
        let large = Mesh::new(64, 64).unwrap();
        let provider = RouteProvider::auto(&large, RoutingKind::Xy);
        assert_eq!(provider.tier(), RouteTier::OnDemand);
        assert!(provider.as_dense().is_none());
        // Tier names for CLI/reporting.
        assert_eq!(RouteTier::Dense.name(), "dense");
        assert_eq!(RouteTier::OnDemand.name(), "on-demand");
        assert_eq!(RouteTier::Implicit.name(), "implicit");
    }

    #[test]
    fn dense_tier_surfaces_the_typed_error() {
        let large = Mesh::new(64, 64).unwrap();
        assert!(matches!(
            RouteProvider::dense(&large, RoutingKind::Xy),
            Err(ModelError::RouteCacheTooLarge { .. })
        ));
    }

    #[test]
    fn for_algorithm_resolves_library_routings_on_large_meshes() {
        use crate::routing::{TorusXyRouting, YxRouting};
        let large = Mesh::new(96, 96).unwrap();
        for algo in [
            &crate::routing::XyRouting as &dyn RoutingAlgorithm,
            &YxRouting,
            &TorusXyRouting,
        ] {
            let provider = RouteProvider::for_algorithm(&large, algo).unwrap();
            assert_eq!(provider.tier(), RouteTier::OnDemand);
            assert_eq!(RouteSource::routing_name(&provider), algo.name());
        }
    }

    #[test]
    fn numbering_decode_rejects_unused_slots() {
        let mesh = Mesh::new(3, 3).unwrap();
        let implicit = ImplicitRoutes::new(&mesh, RoutingKind::Xy);
        // North slot of tile 0 (top row) has no neighbour.
        let n = mesh.tile_count() as u32;
        assert_eq!(implicit.link_at(2 * n + DIR_NORTH), None);
        // Out-of-range ids decode to nothing.
        assert_eq!(implicit.link_at(6 * n), None);
        // Every id an actual walk produces decodes, and round-trips
        // uniquely: two distinct ids never decode to the same link.
        let mut seen = std::collections::HashMap::new();
        for id in 0..RouteSource::dense_link_count(&implicit) as u32 {
            if let Some(link) = implicit.link_at(id) {
                assert!(
                    seen.insert(link, id).is_none(),
                    "link {link} decoded from two ids"
                );
            }
        }
    }

    #[test]
    fn two_wide_torus_collapses_wrap_links() {
        // On a 2-wide ring, east-wrap and west from the same tile land on
        // the same neighbour: one physical link, one id — matching the
        // dense cache's interning of `Link::between`.
        let mesh = Mesh::new(2, 1).unwrap();
        let implicit = ImplicitRoutes::new(&mesh, RoutingKind::TorusXy);
        let dense = RouteCache::with_routing(&mesh, RoutingKind::TorusXy.algorithm()).unwrap();
        for src in mesh.tiles() {
            for dst in mesh.tiles() {
                assert_eq!(
                    decode_walk(&implicit, src, dst),
                    decode_walk(&dense, src, dst)
                );
            }
        }
    }
}
