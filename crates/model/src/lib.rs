//! # noc-model
//!
//! Application and architecture models for energy- and timing-aware NoC
//! mapping, reproducing the data structures of Marcon et al., *"Exploring
//! NoC Mapping Strategies: An Energy and Timing Aware Technique"* (DATE
//! 2005):
//!
//! * [`Cwg`] — *communication weighted graph* (Definition 1): cores with
//!   total-bit-volume edges; the model behind the CWM mapping strategy.
//! * [`Cdcg`] — *communication dependence and computation graph*
//!   (Definition 2): one vertex per packet, carrying the source core's
//!   computation time and the packet size; edges are dependences. The
//!   model behind the CDCM strategy.
//! * [`Mesh`] + [`XyRouting`] — *communication resource graph*
//!   (Definition 3): the tile mesh, its routers and links, and the
//!   deterministic XY routing the paper assumes.
//! * [`Mapping`] — an injective core→tile placement, the decision variable
//!   of the optimization.
//!
//! # Examples
//!
//! Build the paper's running example application and one of its mappings:
//!
//! ```
//! use noc_model::{Cdcg, Mapping, Mesh, TileId};
//!
//! # fn main() -> Result<(), noc_model::ModelError> {
//! let mut app = Cdcg::new();
//! let a = app.add_core("A");
//! let b = app.add_core("B");
//! let e = app.add_core("E");
//! let f = app.add_core("F");
//! let pab1 = app.add_packet(a, b, 6, 15)?;
//! let pea1 = app.add_packet(e, a, 10, 20)?;
//! let paf1 = app.add_packet(a, f, 6, 15)?;
//! app.add_dependence(pab1, paf1)?;
//! app.add_dependence(pea1, paf1)?;
//!
//! let mesh = Mesh::new(2, 2)?;
//! let mapping = Mapping::from_tiles(&mesh, [1, 0, 3, 2].map(TileId::new))?;
//! assert_eq!(mapping.tile_of(a), TileId::new(1));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdcg;
pub mod crg;
pub mod cwg;
pub mod dot;
pub mod error;
pub mod fault;
pub mod ids;
pub mod mapping;
pub mod route_cache;
pub mod route_provider;
pub mod routing;
pub mod walk_memo;

pub use cdcg::{Cdcg, Packet};
pub use crg::{Coord, Direction, Link, Mesh};
pub use cwg::{Communication, Cwg};
pub use error::ModelError;
pub use fault::{FaultAwareRoutes, FaultRouteStats, FaultScenario, FaultSet};
pub use ids::{CoreId, PacketId, TileId};
pub use mapping::Mapping;
pub use route_cache::RouteCache;
pub use route_provider::{ImplicitRoutes, OnDemandRoutes, RouteProvider, RouteSource, RouteTier};
pub use routing::{
    Path, RoutingAlgorithm, RoutingKind, TorusXyRouting, TorusXyzRouting, XyRouting, XyzRouting,
    YxRouting,
};
pub use walk_memo::{WalkMemo, WalkMemoStats};
