//! Energy/time Pareto-front exploration — the natural multi-objective
//! extension of the paper's single-scalar objectives.
//!
//! The CWM objective ignores time; the CDCM objective folds time into
//! energy through leakage. A designer often wants the whole trade-off
//! curve instead: [`pareto_front`] sweeps weighted blends of `ENoC` and
//! `texec`, searches each with the annealer, and returns the
//! non-dominated set of mappings found.

use crate::objective::WeightedObjective;
use crate::sa::{anneal, SaConfig};
use noc_energy::{evaluate_cdcm, Technology};
use noc_model::{Cdcg, Mapping, Mesh};
use noc_sim::{SimError, SimParams};
use serde::{Deserialize, Serialize};

/// One point of the trade-off curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// The mapping realizing this point.
    pub mapping: Mapping,
    /// Total NoC energy (pJ) of the mapping.
    pub energy_pj: f64,
    /// Execution time (ns) of the mapping.
    pub texec_ns: f64,
    /// The energy weight of the blend that found it (time weight is
    /// `1 − energy_weight` after normalization).
    pub energy_weight: f64,
}

impl ParetoPoint {
    /// True if `self` dominates `other` (no worse in both objectives,
    /// strictly better in at least one).
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        let no_worse = self.energy_pj <= other.energy_pj && self.texec_ns <= other.texec_ns;
        let better = self.energy_pj < other.energy_pj || self.texec_ns < other.texec_ns;
        no_worse && better
    }
}

/// Sweeps `weights` blend points (at least 2), annealing each, and
/// returns the non-dominated front sorted by increasing energy.
///
/// The energy and time terms are normalized by a random-mapping probe so
/// the weights are comparable across instances.
///
/// # Errors
///
/// Propagates scheduling errors from mapping evaluation.
///
/// # Panics
///
/// Panics if `weights < 2` or the application has more cores than tiles.
pub fn pareto_front(
    cdcg: &Cdcg,
    mesh: &Mesh,
    tech: &Technology,
    params: &SimParams,
    weights: usize,
    sa: &SaConfig,
) -> Result<Vec<ParetoPoint>, SimError> {
    assert!(weights >= 2, "need at least the two extreme blends");
    let cores = cdcg.core_count();

    // Normalization probe: a deterministic baseline mapping.
    let probe_mapping =
        Mapping::identity(mesh, cores).expect("caller guarantees cores fit the mesh");
    let probe = evaluate_cdcm(cdcg, mesh, &probe_mapping, tech, params)?;
    let energy_scale = probe.objective_pj().max(1e-12);
    let time_scale = probe.texec_ns.max(1e-12);

    let mut points: Vec<ParetoPoint> = Vec::with_capacity(weights);
    for i in 0..weights {
        let alpha = i as f64 / (weights - 1) as f64; // energy weight 0..1
        let objective = WeightedObjective::new(
            cdcg,
            mesh,
            tech,
            *params,
            alpha / energy_scale,
            (1.0 - alpha) / time_scale,
        );
        let outcome = anneal(&objective, mesh, cores, sa);
        let eval = evaluate_cdcm(cdcg, mesh, &outcome.mapping, tech, params)?;
        points.push(ParetoPoint {
            mapping: outcome.mapping,
            energy_pj: eval.objective_pj(),
            texec_ns: eval.texec_ns,
            energy_weight: alpha,
        });
    }

    // Filter to the non-dominated set.
    let mut front: Vec<ParetoPoint> = Vec::new();
    for candidate in points {
        if front.iter().any(|p| p.dominates(&candidate)) {
            continue;
        }
        front.retain(|p| !candidate.dominates(p));
        // Skip exact duplicates (same objective values).
        if !front
            .iter()
            .any(|p| p.energy_pj == candidate.energy_pj && p.texec_ns == candidate.texec_ns)
        {
            front.push(candidate);
        }
    }
    front.sort_by(|a, b| a.energy_pj.total_cmp(&b.energy_pj));
    Ok(front)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline() -> Cdcg {
        let mut g = Cdcg::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        let c = g.add_core("c");
        let d = g.add_core("d");
        for _ in 0..3 {
            let p0 = g.add_packet(a, b, 5, 120).unwrap();
            let p1 = g.add_packet(b, c, 5, 80).unwrap();
            let p2 = g.add_packet(c, d, 5, 40).unwrap();
            let p3 = g.add_packet(a, d, 5, 60).unwrap();
            g.add_dependence(p0, p1).unwrap();
            g.add_dependence(p1, p2).unwrap();
            g.add_dependence(p0, p3).unwrap();
        }
        g
    }

    #[test]
    fn front_is_mutually_non_dominated_and_sorted() {
        let cdcg = pipeline();
        let mesh = Mesh::new(3, 2).unwrap();
        let front = pareto_front(
            &cdcg,
            &mesh,
            &Technology::t035(),
            &SimParams::new(),
            5,
            &SaConfig::quick(3),
        )
        .unwrap();
        assert!(!front.is_empty());
        for i in 0..front.len() {
            for j in 0..front.len() {
                if i != j {
                    assert!(!front[i].dominates(&front[j]), "front must be clean");
                }
            }
        }
        for w in front.windows(2) {
            assert!(w[0].energy_pj <= w[1].energy_pj);
            // Sorted by energy => time must be non-increasing on a clean
            // front.
            assert!(w[0].texec_ns >= w[1].texec_ns);
        }
    }

    #[test]
    fn extreme_weights_bound_the_front() {
        let cdcg = pipeline();
        let mesh = Mesh::new(3, 2).unwrap();
        let params = SimParams::new();
        let tech = Technology::t035();
        let front = pareto_front(&cdcg, &mesh, &tech, &params, 5, &SaConfig::quick(9)).unwrap();
        // Every front point must carry a valid mapping.
        for p in &front {
            p.mapping.validate().unwrap();
            assert!(p.energy_pj > 0.0);
            assert!(p.texec_ns > 0.0);
        }
    }

    #[test]
    fn dominance_relation() {
        let mesh = Mesh::new(2, 2).unwrap();
        let m = Mapping::identity(&mesh, 2).unwrap();
        let mk = |e, t| ParetoPoint {
            mapping: m.clone(),
            energy_pj: e,
            texec_ns: t,
            energy_weight: 0.5,
        };
        assert!(mk(1.0, 1.0).dominates(&mk(2.0, 2.0)));
        assert!(mk(1.0, 2.0).dominates(&mk(1.0, 3.0)));
        assert!(!mk(1.0, 3.0).dominates(&mk(2.0, 1.0)));
        assert!(!mk(1.0, 1.0).dominates(&mk(1.0, 1.0)));
    }
}
