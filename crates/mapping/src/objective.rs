//! Mapping cost functions: the CWM and CDCM objectives plus extensions.
//!
//! Both of the paper's strategies are search procedures over the same
//! mapping space; they differ only in the objective (§4):
//!
//! * [`CwmObjective`] — Equation 3: dynamic energy from the CWG. Cheap
//!   (`O(NCC)` path computations), but blind to timing.
//! * [`CdcmObjective`] — Equation 10: total energy, requiring a
//!   contention-aware schedule per evaluation (`O(NDP)` event
//!   processing).
//! * [`ExecTimeObjective`] — pure `texec` minimization (an extension the
//!   ETR experiments use for ablations).
//! * [`WeightedObjective`] — `α·ENoC + β·texec` multi-objective blend
//!   (listed by the paper as a natural extension).

use noc_energy::{evaluate_cdcm, evaluate_cwm, Technology};
use noc_model::{Cdcg, Cwg, Mapping, Mesh, TileId, XyRouting};
use noc_sim::{schedule, SimParams};

/// A mapping objective: smaller is better.
///
/// Objects of this trait are what the search engines in [`crate::sa`],
/// [`crate::exhaustive()`], [`crate::random_search()`] and [`crate::greedy()`]
/// minimize.
pub trait CostFunction {
    /// Cost of a mapping (picojoules for the energy objectives,
    /// nanoseconds for the time objective).
    fn cost(&self, mapping: &Mapping) -> f64;

    /// Short name for reports ("CWM", "CDCM", …).
    fn name(&self) -> String;
}

/// Objectives that can evaluate a tile swap incrementally, without a full
/// re-evaluation. Implementations must guarantee
/// `cost(swap(m)) == cost(m) + swap_delta(m, a, b)` up to rounding; the
/// tests in this module and `tests/proptest_invariants.rs` enforce this.
pub trait SwapDeltaCost: CostFunction {
    /// Cost change if tiles `a` and `b` of `mapping` were swapped.
    fn swap_delta(&self, mapping: &Mapping, a: TileId, b: TileId) -> f64;
}

/// The CWM objective (Equation 3): NoC dynamic energy of a CWG.
#[derive(Debug, Clone)]
pub struct CwmObjective<'a> {
    cwg: &'a Cwg,
    mesh: &'a Mesh,
    tech: &'a Technology,
}

impl<'a> CwmObjective<'a> {
    /// Creates the objective for an application CWG on a mesh at a
    /// technology point.
    pub fn new(cwg: &'a Cwg, mesh: &'a Mesh, tech: &'a Technology) -> Self {
        Self { cwg, mesh, tech }
    }

    /// The underlying CWG.
    pub fn cwg(&self) -> &Cwg {
        self.cwg
    }
}

impl CostFunction for CwmObjective<'_> {
    fn cost(&self, mapping: &Mapping) -> f64 {
        evaluate_cwm(self.cwg, self.mesh, mapping, self.tech).picojoules()
    }

    fn name(&self) -> String {
        "CWM".to_owned()
    }
}

impl SwapDeltaCost for CwmObjective<'_> {
    fn swap_delta(&self, mapping: &Mapping, a: TileId, b: TileId) -> f64 {
        if a == b {
            return 0.0;
        }
        let affected = |core: noc_model::CoreId| {
            let t = mapping.tile_of(core);
            t == a || t == b
        };
        // Only communications touching a swapped core change cost.
        let routing = XyRouting;
        let mut swapped = mapping.clone();
        swapped.swap_tiles(a, b);
        let mut delta = 0.0;
        for comm in self.cwg.communications() {
            if !(affected(comm.src) || affected(comm.dst)) {
                continue;
            }
            let old = noc_energy::dynamic::communication_energy(
                &comm, self.mesh, mapping, self.tech, &routing,
            );
            let new = noc_energy::dynamic::communication_energy(
                &comm, self.mesh, &swapped, self.tech, &routing,
            );
            delta += new.picojoules() - old.picojoules();
        }
        delta
    }
}

/// The CDCM objective (Equation 10): total NoC energy including leakage
/// over the contention-aware execution time.
#[derive(Debug, Clone)]
pub struct CdcmObjective<'a> {
    cdcg: &'a Cdcg,
    mesh: &'a Mesh,
    tech: &'a Technology,
    params: SimParams,
}

impl<'a> CdcmObjective<'a> {
    /// Creates the objective for an application CDCG.
    pub fn new(cdcg: &'a Cdcg, mesh: &'a Mesh, tech: &'a Technology, params: SimParams) -> Self {
        Self {
            cdcg,
            mesh,
            tech,
            params,
        }
    }

    /// The underlying CDCG.
    pub fn cdcg(&self) -> &Cdcg {
        self.cdcg
    }
}

impl CostFunction for CdcmObjective<'_> {
    fn cost(&self, mapping: &Mapping) -> f64 {
        evaluate_cdcm(self.cdcg, self.mesh, mapping, self.tech, &self.params)
            .map(|e| e.objective_pj())
            .unwrap_or(f64::INFINITY)
    }

    fn name(&self) -> String {
        "CDCM".to_owned()
    }
}

/// Pure execution-time objective (`texec` in nanoseconds).
#[derive(Debug, Clone)]
pub struct ExecTimeObjective<'a> {
    cdcg: &'a Cdcg,
    mesh: &'a Mesh,
    params: SimParams,
}

impl<'a> ExecTimeObjective<'a> {
    /// Creates the objective.
    pub fn new(cdcg: &'a Cdcg, mesh: &'a Mesh, params: SimParams) -> Self {
        Self { cdcg, mesh, params }
    }
}

impl CostFunction for ExecTimeObjective<'_> {
    fn cost(&self, mapping: &Mapping) -> f64 {
        schedule(self.cdcg, self.mesh, mapping, &self.params)
            .map(|s| s.texec_ns())
            .unwrap_or(f64::INFINITY)
    }

    fn name(&self) -> String {
        "texec".to_owned()
    }
}

/// Weighted blend `α·ENoC + β·texec` (energy in pJ, time in ns).
#[derive(Debug, Clone)]
pub struct WeightedObjective<'a> {
    cdcg: &'a Cdcg,
    mesh: &'a Mesh,
    tech: &'a Technology,
    params: SimParams,
    energy_weight: f64,
    time_weight: f64,
}

impl<'a> WeightedObjective<'a> {
    /// Creates the blended objective with the given weights.
    pub fn new(
        cdcg: &'a Cdcg,
        mesh: &'a Mesh,
        tech: &'a Technology,
        params: SimParams,
        energy_weight: f64,
        time_weight: f64,
    ) -> Self {
        Self {
            cdcg,
            mesh,
            tech,
            params,
            energy_weight,
            time_weight,
        }
    }
}

impl CostFunction for WeightedObjective<'_> {
    fn cost(&self, mapping: &Mapping) -> f64 {
        match evaluate_cdcm(self.cdcg, self.mesh, mapping, self.tech, &self.params) {
            Ok(eval) => self.energy_weight * eval.objective_pj() + self.time_weight * eval.texec_ns,
            Err(_) => f64::INFINITY,
        }
    }

    fn name(&self) -> String {
        format!("{}*ENoC+{}*texec", self.energy_weight, self.time_weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::TileId;

    fn figure1_cdcg() -> Cdcg {
        let mut g = Cdcg::new();
        let a = g.add_core("A");
        let b = g.add_core("B");
        let e = g.add_core("E");
        let f = g.add_core("F");
        let pab1 = g.add_packet(a, b, 6, 15).unwrap();
        let pbf1 = g.add_packet(b, f, 10, 40).unwrap();
        let pea1 = g.add_packet(e, a, 10, 20).unwrap();
        let pea2 = g.add_packet(e, a, 20, 15).unwrap();
        let paf1 = g.add_packet(a, f, 6, 15).unwrap();
        let pfb1 = g.add_packet(f, b, 6, 15).unwrap();
        g.add_dependence(pea1, pea2).unwrap();
        g.add_dependence(pab1, paf1).unwrap();
        g.add_dependence(pea1, paf1).unwrap();
        g.add_dependence(pbf1, pfb1).unwrap();
        g.add_dependence(paf1, pfb1).unwrap();
        g
    }

    #[test]
    fn cwm_objective_is_390_on_both_paper_mappings() {
        let cdcg = figure1_cdcg();
        let cwg = cdcg.to_cwg();
        let mesh = Mesh::new(2, 2).unwrap();
        let tech = Technology::paper_example();
        let obj = CwmObjective::new(&cwg, &mesh, &tech);
        let c = Mapping::from_tiles(&mesh, [1, 0, 3, 2].map(TileId::new)).unwrap();
        let d = Mapping::from_tiles(&mesh, [3, 0, 1, 2].map(TileId::new)).unwrap();
        assert_eq!(obj.cost(&c), 390.0);
        assert_eq!(obj.cost(&d), 390.0);
        assert_eq!(obj.name(), "CWM");
    }

    #[test]
    fn cdcm_objective_distinguishes_the_mappings() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let tech = Technology::paper_example();
        let obj = CdcmObjective::new(&cdcg, &mesh, &tech, SimParams::paper_example());
        let c = Mapping::from_tiles(&mesh, [1, 0, 3, 2].map(TileId::new)).unwrap();
        let d = Mapping::from_tiles(&mesh, [3, 0, 1, 2].map(TileId::new)).unwrap();
        assert!((obj.cost(&c) - 400.0).abs() < 1e-9);
        assert!((obj.cost(&d) - 399.0).abs() < 1e-9);
    }

    #[test]
    fn exec_time_objective_matches_figures() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let obj = ExecTimeObjective::new(&cdcg, &mesh, SimParams::paper_example());
        let c = Mapping::from_tiles(&mesh, [1, 0, 3, 2].map(TileId::new)).unwrap();
        let d = Mapping::from_tiles(&mesh, [3, 0, 1, 2].map(TileId::new)).unwrap();
        assert_eq!(obj.cost(&c), 100.0);
        assert_eq!(obj.cost(&d), 90.0);
    }

    #[test]
    fn weighted_objective_blends() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let tech = Technology::paper_example();
        let params = SimParams::paper_example();
        let c = Mapping::from_tiles(&mesh, [1, 0, 3, 2].map(TileId::new)).unwrap();
        let energy_only = WeightedObjective::new(&cdcg, &mesh, &tech, params, 1.0, 0.0);
        let time_only = WeightedObjective::new(&cdcg, &mesh, &tech, params, 0.0, 1.0);
        assert!((energy_only.cost(&c) - 400.0).abs() < 1e-9);
        assert!((time_only.cost(&c) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn cwm_swap_delta_matches_full_recompute() {
        let cdcg = figure1_cdcg();
        let cwg = cdcg.to_cwg();
        let mesh = Mesh::new(2, 2).unwrap();
        let tech = Technology::paper_example();
        let obj = CwmObjective::new(&cwg, &mesh, &tech);
        let m = Mapping::from_tiles(&mesh, [1, 0, 3, 2].map(TileId::new)).unwrap();
        for a in 0..4 {
            for b in 0..4 {
                let (a, b) = (TileId::new(a), TileId::new(b));
                let delta = obj.swap_delta(&m, a, b);
                let mut swapped = m.clone();
                swapped.swap_tiles(a, b);
                let full = obj.cost(&swapped) - obj.cost(&m);
                assert!(
                    (delta - full).abs() < 1e-9,
                    "swap {a}-{b}: delta {delta} vs full {full}"
                );
            }
        }
    }
}
