//! Mapping cost functions: the CWM and CDCM objectives plus extensions.
//!
//! Both of the paper's strategies are search procedures over the same
//! mapping space; they differ only in the objective (§4):
//!
//! * [`CwmObjective`] — Equation 3: dynamic energy from the CWG. Cheap
//!   (`O(NCC)` path computations), but blind to timing.
//! * [`CdcmObjective`] — Equation 10: total energy, requiring a
//!   contention-aware schedule per evaluation (`O(NDP)` event
//!   processing).
//! * [`ExecTimeObjective`] — pure `texec` minimization (an extension the
//!   ETR experiments use for ablations).
//! * [`WeightedObjective`] — `α·ENoC + β·texec` multi-objective blend
//!   (listed by the paper as a natural extension).

use noc_energy::{cwg_dynamic_energy_cached, CdcmCostEvaluator, Technology};
use noc_model::{
    Cdcg, Cwg, Mapping, Mesh, RouteCache, RouteProvider, RouteSource, RoutingAlgorithm,
    RoutingKind, TileId,
};
use noc_sim::{BatchEvaluator, CostEvaluator, SimParams};
use std::cell::RefCell;
use std::sync::Arc;

/// Builds the size-aware provider objectives default to for an explicit
/// routing algorithm: library routings (XY/YX/torus-XY) pick a tier by
/// mesh size and never fail; custom algorithms require the dense tier.
///
/// # Panics
///
/// Panics only for a *custom* routing algorithm on a mesh too large to
/// cache densely — use `with_provider` with an explicit tier there.
fn provider_for(mesh: &Mesh, routing: &dyn RoutingAlgorithm) -> Arc<RouteProvider> {
    Arc::new(
        RouteProvider::for_algorithm(mesh, routing)
            .expect("custom routing algorithms need a dense-cacheable mesh"),
    )
}

// The objective traits every search engine minimizes live in the search
// subsystem (`noc-search`), which the engines share; they are re-exported
// here so objective implementors and downstream users are unaffected by
// the move.
pub use noc_search::{BatchCost, CostFunction, SwapDeltaCost};

/// The CWM objective (Equation 3): NoC dynamic energy of a CWG.
///
/// Routes come from a shared [`RouteProvider`], so neither full
/// evaluations nor [`SwapDeltaCost::swap_delta`] re-derive paths —
/// hop counts are `O(1)` table lookups (dense tier) or closed forms
/// (on-demand/implicit tiers). The provider may be built for any
/// [`RoutingAlgorithm`] ([`Self::with_routing`]); [`Self::new`]
/// defaults to XY, the paper's routing function.
#[derive(Debug, Clone)]
pub struct CwmObjective<'a> {
    cwg: &'a Cwg,
    tech: &'a Technology,
    routes: Arc<RouteProvider>,
}

impl<'a> CwmObjective<'a> {
    /// Creates the objective for an application CWG on a mesh at a
    /// technology point, under XY routing (size-aware provider tier).
    pub fn new(cwg: &'a Cwg, mesh: &Mesh, tech: &'a Technology) -> Self {
        Self::with_provider(
            cwg,
            mesh,
            tech,
            Arc::new(RouteProvider::auto(mesh, RoutingKind::Xy)),
        )
    }

    /// Creates the objective under an explicit routing algorithm; all
    /// evaluations (including swap deltas) use its cached routes.
    pub fn with_routing(
        cwg: &'a Cwg,
        mesh: &Mesh,
        tech: &'a Technology,
        routing: &dyn RoutingAlgorithm,
    ) -> Self {
        Self::with_provider(cwg, mesh, tech, provider_for(mesh, routing))
    }

    /// Creates the objective over an existing shared dense route cache.
    ///
    /// # Panics
    ///
    /// Panics if `cache` was built for a different mesh than `mesh`.
    pub fn with_cache(
        cwg: &'a Cwg,
        mesh: &Mesh,
        tech: &'a Technology,
        cache: Arc<RouteCache>,
    ) -> Self {
        Self::with_provider(cwg, mesh, tech, Arc::new(RouteProvider::from_cache(cache)))
    }

    /// Creates the objective over an existing shared route provider (any
    /// tier).
    ///
    /// # Panics
    ///
    /// Panics if `routes` was built for a different mesh than `mesh`.
    pub fn with_provider(
        cwg: &'a Cwg,
        mesh: &Mesh,
        tech: &'a Technology,
        routes: Arc<RouteProvider>,
    ) -> Self {
        assert_eq!(
            routes.mesh(),
            mesh,
            "route provider was built for a different mesh"
        );
        Self { cwg, tech, routes }
    }

    /// The underlying CWG.
    pub fn cwg(&self) -> &Cwg {
        self.cwg
    }

    /// The shared route provider.
    pub fn provider(&self) -> &Arc<RouteProvider> {
        &self.routes
    }
}

impl CostFunction for CwmObjective<'_> {
    fn cost(&self, mapping: &Mapping) -> f64 {
        cwg_dynamic_energy_cached(self.cwg, self.routes.as_ref(), mapping, self.tech).picojoules()
    }

    fn name(&self) -> String {
        "CWM".to_owned()
    }
}

impl SwapDeltaCost for CwmObjective<'_> {
    fn swap_delta(&self, mapping: &Mapping, a: TileId, b: TileId) -> f64 {
        if a == b {
            return 0.0;
        }
        // Tile a core would occupy after the swap, without materializing
        // the swapped mapping.
        let swapped_tile = |core: noc_model::CoreId| {
            let t = mapping.tile_of(core);
            if t == a {
                b
            } else if t == b {
                a
            } else {
                t
            }
        };
        // Only communications touching a swapped core change cost; each
        // term is two O(1) hop/vertical-hop lookups in the route cache
        // (the same `pair_transfer_energy` the full evaluation charges,
        // so the TSV term of 3D meshes stays consistent).
        let mut delta = 0.0;
        for comm in self.cwg.communications() {
            let (src_old, dst_old) = (mapping.tile_of(comm.src), mapping.tile_of(comm.dst));
            if !(src_old == a || src_old == b || dst_old == a || dst_old == b) {
                continue;
            }
            let (src_new, dst_new) = (swapped_tile(comm.src), swapped_tile(comm.dst));
            let routes = self.routes.as_ref();
            let old =
                noc_energy::pair_transfer_energy(routes, self.tech, src_old, dst_old, comm.bits);
            let new =
                noc_energy::pair_transfer_energy(routes, self.tech, src_new, dst_new, comm.bits);
            delta += new.picojoules() - old.picojoules();
        }
        delta
    }
}

// Hop counts are O(1) lookups, so the CWM objective gains nothing from
// batching; the sequential default is already its fast path.
impl BatchCost for CwmObjective<'_> {}

/// The CDCM objective (Equation 10): total NoC energy including leakage
/// over the contention-aware execution time.
///
/// Evaluations run on the allocation-free cost engine
/// ([`CdcmCostEvaluator`]): the contention-aware schedule is computed
/// without materializing occupancy lists or timelines, over a shared
/// [`RouteCache`] and reusable scratch buffers. Values are bit-exact with
/// [`noc_energy::evaluate_cdcm`].
///
/// Clones share the route cache but own private scratch state, so each
/// search thread clones the objective once and evaluates independently.
#[derive(Debug)]
pub struct CdcmObjective<'a> {
    cdcg: &'a Cdcg,
    engine: RefCell<CdcmCostEvaluator<'a>>,
}

impl<'a> CdcmObjective<'a> {
    /// Creates the objective for an application CDCG, under XY routing.
    pub fn new(cdcg: &'a Cdcg, mesh: &'a Mesh, tech: &'a Technology, params: SimParams) -> Self {
        Self {
            cdcg,
            engine: RefCell::new(CdcmCostEvaluator::new(cdcg, mesh, tech, &params)),
        }
    }

    /// Creates the objective under an explicit routing algorithm; all
    /// evaluations (including incremental swap deltas) use its cached
    /// routes.
    pub fn with_routing(
        cdcg: &'a Cdcg,
        mesh: &Mesh,
        tech: &'a Technology,
        params: SimParams,
        routing: &dyn RoutingAlgorithm,
    ) -> Self {
        Self::with_provider(cdcg, tech, params, provider_for(mesh, routing))
    }

    /// Creates the objective over an existing shared dense route cache.
    pub fn with_cache(
        cdcg: &'a Cdcg,
        tech: &'a Technology,
        params: SimParams,
        cache: Arc<RouteCache>,
    ) -> Self {
        Self::with_provider(
            cdcg,
            tech,
            params,
            Arc::new(RouteProvider::from_cache(cache)),
        )
    }

    /// Creates the objective over an existing shared route provider (any
    /// tier; costs are bit-identical across tiers).
    pub fn with_provider(
        cdcg: &'a Cdcg,
        tech: &'a Technology,
        params: SimParams,
        routes: Arc<RouteProvider>,
    ) -> Self {
        Self {
            cdcg,
            engine: RefCell::new(CdcmCostEvaluator::with_provider(
                cdcg, tech, &params, routes,
            )),
        }
    }

    /// The underlying CDCG.
    pub fn cdcg(&self) -> &Cdcg {
        self.cdcg
    }

    /// Counters of the incremental scheduler backing this objective
    /// (useful to assert the delta path is exercised, not silently
    /// falling back to full evaluation).
    pub fn delta_stats(&self) -> noc_sim::DeltaStats {
        self.engine.borrow().delta_stats()
    }

    /// Telemetry of the batch engine behind [`BatchCost::batch_cost`]:
    /// batch counters plus the walk-memo dedup counters (inner `None`
    /// under a dense provider). `None` until the first batched
    /// evaluation.
    pub fn batch_stats(&self) -> Option<(noc_sim::BatchStats, Option<noc_model::WalkMemoStats>)> {
        self.engine.borrow().batch_stats()
    }

    /// Enables or disables walk memoization in the backing engines
    /// (incremental scheduler and batch evaluator). Costs — and
    /// therefore search trajectories — are bit-identical either way;
    /// the memo-equivalence property tests pin that by flipping this.
    pub fn set_walk_memo(&self, enabled: bool) {
        self.engine.borrow_mut().set_walk_memo(enabled);
    }
}

impl Clone for CdcmObjective<'_> {
    fn clone(&self) -> Self {
        Self {
            cdcg: self.cdcg,
            engine: RefCell::new(self.engine.borrow().clone()),
        }
    }
}

impl CostFunction for CdcmObjective<'_> {
    fn cost(&self, mapping: &Mapping) -> f64 {
        self.engine
            .borrow_mut()
            .evaluate(mapping)
            .map(|c| c.objective_pj)
            .unwrap_or(f64::INFINITY)
    }

    fn name(&self) -> String {
        "CDCM".to_owned()
    }
}

impl SwapDeltaCost for CdcmObjective<'_> {
    /// Incremental move evaluation: the schedule suffix is re-run only
    /// from the first route-changed injection (see [`noc_sim::delta`]).
    /// Both terms are computed with the exact floating-point operations
    /// of [`CostFunction::cost`], so
    /// `cost(m) + swap_delta(m, a, b) == cost(swap(m))` holds bitwise —
    /// delta-driven annealing follows the same trajectory as full
    /// re-evaluation, seed for seed.
    fn swap_delta(&self, mapping: &Mapping, a: TileId, b: TileId) -> f64 {
        if a == b {
            return 0.0;
        }
        let mut engine = self.engine.borrow_mut();
        let base = match engine.evaluate(mapping) {
            Ok(c) => c.objective_pj,
            Err(_) => return f64::INFINITY,
        };
        match engine.evaluate_swap(mapping, a, b) {
            Ok(c) => c.objective_pj - base,
            Err(_) => f64::INFINITY,
        }
    }

    /// Neighborhood form: the shared baseline is evaluated once (not
    /// once per move, as chaining [`Self::swap_delta`] would), then each
    /// move runs only its incremental suffix re-run. Deltas are
    /// bit-identical to per-move calls — the baseline a per-move chain
    /// re-evaluates comes from the engine's unchanged-mapping cache and
    /// is bitwise the same value.
    fn batch_swap_delta(&self, mapping: &Mapping, moves: &[(TileId, TileId)], out: &mut Vec<f64>) {
        let mut engine = self.engine.borrow_mut();
        let base = match engine.evaluate(mapping) {
            Ok(c) => c.objective_pj,
            Err(_) => {
                // Per-move parity: `swap_delta` short-circuits `a == b`
                // to 0.0 before it ever evaluates the baseline.
                out.extend(
                    moves
                        .iter()
                        .map(|&(a, b)| if a == b { 0.0 } else { f64::INFINITY }),
                );
                return;
            }
        };
        for &(a, b) in moves {
            if a == b {
                out.push(0.0);
                continue;
            }
            match engine.evaluate_swap(mapping, a, b) {
                Ok(c) => out.push(c.objective_pj - base),
                Err(_) => out.push(f64::INFINITY),
            }
        }
    }
}

impl BatchCost for CdcmObjective<'_> {
    /// Batched full evaluations through the data-oriented engine
    /// ([`CdcmCostEvaluator::evaluate_batch`]): one workload pass,
    /// deduplicated route resolution, pooled scratch. Bit-identical to
    /// per-mapping [`CostFunction::cost`] calls; on a batch-aborting
    /// error it falls back to the sequential path so per-mapping
    /// infinities land exactly where `cost` would put them.
    fn batch_cost(&self, batch: &[Mapping], out: &mut Vec<f64>) {
        let mut engine = self.engine.borrow_mut();
        let mut costs = Vec::with_capacity(batch.len());
        if engine.evaluate_batch(batch, &mut costs).is_ok() {
            out.extend(costs.iter().map(|c| c.objective_pj));
        } else {
            drop(engine);
            out.extend(batch.iter().map(|m| self.cost(m)));
        }
    }
}

/// Pure execution-time objective (`texec` in nanoseconds), evaluated on
/// the cost-only fast path.
#[derive(Debug)]
pub struct ExecTimeObjective<'a> {
    engine: RefCell<CostEvaluator<'a>>,
    /// Batch engine for [`BatchCost::batch_cost`]; shares the provider
    /// with `engine` but owns private scratch and memo.
    batch: RefCell<BatchEvaluator<'a>>,
}

impl<'a> ExecTimeObjective<'a> {
    /// Creates the objective, under XY routing.
    pub fn new(cdcg: &'a Cdcg, mesh: &'a Mesh, params: SimParams) -> Self {
        Self::with_provider(
            cdcg,
            params,
            Arc::new(RouteProvider::auto(mesh, RoutingKind::Xy)),
        )
    }

    /// Creates the objective under an explicit routing algorithm.
    pub fn with_routing(
        cdcg: &'a Cdcg,
        mesh: &Mesh,
        params: SimParams,
        routing: &dyn RoutingAlgorithm,
    ) -> Self {
        Self::with_provider(cdcg, params, provider_for(mesh, routing))
    }

    /// Creates the objective over an existing shared dense route cache.
    pub fn with_cache(cdcg: &'a Cdcg, params: SimParams, cache: Arc<RouteCache>) -> Self {
        Self::with_provider(cdcg, params, Arc::new(RouteProvider::from_cache(cache)))
    }

    /// Creates the objective over an existing shared route provider.
    pub fn with_provider(cdcg: &'a Cdcg, params: SimParams, routes: Arc<RouteProvider>) -> Self {
        Self {
            engine: RefCell::new(CostEvaluator::with_provider(
                cdcg,
                &params,
                Arc::clone(&routes),
            )),
            batch: RefCell::new(BatchEvaluator::with_provider(cdcg, &params, routes)),
        }
    }
}

impl Clone for ExecTimeObjective<'_> {
    fn clone(&self) -> Self {
        Self {
            engine: RefCell::new(self.engine.borrow().clone()),
            batch: RefCell::new(self.batch.borrow().clone()),
        }
    }
}

impl CostFunction for ExecTimeObjective<'_> {
    fn cost(&self, mapping: &Mapping) -> f64 {
        self.engine
            .borrow_mut()
            .texec_ns(mapping)
            .unwrap_or(f64::INFINITY)
    }

    fn name(&self) -> String {
        "texec".to_owned()
    }
}

impl BatchCost for ExecTimeObjective<'_> {
    /// Batched `texec` through [`noc_sim::BatchEvaluator`]: the cycle
    /// counts are bit-identical to the sequential fast path, and the
    /// cycles→ns conversion is the same operation `cost` performs.
    fn batch_cost(&self, batch: &[Mapping], out: &mut Vec<f64>) {
        let mut engine = self.batch.borrow_mut();
        let mut texecs = Vec::with_capacity(batch.len());
        if engine.evaluate_into(batch, &mut texecs).is_ok() {
            let params = *engine.params();
            out.extend(texecs.iter().map(|&t| params.cycles_to_ns(t)));
        } else {
            drop(engine);
            out.extend(batch.iter().map(|m| self.cost(m)));
        }
    }
}

/// Weighted blend `α·ENoC + β·texec` (energy in pJ, time in ns),
/// evaluated on the cost-only fast path.
#[derive(Debug)]
pub struct WeightedObjective<'a> {
    engine: RefCell<CdcmCostEvaluator<'a>>,
    energy_weight: f64,
    time_weight: f64,
}

impl<'a> WeightedObjective<'a> {
    /// Creates the blended objective with the given weights.
    pub fn new(
        cdcg: &'a Cdcg,
        mesh: &'a Mesh,
        tech: &'a Technology,
        params: SimParams,
        energy_weight: f64,
        time_weight: f64,
    ) -> Self {
        Self {
            engine: RefCell::new(CdcmCostEvaluator::new(cdcg, mesh, tech, &params)),
            energy_weight,
            time_weight,
        }
    }

    /// Creates the blended objective under an explicit routing algorithm.
    #[allow(clippy::too_many_arguments)]
    pub fn with_routing(
        cdcg: &'a Cdcg,
        mesh: &Mesh,
        tech: &'a Technology,
        params: SimParams,
        routing: &dyn RoutingAlgorithm,
        energy_weight: f64,
        time_weight: f64,
    ) -> Self {
        Self::with_provider(
            cdcg,
            tech,
            params,
            provider_for(mesh, routing),
            energy_weight,
            time_weight,
        )
    }

    /// Creates the blended objective over an existing shared dense route
    /// cache.
    pub fn with_cache(
        cdcg: &'a Cdcg,
        tech: &'a Technology,
        params: SimParams,
        cache: Arc<RouteCache>,
        energy_weight: f64,
        time_weight: f64,
    ) -> Self {
        Self::with_provider(
            cdcg,
            tech,
            params,
            Arc::new(RouteProvider::from_cache(cache)),
            energy_weight,
            time_weight,
        )
    }

    /// Creates the blended objective over an existing shared route
    /// provider.
    pub fn with_provider(
        cdcg: &'a Cdcg,
        tech: &'a Technology,
        params: SimParams,
        routes: Arc<RouteProvider>,
        energy_weight: f64,
        time_weight: f64,
    ) -> Self {
        Self {
            engine: RefCell::new(CdcmCostEvaluator::with_provider(
                cdcg, tech, &params, routes,
            )),
            energy_weight,
            time_weight,
        }
    }
}

impl Clone for WeightedObjective<'_> {
    fn clone(&self) -> Self {
        Self {
            engine: RefCell::new(self.engine.borrow().clone()),
            energy_weight: self.energy_weight,
            time_weight: self.time_weight,
        }
    }
}

impl CostFunction for WeightedObjective<'_> {
    fn cost(&self, mapping: &Mapping) -> f64 {
        match self.engine.borrow_mut().evaluate(mapping) {
            Ok(cost) => self.energy_weight * cost.objective_pj + self.time_weight * cost.texec_ns,
            Err(_) => f64::INFINITY,
        }
    }

    fn name(&self) -> String {
        format!("{}*ENoC+{}*texec", self.energy_weight, self.time_weight)
    }
}

impl BatchCost for WeightedObjective<'_> {
    /// Batched blend over [`CdcmCostEvaluator::evaluate_batch`]: the
    /// energy and time terms are bit-identical to a sequential
    /// evaluation, and the blend is the same two-operation expression
    /// `cost` computes.
    fn batch_cost(&self, batch: &[Mapping], out: &mut Vec<f64>) {
        let mut engine = self.engine.borrow_mut();
        let mut costs = Vec::with_capacity(batch.len());
        if engine.evaluate_batch(batch, &mut costs).is_ok() {
            out.extend(
                costs
                    .iter()
                    .map(|c| self.energy_weight * c.objective_pj + self.time_weight * c.texec_ns),
            );
        } else {
            drop(engine);
            out.extend(batch.iter().map(|m| self.cost(m)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::TileId;

    fn figure1_cdcg() -> Cdcg {
        let mut g = Cdcg::new();
        let a = g.add_core("A");
        let b = g.add_core("B");
        let e = g.add_core("E");
        let f = g.add_core("F");
        let pab1 = g.add_packet(a, b, 6, 15).unwrap();
        let pbf1 = g.add_packet(b, f, 10, 40).unwrap();
        let pea1 = g.add_packet(e, a, 10, 20).unwrap();
        let pea2 = g.add_packet(e, a, 20, 15).unwrap();
        let paf1 = g.add_packet(a, f, 6, 15).unwrap();
        let pfb1 = g.add_packet(f, b, 6, 15).unwrap();
        g.add_dependence(pea1, pea2).unwrap();
        g.add_dependence(pab1, paf1).unwrap();
        g.add_dependence(pea1, paf1).unwrap();
        g.add_dependence(pbf1, pfb1).unwrap();
        g.add_dependence(paf1, pfb1).unwrap();
        g
    }

    #[test]
    fn cwm_objective_is_390_on_both_paper_mappings() {
        let cdcg = figure1_cdcg();
        let cwg = cdcg.to_cwg();
        let mesh = Mesh::new(2, 2).unwrap();
        let tech = Technology::paper_example();
        let obj = CwmObjective::new(&cwg, &mesh, &tech);
        let c = Mapping::from_tiles(&mesh, [1, 0, 3, 2].map(TileId::new)).unwrap();
        let d = Mapping::from_tiles(&mesh, [3, 0, 1, 2].map(TileId::new)).unwrap();
        assert_eq!(obj.cost(&c), 390.0);
        assert_eq!(obj.cost(&d), 390.0);
        assert_eq!(obj.name(), "CWM");
    }

    #[test]
    fn cdcm_objective_distinguishes_the_mappings() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let tech = Technology::paper_example();
        let obj = CdcmObjective::new(&cdcg, &mesh, &tech, SimParams::paper_example());
        let c = Mapping::from_tiles(&mesh, [1, 0, 3, 2].map(TileId::new)).unwrap();
        let d = Mapping::from_tiles(&mesh, [3, 0, 1, 2].map(TileId::new)).unwrap();
        assert!((obj.cost(&c) - 400.0).abs() < 1e-9);
        assert!((obj.cost(&d) - 399.0).abs() < 1e-9);
    }

    #[test]
    fn exec_time_objective_matches_figures() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let obj = ExecTimeObjective::new(&cdcg, &mesh, SimParams::paper_example());
        let c = Mapping::from_tiles(&mesh, [1, 0, 3, 2].map(TileId::new)).unwrap();
        let d = Mapping::from_tiles(&mesh, [3, 0, 1, 2].map(TileId::new)).unwrap();
        assert_eq!(obj.cost(&c), 100.0);
        assert_eq!(obj.cost(&d), 90.0);
    }

    #[test]
    fn weighted_objective_blends() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let tech = Technology::paper_example();
        let params = SimParams::paper_example();
        let c = Mapping::from_tiles(&mesh, [1, 0, 3, 2].map(TileId::new)).unwrap();
        let energy_only = WeightedObjective::new(&cdcg, &mesh, &tech, params, 1.0, 0.0);
        let time_only = WeightedObjective::new(&cdcg, &mesh, &tech, params, 0.0, 1.0);
        assert!((energy_only.cost(&c) - 400.0).abs() < 1e-9);
        assert!((time_only.cost(&c) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn cdcm_fast_path_is_bit_exact_with_full_evaluation() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let tech = Technology::paper_example();
        let params = SimParams::paper_example();
        let obj = CdcmObjective::new(&cdcg, &mesh, &tech, params);
        let mut count = 0;
        crate::exhaustive::for_each_mapping(&mesh, 4, |mapping| {
            let full = noc_energy::evaluate_cdcm(&cdcg, &mesh, mapping, &tech, &params)
                .unwrap()
                .objective_pj();
            assert_eq!(obj.cost(mapping), full);
            count += 1;
        });
        assert_eq!(count, 24);
    }

    #[test]
    fn cdcm_swap_delta_is_exactly_the_cost_difference() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let tech = Technology::paper_example();
        let obj = CdcmObjective::new(&cdcg, &mesh, &tech, SimParams::paper_example());
        let m = Mapping::from_tiles(&mesh, [1, 0, 3, 2].map(TileId::new)).unwrap();
        for a in 0..4 {
            for b in 0..4 {
                let (a, b) = (TileId::new(a), TileId::new(b));
                let delta = obj.swap_delta(&m, a, b);
                let mut swapped = m.clone();
                swapped.swap_tiles(a, b);
                // Bitwise, not approximate: the delta path performs the
                // exact floating-point operations of two cost() calls.
                assert_eq!(delta, obj.cost(&swapped) - obj.cost(&m), "swap {a}-{b}");
            }
        }
        assert!(obj.delta_stats().incremental_moves > 0);
    }

    #[test]
    fn routed_objectives_follow_the_cache_routing() {
        use noc_model::YxRouting;
        let cdcg = figure1_cdcg();
        let cwg = cdcg.to_cwg();
        let mesh = Mesh::new(3, 2).unwrap();
        let tech = Technology::paper_example();
        let params = SimParams::paper_example();
        let mapping = Mapping::from_tiles(&mesh, [5, 0, 1, 4].map(TileId::new)).unwrap();

        let cdcm = CdcmObjective::with_routing(&cdcg, &mesh, &tech, params, &YxRouting);
        let want = noc_energy::total::evaluate_cdcm_with(
            &cdcg, &mesh, &mapping, &tech, &params, &YxRouting,
        )
        .unwrap()
        .objective_pj();
        assert_eq!(cdcm.cost(&mapping), want);

        let cwm = CwmObjective::with_routing(&cwg, &mesh, &tech, &YxRouting);
        let want_cwm =
            noc_energy::total::evaluate_cwm_with(&cwg, &mesh, &mapping, &tech, &YxRouting)
                .picojoules();
        assert_eq!(cwm.cost(&mapping), want_cwm);
        // Swap deltas stay consistent under the non-default routing.
        let (a, b) = (TileId::new(0), TileId::new(3));
        let mut swapped = mapping.clone();
        swapped.swap_tiles(a, b);
        assert_eq!(
            cdcm.swap_delta(&mapping, a, b),
            cdcm.cost(&swapped) - cdcm.cost(&mapping)
        );
        assert!(
            (cwm.swap_delta(&mapping, a, b) - (cwm.cost(&swapped) - cwm.cost(&mapping))).abs()
                < 1e-9
        );
    }

    #[test]
    fn cwm_swap_delta_matches_full_recompute() {
        let cdcg = figure1_cdcg();
        let cwg = cdcg.to_cwg();
        let mesh = Mesh::new(2, 2).unwrap();
        let tech = Technology::paper_example();
        let obj = CwmObjective::new(&cwg, &mesh, &tech);
        let m = Mapping::from_tiles(&mesh, [1, 0, 3, 2].map(TileId::new)).unwrap();
        for a in 0..4 {
            for b in 0..4 {
                let (a, b) = (TileId::new(a), TileId::new(b));
                let delta = obj.swap_delta(&m, a, b);
                let mut swapped = m.clone();
                swapped.swap_tiles(a, b);
                let full = obj.cost(&swapped) - obj.cost(&m);
                assert!(
                    (delta - full).abs() < 1e-9,
                    "swap {a}-{b}: delta {delta} vs full {full}"
                );
            }
        }
    }
}
