//! The FRW-style exploration facade.
//!
//! [`Explorer`] bundles an application CDCG, a mesh, a technology point
//! and the wormhole parameters, and runs either mapping strategy
//! ([`Strategy::Cwm`] or [`Strategy::Cdcm`]) under any search method —
//! mirroring the paper's FRW framework, which "implements a simulated
//! annealing search method to obtain mapping solutions for CWM and CDCM"
//! and "can also execute an exhaustive search method … for small NoCs".

use crate::exhaustive::exhaustive;
use crate::greedy::greedy;
use crate::objective::{BatchCost, CdcmObjective, CwmObjective, SwapDeltaCost};
use crate::random_search::random_search;
use crate::result::SearchOutcome;
use crate::sa::{RestartBudget, SaConfig};
use noc_energy::Technology;
use noc_model::{
    Cdcg, Cwg, FaultScenario, Mapping, Mesh, RouteProvider, RouteSource, RoutingAlgorithm,
};
use noc_search::{
    anneal_delta_cancellable, AdaptiveConfig, AdaptiveRestarts, CancelToken, GaConfig,
    GeneticSearch, MultiStartSa, Portfolio, PortfolioConfig, SearchRun, SearchStrategy, TabuConfig,
    TabuSearch,
};
use noc_sim::SimParams;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which application model drives the cost function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Communication weighted model — Equation 3 on the collapsed CWG.
    Cwm,
    /// Communication dependence and computation model — Equation 10.
    Cdcm,
}

impl Strategy {
    /// Display label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            Self::Cwm => "CWM",
            Self::Cdcm => "CDCM",
        }
    }
}

/// Which engine explores the mapping space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SearchMethod {
    /// Simulated annealing with the given configuration.
    SimulatedAnnealing(SaConfig),
    /// Parallel multi-start simulated annealing: `restarts` independent
    /// seeded runs across the available cores, reduced deterministically
    /// to the best outcome.
    MultiStartSa {
        /// Base configuration; restart `i` runs with `config.seed + i`.
        config: SaConfig,
        /// Number of independent restarts.
        restarts: u32,
        /// How `config.max_evaluations` is split across restarts.
        budget: RestartBudget,
    },
    /// Exhaustive enumeration (small NoCs only).
    Exhaustive,
    /// Uniform random sampling with a sample budget.
    Random {
        /// Number of samples.
        samples: u64,
        /// RNG seed.
        seed: u64,
    },
    /// Steepest-descent with random restarts.
    Greedy {
        /// Number of restarts.
        restarts: u32,
        /// RNG seed.
        seed: u64,
    },
    /// Adaptive restart scheduling: a population of pausable SA runs
    /// executed in rounds, with successive-halving budget reallocation
    /// to the best basins and temperature reheating on revival (see
    /// [`noc_search::AdaptiveRestarts`]).
    Adaptive(AdaptiveConfig),
    /// Permutation genetic algorithm: tournament selection, PMX/cycle
    /// crossover, incremental-delta swap mutation, elitism (see
    /// [`noc_search::GeneticSearch`]).
    Genetic(GaConfig),
    /// Tabu search with a swap-attribute tabu list and aspiration (see
    /// [`noc_search::TabuSearch`]).
    Tabu(TabuConfig),
    /// Heterogeneous portfolio: the budget splits evenly across static
    /// multi-start SA, adaptive restarts, the GA and tabu search (see
    /// [`noc_search::Portfolio`]).
    Portfolio(PortfolioConfig),
}

/// Runs one search method against a concrete objective. All engines
/// route through here, so every `Explorer` strategy supports every
/// method. The cancel token reaches every strategy engine; the
/// enumerative engines (exhaustive, random, greedy) run to completion —
/// their budgets are explicit and small by construction.
fn run_method<C: SwapDeltaCost + BatchCost + Clone + Send>(
    objective: &C,
    mesh: &Mesh,
    cores: usize,
    method: SearchMethod,
    cancel: &CancelToken,
) -> SearchRun {
    match method {
        // Single-start SA uses incremental move evaluation — the low
        // computational complexity the paper credits CWM with, and the
        // dirty-set delta evaluator for CDCM.
        SearchMethod::SimulatedAnnealing(config) => SearchRun::from_outcome(
            anneal_delta_cancellable(objective, mesh, cores, &config, cancel),
        ),
        SearchMethod::MultiStartSa {
            config,
            restarts,
            budget,
        } => MultiStartSa {
            config,
            restarts: restarts as usize,
            budget,
        }
        .search_cancellable(objective, mesh, cores, cancel),
        SearchMethod::Exhaustive => SearchRun::from_outcome(exhaustive(objective, mesh, cores)),
        SearchMethod::Random { samples, seed } => {
            SearchRun::from_outcome(random_search(objective, mesh, cores, samples, seed))
        }
        SearchMethod::Greedy { restarts, seed } => {
            SearchRun::from_outcome(greedy(objective, mesh, cores, restarts, seed))
        }
        SearchMethod::Adaptive(config) => {
            AdaptiveRestarts::new(config).search_cancellable(objective, mesh, cores, cancel)
        }
        SearchMethod::Genetic(config) => {
            GeneticSearch::new(config).search_cancellable(objective, mesh, cores, cancel)
        }
        SearchMethod::Tabu(config) => {
            TabuSearch::new(config).search_cancellable(objective, mesh, cores, cancel)
        }
        SearchMethod::Portfolio(config) => {
            Portfolio::new(config).search_cancellable(objective, mesh, cores, cancel)
        }
    }
}

/// Exploration facade over one application instance.
#[derive(Debug, Clone)]
pub struct Explorer<'a> {
    cdcg: &'a Cdcg,
    cwg: Cwg,
    mesh: Mesh,
    tech: Technology,
    params: SimParams,
    /// Route provider of `mesh`, built once and shared by every objective
    /// this explorer builds (and by their per-thread clones). The tier is
    /// size-aware by default (dense for small meshes, on-demand beyond),
    /// so arbitrarily large meshes explore out of the box.
    routes: Arc<RouteProvider>,
}

impl<'a> Explorer<'a> {
    /// Creates an explorer; the CWG used by the CWM strategy is collapsed
    /// from `cdcg` once, up front, and the mesh's route provider is built
    /// once (under XY routing, the paper's default) for every objective
    /// the explorer runs.
    pub fn new(cdcg: &'a Cdcg, mesh: Mesh, tech: Technology, params: SimParams) -> Self {
        Self::with_routing(cdcg, mesh, tech, params, &noc_model::XyRouting)
    }

    /// [`Explorer::new`] with an explicit routing algorithm: every
    /// objective built by this explorer (both strategies, all search
    /// methods) evaluates over the routing's provided routes — the fast
    /// path, not a per-evaluation route derivation.
    ///
    /// # Panics
    ///
    /// Panics only for a *custom* routing algorithm on a mesh too large
    /// to cache densely; library routings never panic (they fall back to
    /// the on-demand tier). Use [`Explorer::with_provider`] to choose a
    /// tier explicitly.
    pub fn with_routing(
        cdcg: &'a Cdcg,
        mesh: Mesh,
        tech: Technology,
        params: SimParams,
        routing: &dyn RoutingAlgorithm,
    ) -> Self {
        let routes = Arc::new(
            RouteProvider::for_algorithm(&mesh, routing)
                .expect("custom routing algorithms need a dense-cacheable mesh"),
        );
        Self::with_provider(cdcg, mesh, tech, params, routes)
    }

    /// [`Explorer::new`] over an explicit shared route provider (any
    /// tier — dense, on-demand or implicit; search results are
    /// bit-identical across tiers).
    ///
    /// # Panics
    ///
    /// Panics if `routes` was built for a different mesh than `mesh`.
    pub fn with_provider(
        cdcg: &'a Cdcg,
        mesh: Mesh,
        tech: Technology,
        params: SimParams,
        routes: Arc<RouteProvider>,
    ) -> Self {
        assert_eq!(
            routes.mesh(),
            &mesh,
            "route provider was built for a different mesh"
        );
        Self {
            cdcg,
            cwg: cdcg.to_cwg(),
            routes,
            mesh,
            tech,
            params,
        }
    }

    /// The shared route provider of the target mesh.
    pub fn route_provider(&self) -> &Arc<RouteProvider> {
        &self.routes
    }

    /// The application graph.
    pub fn cdcg(&self) -> &Cdcg {
        self.cdcg
    }

    /// The collapsed communication graph.
    pub fn cwg(&self) -> &Cwg {
        &self.cwg
    }

    /// The target mesh.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The technology point.
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// The wormhole parameters.
    pub fn params(&self) -> &SimParams {
        &self.params
    }

    /// Traffic-weighted link-criticality report of a mapping over this
    /// explorer's routes: single-point-of-failure exposure (see
    /// [`crate::robustness::link_criticality`]).
    pub fn link_criticality(&self, mapping: &Mapping) -> crate::robustness::CriticalityReport {
        crate::robustness::link_criticality(&self.cwg, self.routes.as_ref(), mapping)
    }

    /// Injects a fault scenario, measures the incumbent's degraded cost
    /// over the fault-aware route tier, and re-optimizes within
    /// `budget` evaluations (see [`crate::robustness::remap_after_faults`]).
    ///
    /// # Panics
    ///
    /// Panics if this explorer was built for a custom routing algorithm
    /// (fault-aware rerouting needs a library routing kind).
    pub fn remap_after_faults(
        &self,
        incumbent: &Mapping,
        scenario: FaultScenario,
        budget: u64,
        seed: u64,
    ) -> crate::robustness::RemapReport {
        crate::robustness::remap_after_faults(
            self.cdcg,
            &self.tech,
            self.params,
            &self.routes,
            scenario.generate(&self.mesh),
            incumbent,
            budget,
            seed,
        )
    }

    /// Runs one strategy under one search method and returns the best
    /// mapping found.
    pub fn explore(&self, strategy: Strategy, method: SearchMethod) -> SearchOutcome {
        self.explore_with_telemetry(strategy, method).outcome
    }

    /// [`Explorer::explore`], additionally returning the search
    /// subsystem's telemetry (per-round budget allocations, basin
    /// survivals, and the best-so-far curve; engines without native
    /// telemetry report a single final point).
    pub fn explore_with_telemetry(&self, strategy: Strategy, method: SearchMethod) -> SearchRun {
        self.explore_with_telemetry_cancellable(strategy, method, &CancelToken::new())
    }

    /// [`Explorer::explore_with_telemetry`] under a cooperative
    /// cancellation token: tripping the token stops the search engine at
    /// its next checkpoint (epoch, round, generation, or iteration
    /// boundary), returning the verified best mapping found so far. An
    /// untripped token changes nothing — the trajectory is bit-identical
    /// to the uncancellable call.
    pub fn explore_with_telemetry_cancellable(
        &self,
        strategy: Strategy,
        method: SearchMethod,
        cancel: &CancelToken,
    ) -> SearchRun {
        let cores = self.cdcg.core_count();
        match strategy {
            Strategy::Cwm => {
                let objective = CwmObjective::with_provider(
                    &self.cwg,
                    &self.mesh,
                    &self.tech,
                    Arc::clone(&self.routes),
                );
                run_method(&objective, &self.mesh, cores, method, cancel)
            }
            Strategy::Cdcm => {
                let objective = CdcmObjective::with_provider(
                    self.cdcg,
                    &self.tech,
                    self.params,
                    Arc::clone(&self.routes),
                );
                let run = run_method(&objective, &self.mesh, cores, method, cancel);
                // The objective (and its delta-evaluator counters) is
                // dropped when this frame returns; surface the counters
                // as a trace event so observers see them. Pure read —
                // the outcome is already fixed.
                noc_obs::emit_with(|| {
                    let stats = objective.delta_stats();
                    let mut event = noc_obs::TraceEvent::new("delta_stats");
                    event.label = run.outcome.method.clone();
                    event.evaluations = run.outcome.evaluations;
                    event.counters = vec![
                        ("incremental_moves", stats.incremental_moves),
                        ("route_unchanged_moves", stats.route_unchanged_moves),
                        ("full_restores", stats.full_restores),
                        ("tail_converged_moves", stats.tail_converged_moves),
                        ("full_rebaselines", stats.full_rebaselines),
                        ("full_path_moves", stats.full_path_moves),
                        ("tape_refreshes", stats.tape_refreshes),
                        ("cache_hits", stats.cache_hits),
                        ("events_replayed", stats.events_replayed),
                        ("events_total", stats.events_total),
                    ];
                    event
                });
                // Same treatment for the batch engine's counters, when
                // a batching strategy (GA generations, the portfolio)
                // drove evaluations through it.
                if let Some((batch, memo)) = objective.batch_stats() {
                    noc_obs::emit_with(|| {
                        let mut event = noc_obs::TraceEvent::new("batch_stats");
                        event.label = run.outcome.method.clone();
                        event.counters = vec![
                            ("batches", batch.batches),
                            ("candidates", batch.candidates),
                            ("max_batch", batch.max_batch),
                        ];
                        for (name, &n) in noc_sim::obs::BATCH_SIZE_BUCKET_NAMES
                            .iter()
                            .zip(&batch.size_log2)
                        {
                            if n > 0 {
                                event.counters.push((*name, n));
                            }
                        }
                        if let Some(memo) = memo {
                            event.counters.extend([
                                ("memo_hits", memo.hits),
                                ("memo_misses", memo.misses),
                                ("memo_evictions", memo.evictions),
                            ]);
                        }
                        event
                    });
                }
                run
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::TileId;

    fn figure1_cdcg() -> Cdcg {
        let mut g = Cdcg::new();
        let a = g.add_core("A");
        let b = g.add_core("B");
        let e = g.add_core("E");
        let f = g.add_core("F");
        let pab1 = g.add_packet(a, b, 6, 15).unwrap();
        let pbf1 = g.add_packet(b, f, 10, 40).unwrap();
        let pea1 = g.add_packet(e, a, 10, 20).unwrap();
        let pea2 = g.add_packet(e, a, 20, 15).unwrap();
        let paf1 = g.add_packet(a, f, 6, 15).unwrap();
        let pfb1 = g.add_packet(f, b, 6, 15).unwrap();
        g.add_dependence(pea1, pea2).unwrap();
        g.add_dependence(pab1, paf1).unwrap();
        g.add_dependence(pea1, paf1).unwrap();
        g.add_dependence(pbf1, pfb1).unwrap();
        g.add_dependence(paf1, pfb1).unwrap();
        g
    }

    #[test]
    fn cdcm_exhaustive_beats_or_ties_cwm_best_in_total_energy() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let explorer = Explorer::new(
            &cdcg,
            mesh,
            Technology::paper_example(),
            SimParams::paper_example(),
        );
        let cwm = explorer.explore(Strategy::Cwm, SearchMethod::Exhaustive);
        let cdcm = explorer.explore(Strategy::Cdcm, SearchMethod::Exhaustive);
        // Evaluate CWM's winner under the true (Eq. 10) objective: CDCM's
        // winner can never be worse.
        let true_cost_of_cwm_pick = noc_energy::evaluate_cdcm(
            &cdcg,
            explorer.mesh(),
            &cwm.mapping,
            explorer.technology(),
            explorer.params(),
        )
        .unwrap()
        .objective_pj();
        assert!(cdcm.cost <= true_cost_of_cwm_pick + 1e-9);
    }

    #[test]
    fn strategies_report_their_labels() {
        assert_eq!(Strategy::Cwm.label(), "CWM");
        assert_eq!(Strategy::Cdcm.label(), "CDCM");
    }

    #[test]
    fn all_methods_produce_valid_mappings() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let explorer = Explorer::new(
            &cdcg,
            mesh,
            Technology::paper_example(),
            SimParams::paper_example(),
        );
        let methods = [
            SearchMethod::SimulatedAnnealing(SaConfig::quick(3)),
            SearchMethod::MultiStartSa {
                config: SaConfig::quick(3),
                restarts: 3,
                budget: RestartBudget::Total,
            },
            SearchMethod::Exhaustive,
            SearchMethod::Random {
                samples: 30,
                seed: 3,
            },
            SearchMethod::Greedy {
                restarts: 2,
                seed: 3,
            },
        ];
        for method in methods {
            for strategy in [Strategy::Cwm, Strategy::Cdcm] {
                let outcome = explorer.explore(strategy, method);
                outcome.mapping.validate().unwrap();
                assert!(outcome.cost.is_finite());
                assert!(outcome.evaluations > 0);
            }
        }
    }

    #[test]
    fn routed_explorer_evaluates_under_its_routing() {
        use noc_model::YxRouting;
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let explorer = Explorer::with_routing(
            &cdcg,
            mesh,
            Technology::paper_example(),
            SimParams::paper_example(),
            &YxRouting,
        );
        assert_eq!(explorer.route_provider().routing_name(), "YX");
        let outcome = explorer.explore(Strategy::Cdcm, SearchMethod::Exhaustive);
        // The reported cost is the YX evaluation of the winner, not XY.
        let want = noc_energy::total::evaluate_cdcm_with(
            &cdcg,
            explorer.mesh(),
            &outcome.mapping,
            explorer.technology(),
            explorer.params(),
            &YxRouting,
        )
        .unwrap()
        .objective_pj();
        assert_eq!(outcome.cost, want);
    }

    #[test]
    fn explorer_exposes_instance_parts() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let explorer = Explorer::new(
            &cdcg,
            mesh,
            Technology::paper_example(),
            SimParams::paper_example(),
        );
        assert_eq!(explorer.cdcg().packet_count(), 6);
        assert_eq!(explorer.cwg().communication_count(), 5);
        assert_eq!(explorer.mesh().tile_count(), 4);
        // Figure 1 check: the collapsed E→A volume is 35.
        let e = explorer.cwg().core_by_name("E").unwrap();
        let a = explorer.cwg().core_by_name("A").unwrap();
        assert_eq!(explorer.cwg().volume(e, a), Some(35));
        let _ = TileId::new(0);
    }
}
