//! Greedy steepest-descent baseline with random restarts.
//!
//! From a random start, repeatedly applies the best improving tile swap
//! until a local optimum; restarts keep the engine honest on rugged
//! landscapes. This sits between random search and SA in power and is
//! used by the ablation benches.

use crate::objective::CostFunction;
use crate::random_search::sample_mapping;
use crate::result::SearchOutcome;
use noc_model::{Mapping, Mesh, TileId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Steepest-descent local search with `restarts` random starting points.
///
/// # Panics
///
/// Panics if `core_count` exceeds the tile count of `mesh` or if
/// `restarts` is zero.
pub fn greedy<C: CostFunction + ?Sized>(
    objective: &C,
    mesh: &Mesh,
    core_count: usize,
    restarts: u32,
    seed: u64,
) -> SearchOutcome {
    assert!(restarts > 0, "at least one restart is required");
    let start = noc_search::wall_clock();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut evaluations = 0u64;
    let mut best: Option<(Mapping, f64)> = None;

    for _ in 0..restarts {
        let mut current = sample_mapping(mesh, core_count, &mut rng);
        let mut current_cost = objective.cost(&current);
        evaluations += 1;
        loop {
            // Find the best improving swap over all tile pairs.
            let n = mesh.tile_count();
            let mut best_move: Option<(TileId, TileId, f64)> = None;
            for a in 0..n {
                for b in (a + 1)..n {
                    let (ta, tb) = (TileId::new(a), TileId::new(b));
                    current.swap_tiles(ta, tb);
                    let cost = objective.cost(&current);
                    evaluations += 1;
                    current.swap_tiles(ta, tb);
                    if cost < current_cost - 1e-12 && best_move.is_none_or(|(_, _, c)| cost < c) {
                        best_move = Some((ta, tb, cost));
                    }
                }
            }
            match best_move {
                Some((ta, tb, cost)) => {
                    current.swap_tiles(ta, tb);
                    current_cost = cost;
                }
                None => break, // local optimum
            }
        }
        if best.as_ref().is_none_or(|(_, c)| current_cost < *c) {
            best = Some((current, current_cost));
        }
    }

    let (mapping, cost) = best.expect("restarts > 0");
    SearchOutcome {
        mapping,
        cost,
        evaluations,
        elapsed: start.elapsed(),
        method: "greedy".to_owned(),
        objective: objective.name(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive;
    use crate::objective::CwmObjective;
    use noc_energy::Technology;
    use noc_model::Cwg;

    fn instance() -> (Cwg, Mesh, Technology) {
        let mut cwg = Cwg::new();
        let a = cwg.add_core("A");
        let b = cwg.add_core("B");
        let c = cwg.add_core("C");
        let d = cwg.add_core("D");
        cwg.add_communication(a, b, 80).unwrap();
        cwg.add_communication(b, c, 40).unwrap();
        cwg.add_communication(c, d, 20).unwrap();
        cwg.add_communication(d, a, 10).unwrap();
        (cwg, Mesh::new(2, 2).unwrap(), Technology::paper_example())
    }

    #[test]
    fn reaches_a_local_optimum_no_single_swap_improves() {
        let (cwg, mesh, tech) = instance();
        let obj = CwmObjective::new(&cwg, &mesh, &tech);
        let outcome = greedy(&obj, &mesh, 4, 1, 5);
        let n = mesh.tile_count();
        let mut m = outcome.mapping.clone();
        for a in 0..n {
            for b in (a + 1)..n {
                m.swap_tiles(TileId::new(a), TileId::new(b));
                assert!(obj.cost(&m) >= outcome.cost - 1e-9);
                m.swap_tiles(TileId::new(a), TileId::new(b));
            }
        }
    }

    #[test]
    fn restarts_find_global_optimum_on_tiny_instance() {
        let (cwg, mesh, tech) = instance();
        let obj = CwmObjective::new(&cwg, &mesh, &tech);
        let optimum = exhaustive(&obj, &mesh, 4);
        let outcome = greedy(&obj, &mesh, 4, 8, 1);
        assert_eq!(outcome.cost, optimum.cost);
    }

    #[test]
    fn deterministic_per_seed() {
        let (cwg, mesh, tech) = instance();
        let obj = CwmObjective::new(&cwg, &mesh, &tech);
        let x = greedy(&obj, &mesh, 4, 2, 77);
        let y = greedy(&obj, &mesh, 4, 2, 77);
        assert_eq!(x.mapping, y.mapping);
        assert_eq!(x.evaluations, y.evaluations);
    }
}
