//! Constructive placement baseline (largest-communicator-first).
//!
//! A deterministic, search-free mapper in the spirit of the constructive
//! heuristics the paper's related work builds on (Hu & Marculescu's
//! energy-aware mapping): repeatedly take the unplaced core with the
//! largest communication volume to the already-placed set (falling back
//! to total volume for the first pick), and put it on the free tile that
//! minimizes the hop-weighted communication cost to its placed partners.
//!
//! It is fast (`O(k² · n)` for `k` cores on `n` tiles), surprisingly
//! strong on communication-dominated graphs, and a useful SA seed or
//! sanity baseline.

use crate::objective::CostFunction;
use crate::result::SearchOutcome;
use noc_model::{CoreId, Cwg, Mapping, Mesh, TileId};

/// Builds a mapping for `cwg` on `mesh` with the greedy constructive
/// heuristic. Deterministic: ties break towards lower ids.
///
/// # Panics
///
/// Panics if the CWG has more cores than the mesh has tiles.
pub fn constructive_mapping(cwg: &Cwg, mesh: &Mesh) -> Mapping {
    let k = cwg.core_count();
    let n = mesh.tile_count();
    assert!(k <= n, "{k} cores cannot fit {n} tiles");

    // Symmetric communication volumes between core pairs.
    let volume = |a: CoreId, b: CoreId| -> u64 {
        cwg.volume(a, b).unwrap_or(0) + cwg.volume(b, a).unwrap_or(0)
    };
    let total_volume = |c: CoreId| -> u64 {
        cwg.cores()
            .map(|o| if o == c { 0 } else { volume(c, o) })
            .sum()
    };

    let mut placed: Vec<(CoreId, TileId)> = Vec::with_capacity(k);
    let mut free_tiles: Vec<TileId> = mesh.tiles().collect();
    let mut unplaced: Vec<CoreId> = cwg.cores().collect();

    // Seed: the heaviest communicator goes to the most central tile.
    let center = {
        let cx = (mesh.width() - 1) as f64 / 2.0;
        let cy = (mesh.height() - 1) as f64 / 2.0;
        *free_tiles
            .iter()
            .min_by(|&&a, &&b| {
                let da = {
                    let c = mesh.coord(a);
                    (c.x as f64 - cx).abs() + (c.y as f64 - cy).abs()
                };
                let db = {
                    let c = mesh.coord(b);
                    (c.x as f64 - cx).abs() + (c.y as f64 - cy).abs()
                };
                da.total_cmp(&db).then(a.cmp(&b))
            })
            .expect("mesh has tiles")
    };
    if let Some(first) = unplaced
        .iter()
        .copied()
        .max_by_key(|&c| (total_volume(c), std::cmp::Reverse(c)))
    {
        placed.push((first, center));
        unplaced.retain(|&c| c != first);
        free_tiles.retain(|&t| t != center);
    }

    while let Some(next) = unplaced.iter().copied().max_by_key(|&c| {
        let attached: u64 = placed.iter().map(|&(p, _)| volume(c, p)).sum();
        (attached, total_volume(c), std::cmp::Reverse(c))
    }) {
        // Best free tile: minimize hop-weighted volume to placed partners.
        let best_tile = free_tiles
            .iter()
            .copied()
            .min_by_key(|&t| {
                let cost: u64 = placed
                    .iter()
                    .map(|&(p, pt)| volume(next, p) * mesh.manhattan(t, pt) as u64)
                    .sum();
                (cost, t)
            })
            .expect("k <= n leaves a free tile");
        placed.push((next, best_tile));
        unplaced.retain(|&c| c != next);
        free_tiles.retain(|&t| t != best_tile);
    }

    placed.sort_by_key(|&(c, _)| c);
    Mapping::from_tiles(mesh, placed.into_iter().map(|(_, t)| t))
        .expect("construction is injective")
}

/// Runs the constructive heuristic and scores it with `objective`,
/// returning a [`SearchOutcome`] comparable with the search engines.
///
/// # Panics
///
/// Panics if the CWG has more cores than the mesh has tiles.
pub fn constructive<C: CostFunction + ?Sized>(
    objective: &C,
    cwg: &Cwg,
    mesh: &Mesh,
) -> SearchOutcome {
    let start = noc_search::wall_clock();
    let mapping = constructive_mapping(cwg, mesh);
    let cost = objective.cost(&mapping);
    SearchOutcome {
        mapping,
        cost,
        evaluations: 1,
        elapsed: start.elapsed(),
        method: "constructive".to_owned(),
        objective: objective.name(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive;
    use crate::objective::CwmObjective;
    use crate::random_search::random_search;
    use noc_energy::Technology;

    fn star_graph() -> Cwg {
        // A hub talking to four spokes: the hub must sit centrally.
        let mut cwg = Cwg::new();
        let hub = cwg.add_core("hub");
        for i in 0..4 {
            let spoke = cwg.add_core(format!("s{i}"));
            cwg.add_communication(hub, spoke, 100).unwrap();
        }
        cwg
    }

    #[test]
    fn hub_lands_centrally_on_a_3x3() {
        let cwg = star_graph();
        let mesh = Mesh::new(3, 3).unwrap();
        let mapping = constructive_mapping(&cwg, &mesh);
        mapping.validate().unwrap();
        let hub_tile = mapping.tile_of(CoreId::new(0));
        assert_eq!(mesh.coord(hub_tile), noc_model::Coord::new(1, 1));
        // Every spoke is adjacent to the hub.
        for i in 1..5 {
            assert_eq!(mesh.manhattan(hub_tile, mapping.tile_of(CoreId::new(i))), 1);
        }
    }

    #[test]
    fn optimal_on_the_star() {
        let cwg = star_graph();
        let mesh = Mesh::new(3, 3).unwrap();
        let tech = Technology::paper_example();
        let obj = CwmObjective::new(&cwg, &mesh, &tech);
        let built = constructive(&obj, &cwg, &mesh);
        let optimum = exhaustive(&obj, &mesh, 5);
        assert_eq!(built.cost, optimum.cost);
        assert_eq!(built.evaluations, 1);
    }

    #[test]
    fn beats_average_random_mapping_on_figure1() {
        let cdcg = {
            let mut g = noc_model::Cdcg::new();
            let a = g.add_core("A");
            let b = g.add_core("B");
            let e = g.add_core("E");
            let f = g.add_core("F");
            g.add_packet(a, b, 6, 15).unwrap();
            g.add_packet(b, f, 10, 40).unwrap();
            g.add_packet(e, a, 10, 20).unwrap();
            g.add_packet(e, a, 20, 15).unwrap();
            g.add_packet(a, f, 6, 15).unwrap();
            g.add_packet(f, b, 6, 15).unwrap();
            g
        };
        let cwg = cdcg.to_cwg();
        let mesh = Mesh::new(2, 2).unwrap();
        let tech = Technology::paper_example();
        let obj = CwmObjective::new(&cwg, &mesh, &tech);
        let built = constructive(&obj, &cwg, &mesh);
        // A single random draw is allowed to tie, never to beat it here.
        let rnd = random_search(&obj, &mesh, 4, 1, 5);
        assert!(built.cost <= rnd.cost + 1e-9);
        // And it must land on the exhaustive optimum for this tiny case.
        let optimum = exhaustive(&obj, &mesh, 4);
        assert_eq!(built.cost, optimum.cost);
    }

    #[test]
    fn deterministic() {
        let cwg = star_graph();
        let mesh = Mesh::new(4, 2).unwrap();
        assert_eq!(
            constructive_mapping(&cwg, &mesh),
            constructive_mapping(&cwg, &mesh)
        );
    }

    #[test]
    fn handles_disconnected_cores() {
        let mut cwg = Cwg::new();
        cwg.add_core("lonely0");
        cwg.add_core("lonely1");
        let a = cwg.add_core("a");
        let b = cwg.add_core("b");
        cwg.add_communication(a, b, 5).unwrap();
        let mesh = Mesh::new(2, 2).unwrap();
        let mapping = constructive_mapping(&cwg, &mesh);
        mapping.validate().unwrap();
        assert_eq!(mapping.core_count(), 4);
        // The communicating pair is adjacent.
        assert_eq!(mesh.manhattan(mapping.tile_of(a), mapping.tile_of(b)), 1);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn too_many_cores_panics() {
        let mut cwg = Cwg::new();
        for i in 0..5 {
            cwg.add_core(format!("c{i}"));
        }
        let _ = constructive_mapping(&cwg, &Mesh::new(2, 2).unwrap());
    }
}
