//! Simulated annealing — the search method of the paper's FRW framework.
//!
//! The engine now lives in [`noc_search::sa`] (the search subsystem);
//! this module re-exports it so existing call sites — and the paper-
//! anchored tests below, which exercise it against the real CWM/CDCM
//! objectives — keep working unchanged.

pub use noc_search::sa::{
    anneal, anneal_cancellable, anneal_delta, anneal_delta_cancellable, anneal_multistart,
    anneal_multistart_budgeted, anneal_multistart_delta, anneal_multistart_delta_budgeted,
    anneal_multistart_delta_cancellable, propose_swap, random_mapping, MultiStartSa, RestartBudget,
    SaConfig,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{CdcmObjective, CostFunction, CwmObjective};
    use noc_energy::Technology;
    use noc_model::{Cdcg, Mesh, TileId};
    use noc_sim::SimParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn figure1_cdcg() -> Cdcg {
        let mut g = Cdcg::new();
        let a = g.add_core("A");
        let b = g.add_core("B");
        let e = g.add_core("E");
        let f = g.add_core("F");
        let pab1 = g.add_packet(a, b, 6, 15).unwrap();
        let pbf1 = g.add_packet(b, f, 10, 40).unwrap();
        let pea1 = g.add_packet(e, a, 10, 20).unwrap();
        let pea2 = g.add_packet(e, a, 20, 15).unwrap();
        let paf1 = g.add_packet(a, f, 6, 15).unwrap();
        let pfb1 = g.add_packet(f, b, 6, 15).unwrap();
        g.add_dependence(pea1, pea2).unwrap();
        g.add_dependence(pab1, paf1).unwrap();
        g.add_dependence(pea1, paf1).unwrap();
        g.add_dependence(pbf1, pfb1).unwrap();
        g.add_dependence(paf1, pfb1).unwrap();
        g
    }

    #[test]
    fn finds_the_cwm_optimum_on_2x2() {
        let cdcg = figure1_cdcg();
        let cwg = cdcg.to_cwg();
        let mesh = Mesh::new(2, 2).unwrap();
        let tech = Technology::paper_example();
        let obj = CwmObjective::new(&cwg, &mesh, &tech);
        let outcome = anneal(&obj, &mesh, 4, &SaConfig::quick(42));
        // The exhaustive optimum on this instance is 330 pJ (all pairs
        // adjacent is impossible; best clusters hot pairs).
        assert!(
            outcome.cost <= 390.0,
            "SA should at least match the paper mapping"
        );
        assert_eq!(outcome.objective, "CWM");
        outcome.mapping.validate().unwrap();
    }

    #[test]
    fn finds_low_energy_cdcm_mapping_on_2x2() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(2, 2).unwrap();
        let tech = Technology::paper_example();
        let obj = CdcmObjective::new(&cdcg, &mesh, &tech, SimParams::paper_example());
        let outcome = anneal(&obj, &mesh, 4, &SaConfig::quick(42));
        // 399 pJ is achievable (Figure 3(b)); SA must not do worse than
        // the paper's better mapping on such a tiny space.
        assert!(outcome.cost <= 399.0, "got {}", outcome.cost);
    }

    #[test]
    fn is_deterministic_for_a_seed() {
        let cdcg = figure1_cdcg();
        let cwg = cdcg.to_cwg();
        let mesh = Mesh::new(3, 3).unwrap();
        let tech = Technology::paper_example();
        let obj = CwmObjective::new(&cwg, &mesh, &tech);
        let a = anneal(&obj, &mesh, 4, &SaConfig::quick(7));
        let b = anneal(&obj, &mesh, 4, &SaConfig::quick(7));
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn different_seeds_may_explore_differently() {
        let cdcg = figure1_cdcg();
        let cwg = cdcg.to_cwg();
        let mesh = Mesh::new(3, 3).unwrap();
        let tech = Technology::paper_example();
        let obj = CwmObjective::new(&cwg, &mesh, &tech);
        let outcomes: Vec<f64> = (0..4)
            .map(|s| anneal(&obj, &mesh, 4, &SaConfig::quick(s)).cost)
            .collect();
        // All seeds land on valid costs; they need not be equal, but all
        // must beat a pessimal placement.
        for c in outcomes {
            assert!(c > 0.0 && c.is_finite());
        }
    }

    #[test]
    fn delta_annealing_agrees_with_full_annealing_quality() {
        let cdcg = figure1_cdcg();
        let cwg = cdcg.to_cwg();
        let mesh = Mesh::new(3, 3).unwrap();
        let tech = Technology::paper_example();
        let obj = CwmObjective::new(&cwg, &mesh, &tech);
        let full = anneal(&obj, &mesh, 4, &SaConfig::quick(11));
        let delta = anneal_delta(&obj, &mesh, 4, &SaConfig::quick(11));
        // Both must land within the same optimum basin on this tiny case.
        assert!((full.cost - delta.cost).abs() / full.cost < 0.15);
        // And the delta variant's reported cost must be a true cost.
        let check = obj.cost(&delta.mapping);
        assert!((check - delta.cost).abs() < 1e-9);
    }

    #[test]
    fn respects_evaluation_budget() {
        let cdcg = figure1_cdcg();
        let cwg = cdcg.to_cwg();
        let mesh = Mesh::new(4, 4).unwrap();
        let tech = Technology::paper_example();
        let obj = CwmObjective::new(&cwg, &mesh, &tech);
        let mut config = SaConfig::quick(1);
        config.max_evaluations = 100;
        let outcome = anneal(&obj, &mesh, 4, &config);
        assert!(outcome.evaluations <= 100);
    }

    #[test]
    fn propose_swap_on_single_tile_mesh_is_a_noop_not_a_panic() {
        // Regression test: `gen_range(0..0)` used to panic for n == 1.
        let mesh = Mesh::new(1, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let (a, b) = propose_swap(&mesh, &mut rng);
        assert_eq!(a, b);
        assert_eq!(a, TileId::new(0));
        // And a full annealing run on the degenerate instance terminates.
        let mut g = Cdcg::new();
        g.add_core("only");
        let cdcg = g;
        let tech = Technology::paper_example();
        let obj = CdcmObjective::new(&cdcg, &mesh, &tech, SimParams::paper_example());
        let outcome = anneal(&obj, &mesh, 1, &SaConfig::quick(3));
        assert!(outcome.cost.is_finite());
        outcome.mapping.validate().unwrap();
    }

    #[test]
    fn multistart_is_deterministic_and_at_least_as_good() {
        let cdcg = figure1_cdcg();
        let mesh = Mesh::new(3, 3).unwrap();
        let tech = Technology::paper_example();
        let obj = CdcmObjective::new(&cdcg, &mesh, &tech, SimParams::paper_example());
        let config = SaConfig::quick(17);
        let a = anneal_multistart(&obj, &mesh, 4, &config, 4);
        let b = anneal_multistart(&obj, &mesh, 4, &config, 4);
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.evaluations, b.evaluations);
        // The best of 4 restarts can never lose to restart 0 alone.
        let single = anneal(&obj, &mesh, 4, &config);
        assert!(a.cost <= single.cost);
        assert!(a.evaluations >= single.evaluations);
        assert!(a.method.contains("multistart"));
    }

    #[test]
    fn multistart_with_one_restart_matches_single_anneal() {
        let cdcg = figure1_cdcg();
        let cwg = cdcg.to_cwg();
        let mesh = Mesh::new(3, 3).unwrap();
        let tech = Technology::paper_example();
        let obj = CwmObjective::new(&cwg, &mesh, &tech);
        let config = SaConfig::quick(23);
        let single = anneal(&obj, &mesh, 4, &config);
        let multi = anneal_multistart(&obj, &mesh, 4, &config, 1);
        assert_eq!(single.mapping, multi.mapping);
        assert_eq!(single.cost, multi.cost);
        assert_eq!(single.evaluations, multi.evaluations);
    }

    #[test]
    fn multistart_delta_agrees_with_its_runs() {
        let cdcg = figure1_cdcg();
        let cwg = cdcg.to_cwg();
        let mesh = Mesh::new(3, 3).unwrap();
        let tech = Technology::paper_example();
        let obj = CwmObjective::new(&cwg, &mesh, &tech);
        let config = SaConfig::quick(29);
        let multi = anneal_multistart_delta(&obj, &mesh, 4, &config, 3);
        // The reduction must reproduce the best of the three underlying
        // runs exactly.
        let best = (0..3u64)
            .map(|i| {
                let cfg = SaConfig {
                    seed: config.seed.wrapping_add(i),
                    ..config
                };
                anneal_delta(&obj, &mesh, 4, &cfg)
            })
            .min_by(|a, b| a.cost.total_cmp(&b.cost))
            .unwrap();
        assert_eq!(multi.cost, best.cost);
        assert_eq!(multi.mapping, best.mapping);
    }

    #[test]
    fn total_budget_mode_pins_the_evaluation_count() {
        // Regression: per-restart mode spends `restarts ×` the budget of a
        // single run; total mode spends exactly the budget (including an
        // uneven remainder split).
        let cdcg = figure1_cdcg();
        let cwg = cdcg.to_cwg();
        let mesh = Mesh::new(3, 3).unwrap();
        let tech = Technology::paper_example();
        let obj = CwmObjective::new(&cwg, &mesh, &tech);
        let mut config = SaConfig::quick(13);
        config.max_evaluations = 42;
        let restarts = 4;

        let single = anneal(&obj, &mesh, 4, &config);
        assert_eq!(single.evaluations, 42, "budget must bind on this instance");

        let per = anneal_multistart(&obj, &mesh, 4, &config, restarts);
        assert_eq!(per.evaluations, 42 * restarts as u64);

        let total =
            anneal_multistart_budgeted(&obj, &mesh, 4, &config, restarts, RestartBudget::Total);
        // 42 over 4 restarts: budgets 11, 11, 10, 10 — exactly 42 total.
        assert_eq!(total.evaluations, 42);

        // The delta path — the one the explorer and CLI route through —
        // must respect the same bound: calibration is budget-capped and
        // the per-epoch resync never bills past the budget.
        let delta_single = anneal_delta(&obj, &mesh, 4, &config);
        assert_eq!(delta_single.evaluations, 42);
        let delta_total = anneal_multistart_delta_budgeted(
            &obj,
            &mesh,
            4,
            &config,
            restarts,
            RestartBudget::Total,
        );
        assert_eq!(delta_total.evaluations, 42);

        // Determinism is preserved in total mode.
        let again =
            anneal_multistart_budgeted(&obj, &mesh, 4, &config, restarts, RestartBudget::Total);
        assert_eq!(total.mapping, again.mapping);
        assert_eq!(total.cost, again.cost);
    }

    #[test]
    fn total_budget_with_more_restarts_than_evaluations_clamps() {
        // Regression: `RestartBudget::Total` with `restarts > budget`
        // used to split the budget as 1,…,1,0,…,0 — and every
        // zero-budget restart still billed its (unbudgeted) initial
        // evaluation and reported a random mapping's cost, so the run
        // both exceeded the configured total and diluted the reduction
        // with never-optimized mappings. The restart count must clamp
        // to the budget.
        let cdcg = figure1_cdcg();
        let cwg = cdcg.to_cwg();
        let mesh = Mesh::new(3, 3).unwrap();
        let tech = Technology::paper_example();
        let obj = CwmObjective::new(&cwg, &mesh, &tech);
        let mut config = SaConfig::quick(19);
        config.max_evaluations = 5;
        for restarts in [6, 9, 100] {
            let outcome =
                anneal_multistart_budgeted(&obj, &mesh, 4, &config, restarts, RestartBudget::Total);
            // Clamped to 5 restarts of exactly 1 evaluation each.
            assert_eq!(outcome.evaluations, 5, "restarts = {restarts}");
            assert!(
                outcome.method.contains("multistart[5]"),
                "restarts = {restarts}: {}",
                outcome.method
            );
            let delta = anneal_multistart_delta_budgeted(
                &obj,
                &mesh,
                4,
                &config,
                restarts,
                RestartBudget::Total,
            );
            assert_eq!(delta.evaluations, 5, "delta, restarts = {restarts}");
        }
        // An exact split (restarts == budget) is left alone.
        let exact = anneal_multistart_budgeted(&obj, &mesh, 4, &config, 5, RestartBudget::Total);
        assert_eq!(exact.evaluations, 5);
        assert!(exact.method.contains("multistart[5]"));
    }

    #[test]
    fn random_mapping_is_injective() {
        let mesh = Mesh::new(5, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let m = random_mapping(&mesh, 12, &mut rng);
            m.validate().unwrap();
            assert_eq!(m.core_count(), 12);
        }
    }

    #[test]
    fn proposed_swaps_are_distinct_tiles() {
        let mesh = Mesh::new(2, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let (a, b) = propose_swap(&mesh, &mut rng);
            assert_ne!(a, b);
            assert!(mesh.contains(a) && mesh.contains(b));
        }
    }
}
