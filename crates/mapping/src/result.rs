//! Shared search-outcome type, re-exported from the search subsystem.

pub use noc_search::SearchOutcome;

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::{Mapping, Mesh};
    use std::time::Duration;

    #[test]
    fn throughput_handles_zero_time() {
        let mesh = Mesh::new(2, 2).unwrap();
        let outcome = SearchOutcome {
            mapping: Mapping::identity(&mesh, 2).unwrap(),
            cost: 1.0,
            evaluations: 10,
            elapsed: Duration::ZERO,
            method: "test".into(),
            objective: "CWM".into(),
        };
        assert_eq!(outcome.throughput(), 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let mesh = Mesh::new(2, 2).unwrap();
        let outcome = SearchOutcome {
            mapping: Mapping::identity(&mesh, 3).unwrap(),
            cost: 42.0,
            evaluations: 7,
            elapsed: Duration::from_millis(1500),
            method: "SA".into(),
            objective: "CDCM".into(),
        };
        let json = serde_json::to_string(&outcome).unwrap();
        let back: SearchOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back.cost, 42.0);
        assert_eq!(back.elapsed, Duration::from_millis(1500));
    }
}
