//! Random-sampling baseline.
//!
//! Hu & Marculescu's observation (cited in the paper's related work) is
//! that informed mapping beats *random* placements by large margins; this
//! engine provides that reference point, and doubles as a sanity check
//! for the annealer (SA must never lose to random sampling at equal
//! evaluation budgets on average).

use crate::objective::CostFunction;
use crate::result::SearchOutcome;
use noc_model::{Mapping, Mesh, TileId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Draws `samples` uniform random mappings and keeps the best.
///
/// # Panics
///
/// Panics if `core_count` exceeds the tile count of `mesh` or if
/// `samples` is zero.
pub fn random_search<C: CostFunction + ?Sized>(
    objective: &C,
    mesh: &Mesh,
    core_count: usize,
    samples: u64,
    seed: u64,
) -> SearchOutcome {
    assert!(samples > 0, "at least one sample is required");
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best: Option<(Mapping, f64)> = None;
    for _ in 0..samples {
        let mapping = sample_mapping(mesh, core_count, &mut rng);
        let cost = objective.cost(&mapping);
        if best.as_ref().is_none_or(|(_, c)| cost < *c) {
            best = Some((mapping, cost));
        }
    }
    let (mapping, cost) = best.expect("samples > 0");
    SearchOutcome {
        mapping,
        cost,
        evaluations: samples,
        elapsed: start.elapsed(),
        method: "random".to_owned(),
        objective: objective.name(),
    }
}

/// One uniform random injective mapping.
pub fn sample_mapping(mesh: &Mesh, core_count: usize, rng: &mut StdRng) -> Mapping {
    let mut tiles: Vec<TileId> = mesh.tiles().collect();
    for i in (1..tiles.len()).rev() {
        let j = rng.gen_range(0..=i);
        tiles.swap(i, j);
    }
    Mapping::from_tiles(mesh, tiles.into_iter().take(core_count))
        .expect("shuffled prefix is injective")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive;
    use crate::objective::CwmObjective;
    use noc_energy::Technology;
    use noc_model::Cwg;

    fn small_instance() -> (Cwg, Mesh, Technology) {
        let mut cwg = Cwg::new();
        let a = cwg.add_core("A");
        let b = cwg.add_core("B");
        let c = cwg.add_core("C");
        cwg.add_communication(a, b, 50).unwrap();
        cwg.add_communication(b, c, 30).unwrap();
        cwg.add_communication(a, c, 10).unwrap();
        (cwg, Mesh::new(2, 2).unwrap(), Technology::paper_example())
    }

    #[test]
    fn never_beats_exhaustive() {
        let (cwg, mesh, tech) = small_instance();
        let obj = CwmObjective::new(&cwg, &mesh, &tech);
        let optimum = exhaustive(&obj, &mesh, 3);
        for seed in 0..5 {
            let rnd = random_search(&obj, &mesh, 3, 50, seed);
            assert!(rnd.cost >= optimum.cost - 1e-9);
        }
    }

    #[test]
    fn enough_samples_find_the_optimum_on_tiny_spaces() {
        let (cwg, mesh, tech) = small_instance();
        let obj = CwmObjective::new(&cwg, &mesh, &tech);
        let optimum = exhaustive(&obj, &mesh, 3);
        // 24 placements only; 500 samples all but surely hit the optimum.
        let rnd = random_search(&obj, &mesh, 3, 500, 123);
        assert_eq!(rnd.cost, optimum.cost);
    }

    #[test]
    fn deterministic_per_seed() {
        let (cwg, mesh, tech) = small_instance();
        let obj = CwmObjective::new(&cwg, &mesh, &tech);
        let a = random_search(&obj, &mesh, 3, 20, 9);
        let b = random_search(&obj, &mesh, 3, 20, 9);
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_panics() {
        let (cwg, mesh, tech) = small_instance();
        let obj = CwmObjective::new(&cwg, &mesh, &tech);
        let _ = random_search(&obj, &mesh, 3, 0, 0);
    }
}
