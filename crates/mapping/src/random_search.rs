//! Random-sampling baseline.
//!
//! The engine now lives in [`noc_search::random`] (the search
//! subsystem); this module re-exports it so existing call sites — and
//! the tests below, which exercise it against the real objectives —
//! keep working unchanged.

pub use noc_search::random::{random_search, sample_mapping};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive;
    use crate::objective::CwmObjective;
    use noc_energy::Technology;
    use noc_model::{Cwg, Mesh};

    fn small_instance() -> (Cwg, Mesh, Technology) {
        let mut cwg = Cwg::new();
        let a = cwg.add_core("A");
        let b = cwg.add_core("B");
        let c = cwg.add_core("C");
        cwg.add_communication(a, b, 50).unwrap();
        cwg.add_communication(b, c, 30).unwrap();
        cwg.add_communication(a, c, 10).unwrap();
        (cwg, Mesh::new(2, 2).unwrap(), Technology::paper_example())
    }

    #[test]
    fn never_beats_exhaustive() {
        let (cwg, mesh, tech) = small_instance();
        let obj = CwmObjective::new(&cwg, &mesh, &tech);
        let optimum = exhaustive(&obj, &mesh, 3);
        for seed in 0..5 {
            let rnd = random_search(&obj, &mesh, 3, 50, seed);
            assert!(rnd.cost >= optimum.cost - 1e-9);
        }
    }

    #[test]
    fn enough_samples_find_the_optimum_on_tiny_spaces() {
        let (cwg, mesh, tech) = small_instance();
        let obj = CwmObjective::new(&cwg, &mesh, &tech);
        let optimum = exhaustive(&obj, &mesh, 3);
        // 24 placements only; 500 samples all but surely hit the optimum.
        let rnd = random_search(&obj, &mesh, 3, 500, 123);
        assert_eq!(rnd.cost, optimum.cost);
    }

    #[test]
    fn deterministic_per_seed() {
        let (cwg, mesh, tech) = small_instance();
        let obj = CwmObjective::new(&cwg, &mesh, &tech);
        let a = random_search(&obj, &mesh, 3, 20, 9);
        let b = random_search(&obj, &mesh, 3, 20, 9);
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_panics() {
        let (cwg, mesh, tech) = small_instance();
        let obj = CwmObjective::new(&cwg, &mesh, &tech);
        let _ = random_search(&obj, &mesh, 3, 0, 0);
    }
}
