//! Mapping robustness under link/TSV failures.
//!
//! The paper optimizes mappings for a pristine mesh; this module asks
//! what happens when the mesh degrades. Three tools:
//!
//! * [`remap_after_faults`] — inject a [`FaultSet`], re-route the
//!   incumbent mapping over the fault-aware provider tier, measure the
//!   degraded cost, then spend a bounded evaluation budget
//!   re-optimizing on the incremental swap-delta fast path. The
//!   [`RemapReport`] records the degradation and the recovery curve
//!   (best recovered cost, evaluations until the pre-fault cost was
//!   matched, if ever).
//! * [`link_criticality`] — a traffic-weighted load report per link:
//!   which links carry which share of the mapping's communication
//!   volume. A mapping whose volume concentrates on few links is one
//!   link failure away from a large degradation; the report's
//!   max-share and Herfindahl index quantify that single-point-of-
//!   failure exposure.
//! * [`RobustCdcmObjective`] — the CDCM objective with a concentration
//!   penalty `cost × (1 + w·HHI)`, for searches that should trade a
//!   little energy for spreading traffic across more links.

use crate::objective::{BatchCost, CdcmObjective, CostFunction, SwapDeltaCost};
use noc_energy::Technology;
use noc_model::{Cdcg, Cwg, FaultSet, Link, Mapping, RouteProvider, RouteSource, TileId};
use noc_search::propose_swap;
use noc_sim::SimParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One link's traffic load under a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkLoad {
    /// The loaded channel.
    pub link: Link,
    /// Total bits routed across the channel (each communication's
    /// volume counted once per traversal).
    pub bits: u64,
    /// This channel's fraction of the total routed volume.
    pub share: f64,
}

/// Traffic-weighted link-criticality report: single-point-of-failure
/// exposure of one mapping (see [`link_criticality`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalityReport {
    /// Total bits routed over inter-router channels (volume × hops).
    pub total_bits: u64,
    /// Inter-router channels carrying any traffic.
    pub links_used: usize,
    /// The most heavily loaded channels, descending (at most
    /// [`CriticalityReport::TOP`] entries).
    pub top: Vec<LinkLoad>,
    /// Share of the total volume on the single busiest channel — the
    /// worst-case fraction of traffic a single link failure detours.
    pub max_share: f64,
    /// Herfindahl–Hirschman index of the load distribution
    /// (`Σ share²`): `1/links_used` when perfectly spread, `1.0` when
    /// one channel carries everything.
    pub hhi: f64,
}

impl CriticalityReport {
    /// Number of busiest links the report keeps.
    pub const TOP: usize = 10;
}

/// Computes the traffic-weighted link load of `mapping`: every CWG
/// communication's bit volume is charged to each inter-router channel
/// its route traverses (injection/ejection links are core-local and
/// excluded). Deterministic: accumulation and tie-breaking follow the
/// dense link numbering.
pub fn link_criticality(cwg: &Cwg, routes: &RouteProvider, mapping: &Mapping) -> CriticalityReport {
    let mut loads: BTreeMap<u32, u64> = BTreeMap::new();
    let mut buf = Vec::new();
    for comm in cwg.communications() {
        buf.clear();
        let (start, len) = routes.walk_span(
            mapping.tile_of(comm.src),
            mapping.tile_of(comm.dst),
            &mut buf,
        );
        let flat = routes.flat(&buf);
        for &id in &flat[start as usize..(start + len) as usize] {
            if routes.link_at(id).is_some_and(|l| l.is_internal()) {
                *loads.entry(id).or_insert(0) += comm.bits;
            }
        }
    }

    let total_bits: u64 = loads.values().sum();
    let total = total_bits as f64;
    let mut top: Vec<LinkLoad> = loads
        .iter()
        .map(|(&id, &bits)| LinkLoad {
            link: routes.link_at(id).expect("accumulated ids decode"),
            bits,
            share: if total_bits == 0 {
                0.0
            } else {
                bits as f64 / total
            },
        })
        .collect();
    let hhi = top.iter().map(|l| l.share * l.share).sum();
    let links_used = top.len();
    // Descending by load; the BTreeMap's id order breaks ties.
    top.sort_by_key(|l| std::cmp::Reverse(l.bits));
    let max_share = top.first().map_or(0.0, |l| l.share);
    top.truncate(CriticalityReport::TOP);
    CriticalityReport {
        total_bits,
        links_used,
        top,
        max_share,
        hhi,
    }
}

/// Concentration of `mapping`'s traffic (the Herfindahl index of
/// [`link_criticality`] alone, skipping the per-link report).
pub fn traffic_concentration(cwg: &Cwg, routes: &RouteProvider, mapping: &Mapping) -> f64 {
    link_criticality(cwg, routes, mapping).hhi
}

/// Outcome of one fault-injection / re-mapping experiment
/// (see [`remap_after_faults`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemapReport {
    /// Dead directed channels injected.
    pub dead_links: usize,
    /// Incumbent cost on the healthy mesh (pJ).
    pub baseline_cost: f64,
    /// Incumbent cost re-routed around the faults, before any
    /// re-optimization (pJ); infinite when the faults partition the
    /// incumbent's traffic.
    pub degraded_cost: f64,
    /// True when at least one incumbent communication pair was
    /// disconnected by the faults.
    pub partitioned: bool,
    /// Best cost found by the budgeted re-optimization (pJ).
    pub recovered_cost: f64,
    /// `recovered_cost / baseline_cost` — 1.0 means full recovery,
    /// above 1.0 is the residual degradation the detours force.
    pub recovery_ratio: f64,
    /// Cost evaluations the re-optimization spent.
    pub evaluations: u64,
    /// First evaluation at which the search matched the pre-fault
    /// baseline cost, when it did (`Some(0)` when the faults did not
    /// degrade the incumbent at all).
    pub evals_to_recover: Option<u64>,
}

/// Injects `faults`, measures the incumbent mapping's degraded cost
/// over the fault-aware route tier, then re-optimizes from the
/// incumbent with a budgeted annealing loop on the incremental
/// swap-delta fast path.
///
/// The healthy baseline is evaluated over `healthy` (any tier); the
/// degraded/recovery phase over [`RouteProvider::fault_aware`] for the
/// same routing kind. A partitioned incumbent costs `f64::INFINITY`;
/// the re-optimization then searches by full evaluation until it finds
/// a connected mapping and switches to the delta fast path from there.
/// Fully deterministic for a given `seed`.
///
/// # Panics
///
/// Panics if `healthy` was built for a custom routing algorithm
/// (fault-aware rerouting needs a library [`noc_model::RoutingKind`]),
/// or if `incumbent` does not fit `cdcg` on the provider's mesh.
#[allow(clippy::too_many_arguments)]
pub fn remap_after_faults(
    cdcg: &Cdcg,
    tech: &Technology,
    params: SimParams,
    healthy: &Arc<RouteProvider>,
    faults: FaultSet,
    incumbent: &Mapping,
    budget: u64,
    seed: u64,
) -> RemapReport {
    let mesh = *healthy.mesh();
    let kind = noc_model::RoutingKind::from_name(healthy.routing_name())
        .expect("fault-aware rerouting requires a library routing kind");
    let dead_links = faults.len();

    let healthy_obj = CdcmObjective::with_provider(cdcg, tech, params, Arc::clone(healthy));
    let baseline_cost = healthy_obj.cost(incumbent);

    let degraded_routes = Arc::new(RouteProvider::fault_aware(&mesh, kind, faults));
    let objective = CdcmObjective::with_provider(cdcg, tech, params, Arc::clone(&degraded_routes));
    let degraded_cost = objective.cost(incumbent);
    let partitioned = degraded_cost.is_infinite();

    let mut rng = StdRng::seed_from_u64(seed ^ 0xfa17_ab1e);
    let mut current = incumbent.clone();
    let mut current_cost = degraded_cost;
    let mut best = current.clone();
    let mut best_cost = current_cost;
    let mut evaluations = 0u64;
    let mut evals_to_recover = (degraded_cost <= baseline_cost).then_some(0);

    // A light annealing schedule around the degradation scale: enough
    // uphill mobility to unwedge cores from around the fault, cooling
    // to pure descent over the budget.
    let scale = if degraded_cost.is_finite() {
        (degraded_cost - baseline_cost)
            .abs()
            .max(baseline_cost * 0.01)
    } else {
        baseline_cost.abs().max(1.0)
    };
    let mut temperature = (scale * 0.5).max(f64::MIN_POSITIVE);
    let cooling = 0.999_f64;

    while evaluations < budget && mesh.tile_count() > 1 {
        let (a, b) = propose_swap(&mesh, &mut rng);
        evaluations += 1;
        if current_cost.is_finite() {
            let delta = objective.swap_delta(&current, a, b);
            let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temperature).exp();
            if accept && delta.is_finite() {
                current.swap_tiles(a, b);
                current_cost += delta;
            }
        } else {
            // Partitioned incumbent: deltas from an infinite base are
            // meaningless, so evaluate candidates fully until one
            // reconnects, then resume on the fast path.
            let mut cand = current.clone();
            cand.swap_tiles(a, b);
            let cand_cost = objective.cost(&cand);
            if cand_cost < current_cost {
                current = cand;
                current_cost = cand_cost;
            }
        }
        if current_cost < best_cost {
            // Resync against drift: deltas are exact per move, but the
            // running sum accumulates rounding over thousands of moves.
            current_cost = objective.cost(&current);
            if current_cost < best_cost {
                best.clone_from(&current);
                best_cost = current_cost;
                if best_cost <= baseline_cost && evals_to_recover.is_none() {
                    evals_to_recover = Some(evaluations);
                }
            }
        }
        temperature = (temperature * cooling).max(f64::MIN_POSITIVE);
    }

    let recovered_cost = best_cost;
    RemapReport {
        dead_links,
        baseline_cost,
        degraded_cost,
        partitioned,
        recovered_cost,
        recovery_ratio: if baseline_cost == 0.0 {
            1.0
        } else {
            recovered_cost / baseline_cost
        },
        evaluations,
        evals_to_recover,
    }
}

/// The CDCM objective with a traffic-concentration penalty:
/// `cost(m) = CDCM(m) × (1 + weight × HHI(m))`, where `HHI` is the
/// Herfindahl index of the mapping's link-load distribution
/// ([`link_criticality`]). With `weight = 0` this is exactly
/// [`CdcmObjective`]; positive weights trade energy for spreading the
/// communication volume across more links, lowering single-point-of-
/// failure exposure.
#[derive(Debug, Clone)]
pub struct RobustCdcmObjective<'a> {
    inner: CdcmObjective<'a>,
    cwg: Cwg,
    routes: Arc<RouteProvider>,
    weight: f64,
}

impl<'a> RobustCdcmObjective<'a> {
    /// Creates the penalized objective over a shared route provider.
    pub fn with_provider(
        cdcg: &'a Cdcg,
        tech: &'a Technology,
        params: SimParams,
        routes: Arc<RouteProvider>,
        weight: f64,
    ) -> Self {
        Self {
            inner: CdcmObjective::with_provider(cdcg, tech, params, Arc::clone(&routes)),
            cwg: cdcg.to_cwg(),
            routes,
            weight,
        }
    }

    /// The concentration penalty factor `1 + weight × HHI(mapping)`.
    pub fn penalty(&self, mapping: &Mapping) -> f64 {
        1.0 + self.weight * traffic_concentration(&self.cwg, &self.routes, mapping)
    }
}

impl CostFunction for RobustCdcmObjective<'_> {
    fn cost(&self, mapping: &Mapping) -> f64 {
        self.inner.cost(mapping) * self.penalty(mapping)
    }

    fn name(&self) -> String {
        format!("CDCM*(1+{}*HHI)", self.weight)
    }
}

impl BatchCost for RobustCdcmObjective<'_> {
    /// Batched penalized costs: the energy term comes from the inner
    /// objective's batched engine, the HHI penalty is recomputed per
    /// mapping — the exact expression `cost` evaluates, in the same
    /// operation order.
    fn batch_cost(&self, batch: &[Mapping], out: &mut Vec<f64>) {
        let mut inner = Vec::with_capacity(batch.len());
        self.inner.batch_cost(batch, &mut inner);
        out.extend(batch.iter().zip(&inner).map(|(m, &c)| c * self.penalty(m)));
    }
}

impl SwapDeltaCost for RobustCdcmObjective<'_> {
    fn swap_delta(&self, mapping: &Mapping, a: TileId, b: TileId) -> f64 {
        if a == b {
            return 0.0;
        }
        // The energy term rides the inner incremental path; the HHI
        // term is a full recompute over the (few) route-changed
        // communications' walks — still far cheaper than a schedule.
        let base = self.inner.cost(mapping);
        let delta = self.inner.swap_delta(mapping, a, b);
        if !base.is_finite() || !delta.is_finite() {
            return f64::INFINITY;
        }
        let mut swapped = mapping.clone();
        swapped.swap_tiles(a, b);
        (base + delta) * self.penalty(&swapped) - base * self.penalty(mapping)
    }
}

/// Convenience: builds the fault-aware sibling of an existing provider
/// (same mesh, same routing kind) for a fault set.
///
/// # Panics
///
/// Panics if `healthy` was built for a custom routing algorithm.
pub fn fault_sibling(healthy: &RouteProvider, faults: FaultSet) -> RouteProvider {
    let kind = noc_model::RoutingKind::from_name(healthy.routing_name())
        .expect("fault-aware rerouting requires a library routing kind");
    RouteProvider::fault_aware(healthy.mesh(), kind, faults)
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::{FaultScenario, Mesh, RoutingKind};

    fn figure1_cdcg() -> Cdcg {
        let mut g = Cdcg::new();
        let a = g.add_core("A");
        let b = g.add_core("B");
        let e = g.add_core("E");
        let f = g.add_core("F");
        let pab1 = g.add_packet(a, b, 6, 15).unwrap();
        let pbf1 = g.add_packet(b, f, 10, 40).unwrap();
        let pea1 = g.add_packet(e, a, 10, 20).unwrap();
        let pea2 = g.add_packet(e, a, 20, 15).unwrap();
        let paf1 = g.add_packet(a, f, 6, 15).unwrap();
        let pfb1 = g.add_packet(f, b, 6, 15).unwrap();
        g.add_dependence(pea1, pea2).unwrap();
        g.add_dependence(pab1, paf1).unwrap();
        g.add_dependence(pea1, paf1).unwrap();
        g.add_dependence(pbf1, pfb1).unwrap();
        g.add_dependence(paf1, pfb1).unwrap();
        g
    }

    fn instance() -> (Cdcg, Mesh, Technology, SimParams) {
        (
            figure1_cdcg(),
            Mesh::new(3, 3).unwrap(),
            Technology::paper_example(),
            SimParams::paper_example(),
        )
    }

    #[test]
    fn empty_fault_set_reports_zero_degradation() {
        let (cdcg, mesh, tech, params) = instance();
        let healthy = Arc::new(RouteProvider::auto(&mesh, RoutingKind::Xy));
        let incumbent = Mapping::from_tiles(&mesh, [0, 1, 3, 4].map(TileId::new)).unwrap();
        let report = remap_after_faults(
            &cdcg,
            &tech,
            params,
            &healthy,
            FaultSet::new(),
            &incumbent,
            200,
            7,
        );
        assert_eq!(report.dead_links, 0);
        assert_eq!(report.degraded_cost, report.baseline_cost);
        assert!(!report.partitioned);
        assert_eq!(report.evals_to_recover, Some(0));
        assert!(report.recovered_cost <= report.baseline_cost);
    }

    #[test]
    fn link_failure_degrades_then_recovery_improves() {
        let (cdcg, mesh, tech, params) = instance();
        let healthy = Arc::new(RouteProvider::auto(&mesh, RoutingKind::Xy));
        let incumbent = Mapping::from_tiles(&mesh, [0, 1, 3, 4].map(TileId::new)).unwrap();
        let mut faults = FaultSet::new();
        // Kill the A→B channel the incumbent leans on.
        faults.kill_between(TileId::new(0), TileId::new(1));
        let report =
            remap_after_faults(&cdcg, &tech, params, &healthy, faults, &incumbent, 2_000, 7);
        assert_eq!(report.dead_links, 2);
        assert!(
            report.degraded_cost > report.baseline_cost,
            "detours must cost energy: {} vs {}",
            report.degraded_cost,
            report.baseline_cost
        );
        assert!(report.recovered_cost <= report.degraded_cost);
        assert!(report.recovery_ratio >= 0.0);
        assert_eq!(report.evaluations, 2_000);
        // Determinism: the same seed reproduces the same report.
        let mut faults2 = FaultSet::new();
        faults2.kill_between(TileId::new(0), TileId::new(1));
        let again = remap_after_faults(
            &cdcg, &tech, params, &healthy, faults2, &incumbent, 2_000, 7,
        );
        assert_eq!(report, again);
    }

    #[test]
    fn partitioned_incumbent_is_infinite_then_reconnects() {
        let (cdcg, _, tech, params) = instance();
        // A 2x2 mesh cut in half: no mapping of 4 communicating cores
        // survives, so both the incumbent and every candidate stay
        // partitioned.
        let mesh = Mesh::new(2, 2).unwrap();
        let healthy = Arc::new(RouteProvider::auto(&mesh, RoutingKind::Xy));
        let incumbent = Mapping::from_tiles(&mesh, [0, 1, 2, 3].map(TileId::new)).unwrap();
        let mut faults = FaultSet::new();
        // Cut every channel crossing the vertical centerline.
        faults.kill_between(TileId::new(0), TileId::new(1));
        faults.kill_between(TileId::new(2), TileId::new(3));
        let report = remap_after_faults(&cdcg, &tech, params, &healthy, faults, &incumbent, 500, 3);
        assert!(report.partitioned);
        assert!(report.degraded_cost.is_infinite());
        // No mapping of 4 cores onto a split 2x2 reconnects: recovery
        // stays infinite, and that is reported, not panicked over.
        assert!(report.recovered_cost.is_infinite());
        assert_eq!(report.evals_to_recover, None);
    }

    #[test]
    fn criticality_report_finds_the_hot_link() {
        let (cdcg, mesh, tech, params) = instance();
        let _ = (tech, params);
        let cwg = cdcg.to_cwg();
        let routes = RouteProvider::auto(&mesh, RoutingKind::Xy);
        let mapping = Mapping::from_tiles(&mesh, [0, 1, 3, 4].map(TileId::new)).unwrap();
        let report = link_criticality(&cwg, &routes, &mapping);
        assert!(report.total_bits > 0);
        assert!(report.links_used >= 4);
        assert!(report.max_share > 0.0 && report.max_share <= 1.0);
        assert!(report.hhi >= 1.0 / report.links_used as f64 - 1e-12);
        assert!(report.hhi <= 1.0);
        let top_sum: u64 = report.top.iter().map(|l| l.bits).sum();
        assert!(top_sum <= report.total_bits);
        assert!(report.top.windows(2).all(|w| w[0].bits >= w[1].bits));
        // B↔F (40 bits each hop) dominates: the busiest link carries
        // at least that much.
        assert!(report.top[0].bits >= 40);
    }

    #[test]
    fn robust_objective_delta_matches_cost_difference() {
        let (cdcg, mesh, tech, params) = instance();
        let routes = Arc::new(RouteProvider::auto(&mesh, RoutingKind::Xy));
        let obj = RobustCdcmObjective::with_provider(&cdcg, &tech, params, routes, 2.0);
        let m = Mapping::from_tiles(&mesh, [0, 1, 3, 4].map(TileId::new)).unwrap();
        for (a, b) in [(0, 8), (1, 4), (3, 3), (0, 1)] {
            let (a, b) = (TileId::new(a), TileId::new(b));
            let delta = obj.swap_delta(&m, a, b);
            let mut swapped = m.clone();
            swapped.swap_tiles(a, b);
            let full = obj.cost(&swapped) - obj.cost(&m);
            assert!(
                (delta - full).abs() < 1e-9,
                "swap {a}-{b}: delta {delta} vs full {full}"
            );
        }
        // Weight 0 degenerates to plain CDCM.
        let routes = Arc::new(RouteProvider::auto(&mesh, RoutingKind::Xy));
        let plain = CdcmObjective::with_provider(&cdcg, &tech, params, Arc::clone(&routes));
        let zero = RobustCdcmObjective::with_provider(&cdcg, &tech, params, routes, 0.0);
        assert_eq!(zero.cost(&m), plain.cost(&m));
    }

    #[test]
    fn fault_sibling_matches_the_healthy_provider_when_empty() {
        let mesh = Mesh::new(4, 4).unwrap();
        let healthy = RouteProvider::auto(&mesh, RoutingKind::Xy);
        let sibling = fault_sibling(&healthy, FaultSet::new());
        assert_eq!(sibling.tier().name(), "fault-aware");
        assert_eq!(sibling.routing_name(), healthy.routing_name());
        // And a generated scenario wires through.
        let faults = FaultScenario::RandomLinks { count: 2, seed: 5 }.generate(&mesh);
        let sibling = fault_sibling(&healthy, faults);
        assert_eq!(sibling.as_fault_aware().unwrap().faults().len(), 4);
    }
}
